"""Deterministic, seed-driven fault injection for the resilience layer.

Every recovery path in the system — cache corruption handling, the
explorer's retry/backoff loop, backend fallback chains — is worthless
unless it is *exercised*, and exercising it with ``random.random()``
makes failures unreproducible.  This module provides a :class:`FaultPlan`
whose injection decisions are a pure function of ``(seed, site,
sequence number)``: the n-th check of a given site either always or
never injects for a given plan, across runs, machines and thread
interleavings of the *same per-site call counts*.

Sites
-----
Fault checks are placed at named **injection sites**:

========================  ====================================================
``cache-read``            :meth:`repro.cache.TuningCache.get_kernel` et al.
``cache-write``           :meth:`repro.cache.TuningCache.put_kernel` et al.
``compile``               entry of :func:`repro.compiler.codegen.compile_kernel`
``simulate``              entry of :func:`repro.opencl.runtime.launch`
``verify``                the explorer's bitwise verification stage
``backend-run``           before each non-final backend of a fallback chain
``service-admit``         :meth:`repro.service.TuningService` request admission
``service-journal``       recovery-journal writes (:mod:`repro.service.journal`)
``service-worker``        top of each service worker's request processing
========================  ====================================================

All sites except ``backend-run`` sit *before* any observable side
effect, so the standard recovery — retry the draw a bounded number of
times (:func:`survive`) — is exact: an injected-and-recovered fault
changes timing only, never results.  ``backend-run`` faults instead
*decline* the backend so the fallback chain (and its degradation
ledger, :mod:`repro.backend.ledger`) is exercised; the final chain
member is exempt, so a graceful chain still completes.  The three
``service-*`` sites follow the pre-side-effect rule: an escape at
``service-admit`` rejects the request (the client's retry is the
recovery), at ``service-journal`` falls back to unjournaled execution
(the request loses crash recovery, never correctness), and at
``service-worker`` re-enters the worker's own retry loop.

Configuration
-------------
A plan is a spec string — from the ``REPRO_FAULT_PLAN`` environment
variable or :func:`set_plan` — of ``;``- or ``,``-separated fields::

    seed=11;rate=0.05                  # 5% at every site
    seed=7;cache-read=0.2;compile=0.1  # per-site rates
    seed=3;rate=1.0;attempts=1         # every check escapes (tests)

``attempts`` bounds the in-place retries of :func:`survive` (default
4); ``off`` (or an empty string) disables injection.
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "SITES",
    "FaultInjected",
    "FaultPlan",
    "FaultState",
    "active_plan",
    "clear_plan",
    "counts",
    "maybe_fail",
    "plan_installed",
    "reset_counts",
    "set_plan",
    "survive",
]

ENV_VAR = "REPRO_FAULT_PLAN"

#: The named injection sites (see the module docstring).
SITES = (
    "cache-read",
    "cache-write",
    "compile",
    "simulate",
    "verify",
    "backend-run",
    "service-admit",
    "service-journal",
    "service-worker",
)


class FaultInjected(Exception):
    """A deterministic injected fault (transient by definition)."""

    def __init__(self, site: str, sequence: int):
        super().__init__(f"injected fault at {site!r} (draw #{sequence})")
        self.site = site
        self.sequence = sequence


@dataclass(frozen=True)
class FaultPlan:
    """Per-site injection rates plus the deterministic seed."""

    seed: int = 0
    default_rate: float = 0.0
    rates: Tuple[Tuple[str, float], ...] = ()
    #: Bounded in-place retries of :func:`survive`.
    attempts: int = 4

    def rate(self, site: str) -> float:
        for name, r in self.rates:
            if name == site:
                return r
        return self.default_rate

    def any_faults(self) -> bool:
        return self.default_rate > 0 or any(r > 0 for _, r in self.rates)

    @classmethod
    def parse(cls, spec: str) -> Optional["FaultPlan"]:
        """Parse a spec string; returns ``None`` for ``off``/empty."""
        spec = (spec or "").strip()
        if not spec or spec.lower() == "off":
            return None
        seed, default_rate, attempts = 0, 0.0, 4
        rates = []
        for raw in spec.replace(",", ";").split(";"):
            raw = raw.strip()
            if not raw:
                continue
            if "=" not in raw:
                raise ValueError(
                    f"bad {ENV_VAR} field {raw!r}: expected key=value"
                )
            key, _, value = raw.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "seed":
                seed = int(value)
            elif key == "rate":
                default_rate = float(value)
            elif key == "attempts":
                attempts = max(1, int(value))
            elif key in SITES:
                rates.append((key, float(value)))
            else:
                raise ValueError(
                    f"unknown {ENV_VAR} field {key!r} "
                    f"(sites: {', '.join(SITES)}; also seed/rate/attempts)"
                )
        plan = cls(seed, default_rate, tuple(rates), attempts)
        return plan if plan.any_faults() else None

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        if self.default_rate:
            parts.append(f"rate={self.default_rate}")
        parts += [f"{name}={r}" for name, r in self.rates]
        parts.append(f"attempts={self.attempts}")
        return ";".join(parts)


@dataclass
class SiteCounts:
    """Observability: what one site has seen so far."""

    checks: int = 0
    injected: int = 0
    recovered: int = 0
    escaped: int = 0

    def as_dict(self) -> dict:
        return {
            "checks": self.checks,
            "injected": self.injected,
            "recovered": self.recovered,
            "escaped": self.escaped,
        }


class FaultState:
    """An active plan plus its per-site sequence and outcome counters."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._sequence: Dict[str, int] = {}
        self._counts: Dict[str, SiteCounts] = {}

    def _draw(self, site: str) -> Tuple[bool, int]:
        """One deterministic injection decision; advances the sequence."""
        rate = self.plan.rate(site)
        with self._lock:
            n = self._sequence.get(site, 0)
            self._sequence[site] = n + 1
            c = self._counts.setdefault(site, SiteCounts())
            c.checks += 1
            if rate <= 0.0:
                return False, n
            digest = hashlib.sha256(
                f"{self.plan.seed}:{site}:{n}".encode()
            ).digest()
            draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
            inject = draw < rate
            if inject:
                c.injected += 1
        if inject:
            # Out-of-band observability (outside the lock: the tracer
            # and registry synchronize themselves).
            from repro import obs

            obs.instant("fault.inject", site=site, sequence=n)
            obs.inc(f"faults.injected.{site}")
        return inject, n

    def maybe_fail(self, site: str) -> None:
        """Single draw; raises :class:`FaultInjected` when it lands."""
        inject, n = self._draw(site)
        if inject:
            with self._lock:
                self._counts[site].escaped += 1
            raise FaultInjected(site, n)

    def survive(self, site: str) -> int:
        """Draw up to ``plan.attempts`` times, recovering in place.

        Returns how many injected faults were absorbed.  Raises
        :class:`FaultInjected` only when *every* attempt injects — the
        caller's own (coarser) recovery path then takes over.
        """
        recovered = 0
        for attempt in range(self.plan.attempts):
            inject, n = self._draw(site)
            if not inject:
                return recovered
            with self._lock:
                if attempt + 1 == self.plan.attempts:
                    self._counts[site].escaped += 1
                else:
                    self._counts[site].recovered += 1
            if attempt + 1 == self.plan.attempts:
                raise FaultInjected(site, n)
            recovered += 1
        return recovered

    def counts(self) -> Mapping[str, SiteCounts]:
        with self._lock:
            return {site: SiteCounts(**c.as_dict()) for site, c in self._counts.items()}

    def reset_counts(self) -> None:
        with self._lock:
            self._sequence.clear()
            self._counts.clear()


# ---------------------------------------------------------------------------
# process-global state
# ---------------------------------------------------------------------------

_UNINITIALIZED = object()
_state: "FaultState | None | object" = _UNINITIALIZED
_state_lock = threading.Lock()


def _get_state() -> Optional[FaultState]:
    global _state
    if _state is _UNINITIALIZED:
        with _state_lock:
            if _state is _UNINITIALIZED:
                plan = FaultPlan.parse(os.environ.get(ENV_VAR, ""))
                _state = FaultState(plan) if plan is not None else None
    return _state  # type: ignore[return-value]


def set_plan(plan: "FaultPlan | str | None") -> Optional[FaultState]:
    """Install a plan (object or spec string); ``None``/"off" disables."""
    global _state
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    with _state_lock:
        _state = FaultState(plan) if plan is not None else None
        return _state


def clear_plan() -> None:
    set_plan(None)


def active_plan() -> Optional[FaultPlan]:
    state = _get_state()
    return state.plan if state is not None else None


def maybe_fail(site: str) -> None:
    """Site check with no in-place recovery (the caller's fallback is
    the recovery — used by ``backend-run``)."""
    state = _get_state()
    if state is not None:
        state.maybe_fail(site)


def survive(site: str) -> int:
    """Site check with bounded in-place retries; returns the number of
    absorbed faults (0 on the fast path).  See :meth:`FaultState.survive`."""
    state = _get_state()
    if state is None:
        return 0
    return state.survive(site)


def counts() -> Mapping[str, SiteCounts]:
    """Per-site observability counters of the active state (empty when
    injection is off)."""
    state = _get_state()
    return state.counts() if state is not None else {}


def total_injected() -> int:
    return sum(c.injected for c in counts().values())


def reset_counts() -> None:
    state = _get_state()
    if state is not None:
        state.reset_counts()


class plan_installed:
    """Context manager: install a plan, restore the previous state on
    exit (tests)."""

    def __init__(self, plan: "FaultPlan | str | None"):
        self._plan = plan
        self._saved: "FaultState | None | object" = None

    def __enter__(self) -> Optional[FaultState]:
        global _state
        self._saved = _get_state()
        return set_plan(self._plan)

    def __exit__(self, *exc) -> None:
        global _state
        with _state_lock:
            _state = self._saved
