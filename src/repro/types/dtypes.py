"""Type objects for the Lift IR.

The type system distinguishes (paper section 5.1):

* scalar types, corresponding to OpenCL scalars (``int``, ``float``, ...);
* vector types, corresponding to OpenCL vector types (``float4``, ...);
* tuple types, represented as structs in generated code;
* array types, which may nest and which carry the length of each
  dimension as an arithmetic expression over natural numbers.

Types are immutable value objects.
"""

from __future__ import annotations

from typing import Iterable

from repro.arith import ArithExpr, Cst, simplify
from repro.arith.expr import to_expr


class Type:
    """Base class for every type, including function types."""

    __slots__ = ()


class DataType(Type):
    """Base class for types of *values* (everything except functions)."""

    __slots__ = ()


class ScalarType(DataType):
    """An OpenCL scalar type such as ``float`` or ``int``."""

    __slots__ = ("name", "size_bytes")

    def __init__(self, name: str, size_bytes: int):
        self.name = name
        self.size_bytes = size_bytes

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ScalarType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("ScalarType", self.name))

    def __repr__(self) -> str:
        return self.name

    __str__ = __repr__


FLOAT = ScalarType("float", 4)
INT = ScalarType("int", 4)
DOUBLE = ScalarType("double", 8)
BOOL = ScalarType("bool", 1)


class VectorType(DataType):
    """An OpenCL vector type such as ``float4``."""

    __slots__ = ("elem", "width")

    def __init__(self, elem: ScalarType, width: int):
        if width not in (2, 3, 4, 8, 16):
            raise ValueError(f"unsupported vector width {width}")
        self.elem = elem
        self.width = width

    @property
    def name(self) -> str:
        return f"{self.elem.name}{self.width}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, VectorType)
            and other.elem == self.elem
            and other.width == self.width
        )

    def __hash__(self) -> int:
        return hash(("VectorType", self.elem, self.width))

    def __repr__(self) -> str:
        return self.name

    __str__ = __repr__


class TupleType(DataType):
    """A tuple of data types; lowered to a C struct in generated code."""

    __slots__ = ("elems",)

    def __init__(self, elems: Iterable[DataType]):
        self.elems = tuple(elems)
        if len(self.elems) < 2:
            raise ValueError("TupleType requires at least two components")

    @property
    def name(self) -> str:
        inner = "_".join(_mangle(e) for e in self.elems)
        return f"Tuple{len(self.elems)}_{inner}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TupleType) and other.elems == self.elems

    def __hash__(self) -> int:
        return hash(("TupleType", self.elems))

    def __repr__(self) -> str:
        return "(" + ", ".join(map(str, self.elems)) + ")"

    __str__ = __repr__


class ArrayType(DataType):
    """An array with a symbolic length, e.g. ``[float]_N``."""

    __slots__ = ("elem", "length")

    def __init__(self, elem: DataType, length: ArithExpr | int):
        self.elem = elem
        self.length = to_expr(length)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayType)
            and other.elem == self.elem
            and simplify(other.length) == simplify(self.length)
        )

    def __hash__(self) -> int:
        return hash(("ArrayType", self.elem, simplify(self.length)))

    def __repr__(self) -> str:
        return f"[{self.elem}]_{self.length}"

    __str__ = __repr__


class FunType(Type):
    """The type of a function declaration."""

    __slots__ = ("ins", "out")

    def __init__(self, ins: Iterable[Type], out: Type):
        self.ins = tuple(ins)
        self.out = out

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FunType) and other.ins == self.ins and other.out == self.out

    def __hash__(self) -> int:
        return hash(("FunType", self.ins, self.out))

    def __repr__(self) -> str:
        args = ", ".join(map(str, self.ins))
        return f"({args}) -> {self.out}"

    __str__ = __repr__


def _mangle(t: DataType) -> str:
    if isinstance(t, (ScalarType, VectorType)):
        return t.name
    if isinstance(t, TupleType):
        return t.name
    if isinstance(t, ArrayType):
        return f"arr_{_mangle(t.elem)}"
    raise TypeError(f"cannot mangle {t!r}")


def array(elem: DataType, *lengths: ArithExpr | int) -> DataType:
    """Build a (possibly multi-dimensional) array type.

    ``array(FLOAT, N, M)`` is an N-array of M-arrays of float.
    """
    result: DataType = elem
    for length in reversed(lengths):
        result = ArrayType(result, length)
    return result


def vector(elem: ScalarType, width: int) -> VectorType:
    return VectorType(elem, width)


float2 = VectorType(FLOAT, 2)
float4 = VectorType(FLOAT, 4)
float8 = VectorType(FLOAT, 8)
int2 = VectorType(INT, 2)
int4 = VectorType(INT, 4)


def size_in_bytes(t: DataType) -> ArithExpr:
    """Symbolic size of a value of type ``t`` in bytes."""
    if isinstance(t, ScalarType):
        return Cst(t.size_bytes)
    if isinstance(t, VectorType):
        return Cst(t.elem.size_bytes * t.width)
    if isinstance(t, TupleType):
        total = Cst(0)
        for e in t.elems:
            total = total + size_in_bytes(e)
        return total
    if isinstance(t, ArrayType):
        return t.length * size_in_bytes(t.elem)
    raise TypeError(f"cannot size {t!r}")


def element_count(t: DataType) -> ArithExpr:
    """Number of *scalar* elements a value of type ``t`` occupies."""
    if isinstance(t, ScalarType):
        return Cst(1)
    if isinstance(t, VectorType):
        return Cst(t.width)
    if isinstance(t, TupleType):
        total = Cst(0)
        for e in t.elems:
            total = total + element_count(e)
        return total
    if isinstance(t, ArrayType):
        return t.length * element_count(t.elem)
    raise TypeError(f"cannot count elements of {t!r}")


def scalar_base(t: DataType) -> ScalarType:
    """The underlying scalar of a scalar/vector/array type."""
    if isinstance(t, ScalarType):
        return t
    if isinstance(t, VectorType):
        return t.elem
    if isinstance(t, ArrayType):
        return scalar_base(t.elem)
    raise TypeError(f"no unique scalar base for {t!r}")
