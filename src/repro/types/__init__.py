"""The Lift dependent type system (paper section 5.1).

Scalar, vector, tuple and array types; array types carry their length as a
symbolic arithmetic expression, which is what enables the memory allocator,
the view system and the simplifier to reason about sizes and indices.
"""

from repro.types.dtypes import (
    ArrayType,
    BOOL,
    DOUBLE,
    DataType,
    FLOAT,
    FunType,
    INT,
    ScalarType,
    TupleType,
    Type,
    VectorType,
    array,
    element_count,
    float2,
    float4,
    float8,
    int2,
    int4,
    size_in_bytes,
    vector,
)

__all__ = [
    "ArrayType",
    "BOOL",
    "DOUBLE",
    "DataType",
    "FLOAT",
    "FunType",
    "INT",
    "ScalarType",
    "TupleType",
    "Type",
    "VectorType",
    "array",
    "element_count",
    "float2",
    "float4",
    "float8",
    "int2",
    "int4",
    "size_in_bytes",
    "vector",
]
