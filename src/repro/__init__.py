"""repro — a Python reproduction of the Lift compiler (CGO 2017).

    Steuwer, Remmelg, Dubach:
    "Lift: A Functional Data-Parallel IR for High-Performance GPU Code
    Generation", CGO 2017.

Public surface:

* :mod:`repro.ir` / :mod:`repro.ir.dsl` — the Lift IL: patterns,
  expression nodes, and builders for writing programs;
* :mod:`repro.compiler` — the Lift-to-OpenCL compiler (type analysis,
  address spaces, views, barrier elimination, code generation);
* :mod:`repro.opencl` — the simulated OpenCL platform the kernels run on;
* :mod:`repro.rewrite` — rewrite rules and lowering recipes;
* :mod:`repro.benchsuite` — the paper's 12 benchmarks and the harnesses
  regenerating Table 1 and Figures 6 and 8.

Quick start::

    import numpy as np
    from repro import compile_and_run
    from repro.arith import Var
    from repro.types import ArrayType, FLOAT
    from repro.ir.nodes import Lambda, Param
    from repro.ir.dsl import map_glb, add, f32, reduce_seq

    n = Var("N")
    x = Param(ArrayType(FLOAT, n), "x")
    program = Lambda([x], reduce_seq(add(), f32(0.0))(x))
    result = compile_and_run(program, {"x": np.ones(64)}, {"N": 64},
                             global_size=1, local_size=(1, 1, 1))
"""

from repro.compiler.codegen import CompiledKernel, compile_kernel
from repro.compiler.kernel import compile_and_run, execute_kernel
from repro.compiler.options import CompilerOptions

__version__ = "1.0.0"

__all__ = [
    "CompiledKernel",
    "CompilerOptions",
    "compile_and_run",
    "compile_kernel",
    "execute_kernel",
    "__version__",
]
