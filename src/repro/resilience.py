"""Fault-tolerance primitives: retries, deadlines, cancellation.

The exploration pipeline (and anything built on it, e.g. a long-lived
tuning service) must survive transient infrastructure failures, hung
candidates and mid-flight aborts.  This module holds the small,
dependency-free building blocks; policy (which stages retry, which
deadlines apply) lives with the callers — see
:mod:`repro.rewrite.explore` and ``src/repro/RESILIENCE.md``.

* :class:`RetryPolicy` — bounded retries with exponential backoff for
  *transient* errors (:data:`TRANSIENT_ERRORS`: injected faults,
  :class:`TransientError`, ``OSError``).  Deterministic even with
  jitter: the spread is a pure function of ``(key, attempt)``
  (:func:`deterministic_jitter`), so N concurrent clients retrying the
  same failure desynchronize without losing replayability.
* :class:`Deadline` — an absolute wall-clock budget that *propagates*:
  every stage bounds its own timeout by :meth:`Deadline.clamp`, so a
  request admitted near its deadline cannot run a full-length stage.
* :class:`CancellationToken` — cooperative cancellation, checked at
  stage boundaries; supports parent/child chaining so a per-attempt
  deadline can cancel one attempt without aborting the whole search.
* :func:`run_with_deadline` — wall-clock watchdog: runs a callable on a
  daemon thread and raises :class:`DeadlineExceeded` when it overruns,
  cancelling the attempt's token so the stray worker stops at its next
  checkpoint (Python cannot preempt a running thread; the result of a
  late finisher is discarded).
* :class:`FailureReport` — the structured quarantine record a failed
  candidate leaves on :class:`~repro.rewrite.explore.ExplorationResult`.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

from repro.faultinject import FaultInjected

__all__ = [
    "TRANSIENT_ERRORS",
    "FAILURE_KINDS",
    "Cancelled",
    "CancellationToken",
    "Deadline",
    "DeadlineExceeded",
    "FailureReport",
    "RetryPolicy",
    "TransientError",
    "deterministic_jitter",
    "run_with_deadline",
]


class TransientError(Exception):
    """An infrastructure failure worth retrying (the error taxonomy's
    ``infra`` kind when retries run out)."""


class Cancelled(Exception):
    """Raised by :meth:`CancellationToken.raise_if_cancelled`."""


class DeadlineExceeded(Exception):
    """A watchdog deadline fired (the taxonomy's ``timeout`` kind)."""


#: Errors the retry machinery treats as transient.  Injected faults are
#: transient by definition; ``OSError`` covers the cache/filesystem.
TRANSIENT_ERRORS: Tuple[type, ...] = (FaultInjected, TransientError, OSError)


def deterministic_jitter(key: str, attempt: int, spread: float) -> float:
    """Backoff multiplier in ``[1 - spread, 1 + spread]``, a pure
    function of ``(key, attempt)``.

    Seeding the jitter by a stable per-request key (request id,
    candidate label) desynchronizes N concurrent clients retrying the
    same failed work — no thundering herd on the worker pool — while a
    rerun with the same keys replays the exact same delay sequence.
    """
    if spread <= 0.0:
        return 1.0
    digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
    draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return 1.0 + spread * (2.0 * draw - 1.0)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff.

    Replayable even with jitter: the spread is keyed, never random —
    pass a stable per-request ``key`` to :meth:`delays`/:meth:`call`
    and the delay sequence is a pure function of the policy and the
    key.  With no key (or ``jitter=0``) delays are the bare
    exponential sequence.
    """

    attempts: int = 3
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 0.5
    #: Jitter spread as a fraction of each delay (0.25 = +-25%),
    #: applied only when a ``key`` seeds it.
    jitter: float = 0.0

    def delays(self, key: Optional[str] = None) -> Iterator[float]:
        delay = self.base_delay
        for attempt in range(max(0, self.attempts - 1)):
            step = min(delay, self.max_delay)
            if key is not None:
                step *= deterministic_jitter(key, attempt, self.jitter)
            yield step
            delay *= self.multiplier

    def call(
        self,
        fn: Callable[[], "object"],
        retry_on: Tuple[type, ...] = TRANSIENT_ERRORS,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
        key: Optional[str] = None,
    ):
        """Call ``fn``, retrying transient failures; re-raises the last
        error once the attempt budget is spent."""
        delays = self.delays(key)
        for attempt in range(1, max(1, self.attempts) + 1):
            try:
                return fn()
            except retry_on as exc:
                delay = next(delays, None)
                if delay is None or attempt >= self.attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(delay)


@dataclass(frozen=True)
class Deadline:
    """An absolute wall-clock budget (``time.monotonic`` timestamp).

    The point is *propagation*: a deadline is set once at the request
    boundary and every downstream stage bounds its own timeout by
    :meth:`clamp`, so the remaining budget — not each stage's full
    configured timeout — limits the work.  A request admitted 50ms
    before its deadline gets a 50ms candidate watchdog, not a
    full-length one.
    """

    expires_at: float

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        return cls(time.monotonic() + seconds)

    def remaining(self) -> float:
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def clamp(self, timeout: Optional[float]) -> float:
        """Effective stage budget: remaining time, capped by ``timeout``."""
        rem = max(0.0, self.remaining())
        return rem if timeout is None else min(timeout, rem)


class CancellationToken:
    """Cooperative cancellation, optionally chained to a parent.

    ``cancel()`` is sticky and thread-safe; workers poll ``cancelled``
    (or call :meth:`raise_if_cancelled`) at stage boundaries.  A child
    token is cancelled when either it or its parent is — the explorer
    hands each deadline-bounded attempt a child so a watchdog can stop
    one candidate without aborting the search.
    """

    def __init__(self, parent: Optional["CancellationToken"] = None):
        self._event = threading.Event()
        self._parent = parent

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        if self._event.is_set():
            return True
        return self._parent.cancelled if self._parent is not None else False

    def raise_if_cancelled(self) -> None:
        if self.cancelled:
            raise Cancelled("operation cancelled")

    def child(self) -> "CancellationToken":
        return CancellationToken(parent=self)


def run_with_deadline(
    fn: Callable[[], "object"],
    timeout: float,
    token: Optional[CancellationToken] = None,
):
    """Run ``fn`` with a wall-clock deadline.

    The callable runs on a daemon thread; if it has not finished after
    ``timeout`` seconds, ``token`` (if given) is cancelled — so a
    cooperative ``fn`` stops at its next checkpoint — and
    :class:`DeadlineExceeded` is raised.  A late finisher's result (or
    exception) is discarded.  On time, the result is returned and any
    exception re-raised in the caller.
    """
    box: dict = {}

    def runner() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box["error"] = exc

    thread = threading.Thread(
        target=runner, name="repro-deadline", daemon=True
    )
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        if token is not None:
            token.cancel()
        from repro import obs

        obs.instant("watchdog.kill", timeout=timeout)
        obs.inc("resilience.watchdog_kills")
        raise DeadlineExceeded(
            f"deadline of {timeout:g}s exceeded"
        )
    if "error" in box:
        raise box["error"]
    return box.get("value")


#: The explorer's error taxonomy (see ``ExploreStats.as_dict``).
FAILURE_KINDS = (
    "compile",
    "simulate",
    "verify",
    "infra",
    "timeout",
    "cancelled",
)


@dataclass
class FailureReport:
    """Structured quarantine record of one failed candidate."""

    label: str
    trace: tuple
    kind: str  # one of FAILURE_KINDS
    message: str
    attempts: int = 1
    elapsed: float = 0.0

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "trace": list(self.trace),
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
            "elapsed": round(self.elapsed, 6),
        }

    def describe(self) -> str:
        return (
            f"{self.label or '(unlabelled)'}: {self.kind} after "
            f"{self.attempts} attempt(s) — {self.message}"
        )
