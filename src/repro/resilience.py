"""Fault-tolerance primitives: retries, deadlines, cancellation.

The exploration pipeline (and anything built on it, e.g. a long-lived
tuning service) must survive transient infrastructure failures, hung
candidates and mid-flight aborts.  This module holds the small,
dependency-free building blocks; policy (which stages retry, which
deadlines apply) lives with the callers — see
:mod:`repro.rewrite.explore` and ``src/repro/RESILIENCE.md``.

* :class:`RetryPolicy` — bounded retries with exponential backoff for
  *transient* errors (:data:`TRANSIENT_ERRORS`: injected faults,
  :class:`TransientError`, ``OSError``).  Deterministic: no jitter, so
  a seeded fault plan replays identically.
* :class:`CancellationToken` — cooperative cancellation, checked at
  stage boundaries; supports parent/child chaining so a per-attempt
  deadline can cancel one attempt without aborting the whole search.
* :func:`run_with_deadline` — wall-clock watchdog: runs a callable on a
  daemon thread and raises :class:`DeadlineExceeded` when it overruns,
  cancelling the attempt's token so the stray worker stops at its next
  checkpoint (Python cannot preempt a running thread; the result of a
  late finisher is discarded).
* :class:`FailureReport` — the structured quarantine record a failed
  candidate leaves on :class:`~repro.rewrite.explore.ExplorationResult`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

from repro.faultinject import FaultInjected

__all__ = [
    "TRANSIENT_ERRORS",
    "FAILURE_KINDS",
    "Cancelled",
    "CancellationToken",
    "DeadlineExceeded",
    "FailureReport",
    "RetryPolicy",
    "TransientError",
    "run_with_deadline",
]


class TransientError(Exception):
    """An infrastructure failure worth retrying (the error taxonomy's
    ``infra`` kind when retries run out)."""


class Cancelled(Exception):
    """Raised by :meth:`CancellationToken.raise_if_cancelled`."""


class DeadlineExceeded(Exception):
    """A watchdog deadline fired (the taxonomy's ``timeout`` kind)."""


#: Errors the retry machinery treats as transient.  Injected faults are
#: transient by definition; ``OSError`` covers the cache/filesystem.
TRANSIENT_ERRORS: Tuple[type, ...] = (FaultInjected, TransientError, OSError)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff (no jitter: replayable)."""

    attempts: int = 3
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 0.5

    def delays(self) -> Iterator[float]:
        delay = self.base_delay
        for _ in range(max(0, self.attempts - 1)):
            yield min(delay, self.max_delay)
            delay *= self.multiplier

    def call(
        self,
        fn: Callable[[], "object"],
        retry_on: Tuple[type, ...] = TRANSIENT_ERRORS,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        """Call ``fn``, retrying transient failures; re-raises the last
        error once the attempt budget is spent."""
        delays = self.delays()
        for attempt in range(1, max(1, self.attempts) + 1):
            try:
                return fn()
            except retry_on as exc:
                delay = next(delays, None)
                if delay is None or attempt >= self.attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(delay)


class CancellationToken:
    """Cooperative cancellation, optionally chained to a parent.

    ``cancel()`` is sticky and thread-safe; workers poll ``cancelled``
    (or call :meth:`raise_if_cancelled`) at stage boundaries.  A child
    token is cancelled when either it or its parent is — the explorer
    hands each deadline-bounded attempt a child so a watchdog can stop
    one candidate without aborting the search.
    """

    def __init__(self, parent: Optional["CancellationToken"] = None):
        self._event = threading.Event()
        self._parent = parent

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        if self._event.is_set():
            return True
        return self._parent.cancelled if self._parent is not None else False

    def raise_if_cancelled(self) -> None:
        if self.cancelled:
            raise Cancelled("operation cancelled")

    def child(self) -> "CancellationToken":
        return CancellationToken(parent=self)


def run_with_deadline(
    fn: Callable[[], "object"],
    timeout: float,
    token: Optional[CancellationToken] = None,
):
    """Run ``fn`` with a wall-clock deadline.

    The callable runs on a daemon thread; if it has not finished after
    ``timeout`` seconds, ``token`` (if given) is cancelled — so a
    cooperative ``fn`` stops at its next checkpoint — and
    :class:`DeadlineExceeded` is raised.  A late finisher's result (or
    exception) is discarded.  On time, the result is returned and any
    exception re-raised in the caller.
    """
    box: dict = {}

    def runner() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box["error"] = exc

    thread = threading.Thread(
        target=runner, name="repro-deadline", daemon=True
    )
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        if token is not None:
            token.cancel()
        from repro import obs

        obs.instant("watchdog.kill", timeout=timeout)
        obs.inc("resilience.watchdog_kills")
        raise DeadlineExceeded(
            f"deadline of {timeout:g}s exceeded"
        )
    if "error" in box:
        raise box["error"]
    return box.get("value")


#: The explorer's error taxonomy (see ``ExploreStats.as_dict``).
FAILURE_KINDS = (
    "compile",
    "simulate",
    "verify",
    "infra",
    "timeout",
    "cancelled",
)


@dataclass
class FailureReport:
    """Structured quarantine record of one failed candidate."""

    label: str
    trace: tuple
    kind: str  # one of FAILURE_KINDS
    message: str
    attempts: int = 1
    elapsed: float = 0.0

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "trace": list(self.trace),
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
            "elapsed": round(self.elapsed, 6),
        }

    def describe(self) -> str:
        return (
            f"{self.label or '(unlabelled)'}: {self.kind} after "
            f"{self.attempts} attempt(s) — {self.message}"
        )
