"""Span-based tracer emitting Chrome ``trace_event`` JSON.

The tracer answers "where did the time go?" questions the per-stage
counters cannot: it records nestable, thread-aware wall-clock **spans**
(``with span("compile"): ...``) and point-in-time **instants**
(``instant("fault", site=...)``) and writes them as a Chrome trace —
load the file into ``chrome://tracing`` / https://ui.perfetto.dev and
the parse → compile → explore → cache → launch hierarchy renders as a
flame graph per thread.

Observability is strictly out-of-band: spans never touch buffers or
:class:`~repro.opencl.interp.Counters`, so results are bitwise-identical
with tracing on or off (asserted in ``tests/test_obs.py``).

Enabling
--------
* ``REPRO_TRACE=<path>`` — any entry point (pytest, benchsuite,
  examples) traces into ``<path>``; the file is written at process
  exit (only by the process that started the trace, so forked workers
  cannot clobber it).
* ``python -m repro.benchsuite ... --trace <path>`` — explicit flag.
* :func:`start_tracing` / :func:`stop_tracing` — programmatic.

Disabled fast path
------------------
``span()``/``instant()`` first read the module-level ``_ACTIVE`` slot;
when it is ``None`` they return a shared no-op context manager (one
singleton, no allocation) / return immediately.  This is the hard
requirement of the hot path: with tracing off the instrumentation adds
one attribute load per call site (gated in CI by
``benchmarks/check_perf_regression.py``).

Format
------
``{"traceEvents": [...], "displayTimeUnit": "ms"}`` with

* ``ph: "X"`` complete events (``ts``/``dur`` in microseconds since the
  tracer started, ``pid``/``tid`` integers, attributes under ``args``),
* ``ph: "i"`` thread-scoped instants,
* ``ph: "M"`` metadata events naming each thread.

Chrome infers span nesting per thread from ``ts``/``dur`` containment.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from pathlib import Path
from typing import Optional

__all__ = [
    "Tracer",
    "TimedSpan",
    "instant",
    "span",
    "start_tracing",
    "stop_tracing",
    "timed_span",
    "tracing_enabled",
]

ENV_VAR = "REPRO_TRACE"

#: Retained-event cap: a runaway trace degrades by *dropping* (counted
#: and reported in the written file), never by unbounded memory growth.
MAX_EVENTS = 1_000_000


class _NullSpan:
    """The shared disabled-path context manager: stateless, reusable,
    reentrant — ``span()`` with tracing off always returns this one
    instance."""

    __slots__ = ()

    #: Write sink for call sites that set attributes after entry
    #: (``span.attrs["memo"] = "hit"``).  Shared and never read; its
    #: size is bounded by the set of attribute names in the codebase.
    attrs: dict = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """An in-memory Chrome-trace event buffer (thread-safe)."""

    def __init__(self, path: "str | Path", max_events: int = MAX_EVENTS):
        self.path = Path(path)
        self.max_events = max_events
        #: Only the process that created the tracer writes the file.
        self.owner_pid = os.getpid()
        self._lock = threading.Lock()
        self._events: list = []
        self._dropped = 0
        self._named_tids: set = set()
        self._t0 = time.perf_counter()

    # -- recording -------------------------------------------------------
    def now_us(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    def _append(self, event: dict, tid: int) -> None:
        with self._lock:
            if tid not in self._named_tids:
                self._named_tids.add(tid)
                self._events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": self.owner_pid,
                        "tid": tid,
                        "args": {"name": threading.current_thread().name},
                    }
                )
            if len(self._events) >= self.max_events:
                self._dropped += 1
                return
            self._events.append(event)

    def add_complete(
        self, name: str, start_us: float, dur_us: float, attrs: dict
    ) -> None:
        tid = threading.get_native_id()
        event = {
            "ph": "X",
            "name": name,
            "cat": "repro",
            "ts": start_us,
            "dur": dur_us,
            "pid": self.owner_pid,
            "tid": tid,
        }
        if attrs:
            event["args"] = attrs
        self._append(event, tid)

    def add_instant(self, name: str, attrs: dict) -> None:
        tid = threading.get_native_id()
        event = {
            "ph": "i",
            "name": name,
            "cat": "repro",
            "s": "t",
            "ts": self.now_us(),
            "pid": self.owner_pid,
            "tid": tid,
        }
        if attrs:
            event["args"] = attrs
        self._append(event, tid)

    # -- output ----------------------------------------------------------
    def event_count(self) -> int:
        with self._lock:
            return len(self._events)

    def write(self) -> Path:
        """Serialize the buffer to ``self.path`` (atomic rename)."""
        with self._lock:
            events = list(self._events)
            dropped = self._dropped
        document = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.obs",
                "droppedEvents": dropped,
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        # default=str: span attributes may carry arbitrary objects
        # (arith expressions, tuples); the trace degrades to their repr
        # instead of refusing to serialize.
        tmp.write_text(json.dumps(document, default=str))
        os.replace(tmp, self.path)
        return self.path


class _Span:
    """One live span (tracing enabled); emits on ``__exit__``."""

    __slots__ = ("_tracer", "name", "attrs", "_start_us")

    def __init__(self, tracer: Tracer, name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start_us = 0.0

    def __enter__(self) -> "_Span":
        self._start_us = self._tracer.now_us()
        return self

    def __exit__(self, *exc) -> bool:
        tracer = self._tracer
        tracer.add_complete(
            self.name, self._start_us, tracer.now_us() - self._start_us,
            self.attrs,
        )
        return False


class TimedSpan:
    """A span that *always* measures wall time (``.elapsed`` seconds),
    emitting a trace event only when tracing is active.

    This is the primitive for harness-level timings that must be
    reported whether or not a trace is being recorded (e.g. the
    benchsuite's ``explore_seconds``): one mechanism, one clock, and the
    number in the report is exactly the duration of the span in the
    trace."""

    __slots__ = ("name", "attrs", "elapsed", "_t0", "_tracer")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.elapsed = 0.0

    def __enter__(self) -> "TimedSpan":
        self._tracer = _ACTIVE
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.elapsed = time.perf_counter() - self._t0
        tracer = self._tracer
        if tracer is not None:
            end_us = tracer.now_us()
            tracer.add_complete(
                self.name, end_us - self.elapsed * 1e6, self.elapsed * 1e6,
                self.attrs,
            )
        return False


# ---------------------------------------------------------------------------
# module-level state and API
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None
_atexit_registered = False


def span(name: str, **attrs):
    """A context manager tracing ``name`` with the given attributes.

    Disabled fast path: with no active tracer this returns the shared
    no-op singleton without allocating."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return _Span(tracer, name, attrs)


def timed_span(name: str, **attrs) -> TimedSpan:
    """Like :func:`span` but always measures (see :class:`TimedSpan`)."""
    return TimedSpan(name, attrs)


def instant(name: str, **attrs) -> None:
    """Record a point-in-time event (no-op without an active tracer)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.add_instant(name, attrs)


def tracing_enabled() -> bool:
    return _ACTIVE is not None


def start_tracing(
    path: "str | Path", max_events: int = MAX_EVENTS
) -> Tracer:
    """Install a tracer writing to ``path``; returns it.

    A previously active tracer is flushed to its own path first.  The
    file itself is written by :func:`stop_tracing` or at process exit."""
    global _ACTIVE, _atexit_registered
    previous = _ACTIVE
    if previous is not None:
        if previous.path == Path(path):
            return previous
        _write_if_owner(previous)
    _ACTIVE = Tracer(path, max_events=max_events)
    if not _atexit_registered:
        _atexit_registered = True
        atexit.register(_atexit_write)
    return _ACTIVE


def stop_tracing() -> Optional[Path]:
    """Write and uninstall the active tracer; returns the written path
    (``None`` when tracing was not active or this is a forked child)."""
    global _ACTIVE
    tracer = _ACTIVE
    _ACTIVE = None
    if tracer is None:
        return None
    return _write_if_owner(tracer)


def _write_if_owner(tracer: Tracer) -> Optional[Path]:
    if tracer.owner_pid != os.getpid():
        return None  # forked child: the parent owns the file
    try:
        return tracer.write()
    except OSError:
        return None


def _atexit_write() -> None:
    tracer = _ACTIVE
    if tracer is not None:
        _write_if_owner(tracer)


# ``REPRO_TRACE`` auto-start: importing repro.obs (which every
# instrumented module does) is enough — pytest, the benchsuite and the
# examples all trace without code changes.
_env_path = os.environ.get(ENV_VAR)
if _env_path:
    start_tracing(_env_path)
del _env_path
