"""``repro.obs`` — zero-dependency observability: tracing, metrics,
kernel profiling.

Three parts (see ``src/repro/OBSERVABILITY.md`` for the full design):

* :mod:`repro.obs.trace` — nestable, thread-aware spans and instants
  emitting Chrome ``trace_event`` JSON (``REPRO_TRACE=<path>`` or
  ``benchsuite --trace``).
* :mod:`repro.obs.metrics` — process-global counters/gauges/histograms
  plus adapted views of the five existing stats objects, all merged by
  ``snapshot()`` (``benchsuite --metrics-json``).
* :mod:`repro.obs.profile` — per-barrier-segment timing and per-buffer
  traffic in the compiled/fused backends (``REPRO_PROFILE=1`` or
  ``benchsuite --profile``).
* :mod:`repro.obs.analysis` — attribution over the other instruments:
  cost-model calibration (Spearman/regret per workload), per-segment
  roofline classification, and service latency SLO tables
  (``benchsuite calibrate`` / ``report``).

This package is a *leaf*: it imports nothing from the rest of
``repro`` at module level, so every subsystem may import it freely.
Everything it does is out-of-band — enabling any part of it never
changes buffers, ``Counters``, or control flow.
"""

from __future__ import annotations

from . import analysis, metrics, profile, trace
from .adapters import (
    install_default_providers,
    register_cache_stats,
    register_calibration,
    register_counters,
    register_explore,
    register_fault_sites,
    register_ledger,
    register_profiler,
    register_service,
)
from .metrics import inc, observe, register_provider, set_gauge, snapshot
from .trace import (
    instant,
    span,
    start_tracing,
    stop_tracing,
    timed_span,
    tracing_enabled,
)

__all__ = [
    "trace",
    "metrics",
    "profile",
    "analysis",
    "span",
    "timed_span",
    "instant",
    "start_tracing",
    "stop_tracing",
    "tracing_enabled",
    "inc",
    "set_gauge",
    "observe",
    "snapshot",
    "register_provider",
    "register_counters",
    "register_cache_stats",
    "register_calibration",
    "register_explore",
    "register_ledger",
    "register_fault_sites",
    "register_profiler",
    "register_service",
    "install_default_providers",
]

install_default_providers()
