"""Adapters registering the existing stats objects as metrics providers.

Each of the five telemetry islands keeps its type and in-band role; the
adapter closes over the live object (or imports the process-global one
lazily) and registers an ``as_dict()`` view under a stable top-level
key in the metrics snapshot:

===============================  ==================  ==================
object                           registered by       snapshot key
===============================  ==================  ==================
``cache.CacheStats``             ``TuningCache``     ``cache``
``rewrite.explore.ExploreStats`` ``explore_program`` ``explore``
``backend.ledger.LEDGER``        default providers   ``ledger``
``faultinject`` site counts      default providers   ``faults``
``obs.profile`` profiler         default providers   ``profile``
``opencl.interp.Counters``       ``figure8`` runner  ``counters.kernel``
``resilience.FailureReport``     explorer failures   ``explore.failures``
``service.TuningService``        the service itself  ``service``
===============================  ==================  ==================

No module-level imports of the instrumented packages: adapters import
lazily inside the provider closure so ``repro.obs`` stays a leaf that
anything may import without cycles.
"""

from __future__ import annotations

from . import metrics

__all__ = [
    "register_counters",
    "register_cache_stats",
    "register_explore",
    "register_ledger",
    "register_fault_sites",
    "register_profiler",
    "register_calibration",
    "register_service",
    "install_default_providers",
]


def register_counters(counters, key: str = "counters.kernel") -> None:
    """Expose an :class:`~repro.opencl.interp.Counters` instance."""
    metrics.register_provider(key, counters.as_dict)


def register_cache_stats(stats) -> None:
    """Expose a :class:`~repro.cache.CacheStats` with derived hit rates."""

    def view() -> dict:
        doc = stats.as_dict()
        doc["kernel_hit_rate"] = stats.kernel_hit_rate()
        doc["run_hit_rate"] = stats.run_hit_rate()
        return doc

    metrics.register_provider("cache", view)


def register_explore(stats, failures=()) -> None:
    """Expose the last exploration's stats and failure taxonomy."""
    reports = list(failures)

    def view() -> dict:
        return {
            "stats": stats.as_dict(),
            "failures": [f.as_dict() for f in reports],
        }

    metrics.register_provider("explore", view)


def register_ledger(ledger=None) -> None:
    """Expose a :class:`~repro.backend.ledger.DegradationLedger`
    (default: the process-global one)."""

    def view() -> dict:
        if ledger is not None:
            return ledger.as_dict()
        from repro.backend import ledger as mod

        return mod.LEDGER.as_dict()

    metrics.register_provider("ledger", view)


def register_fault_sites() -> None:
    """Expose :mod:`repro.faultinject` per-site check/inject counts."""

    def view() -> dict:
        from repro import faultinject

        plan = faultinject.active_plan()
        return {
            "plan": plan.describe() if plan is not None else None,
            "sites": {
                site: {
                    "checks": c.checks,
                    "injected": c.injected,
                    "recovered": c.recovered,
                    "escaped": c.escaped,
                }
                for site, c in faultinject.counts().items()
            },
        }

    metrics.register_provider("faults", view)


def register_profiler() -> None:
    from . import profile

    metrics.register_provider("profile", profile.as_dict)


def register_calibration() -> None:
    """Expose the explorer's cost-model calibration log
    (:data:`repro.obs.analysis.LOG`)."""
    from . import analysis

    metrics.register_provider("calibration", analysis.LOG.as_dict)


def register_service(view) -> None:
    """Expose a :class:`~repro.service.daemon.TuningService` view
    (stats, queue depth/capacity, breaker states, journal backlog)."""
    metrics.register_provider("service", view)


def install_default_providers() -> None:
    """Register the providers that always have a process-global source.

    Called once from ``repro.obs.__init__``.  Object-scoped providers
    (cache, explore, counters) register when their objects are built;
    empty placeholders keep the snapshot schema stable before that."""
    register_ledger()
    register_fault_sites()
    register_profiler()
    register_calibration()
    metrics.register_provider(
        "cache", lambda: {"active": False}, replace=False
    )
    metrics.register_provider(
        "explore",
        lambda: {"stats": {}, "failures": []},
        replace=False,
    )
    metrics.register_provider(
        "service", lambda: {"active": False}, replace=False
    )
