"""Process-wide metrics registry: counters, gauges, histograms, and
adapted stats providers, all merged into one ``snapshot()`` document.

The pipeline grew five telemetry islands (interp ``Counters``, cache
``CacheStats``, explorer ``ExploreStats``, backend ``DegradationLedger``,
resilience ``FailureReport``), each with bespoke printing.  The registry
does not replace them — they keep their types and in-band semantics —
it *adapts* them: each registers a provider callable returning its
``as_dict()`` view, and :func:`snapshot` merges every provider with the
registry's own primitives into a single JSON-serializable dict.  That
is what ``benchsuite --metrics-json`` dumps.

Snapshot layout::

    {
      "counters":   {"launch.total": 12, "launch.served.fused": 12, ...},
      "gauges":     {...},
      "histograms": {"explore.level_width": {"count": 3, "total": ...}},
      "cache":      {...CacheStats...},
      "explore":    {"stats": {...}, "failures": [...]},
      "ledger":     {...DegradationLedger...},
      "faults":     {"sites": {...}, "plan": ...},
      "profile":    {...KernelProfiler...},
      "counters.kernel": {...interp Counters of the last launch...},
    }

Providers are evaluated lazily at snapshot time; a provider that raises
contributes ``{"error": ...}`` rather than poisoning the document.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

__all__ = [
    "MetricsRegistry",
    "REGISTRY",
    "inc",
    "set_gauge",
    "observe",
    "register_provider",
    "unregister_provider",
    "provider",
    "snapshot",
    "reset",
]

#: Top-level keys owned by the registry itself; providers may not
#: shadow them.
_RESERVED = ("counters", "gauges", "histograms")


class MetricsRegistry:
    """Thread-safe named counters/gauges/histograms plus providers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        # name -> [count, total, min, max]
        self._hists: Dict[str, list] = {}
        self._providers: Dict[str, Callable[[], object]] = {}

    # -- primitives ------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            h = self._hists.get(name)
            if h is None:
                self._hists[name] = [1, value, value, value]
            else:
                h[0] += 1
                h[1] += value
                if value < h[2]:
                    h[2] = value
                if value > h[3]:
                    h[3] = value

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    # -- providers -------------------------------------------------------
    def register_provider(
        self, name: str, fn: Callable[[], object], replace: bool = True
    ) -> None:
        """Attach a stats source under the top-level key ``name``.

        Re-registering under the same name replaces the previous
        provider by default — e.g. each new :class:`~repro.cache.TuningCache`
        owns the ``"cache"`` slot — pass ``replace=False`` to keep the
        first registration instead."""
        if name in _RESERVED:
            raise ValueError(f"provider name {name!r} is reserved")
        with self._lock:
            if not replace and name in self._providers:
                return
            self._providers[name] = fn

    def unregister_provider(self, name: str) -> None:
        with self._lock:
            self._providers.pop(name, None)

    def provider(self, name: str) -> Optional[Callable[[], object]]:
        """The currently registered source for ``name`` (``None`` when
        unregistered) — lets a replacing owner save and restore it."""
        with self._lock:
            return self._providers.get(name)

    # -- snapshot --------------------------------------------------------
    def snapshot(self) -> dict:
        """One JSON-serializable document with everything in it."""
        with self._lock:
            doc: dict = {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: {
                        "count": h[0],
                        "total": h[1],
                        "min": h[2],
                        "max": h[3],
                        "mean": h[1] / h[0],
                    }
                    for name, h in self._hists.items()
                },
            }
            providers = list(self._providers.items())
        for name, fn in providers:
            try:
                doc[name] = fn()
            except Exception as exc:  # snapshot must never fail whole
                doc[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return doc

    def reset(self) -> None:
        """Clear primitives and providers (tests)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()
            self._providers.clear()


#: The process-global registry used by all instrumentation.
REGISTRY = MetricsRegistry()


def inc(name: str, n: int = 1) -> None:
    REGISTRY.inc(name, n)


def set_gauge(name: str, value: float) -> None:
    REGISTRY.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    REGISTRY.observe(name, value)


def register_provider(
    name: str, fn: Callable[[], object], replace: bool = True
) -> None:
    REGISTRY.register_provider(name, fn, replace=replace)


def unregister_provider(name: str) -> None:
    REGISTRY.unregister_provider(name)


def provider(name: str) -> Optional[Callable[[], object]]:
    return REGISTRY.provider(name)


def snapshot() -> dict:
    return REGISTRY.snapshot()


def reset() -> None:
    REGISTRY.reset()
