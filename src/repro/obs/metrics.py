"""Process-wide metrics registry: counters, gauges, histograms, and
adapted stats providers, all merged into one ``snapshot()`` document.

The pipeline grew five telemetry islands (interp ``Counters``, cache
``CacheStats``, explorer ``ExploreStats``, backend ``DegradationLedger``,
resilience ``FailureReport``), each with bespoke printing.  The registry
does not replace them — they keep their types and in-band semantics —
it *adapts* them: each registers a provider callable returning its
``as_dict()`` view, and :func:`snapshot` merges every provider with the
registry's own primitives into a single JSON-serializable dict.  That
is what ``benchsuite --metrics-json`` dumps.

Snapshot layout::

    {
      "counters":   {"launch.total": 12, "launch.served.fused": 12, ...},
      "gauges":     {...},
      "histograms": {"explore.level_width": {"count": 3, "total": ...,
                      "min": ..., "max": ..., "mean": ...,
                      "p50": ..., "p95": ..., "p99": ...}},
      "cache":      {...CacheStats...},
      "explore":    {"stats": {...}, "failures": [...]},
      "ledger":     {...DegradationLedger...},
      "faults":     {"sites": {...}, "plan": ...},
      "profile":    {...KernelProfiler...},
      "counters.kernel": {...interp Counters of the last launch...},
    }

Providers are evaluated lazily at snapshot time; a provider that raises
contributes ``{"error": ...}`` rather than poisoning the document.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

__all__ = [
    "MetricsRegistry",
    "REGISTRY",
    "QUANTILES",
    "inc",
    "set_gauge",
    "observe",
    "register_provider",
    "unregister_provider",
    "provider",
    "snapshot",
    "reset",
]

#: Top-level keys owned by the registry itself; providers may not
#: shadow them.
_RESERVED = ("counters", "gauges", "histograms")

#: The quantiles every histogram estimates (snapshot keys ``p50``,
#: ``p95``, ``p99``).
QUANTILES = (0.50, 0.95, 0.99)


class _P2Quantile:
    """Jain & Chlamtáč's P² streaming quantile estimator.

    Five markers track (min, q/2, q, (1+q)/2, max); each observation
    adjusts marker heights by a piecewise-parabolic formula.  Memory is
    O(1) per quantile regardless of stream length, and the algorithm is
    fully deterministic — the same observation sequence always yields
    the same estimate, which is what lets tests and CI assert on it.
    For fewer than five observations the estimate is the exact
    (linearly interpolated) sample quantile.
    """

    __slots__ = ("q", "n", "heights", "positions", "desired", "rates")

    def __init__(self, q: float) -> None:
        self.q = q
        self.n = 0
        self.heights: list = []
        self.positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self.desired = [1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0]
        self.rates = (0.0, q / 2, q, (1 + q) / 2, 1.0)

    def add(self, x: float) -> None:
        self.n += 1
        h = self.heights
        if len(h) < 5:
            h.append(x)
            h.sort()
            return
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while x >= h[k + 1]:
                k += 1
        pos = self.positions
        for i in range(k + 1, 5):
            pos[i] += 1.0
        desired = self.desired
        for i in range(5):
            desired[i] += self.rates[i]
        for i in (1, 2, 3):
            d = desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                sign = 1.0 if d > 0 else -1.0
                new = self._parabolic(i, sign)
                if not (h[i - 1] < new < h[i + 1]):
                    # Parabolic estimate escaped the bracket: fall back
                    # to linear interpolation toward the neighbour.
                    j = i + int(sign)
                    new = h[i] + sign * (h[j] - h[i]) / (pos[j] - pos[i])
                h[i] = new
                pos[i] += sign

    def _parabolic(self, i: int, d: float) -> float:
        h, pos = self.heights, self.positions
        return h[i] + d / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + d)
            * (h[i + 1] - h[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - d)
            * (h[i] - h[i - 1])
            / (pos[i] - pos[i - 1])
        )

    def value(self) -> float:
        h = self.heights
        if not h:
            return 0.0
        if len(h) < 5:
            # Exact interpolated sample quantile over what we have.
            idx = self.q * (len(h) - 1)
            lo = int(idx)
            hi = min(lo + 1, len(h) - 1)
            return h[lo] + (idx - lo) * (h[hi] - h[lo])
        return h[2]


class MetricsRegistry:
    """Thread-safe named counters/gauges/histograms plus providers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        # name -> [count, total, min, max, (quantile estimators)]
        self._hists: Dict[str, list] = {}
        self._providers: Dict[str, Callable[[], object]] = {}

    # -- primitives ------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            h = self._hists.get(name)
            if h is None:
                h = [
                    0, 0.0, value, value,
                    tuple(_P2Quantile(q) for q in QUANTILES),
                ]
                self._hists[name] = h
            h[0] += 1
            h[1] += value
            if value < h[2]:
                h[2] = value
            if value > h[3]:
                h[3] = value
            for est in h[4]:
                est.add(value)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    # -- providers -------------------------------------------------------
    def register_provider(
        self, name: str, fn: Callable[[], object], replace: bool = True
    ) -> None:
        """Attach a stats source under the top-level key ``name``.

        Re-registering under the same name replaces the previous
        provider by default — e.g. each new :class:`~repro.cache.TuningCache`
        owns the ``"cache"`` slot — pass ``replace=False`` to keep the
        first registration instead."""
        if name in _RESERVED:
            raise ValueError(f"provider name {name!r} is reserved")
        with self._lock:
            if not replace and name in self._providers:
                return
            self._providers[name] = fn

    def unregister_provider(self, name: str) -> None:
        with self._lock:
            self._providers.pop(name, None)

    def provider(self, name: str) -> Optional[Callable[[], object]]:
        """The currently registered source for ``name`` (``None`` when
        unregistered) — lets a replacing owner save and restore it."""
        with self._lock:
            return self._providers.get(name)

    # -- snapshot --------------------------------------------------------
    def snapshot(self) -> dict:
        """One JSON-serializable document with everything in it."""
        with self._lock:
            doc: dict = {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: {
                        "count": h[0],
                        "total": h[1],
                        "min": h[2],
                        "max": h[3],
                        "mean": h[1] / h[0],
                        **{
                            f"p{int(est.q * 100)}": est.value()
                            for est in h[4]
                        },
                    }
                    for name, h in self._hists.items()
                },
            }
            providers = list(self._providers.items())
        for name, fn in providers:
            try:
                doc[name] = fn()
            except Exception as exc:  # snapshot must never fail whole
                doc[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return doc

    def reset(self) -> None:
        """Clear primitives and providers (tests)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()
            self._providers.clear()


#: The process-global registry used by all instrumentation.
REGISTRY = MetricsRegistry()


def inc(name: str, n: int = 1) -> None:
    REGISTRY.inc(name, n)


def set_gauge(name: str, value: float) -> None:
    REGISTRY.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    REGISTRY.observe(name, value)


def register_provider(
    name: str, fn: Callable[[], object], replace: bool = True
) -> None:
    REGISTRY.register_provider(name, fn, replace=replace)


def unregister_provider(name: str) -> None:
    REGISTRY.unregister_provider(name)


def provider(name: str) -> Optional[Callable[[], object]]:
    return REGISTRY.provider(name)


def snapshot() -> dict:
    return REGISTRY.snapshot()


def reset() -> None:
    REGISTRY.reset()
