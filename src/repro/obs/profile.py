"""Kernel profiler: per-barrier-segment timing and per-buffer traffic.

The compiled and fused backends execute a kernel as a pipeline of
barrier-delimited segments; the profiler attributes wall time to each
segment and load/store traffic to each named kernel buffer, producing
the benchsuite's ``profile`` table (top-N segments by time).  It exists
to answer "which barrier segment dominates the fused backend's
runtime?" — the question driving the ROADMAP's fused-algebra work.

Profiling is **opt-in** (``REPRO_PROFILE=1`` or ``benchsuite
--profile``) because per-segment timing necessarily adds clock reads
inside the launch loop.  Like tracing, it is out-of-band: it observes
the same load/store events the in-band ``Counters`` already count, so
enabling it cannot change buffers or Counters.

Hot-path contract: every hook site checks the module-level ``ACTIVE``
slot first; disabled cost is one attribute load per launch/segment,
zero per element.

Buffer attribution: arrays are only identifiable by ``id()`` inside the
simulator, so the profiler keeps a per-thread ``{id(array): name}`` map
seeded from the kernel's argument environment at launch.  The map is
reset at every ``begin_launch`` — ``id()`` values of freed arrays may
be reused, and a stale map would silently mis-attribute traffic.
"""

from __future__ import annotations

import os
import threading
from typing import Optional

__all__ = [
    "KernelProfiler",
    "ACTIVE",
    "enable",
    "disable",
    "enabled",
    "as_dict",
    "format_table",
]

ENV_VAR = "REPRO_PROFILE"


class _LaunchCtx(threading.local):
    def __init__(self) -> None:
        self.kernel: Optional[str] = None
        self.names: dict = {}


class KernelProfiler:
    """Aggregates segment timings and buffer traffic across launches."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # (kernel, segment_index, kind) -> [calls, seconds]
        self._segments: dict = {}
        # (kernel, buffer_name, space) -> [loads, cached_loads, stores]
        self._traffic: dict = {}
        # (kernel, segment_index, kind) -> {counter_name: delta_sum}
        # Out-of-band snapshots of the in-band Counters taken around
        # each segment by the profiled execution paths; this is what
        # roofline attribution reads its per-segment flops/bytes from.
        self._segment_counters: dict = {}
        self._ctx = _LaunchCtx()

    # -- launch context --------------------------------------------------
    def begin_launch(self, kernel: str) -> None:
        ctx = self._ctx
        ctx.kernel = kernel
        ctx.names = {}

    def map_buffer(self, array, name: str) -> None:
        self._ctx.names[id(array)] = name

    # -- recording -------------------------------------------------------
    def record_segment(self, index: int, kind: str, seconds: float) -> None:
        key = (self._ctx.kernel or "?", index, kind)
        with self._lock:
            cell = self._segments.get(key)
            if cell is None:
                self._segments[key] = [1, seconds]
            else:
                cell[0] += 1
                cell[1] += seconds

    def record_segment_counters(
        self, index: int, kind: str, deltas: dict
    ) -> None:
        """Accumulate a per-segment snapshot of Counters deltas.

        ``deltas`` maps counter field names (``flops``,
        ``global_loads``, ...) to the amount this segment execution
        added; zero entries may be omitted by the caller."""
        key = (self._ctx.kernel or "?", index, kind)
        with self._lock:
            cell = self._segment_counters.get(key)
            if cell is None:
                self._segment_counters[key] = dict(deltas)
            else:
                for name, delta in deltas.items():
                    cell[name] = cell.get(name, 0) + delta

    def record_loads(
        self, array, space: str, fresh: int, cached: int
    ) -> None:
        ctx = self._ctx
        key = (
            ctx.kernel or "?",
            ctx.names.get(id(array), "<anon>"),
            space,
        )
        with self._lock:
            cell = self._traffic.get(key)
            if cell is None:
                self._traffic[key] = [fresh, cached, 0]
            else:
                cell[0] += fresh
                cell[1] += cached

    def record_stores(self, array, space: str, count: int) -> None:
        ctx = self._ctx
        key = (
            ctx.kernel or "?",
            ctx.names.get(id(array), "<anon>"),
            space,
        )
        with self._lock:
            cell = self._traffic.get(key)
            if cell is None:
                self._traffic[key] = [0, 0, count]
            else:
                cell[2] += count

    # -- views -----------------------------------------------------------
    def as_dict(self) -> dict:
        with self._lock:
            segments = [
                {
                    "kernel": kernel,
                    "segment": index,
                    "kind": kind,
                    "calls": calls,
                    "seconds": seconds,
                    "counters": dict(
                        self._segment_counters.get(
                            (kernel, index, kind), {}
                        )
                    ),
                }
                for (kernel, index, kind), (calls, seconds)
                in self._segments.items()
            ]
            traffic = [
                {
                    "kernel": kernel,
                    "buffer": buffer,
                    "space": space,
                    "loads": loads,
                    "cached_loads": cached,
                    "stores": stores,
                }
                for (kernel, buffer, space), (loads, cached, stores)
                in self._traffic.items()
            ]
        segments.sort(key=lambda s: -s["seconds"])
        traffic.sort(key=lambda t: -(t["loads"] + t["stores"]))
        return {"segments": segments, "traffic": traffic}

    def format_table(self, top: int = 10) -> str:
        """The benchsuite's ``profile`` table (top-N segments by time)."""
        data = self.as_dict()
        lines = ["kernel profile (top segments by wall time):"]
        if not data["segments"]:
            lines.append("  (no profiled launches)")
        for s in data["segments"][:top]:
            lines.append(
                f"  {s['kernel']:<24} seg {s['segment']:<2} "
                f"{s['kind']:<8} {s['calls']:>6} calls "
                f"{s['seconds'] * 1e3:>9.3f} ms"
            )
        if data["traffic"]:
            lines.append("buffer traffic (loads+cached/stores):")
            for t in data["traffic"][:top]:
                lines.append(
                    f"  {t['kernel']:<24} {t['buffer']:<12} "
                    f"{t['space']:<8} {t['loads']:>10}+{t['cached_loads']:<10} "
                    f"/ {t['stores']:>10}"
                )
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._segments.clear()
            self._traffic.clear()
            self._segment_counters.clear()


#: Module-level hot-path gate: ``None`` means profiling is off.
ACTIVE: Optional[KernelProfiler] = None


def enable() -> KernelProfiler:
    global ACTIVE
    if ACTIVE is None:
        ACTIVE = KernelProfiler()
    return ACTIVE


def disable() -> None:
    global ACTIVE
    ACTIVE = None


def enabled() -> bool:
    return ACTIVE is not None


def as_dict() -> dict:
    """Provider view for the metrics registry."""
    if ACTIVE is None:
        return {"enabled": False, "segments": [], "traffic": []}
    doc = ACTIVE.as_dict()
    doc["enabled"] = True
    return doc


def format_table(top: int = 10) -> str:
    if ACTIVE is None:
        return "kernel profile: disabled (set REPRO_PROFILE=1 or --profile)"
    return ACTIVE.format_table(top)


if os.environ.get(ENV_VAR):
    enable()
