"""Performance attribution: cost-model calibration, roofline analysis,
and service latency SLOs.

The paper's claim is that performance comes from *choosing the right
rewrite*, which the explorer does by ranking candidates with the cost
model — so the model itself needs an instrument.  Three analyses share
this module because they answer the same question at three levels:

* **Calibration** (:class:`CalibrationLog`): does the pre-execution
  prediction (``static_program_cost``) rank candidates the way the
  measured-counter model (``estimate_runtime``) does?  Every candidate
  the explorer evaluates is recorded as ``(structural hash, derivation
  trace, static cost, modeled runtime, measured cycles, wall seconds)``
  and summarized per workload as Spearman rank correlation, top-1/top-5
  regret, and scale-aligned residuals.  CI gates on the correlation
  floor (``benchmarks/check_perf_regression.py --calibration-json``).

* **Roofline attribution** (:func:`roofline_segments`): which barrier
  segment is memory-bound and which compute-bound?  Reads the kernel
  profiler's per-segment counter deltas (flops from ``Counters``, load
  events and stores from the traffic accounting) and positions each
  segment's arithmetic intensity against the
  :class:`~repro.opencl.cost.DeviceProfile` compute/bandwidth peaks.

* **Service SLOs** (:func:`slo_table`): end-to-end latency and queue
  wait per request class (warm-hit / coalesced-follower / cold), read
  from the metrics registry's quantile histograms.

Everything here is out-of-band: analyses only *read* counters, profiler
aggregates, and histograms; recording a calibration tuple appends to a
bounded in-memory list.  Nothing feeds back into execution.
"""

from __future__ import annotations

import hashlib
import math
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CalibrationRecord",
    "CalibrationLog",
    "LOG",
    "record_candidate",
    "calibration_summary",
    "format_calibration",
    "spearman",
    "topk_regret",
    "short_hash",
    "roofline_segments",
    "format_roofline",
    "REQUEST_CLASSES",
    "slo_table",
    "format_slo",
]


def short_hash(canonical_text: str) -> str:
    """Stable short digest of a canonical program form — the join key
    between calibration records, trace span args, and cache keys."""
    return hashlib.sha1(canonical_text.encode()).hexdigest()[:12]


# ---------------------------------------------------------------------------
# rank statistics
# ---------------------------------------------------------------------------

def _average_ranks(values: Sequence[float]) -> List[float]:
    """Ranks (1-based) with ties sharing their average rank."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while (
            j + 1 < len(order)
            and values[order[j + 1]] == values[order[i]]
        ):
            j += 1
        avg = (i + j) / 2 + 1  # 1-based average of tied positions
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> Optional[float]:
    """Spearman rank correlation with average-rank tie handling.

    ``None`` when undefined: fewer than two pairs, or either side is
    constant (zero rank variance)."""
    if len(xs) != len(ys):
        raise ValueError("spearman needs paired sequences")
    n = len(xs)
    if n < 2:
        return None
    rx = _average_ranks(xs)
    ry = _average_ranks(ys)
    mx = sum(rx) / n
    my = sum(ry) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    vx = sum((a - mx) ** 2 for a in rx)
    vy = sum((b - my) ** 2 for b in ry)
    if vx == 0.0 or vy == 0.0:
        return None
    return cov / math.sqrt(vx * vy)


def topk_regret(
    predicted: Sequence[float], measured: Sequence[float], k: int
) -> Optional[float]:
    """How much slower is the best of the model's top-*k* picks than the
    true best?  0.0 means the model's shortlist contains the winner;
    0.25 means trusting the model costs 25% runtime.  ``None`` when
    empty or the true best is non-positive."""
    if len(predicted) != len(measured):
        raise ValueError("topk_regret needs paired sequences")
    if not predicted:
        return None
    order = sorted(range(len(predicted)), key=lambda i: predicted[i])
    shortlist = order[: max(1, k)]
    best_of_picks = min(measured[i] for i in shortlist)
    best = min(measured)
    if best <= 0:
        return None
    return best_of_picks / best - 1.0


# ---------------------------------------------------------------------------
# calibration log
# ---------------------------------------------------------------------------

@dataclass
class CalibrationRecord:
    """One evaluated candidate: prediction next to measurement."""

    workload: str
    label: str
    structural_hash: str
    trace: Tuple[str, ...]
    #: Pre-execution prediction (:func:`~repro.opencl.cost.
    #: static_program_cost`) — what the explorer pruned and ranked by
    #: *before* paying for compilation.
    static_cost: float
    #: The measured-counter model's runtime estimate
    #: (:func:`~repro.opencl.cost.estimate_runtime`) — the quantity the
    #: final ranking uses, and calibration's ground truth.
    modeled_runtime: float
    #: Weighted cycle total over measured Counters.
    measured_cycles: float
    #: Wall-clock seconds of this candidate's evaluation (simulation
    #: time, not device time); ``None`` when served from the cycle cache.
    wall_seconds: Optional[float] = None

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "label": self.label,
            "structural_hash": self.structural_hash,
            "trace": list(self.trace),
            "static_cost": self.static_cost,
            "modeled_runtime": self.modeled_runtime,
            "measured_cycles": self.measured_cycles,
            "wall_seconds": self.wall_seconds,
        }


class CalibrationLog:
    """Thread-safe, bounded, per-workload log of calibration records.

    The explorer appends one record per successfully evaluated
    candidate; :meth:`summary` computes the per-workload statistics the
    ``benchsuite calibrate`` command prints and CI gates on."""

    #: Per-workload record cap (drop-oldest) so a long-lived tuning
    #: service cannot grow the log without bound.
    MAX_RECORDS = 512

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: Dict[str, List[CalibrationRecord]] = {}

    def record(self, rec: CalibrationRecord) -> None:
        with self._lock:
            bucket = self._records.setdefault(rec.workload, [])
            bucket.append(rec)
            if len(bucket) > self.MAX_RECORDS:
                del bucket[0]

    def records(self, workload: Optional[str] = None) -> List[CalibrationRecord]:
        with self._lock:
            if workload is not None:
                return list(self._records.get(workload, ()))
            return [r for bucket in self._records.values() for r in bucket]

    def workloads(self) -> List[str]:
        with self._lock:
            return sorted(self._records)

    def reset(self) -> None:
        with self._lock:
            self._records.clear()

    # -- statistics ------------------------------------------------------
    def summary(self, workload: str) -> dict:
        """Calibration statistics for one workload's candidate menu."""
        recs = self.records(workload)
        n = len(recs)
        if n == 0:
            return {
                "candidates": 0,
                "spearman": None,
                "top1_regret": None,
                "top5_regret": None,
                "residual_rms": None,
            }
        preds = [r.static_cost for r in recs]
        meas = [r.modeled_runtime for r in recs]
        return {
            "candidates": n,
            "spearman": spearman(preds, meas),
            "top1_regret": topk_regret(preds, meas, 1),
            "top5_regret": topk_regret(preds, meas, 5),
            "residual_rms": self._residual_rms(preds, meas),
        }

    @staticmethod
    def _residual_rms(preds: Sequence[float], meas: Sequence[float]):
        """RMS of log-residuals after scale alignment.

        Static cost and modeled runtime live on different scales (only
        ordering is meaningful), so residuals are computed on
        ``log(measured) - log(scale * predicted)`` with ``scale`` the
        geometric-mean ratio — i.e. how far each candidate deviates
        from the best monotone scaling, in log space."""
        pairs = [
            (p, m) for p, m in zip(preds, meas) if p > 0 and m > 0
        ]
        if not pairs:
            return None
        logs = [math.log(m) - math.log(p) for p, m in pairs]
        shift = sum(logs) / len(logs)  # log of the geometric-mean ratio
        return math.sqrt(
            sum((x - shift) ** 2 for x in logs) / len(logs)
        )

    def as_dict(self) -> dict:
        """Provider view for the metrics snapshot (``"calibration"``)."""
        workloads = self.workloads()
        return {
            "workloads": {w: self.summary(w) for w in workloads},
            "records": [r.as_dict() for r in self.records()],
        }


#: The process-global calibration log the explorer records into.
LOG = CalibrationLog()


def record_candidate(
    workload: str,
    label: str,
    canonical_text: str,
    trace: Tuple[str, ...],
    static_cost: float,
    modeled_runtime: float,
    measured_cycles: float,
    wall_seconds: Optional[float] = None,
) -> None:
    """Convenience wrapper used by the explorer's evaluation loop."""
    LOG.record(
        CalibrationRecord(
            workload=workload,
            label=label,
            structural_hash=short_hash(canonical_text),
            trace=tuple(trace),
            static_cost=static_cost,
            modeled_runtime=modeled_runtime,
            measured_cycles=measured_cycles,
            wall_seconds=wall_seconds,
        )
    )


def calibration_summary() -> dict:
    return LOG.as_dict()


def format_calibration(doc: Optional[dict] = None) -> str:
    """The ``benchsuite calibrate`` table."""
    if doc is None:
        doc = LOG.as_dict()
    workloads = doc.get("workloads", {})
    lines = [
        "cost-model calibration (static prediction vs measured-counter "
        "runtime):",
        f"  {'workload':<12} {'cands':>5} {'spearman':>9} "
        f"{'top1-regret':>12} {'top5-regret':>12} {'resid-rms':>10}",
    ]
    if not workloads:
        lines.append("  (no calibration records)")
        return "\n".join(lines)

    def fmt(v, pct=False):
        if v is None:
            return "n/a"
        return f"{v * 100:.1f}%" if pct else f"{v:.3f}"

    for name in sorted(workloads):
        s = workloads[name]
        lines.append(
            f"  {name:<12} {s['candidates']:>5} {fmt(s['spearman']):>9} "
            f"{fmt(s['top1_regret'], pct=True):>12} "
            f"{fmt(s['top5_regret'], pct=True):>12} "
            f"{fmt(s['residual_rms']):>10}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# roofline attribution
# ---------------------------------------------------------------------------

#: Nominal bytes per element access.  The paper's kernels are
#: single-precision float; the simulator counts element accesses, not
#: bytes, so the roofline prices each at four bytes.
BYTES_PER_ELEMENT = 4


def roofline_segments(
    device: object = "nvidia", profile_doc: Optional[dict] = None
) -> List[dict]:
    """Per-barrier-segment roofline positions from the kernel profiler.

    For every profiled segment with counter deltas, compute arithmetic
    intensity (flops per byte of load/store traffic) and classify it
    against the device's ridge point.  ``device`` is a
    :class:`~repro.opencl.cost.DeviceProfile` or a name in
    ``repro.opencl.cost.DEVICES``.

    The byte figure counts *traffic* (load events plus stores, all
    address spaces), not distinct DRAM lines — per-segment load dedup
    is settled only at launch end (see ``_Block._flush_load_log``), so
    intensity here is a lower bound.  A segment classified
    compute-bound on traffic bytes is compute-bound a fortiori.
    """
    from repro.opencl.cost import DEVICES, DeviceProfile

    if not isinstance(device, DeviceProfile):
        device = DEVICES[str(device)]
    if profile_doc is None:
        from repro.obs import profile as profile_mod

        profile_doc = profile_mod.as_dict()
    ridge = device.ridge_point()
    rows = []
    for seg in profile_doc.get("segments", ()):
        c = seg.get("counters") or {}
        flops = c.get("flops", 0)
        traffic = (
            c.get("load_events", 0)
            + c.get("global_stores", 0)
            + c.get("local_stores", 0)
            + c.get("private_loads", 0)
            + c.get("private_stores", 0)
        )
        nbytes = traffic * BYTES_PER_ELEMENT
        intensity = flops / nbytes if nbytes else None
        if intensity is None:
            bound = "unknown" if not flops else "compute"
        else:
            bound = "memory" if intensity < ridge else "compute"
        rows.append(
            {
                "kernel": seg["kernel"],
                "segment": seg["segment"],
                "kind": seg["kind"],
                "calls": seg["calls"],
                "seconds": seg["seconds"],
                "flops": flops,
                "bytes": nbytes,
                "intensity": intensity,
                "ridge": ridge,
                "bound": bound,
            }
        )
    rows.sort(key=lambda r: -r["seconds"])
    return rows


def format_roofline(
    rows: Optional[List[dict]] = None,
    device: object = "nvidia",
    top: int = 12,
) -> str:
    """Attribution table: which segment sits where on the roofline."""
    from repro.opencl.cost import DEVICES, DeviceProfile

    if not isinstance(device, DeviceProfile):
        device = DEVICES[str(device)]
    if rows is None:
        rows = roofline_segments(device)
    lines = [
        f"roofline attribution ({device.name}, "
        f"ridge {device.ridge_point():.1f} flop/byte):",
        f"  {'kernel':<24} {'seg':>3} {'kind':<8} {'flops':>10} "
        f"{'bytes':>10} {'flop/byte':>9}  bound",
    ]
    if not rows:
        lines.append("  (no profiled segments — run with --profile)")
        return "\n".join(lines)
    for r in rows[:top]:
        ai = "n/a" if r["intensity"] is None else f"{r['intensity']:.2f}"
        lines.append(
            f"  {r['kernel']:<24} {r['segment']:>3} {r['kind']:<8} "
            f"{r['flops']:>10} {r['bytes']:>10} {ai:>9}  {r['bound']}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# service latency SLOs
# ---------------------------------------------------------------------------

#: The tuning service's request classes, in the order the SLO table
#: prints them.  warm_hit: served from cache synchronously at submit;
#: coalesced: follower of an identical in-flight request; cold: full
#: queue → compile/tune → complete path.
REQUEST_CLASSES = ("warm_hit", "coalesced", "cold")


def slo_table(snapshot: Optional[dict] = None) -> List[dict]:
    """Latency/queue-wait quantiles per request class, in milliseconds.

    Reads ``service.latency.<class>`` and ``service.queue_wait.<class>``
    histograms from a metrics snapshot (default: the live registry).
    Only classes that were actually observed produce rows."""
    if snapshot is None:
        from repro.obs import metrics as metrics_mod

        snapshot = metrics_mod.snapshot()
    hists = snapshot.get("histograms", {})
    rows = []
    for cls in REQUEST_CLASSES:
        h = hists.get(f"service.latency.{cls}")
        if not h:
            continue
        qw = hists.get(f"service.queue_wait.{cls}") or {}
        rows.append(
            {
                "class": cls,
                "count": h["count"],
                "p50_ms": h["p50"] * 1e3,
                "p95_ms": h["p95"] * 1e3,
                "p99_ms": h["p99"] * 1e3,
                "max_ms": h["max"] * 1e3,
                "queue_wait_p95_ms": (
                    qw["p95"] * 1e3 if "p95" in qw else None
                ),
            }
        )
    return rows


def format_slo(rows: Optional[List[dict]] = None) -> str:
    """The ``benchsuite hammer`` SLO table."""
    if rows is None:
        rows = slo_table()
    lines = [
        "service latency SLOs (end-to-end, per request class):",
        f"  {'class':<12} {'count':>6} {'p50':>9} {'p95':>9} "
        f"{'p99':>9} {'max':>9} {'queue p95':>10}",
    ]
    if not rows:
        lines.append("  (no service requests observed)")
        return "\n".join(lines)
    for r in rows:
        qw = (
            "n/a" if r["queue_wait_p95_ms"] is None
            else f"{r['queue_wait_p95_ms']:.2f}ms"
        )
        lines.append(
            f"  {r['class']:<12} {r['count']:>6} {r['p50_ms']:>7.2f}ms "
            f"{r['p95_ms']:>7.2f}ms {r['p99_ms']:>7.2f}ms "
            f"{r['max_ms']:>7.2f}ms {qw:>10}"
        )
    return "\n".join(lines)
