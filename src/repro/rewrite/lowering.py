"""Deterministic lowering recipes: high-level IL -> low-level IL.

The paper's prior work searches the rewrite space automatically; the
evaluation here (like the paper's artifact) uses fixed, per-benchmark
lowering decisions.  Since the mapping layer landed these are thin
wrappers over :mod:`repro.rewrite.mapping` strategies:

* :func:`lower_to_global` — outermost ``map`` becomes ``mapGlb``, every
  nested ``map`` becomes ``mapSeq``, every ``reduce`` becomes
  ``reduceSeq`` (:func:`repro.rewrite.mapping.global_1d`);
* :func:`lower_to_work_groups` — the outermost ``map`` is tiled with
  split-join and mapped onto ``mapWrg``/``mapLcl``
  (:func:`repro.rewrite.mapping.work_group_1d`).

Dimension-aware and 2-D tiled lowerings live in the mapping module
itself; the explorer reaches them through its rule menu and finishing
step.
"""

from __future__ import annotations

from repro.arith import ArithExpr
from repro.ir.nodes import Expr, Lambda
from repro.ir.visit import clone_expr
from repro.rewrite.mapping import global_1d, work_group_1d
from repro.rewrite.rules import map_to_seq, reduce_to_seq
from repro.rewrite.strategies import exhaustively


def lower_inner_sequential(expr: Expr) -> Expr:
    """Lower every remaining high-level pattern to its sequential form."""
    return exhaustively([map_to_seq(), reduce_to_seq()], expr)


def lower_to_global(fun: Lambda, dim: int = 0) -> Lambda:
    """Outermost map -> mapGlb, everything inside sequential."""
    return _apply_strategy(fun, global_1d(dim))


def lower_to_work_groups(fun: Lambda, chunk: ArithExpr | int, dim: int = 0) -> Lambda:
    """Tile the outermost map: split-join + mapWrg(mapLcl(...))."""
    return _apply_strategy(fun, work_group_1d(chunk, dim))


def _apply_strategy(fun: Lambda, strategy) -> Lambda:
    body = clone_expr(fun.body, dict(zip(fun.params, fun.params)))
    mapped = strategy.apply(body)
    if mapped is None:
        raise ValueError("no high-level map found on the program spine")
    return Lambda(list(fun.params), lower_inner_sequential(mapped))
