"""Deterministic lowering recipes: high-level IL -> low-level IL.

The paper's prior work searches the rewrite space automatically; the
evaluation here (like the paper's artifact) uses fixed, per-benchmark
lowering decisions.  Two reusable recipes cover the common shapes:

* :func:`lower_to_global` — outermost ``map`` becomes ``mapGlb``, every
  nested ``map`` becomes ``mapSeq``, every ``reduce`` becomes
  ``reduceSeq``;
* :func:`lower_to_work_groups` — the outermost ``map`` is tiled with
  split-join and mapped onto ``mapWrg``/``mapLcl``.
"""

from __future__ import annotations

from repro.arith import ArithExpr
from repro.ir.nodes import Expr, FunCall, Lambda, Param
from repro.ir import patterns as pat
from repro.ir.visit import clone_expr, transform_calls
from repro.rewrite.rules import map_to_seq, reduce_to_seq, split_join
from repro.rewrite.strategies import apply_at, apply_everywhere, exhaustively


def _lower_inner_sequential(expr: Expr) -> Expr:
    """Lower every remaining high-level pattern to its sequential form."""
    return exhaustively([map_to_seq(), reduce_to_seq()], expr)


def lower_to_global(fun: Lambda, dim: int = 0) -> Lambda:
    """Outermost map -> mapGlb, everything inside sequential."""
    outer_done = [False]

    def lower_outer(call: FunCall):
        # transform_calls is bottom-up; the *last* Map visited on the
        # spine is the outermost, so lower outer maps on a second pass.
        return None

    body = clone_expr(fun.body, dict(zip(fun.params, fun.params)))
    # Find the outermost high-level Map on the spine and make it global.
    body = _replace_outermost_map(body, lambda f: pat.MapGlb(f, dim))
    body = _lower_inner_sequential(body)
    return Lambda(list(fun.params), body)


def lower_to_work_groups(fun: Lambda, chunk: ArithExpr | int, dim: int = 0) -> Lambda:
    """Tile the outermost map: split-join + mapWrg(mapLcl(...))."""
    body = clone_expr(fun.body, dict(zip(fun.params, fun.params)))
    body = _split_join_outermost(body, chunk)
    body = _replace_outermost_map(body, lambda f: pat.MapWrg(f, dim))
    body = _replace_outermost_map(body, lambda f: pat.MapLcl(f, dim))
    body = _lower_inner_sequential(body)
    return Lambda(list(fun.params), body)


def _replace_outermost_map(expr: Expr, build) -> Expr:
    """Replace the outermost high-level Map reachable from the root —
    walking the argument spine and into nested map bodies — by
    ``build(f)``."""
    replaced = [False]

    def go(e: Expr) -> Expr:
        if replaced[0] or not isinstance(e, FunCall):
            return e
        if type(e.f) is pat.Map:
            replaced[0] = True
            return FunCall(build(e.f.f), list(e.args))
        if isinstance(e.f, pat.AbstractMap) and isinstance(e.f.f, Lambda):
            lam = e.f.f
            new_body = go(lam.body)
            if replaced[0]:
                rebuilt = _rebuild_map(e.f, Lambda(list(lam.params), new_body))
                return FunCall(rebuilt, list(e.args))
        # Walk down the spine: only the first argument chain.
        if e.args:
            new_args = [go(e.args[0])] + list(e.args[1:])
        else:
            new_args = []
        return FunCall(e.f, new_args)

    result = go(expr)
    if not replaced[0]:
        raise ValueError("no high-level map found on the program spine")
    return result


def _rebuild_map(m: pat.AbstractMap, f: Lambda) -> pat.AbstractMap:
    if isinstance(m, pat.ParallelMap):
        return type(m)(f, m.dim)
    return type(m)(f)


def _split_join_outermost(expr: Expr, chunk: ArithExpr | int) -> Expr:
    rule = split_join(chunk)
    replaced = [False]

    def go(e: Expr) -> Expr:
        if replaced[0] or not isinstance(e, FunCall):
            return e
        if type(e.f) is pat.Map:
            replacement = rule.apply(e)
            assert replacement is not None
            replaced[0] = True
            return replacement
        new_args = [go(e.args[0])] + list(e.args[1:]) if e.args else []
        return FunCall(e.f, new_args)

    result = go(expr)
    if not replaced[0]:
        raise ValueError("no high-level map found on the program spine")
    return result
