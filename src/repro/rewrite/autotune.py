"""Automatic schedule selection over the rewrite space.

The paper separates optimization decisions (prior work [18], rewrite
rules + search) from code generation (the paper itself).  This module
closes the loop the way the Lift project does: enumerate lowerings of a
portable high-level program, compile each candidate, *execute* it on the
simulated device, verify it against the reference interpreter, and rank
by the cost model.  It is the reproduction's stand-in for the
auto-tuning arrow in the paper's Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.ir.nodes import Lambda
from repro.ir.interp import apply_fun
from repro.ir.printer import print_decl
from repro.compiler.codegen import CodeGenError, compile_kernel
from repro.compiler.kernel import execute_kernel
from repro.compiler.options import CompilerOptions
from repro.opencl.cost import DEVICES, estimate_cycles
from repro.rewrite.lowering import lower_to_global, lower_to_work_groups


@dataclass
class Candidate:
    """One point in the schedule space."""

    label: str
    program: Lambda
    local_size: tuple
    global_size: tuple


@dataclass
class TuningResult:
    candidate: Candidate
    cycles: float
    kernel_source: str

    def __repr__(self) -> str:
        return f"TuningResult({self.candidate.label}, {self.cycles:.0f} cycles)"


class TuningError(Exception):
    pass


def default_candidates(
    high_level: Lambda, n: int, chunks: Sequence[int] = (32, 64, 128)
) -> list:
    """The standard lowering menu: flat global mapping plus work-group
    tilings at several chunk sizes (the split-join rule's knob)."""
    candidates = [
        Candidate(
            "mapGlb", lower_to_global(high_level), (64, 1, 1), (min(n, 1024), 1, 1)
        )
    ]
    for chunk in chunks:
        if n % chunk:
            continue
        candidates.append(
            Candidate(
                f"mapWrg/mapLcl(chunk={chunk})",
                lower_to_work_groups(high_level, chunk=chunk),
                (min(chunk, 64), 1, 1),
                (n // chunk * min(chunk, 64), 1, 1),
            )
        )
    return candidates


def autotune(
    high_level: Lambda,
    inputs: Mapping[str, Any],
    size_env: Mapping[str, int],
    candidates: Optional[Iterable[Candidate]] = None,
    device: str = "nvidia",
    rtol: float = 1e-9,
    engine: Optional[str] = None,
) -> list:
    """Compile, run, verify and rank every candidate schedule.

    Returns the surviving candidates' :class:`TuningResult` list, sorted
    best (fewest estimated cycles) first.  Candidates that fail to
    compile are skipped; candidates that compute a wrong answer raise —
    a miscompiled schedule is a bug, not a slow schedule.  ``engine``
    picks the simulator engine for every candidate execution (the
    default ``auto`` runs vectorizable kernels on the lane-batched SIMT
    engine, which is what makes the execute-and-rank loop fast).
    """
    if candidates is None:
        first_len = len(np.asarray(next(iter(inputs.values()))).ravel())
        candidates = default_candidates(high_level, first_len)

    reference = None
    profile = DEVICES[device]
    results: list[TuningResult] = []

    for candidate in candidates:
        options = CompilerOptions(local_size=candidate.local_size)
        try:
            kernel = compile_kernel(candidate.program, options)
        except CodeGenError:
            continue

        run = execute_kernel(
            kernel, inputs, size_env, candidate.global_size,
            local_size=candidate.local_size, engine=engine,
        )

        if reference is None:
            args = [
                np.asarray(inputs[p.name]).ravel().tolist()
                if isinstance(inputs[p.name], np.ndarray)
                else inputs[p.name]
                for p in candidate.program.params
            ]
            reference = np.asarray(
                apply_fun(candidate.program, args, size_env), dtype=float
            ).ravel()
        np.testing.assert_allclose(
            run.output, reference, rtol=rtol, atol=1e-9,
            err_msg=f"candidate {candidate.label} computed a wrong result",
        )

        results.append(
            TuningResult(
                candidate,
                estimate_cycles(run.counters, profile),
                kernel.source,
            )
        )

    if not results:
        raise TuningError("no candidate schedule compiled")
    results.sort(key=lambda r: r.cycles)
    return results


def describe(results: Iterable[TuningResult]) -> str:
    lines = ["schedule ranking (fewest estimated cycles first):"]
    for rank, r in enumerate(results, 1):
        lines.append(f"  {rank}. {r.candidate.label:<28} {r.cycles:>12.0f} cycles")
    return "\n".join(lines)
