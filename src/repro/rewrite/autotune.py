"""Automatic schedule selection over the rewrite space.

The paper separates optimization decisions (prior work [18], rewrite
rules + search) from code generation (the paper itself).  This module
closes the loop the way the Lift project does: enumerate lowerings of a
portable high-level program, compile each candidate, *execute* it on the
simulated device, verify it against the reference interpreter, and rank
by the cost model.  It is the reproduction's stand-in for the
auto-tuning arrow in the paper's Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.ir.nodes import Lambda
from repro.ir.interp import apply_fun
from repro.ir.printer import print_decl
from repro.compiler.codegen import CodeGenError, compile_kernel
from repro.compiler.kernel import execute_kernel
from repro.compiler.options import CompilerOptions
from repro.opencl.cost import DEVICES, estimate_cycles, estimate_runtime
from repro.rewrite.lowering import lower_to_global, lower_to_work_groups


@dataclass
class Candidate:
    """One point in the schedule space."""

    label: str
    program: Lambda
    local_size: tuple
    global_size: tuple


@dataclass
class TuningResult:
    candidate: Candidate
    cycles: float
    kernel_source: str
    #: ``cycles`` divided by the launch's effective parallelism — what
    #: the ranking sorts by (see :func:`repro.opencl.cost.estimate_runtime`).
    runtime: Optional[float] = None

    def __repr__(self) -> str:
        runtime = (
            f", runtime {self.runtime:.1f}" if self.runtime is not None else ""
        )
        return f"TuningResult({self.candidate.label}, {self.cycles:.0f} cycles{runtime})"


class TuningError(Exception):
    pass


def interp_args(fun: Lambda, inputs: Mapping[str, Any], size_env) -> list:
    """Shape concrete inputs per the program's parameter types for the
    reference interpreter (nested lists for multi-dimensional arrays)."""
    from repro.arith import simplify
    from repro.types import ArrayType

    args = []
    for p in fun.params:
        value = inputs[p.name]
        if isinstance(p.type, ArrayType):
            dims = []
            t = p.type
            while isinstance(t, ArrayType):
                dims.append(int(simplify(t.length).evaluate(dict(size_env))))
                t = t.elem
            args.append(np.asarray(value, dtype=float).reshape(dims).tolist())
        else:
            args.append(value)
    return args


def outer_map_length(
    high_level: Lambda, size_env: Mapping[str, int]
) -> Optional[int]:
    """Trip count of the outermost high-level ``map`` — the length the
    split-join tiling menu must divide.  ``None`` when it cannot be
    determined (no map on the spine, symbolic size)."""
    from repro.arith import simplify
    from repro.types import ArrayType
    from repro.ir.nodes import FunCall
    from repro.ir import patterns as pat
    from repro.ir.typecheck import infer_types
    from repro.ir.visit import clone_decl

    typed = clone_decl(high_level)
    assert isinstance(typed, Lambda)
    try:
        infer_types(typed.body)
    except Exception:
        return None

    def find(e) -> Optional[int]:
        if not isinstance(e, FunCall):
            return None
        f = e.f
        while isinstance(f, pat.AddressSpaceWrapper):
            f = f.f
        if isinstance(f, pat.AbstractMap):
            arg_t = e.args[0].type
            if isinstance(arg_t, ArrayType):
                try:
                    return int(simplify(arg_t.length).evaluate(dict(size_env)))
                except Exception:
                    return None
        for a in e.args:
            found = find(a)
            if found is not None:
                return found
        return None

    return find(typed.body)


def flat_global_geometry(n: int) -> tuple:
    """``(local_size, global_size)`` for a flat ``mapGlb`` schedule over
    ``n`` items: the largest power-of-two local size dividing ``n`` (cap
    64), and a global size capped at 1024 (generated kernels stride when
    the NDRange is smaller than the data).  Shared by the fixed menu and
    the explorer so both sides agree on geometry — and therefore on
    tuning-cache keys — for the same schedule."""
    import math

    local0 = math.gcd(n, 64) or 1
    global0 = n if n <= 1024 else 1024 - (1024 % local0)
    return (local0, 1, 1), (global0, 1, 1)


def _largest_divisor_at_most(n: int, cap: int) -> Optional[int]:
    """The largest divisor of ``n`` in ``[2, cap]`` (``None`` if none)."""
    for d in range(min(cap, n), 1, -1):
        if n % d == 0:
            return d
    return None


def _square_nest_lengths(
    high_level: Lambda, size_env: Mapping[str, int]
) -> Optional[tuple]:
    """``(rows, cols)`` of the first independent two-deep map nest of
    the program, or ``None`` (no nest / symbolic sizes)."""
    from repro.arith import simplify
    from repro.types import ArrayType
    from repro.ir.nodes import FunCall
    from repro.ir.typecheck import infer_types
    from repro.ir.visit import clone_decl, post_order
    from repro.rewrite.mapping import _match_map_nest_2d

    typed = clone_decl(high_level)
    assert isinstance(typed, Lambda)
    try:
        infer_types(typed.body)
    except Exception:
        return None

    def length_of(e) -> Optional[int]:
        t = getattr(e, "type", None)
        if not isinstance(t, ArrayType):
            return None
        try:
            return int(simplify(t.length).evaluate(dict(size_env)))
        except Exception:
            return None

    for e in post_order(typed.body):
        if isinstance(e, FunCall):
            match = _match_map_nest_2d(e)
            if match is not None:
                rows, cols = length_of(match[0]), length_of(match[1])
                if rows is None or cols is None:
                    return None
                return rows, cols
    return None


def tile_2d_candidates(
    high_level: Lambda,
    size_env: Mapping[str, int],
    tiles: Sequence[tuple] = ((8, 8),),
) -> list:
    """2-D tiled schedules for square two-deep map nests.

    Applies the ``tile-2d`` macro rule of :mod:`repro.rewrite.mapping`
    (unstaged and cooperative ``toLocal`` staging), finishes and
    specializes the rewrite the way the explorer does, and returns one
    :class:`Candidate` per applicable tile shape.  Guarded by shape:
    the nest must be square and both dimensions divisible by the tile —
    non-matching programs get an empty list, so the fixed menu keeps
    its 1-D shapes only.
    """
    from repro.ir.typecheck import infer_types
    from repro.ir.visit import clone_decl
    from repro.rewrite.mapping import tile_2d
    from repro.rewrite.strategies import one_step_rewrites
    from repro.rewrite.explore import (
        _collect_parallel,
        _finish_variants,
        _geometry,
        _nesting_ok,
        specialize_sizes,
    )

    dims = _square_nest_lengths(high_level, size_env)
    if dims is None:
        return []
    rows, cols = dims
    candidates = []
    for th, tw in tiles:
        if rows != cols or rows % th or cols % tw:
            continue
        for stage in (False, True):
            rule = tile_2d(th, tw, stage=stage)
            rewritten = one_step_rewrites(rule, high_level.body)
            if not rewritten:
                continue
            variants = _finish_variants(rewritten[0])
            if not variants:
                continue
            finished, _ = variants[0]
            program = clone_decl(Lambda(list(high_level.params), finished))
            typed = clone_decl(program)
            try:
                infer_types(typed.body)
            except Exception:
                continue
            if not _nesting_ok(typed.body):
                continue
            geometry = _geometry(_collect_parallel(typed.body), size_env)
            if geometry is None:
                continue
            local, global_ = geometry
            candidates.append(
                Candidate(
                    rule.name,
                    specialize_sizes(program, size_env),
                    local,
                    global_,
                )
            )
    return candidates


def default_candidates(
    high_level: Lambda,
    n: int,
    chunks: Sequence[int] = (32, 64, 128),
    size_env: Optional[Mapping[str, int]] = None,
) -> list:
    """The standard lowering menu: flat global mapping plus work-group
    tilings at several chunk sizes (the split-join rule's knob), plus —
    for square two-deep map nests with a concrete ``size_env`` — the
    2-D ``tile-2d`` schedules of :func:`tile_2d_candidates`.

    When no configured chunk divides ``n`` the menu falls back to the
    largest divisor of ``n`` below the biggest chunk, so irregular sizes
    still get a work-group tiling instead of silently degrading to the
    flat ``mapGlb`` schedule only.
    """
    glb_local, glb_global = flat_global_geometry(n)
    candidates = [
        Candidate("mapGlb", lower_to_global(high_level), glb_local, glb_global)
    ]

    def tiled(chunk: int) -> Candidate:
        return Candidate(
            f"mapWrg/mapLcl(chunk={chunk})",
            lower_to_work_groups(high_level, chunk=chunk),
            (min(chunk, 64), 1, 1),
            (n // chunk * min(chunk, 64), 1, 1),
        )

    any_tiled = False
    for chunk in chunks:
        if n % chunk:
            continue
        any_tiled = True
        candidates.append(tiled(chunk))
    if not any_tiled and chunks:
        fallback = _largest_divisor_at_most(n, max(chunks))
        if fallback is not None:
            candidates.append(tiled(fallback))
    if size_env is not None:
        candidates.extend(tile_2d_candidates(high_level, size_env))
    return candidates


def autotune(
    high_level: Lambda,
    inputs: Mapping[str, Any],
    size_env: Mapping[str, int],
    candidates: Optional[Iterable[Candidate]] = None,
    device: str = "nvidia",
    rtol: float = 1e-9,
    engine: Optional[str] = None,
    explore_config=None,
    cache=None,
) -> list:
    """Compile, run, verify and rank every candidate schedule.

    Returns the surviving candidates' :class:`TuningResult` list, sorted
    best (smallest parallelism-aware estimated runtime — *not* fewest
    total cycles; a wider schedule doing slightly more work can rank
    first) first.  Candidates that fail to
    compile are skipped; candidates that compute a wrong answer raise —
    a miscompiled schedule is a bug, not a slow schedule.  ``engine``
    picks the simulator engine for every candidate execution (the
    default ``auto`` runs vectorizable kernels through the closure
    pipeline of :mod:`repro.opencl.simt_compile`, which is what makes
    the execute-and-rank loop fast; pipelines attach to the shared
    parsed program, so re-running ``autotune`` over the same candidates
    — as every benchsuite repetition does — re-launches the already
    compiled pipelines instead of re-walking kernel ASTs).

    Candidate generation has two modes: the fast preset
    (:func:`default_candidates`, used when neither ``candidates`` nor
    ``explore_config`` is given) and the full rewrite-space search of
    :mod:`repro.rewrite.explore`, selected by passing an
    :class:`~repro.rewrite.explore.ExploreConfig`.  ``cache`` is an
    optional :class:`repro.cache.TuningCache`; the menu path uses it to
    skip recompilations, the explorer additionally caches measured
    cycles.
    """
    if candidates is None and explore_config is not None:
        from repro.rewrite.explore import explore_program

        exploration = explore_program(
            high_level, inputs, size_env, config=explore_config, cache=cache
        )
        results = [
            TuningResult(
                Candidate(c.label, c.program, c.local_size, c.global_size),
                c.cycles,
                c.kernel_source,
                runtime=c.runtime,
            )
            for c in exploration.candidates
        ]
        if not results:
            raise TuningError("exploration produced no runnable candidate")
        return results

    if candidates is None:
        n = outer_map_length(high_level, size_env)
        if n is None:
            n = len(np.asarray(next(iter(inputs.values()))).ravel())
        candidates = default_candidates(high_level, n, size_env=size_env)

    reference = None
    profile = DEVICES[device]
    results = []

    for candidate in candidates:
        options = CompilerOptions(local_size=candidate.local_size)
        kernel = None
        key = None
        if cache is not None:
            key = cache.kernel_key(candidate.program, options, size_env)
            kernel = cache.get_kernel(key)
        if kernel is None:
            try:
                kernel = compile_kernel(candidate.program, options)
            except CodeGenError:
                continue
            if cache is not None:
                cache.put_kernel(key, kernel)

        run = execute_kernel(
            kernel, inputs, size_env, candidate.global_size,
            local_size=candidate.local_size, engine=engine,
        )

        if reference is None:
            args = interp_args(candidate.program, inputs, size_env)
            reference = np.asarray(
                apply_fun(candidate.program, args, size_env), dtype=float
            ).ravel()
        np.testing.assert_allclose(
            run.output, reference, rtol=rtol, atol=1e-9,
            err_msg=f"candidate {candidate.label} computed a wrong result",
        )

        results.append(
            TuningResult(
                candidate,
                estimate_cycles(run.counters, profile),
                kernel.source,
                runtime=estimate_runtime(
                    run.counters, profile,
                    candidate.global_size, candidate.local_size,
                ),
            )
        )

    if not results:
        raise TuningError("no candidate schedule compiled")
    results.sort(key=lambda r: r.runtime)
    return results


def describe(results: Iterable[TuningResult]) -> str:
    lines = ["schedule ranking (fastest estimated runtime first):"]
    for rank, r in enumerate(results, 1):
        lines.append(
            f"  {rank}. {r.candidate.label:<28} {r.runtime:>12.1f} est "
            f"({r.cycles:.0f} cycles)"
        )
    return "\n".join(lines)
