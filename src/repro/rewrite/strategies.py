"""Strategies: where and how often to apply rewrite rules.

The engine is deliberately simple (the paper's contribution is the code
generator, not the search): rules are applied at explicit positions or
everywhere, optionally to a fixed point, always on cloned graphs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.ir.nodes import Expr, FunCall, FunDecl, Lambda, Literal, Param
from repro.ir import patterns as pat
from repro.ir.visit import clone_expr, transform_calls
from repro.rewrite.rules import Rule


def find_matches(rule: Rule, expr: Expr) -> List[FunCall]:
    """All call nodes (in post-order) where ``rule`` applies."""
    matches: list[FunCall] = []

    def probe(call: FunCall) -> Optional[Expr]:
        if rule.matches(call):
            matches.append(call)
        return None

    transform_calls(expr, probe)
    return matches


def apply_at(rule: Rule, expr: Expr, position: int = 0) -> Expr:
    """Apply ``rule`` at the ``position``-th match (post-order)."""
    count = [0]
    applied = [False]

    def visit(call: FunCall) -> Optional[Expr]:
        if applied[0]:
            return None
        replacement = rule.apply(call)
        if replacement is None:
            return None
        if count[0] == position:
            applied[0] = True
            return replacement
        count[0] += 1
        return None

    result = transform_calls(expr, visit)
    if not applied[0]:
        raise ValueError(f"rule {rule.name} has no match at position {position}")
    return result


def one_step_rewrites(rule: Rule, expr: Expr) -> List[Expr]:
    """Every program obtainable by applying ``rule`` at exactly one match.

    Equivalent to ``[apply_at(rule, expr, p) for p in
    range(len(find_matches(rule, expr)))]`` — same variants, same
    position order — but in a *single* traversal: ``rule.apply`` runs
    once per call node instead of once per node per position, and the
    variants share unmodified sibling subtrees (safe: rewriting never
    mutates, and every downstream pass clones before annotating).  The
    rewrite-space explorer's enumeration loop lives on this.
    """

    def go_expr(e: Expr) -> tuple:
        if isinstance(e, Literal):
            return Literal(e.value, e.type), []  # type: ignore[arg-type]
        if isinstance(e, Param):
            return e, []
        if isinstance(e, FunCall):
            new_f, f_variants = go_decl(e.f)
            arg_pairs = [go_expr(a) for a in e.args]
            new_args = [p[0] for p in arg_pairs]
            rebuilt = FunCall(new_f, new_args)
            variants: list = []
            for fv in f_variants:
                variants.append(FunCall(fv, list(new_args)))
            for i, (_, arg_variants) in enumerate(arg_pairs):
                for av in arg_variants:
                    spliced = list(new_args)
                    spliced[i] = av
                    variants.append(FunCall(new_f, spliced))
            replacement = rule.apply(rebuilt)
            if replacement is not None:
                variants.append(replacement)
            return rebuilt, variants
        raise TypeError(f"cannot rewrite {e!r}")

    def go_decl(f: FunDecl) -> tuple:
        if isinstance(f, Lambda):
            body, variants = go_expr(f.body)
            return (
                Lambda(list(f.params), body),
                [Lambda(list(f.params), v) for v in variants],
            )
        if isinstance(f, pat.ParallelMap):
            inner, variants = go_decl(f.f)
            return type(f)(inner, f.dim), [type(f)(v, f.dim) for v in variants]
        if isinstance(f, (pat.AbstractMap, pat.ReduceSeq, pat.AddressSpaceWrapper)):
            inner, variants = go_decl(f.f)
            return type(f)(inner), [type(f)(v) for v in variants]
        if isinstance(f, pat.Iterate):
            inner, variants = go_decl(f.f)
            return pat.Iterate(f.n, inner), [pat.Iterate(f.n, v) for v in variants]
        return f, []

    return go_expr(expr)[1]


def rewrite_first(rule: Rule, expr: Expr) -> Optional[Expr]:
    """Apply at the first match, or return ``None`` when nothing matches."""
    try:
        return apply_at(rule, expr, 0)
    except ValueError:
        return None


def apply_everywhere(rule: Rule, expr: Expr) -> Expr:
    """One bottom-up pass applying ``rule`` wherever it matches."""
    return transform_calls(expr, rule.apply)


def exhaustively(rules: Iterable[Rule], expr: Expr, max_passes: int = 32) -> Expr:
    """Apply a rule set bottom-up until a fixed point (bounded)."""
    rules = list(rules)
    current = clone_expr(expr)
    for _ in range(max_passes):
        changed = [False]

        def visit(call: FunCall) -> Optional[Expr]:
            for rule in rules:
                replacement = rule.apply(call)
                if replacement is not None:
                    changed[0] = True
                    return replacement
            return None

        current = transform_calls(current, visit)
        if not changed[0]:
            return current
    raise RuntimeError("rewriting did not reach a fixed point")


def explore(
    rules: Iterable[Rule], expr: Expr, depth: int = 2, beam: int = 64
) -> List[Tuple[Expr, List[str]]]:
    """Bounded exhaustive exploration of the rewrite space.

    Returns ``(program, trace)`` pairs for every program reachable in at
    most ``depth`` rule applications; the frontier is capped at ``beam``
    programs per level (deduplicated by printed form).
    """
    from repro.ir.printer import print_expr

    seen = {print_expr(expr)}
    frontier: list[tuple[Expr, list[str]]] = [(expr, [])]
    results: list[tuple[Expr, list[str]]] = [(expr, [])]
    rules = list(rules)

    for _ in range(depth):
        next_frontier: list[tuple[Expr, list[str]]] = []
        for program, trace in frontier:
            for rule in rules:
                n_matches = len(find_matches(rule, program))
                for position in range(n_matches):
                    candidate = apply_at(rule, program, position)
                    key = print_expr(candidate)
                    if key in seen:
                        continue
                    seen.add(key)
                    entry = (candidate, trace + [rule.name])
                    next_frontier.append(entry)
                    results.append(entry)
                    if len(next_frontier) >= beam:
                        break
                if len(next_frontier) >= beam:
                    break
            if len(next_frontier) >= beam:
                break
        frontier = next_frontier
    return results
