"""Dimension-aware mapping strategies: high-level maps -> thread hierarchy.

The paper's flagship schedules (Table 1 rows 11-12, section 7) assign
*nested* high-level ``map``s onto a 2-D OpenCL thread hierarchy; the old
lowering recipes of :mod:`repro.rewrite.lowering` could only produce 1-D
schedules.  This module is the compositional middle layer between the
rewrite rules and the explorer:

* :func:`replace_map_nest` — the core machinery: walk the program spine,
  assign the nest of high-level ``map``s (outermost first) to a list of
  *builders* (``mapGlb``/``mapWrg``/``mapLcl`` constructors with a
  dimension each);
* :class:`MappingStrategy` — a named, partial mapping decision on a
  program body (``apply`` returns ``None`` when the program does not
  have the required shape).  :func:`global_1d`,
  :func:`global_nd` and :func:`work_group_1d` cover the classic recipes
  (``repro.rewrite.lowering`` keeps its public functions as thin
  wrappers over these);
* :func:`tile_2d` — a *macro rewrite rule* in the sense of the Lift
  exploration work: one application turns a two-deep map nest
  (``join o map(λr. join o map(λc. e)(cols))(rows)``) into the paper's
  2-D tiled schedule — ``split`` both levels, ``mapWrg(1)``/``mapWrg(0)``
  over the tile grid, ``mapLcl(1)``/``mapLcl(0)`` inside each tile,
  optional cooperative ``toLocal`` staging of both tiles, and a
  ``scatter`` that un-tiles the flat result.  Because it is an ordinary
  :class:`~repro.rewrite.rules.Rule`, the explorer searches it like any
  other rewrite and it shows up in derivation traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.arith import ArithExpr, Cst, simplify
from repro.arith.expr import IntDiv, Mod, Prod, Sum, to_expr
from repro.types import ArrayType, ScalarType
from repro.ir.nodes import Expr, FunCall, FunDecl, Lambda, Param
from repro.ir import patterns as pat
from repro.ir.visit import clone_expr, post_order
from repro.rewrite.rules import Rule, split_join

#: A builder turns the function of a high-level ``map`` into a lowered
#: map pattern, e.g. ``lambda f: pat.MapGlb(f, 1)``.
Builder = Callable[[FunDecl], pat.AbstractMap]


class _NestMissing(Exception):
    """Raised when the program spine has fewer high-level maps than
    builders to assign."""


def _rebuild_map(m: pat.AbstractMap, f: FunDecl) -> pat.AbstractMap:
    if isinstance(m, pat.ParallelMap):
        return type(m)(f, m.dim)
    return type(m)(f)


def replace_map_nest(expr: Expr, builders: Sequence[Builder]) -> Optional[Expr]:
    """Assign the nest of high-level ``map``s along the program spine to
    ``builders`` (outermost map first, then the outermost map *inside its
    function body*, and so on).  Returns ``None`` when the spine holds
    fewer high-level maps than builders.

    The walk mirrors the data flow: at each level it descends the first
    argument chain and into the bodies of already-lowered maps, exactly
    like the old ``_replace_outermost_map`` did for a single level.
    """
    try:
        return _assign(expr, list(builders))
    except _NestMissing:
        return None


def _assign(expr: Expr, todo: List[Builder]) -> Expr:
    if not todo:
        return expr
    if not isinstance(expr, FunCall):
        raise _NestMissing
    if type(expr.f) is pat.Map:
        lam = expr.f.f
        if len(todo) > 1:
            if not isinstance(lam, Lambda):
                raise _NestMissing
            lam = Lambda(list(lam.params), _assign(lam.body, todo[1:]))
        return FunCall(todo[0](lam), list(expr.args))
    if isinstance(expr.f, pat.AbstractMap) and isinstance(expr.f.f, Lambda):
        lam = expr.f.f
        try:
            new_body = _assign(lam.body, todo)
        except _NestMissing:
            pass
        else:
            rebuilt = _rebuild_map(expr.f, Lambda(list(lam.params), new_body))
            return FunCall(rebuilt, list(expr.args))
    if expr.args:
        return FunCall(
            expr.f, [_assign(expr.args[0], todo)] + list(expr.args[1:])
        )
    raise _NestMissing


@dataclass(frozen=True)
class MappingStrategy:
    """A named way of assigning high-level maps to the thread hierarchy.

    ``apply`` receives a program *body* and returns the mapped body, or
    ``None`` when the program does not have the shape the strategy
    needs.  Strategies only assign parallel dimensions; sequential
    lowering of whatever remains is the caller's job (the explorer's
    finishing step, or :func:`repro.rewrite.lowering.lower_to_global`).
    """

    name: str
    apply: Callable[[Expr], Optional[Expr]]

    def __repr__(self) -> str:
        return f"MappingStrategy({self.name})"


def global_1d(dim: int = 0) -> MappingStrategy:
    """Outermost map -> ``mapGlb(dim)`` (the classic flat schedule)."""
    return MappingStrategy(
        f"mapGlb({dim})",
        lambda body: replace_map_nest(body, [lambda f: pat.MapGlb(f, dim)]),
    )


def global_nd(dims: Sequence[int] = (1, 0)) -> MappingStrategy:
    """Nested maps -> nested ``mapGlb`` across distinct dimensions.

    The default ``(1, 0)`` realizes the paper's 2-D global schedules
    (mm AMD-style: rows on dimension 1, columns on dimension 0)."""
    builders = [
        (lambda f, d=d: pat.MapGlb(f, d)) for d in dims
    ]
    label = ",".join(str(d) for d in dims)
    return MappingStrategy(
        f"mapGlb({label})", lambda body: replace_map_nest(body, builders)
    )


def work_group_1d(chunk: "ArithExpr | int", dim: int = 0) -> MappingStrategy:
    """Split-join tile the outermost map onto ``mapWrg(mapLcl(...))``."""

    def apply(body: Expr) -> Optional[Expr]:
        split = _split_join_outermost(body, chunk)
        if split is None:
            return None
        return replace_map_nest(
            split,
            [lambda f: pat.MapWrg(f, dim), lambda f: pat.MapLcl(f, dim)],
        )

    return MappingStrategy(f"mapWrg/mapLcl({chunk}@{dim})", apply)


def _split_join_outermost(expr: Expr, chunk: "ArithExpr | int") -> Optional[Expr]:
    """Apply the split-join rule at the outermost spine map (or ``None``)."""
    rule = split_join(chunk)
    replaced = [False]

    def go(e: Expr) -> Expr:
        if replaced[0] or not isinstance(e, FunCall):
            return e
        if type(e.f) is pat.Map:
            replacement = rule.apply(e)
            assert replacement is not None
            replaced[0] = True
            return replacement
        new_args = [go(e.args[0])] + list(e.args[1:]) if e.args else []
        return FunCall(e.f, new_args)

    result = go(expr)
    return result if replaced[0] else None


def finish_mappings(body: Expr) -> List[tuple]:
    """The mapping decisions the explorer's finishing step tries on a
    derivation that chose no parallel pattern of its own: the flat 1-D
    schedule always, plus the 2-D global nest when the spine actually
    has two nested high-level maps.  Returns ``(mapped_body,
    strategy_name)`` pairs — the application *is* the applicability
    test, so each strategy rewrites the tree exactly once."""
    out: List[tuple] = []
    for strategy in (global_1d(0), global_nd((1, 0))):
        mapped = strategy.apply(body)
        if mapped is not None:
            out.append((mapped, strategy.name))
    return out


# ---------------------------------------------------------------------------
# 2-D tiling macro rule
# ---------------------------------------------------------------------------

def untile_2d_indices(
    nty: ArithExpr, ntx: ArithExpr, th: ArithExpr, tw: ArithExpr,
    width: ArithExpr,
) -> pat.IndexFun:
    """Permutation reassembling a ``nty x ntx`` grid of flattened
    ``th x tw`` tiles into a row-major matrix of row width ``width``.

    Generalizes :func:`repro.benchsuite.convolution.untile_indices` to
    rectangular tiles and symbolic tile counts (the mapping layer tiles
    programs whose lengths are still size variables)."""
    per_row = simplify(ntx * th * tw)
    per_tile = simplify(th * tw)

    def fn(i: ArithExpr, n: ArithExpr) -> ArithExpr:
        ty = IntDiv(i, per_row)
        rest = Mod(i, per_row)
        tx = IntDiv(rest, per_tile)
        r2 = Mod(rest, per_tile)
        py = IntDiv(r2, tw)
        px = Mod(r2, tw)
        row = Sum([Prod([ty, th]), py])
        col = Sum([Prod([tx, tw]), px])
        return Sum([Prod([row, width]), col])

    return pat.IndexFun(f"untile2({nty}x{ntx},{th}x{tw},{width})", fn)


def _references(expr: Expr, param: Param) -> bool:
    return any(e is param for e in post_order(expr))


def _match_map_nest_2d(call: FunCall):
    """Match ``join(map(λr. join(map(λc. e)(cols)))(rows))`` and return
    ``(rows, cols, outer_param, inner_param, elem_expr)`` — the shape the
    2-D tiling macro rule rewrites.  ``cols`` must not depend on the
    outer parameter (the column space is the same for every row)."""
    if not isinstance(call.f, pat.Join) or len(call.args) != 1:
        return None
    outer = call.args[0]
    if not (isinstance(outer, FunCall) and type(outer.f) is pat.Map):
        return None
    outer_lam = outer.f.f
    if not isinstance(outer_lam, Lambda) or len(outer_lam.params) != 1:
        return None
    inner_join = outer_lam.body
    if not (
        isinstance(inner_join, FunCall)
        and isinstance(inner_join.f, pat.Join)
        and len(inner_join.args) == 1
    ):
        return None
    inner = inner_join.args[0]
    if not (isinstance(inner, FunCall) and type(inner.f) is pat.Map):
        return None
    inner_lam = inner.f.f
    if not isinstance(inner_lam, Lambda) or len(inner_lam.params) != 1:
        return None
    rows, cols = outer.args[0], inner.args[0]
    pr, pc = outer_lam.params[0], inner_lam.params[0]
    if _references(cols, pr):
        return None
    return rows, cols, pr, pc, inner_lam.body


def tile_2d(th: int, tw: int, stage: bool = True) -> Rule:
    """The 2-D tiling macro rule (one step in a derivation trace):

    ``join o map(λr. join o map(λc. e)(cols))(rows)`` becomes

    * ``split(th)`` over the rows and ``split(tw)`` over the columns,
    * ``mapWrg(1)`` / ``mapWrg(0)`` over the resulting tile grid,
    * ``mapLcl(1)`` / ``mapLcl(0)`` over the rows/columns of one tile,
    * with ``stage=True``, cooperative ``toLocal`` copies of the row and
      column tiles (every element is reused by a whole row/column of
      local threads — the paper's mm tiling, Table 1 row 12),
    * a flat ``join`` chain plus ``scatter(untile2)`` writing every
      element to its original row-major position.

    The rule needs the matched subterm to type-check (tile trip counts
    and the un-tiling permutation come from the inferred array lengths);
    divisibility of the tile sizes is left to the explorer's validity
    filter, exactly like ``split-join``.
    """
    from repro.ir.dsl import id_fun
    from repro.ir.typecheck import infer_types

    th_e, tw_e = to_expr(th), to_expr(tw)
    name = f"tile-2d({th}x{tw}{',toLocal' if stage else ''})"

    def apply(call: FunCall) -> Optional[Expr]:
        match = _match_map_nest_2d(call)
        if match is None:
            return None
        rows, cols, pr, pc, elem = match

        # Type the matched subterm on a throwaway clone: tile counts and
        # the un-tiling permutation need the array lengths.
        typed = clone_expr(FunCall(call.f, list(call.args)))
        try:
            infer_types(typed)
        except Exception:
            return None
        typed_match = _match_map_nest_2d(typed)
        if typed_match is None:  # pragma: no cover - same shape as call
            return None
        t_rows, t_cols = typed_match[0], typed_match[1]
        if not isinstance(t_rows.type, ArrayType) or not isinstance(
            t_cols.type, ArrayType
        ):
            return None
        m_len, n_len = t_rows.type.length, t_cols.type.length
        t_inner = typed.args[0].f.f.body.args[0]  # the typed inner map call
        assert isinstance(t_inner.type, ArrayType)
        elem_t = t_inner.type.elem
        if not isinstance(elem_t, ArrayType):
            return None  # per-element results must be arrays (they are joined)
        s_len = elem_t.length

        def scalar_row_elem(t) -> Optional[ScalarType]:
            if isinstance(t, ArrayType) and isinstance(t.elem, ArrayType) \
                    and isinstance(t.elem.elem, ScalarType):
                return t.elem.elem
            return None

        row_scal = scalar_row_elem(t_rows.type)
        col_scal = scalar_row_elem(t_cols.type)
        if stage and (row_scal is None or col_scal is None):
            return None  # cooperative copies need scalar tile elements

        row_tiles = FunCall(pat.Split(th_e), [clone_expr(rows)])
        col_tiles = FunCall(pat.Split(tw_e), [clone_expr(cols)])

        rt, ct, r, c = Param(), Param(), Param(), Param()
        elem2 = clone_expr(elem, {pr: r, pc: c})

        def tile_compute(row_src: Expr, col_src: Expr) -> Expr:
            per_row = FunCall(
                pat.Join(),
                [FunCall(pat.MapLcl(Lambda([c], elem2), 0), [col_src])],
            )
            return FunCall(
                pat.Join(),
                [FunCall(pat.MapLcl(Lambda([r], per_row), 1), [row_src])],
            )

        if stage:
            at, bt = Param(), Param()

            def staged(tile: Expr, scal: ScalarType) -> Expr:
                copy = pat.ToLocal(
                    pat.MapLcl(pat.MapLcl(id_fun(scal), 0), 1)
                )
                return FunCall(copy, [tile])

            tile_body: Expr = FunCall(
                Lambda([at, bt], tile_compute(at, bt)),
                [staged(rt, row_scal), staged(ct, col_scal)],
            )
        else:
            tile_body = tile_compute(rt, ct)

        grid = FunCall(
            pat.Join(),
            [
                FunCall(
                    pat.MapWrg(
                        Lambda(
                            [rt],
                            FunCall(
                                pat.Join(),
                                [
                                    FunCall(
                                        pat.MapWrg(Lambda([ct], tile_body), 0),
                                        [col_tiles],
                                    )
                                ],
                            ),
                        ),
                        1,
                    ),
                    [row_tiles],
                )
            ],
        )
        untile = untile_2d_indices(
            simplify(m_len // th_e),
            simplify(n_len // tw_e),
            th_e,
            simplify(tw_e * s_len),
            simplify(n_len * s_len),
        )
        return FunCall(pat.Scatter(untile), [grid])

    return Rule(name, apply)


def tiling_rules(
    tiles: Sequence[tuple] = ((4, 4), (8, 8)), staged: bool = True
) -> List[Rule]:
    """The tiling macro rules for the explorer's menu: one per tile
    shape, staged and unstaged variants (staging must *earn* its extra
    copies under the cost model)."""
    rules: List[Rule] = []
    for th, tw in tiles:
        rules.append(tile_2d(th, tw, stage=False))
        if staged:
            rules.append(tile_2d(th, tw, stage=True))
    return rules
