"""Semantics-preserving rewrite rules on the Lift IR (prior work [18]).

A rule is a partial function on ``FunCall`` nodes.  Applying a rule never
mutates its input: the engine works on cloned graphs (annotations do not
survive a rewrite; the compiler re-infers them).

The rule set covers what the paper's evaluation relies on:

* *lowering* — mapping the algorithmic patterns onto the OpenCL thread
  hierarchy (``map`` to ``mapGlb``/``mapWrg``/``mapLcl``/``mapSeq``,
  ``reduce`` to ``reduceSeq``);
* *algorithmic* — split-join (tiling), map fusion, map-reduce fusion;
* *memory/vectorization* — toLocal insertion around copies and
  vectorization of maps of scalar user functions;
* *simplification* — cancelling adjacent ``split``/``join`` and
  ``asVector``/``asScalar`` pairs.

Dimension-aware *macro* rules (the 2-D tiling step ``tile-2d`` that
rewrites a whole map nest onto the ``mapWrg``/``mapLcl`` grid at once)
live in :mod:`repro.rewrite.mapping`; the explorer merges both sets into
one menu.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.arith import ArithExpr
from repro.arith.expr import to_expr
from repro.types import ScalarType
from repro.ir.nodes import Expr, FunCall, FunDecl, Lambda, Param, UserFun
from repro.ir import patterns as pat
from repro.ir.visit import clone_decl, clone_expr


@dataclass(frozen=True)
class Rule:
    """A named rewrite: ``apply`` returns the replacement or ``None``."""

    name: str
    apply: Callable[[FunCall], Optional[Expr]]

    def matches(self, call: FunCall) -> bool:
        return self.apply(call) is not None

    def __repr__(self) -> str:
        return f"Rule({self.name})"


@dataclass
class Rewrite:
    """A record of one applied rewrite (for exploration traces)."""

    rule: Rule
    before: str
    after: str


def _unwrap(f: FunDecl) -> FunDecl:
    while isinstance(f, pat.AddressSpaceWrapper):
        f = f.f
    return f


def _fresh_decl(f: FunDecl) -> FunDecl:
    return clone_decl(f)


# ---------------------------------------------------------------------------
# lowering rules: map -> thread hierarchy
# ---------------------------------------------------------------------------

def _lower_map(call: FunCall, target) -> Optional[Expr]:
    f = call.f
    if type(f) is not pat.Map:
        return None
    return FunCall(target(_fresh_decl(f.f)), [clone_expr(call.args[0])])


def map_to_seq() -> Rule:
    return Rule("map -> mapSeq", lambda c: _lower_map(c, pat.MapSeq))


def map_to_glb(dim: int = 0) -> Rule:
    return Rule(
        f"map -> mapGlb({dim})",
        lambda c: _lower_map(c, lambda f: pat.MapGlb(f, dim)),
    )


def map_to_wrg(dim: int = 0) -> Rule:
    return Rule(
        f"map -> mapWrg({dim})",
        lambda c: _lower_map(c, lambda f: pat.MapWrg(f, dim)),
    )


def map_to_lcl(dim: int = 0) -> Rule:
    return Rule(
        f"map -> mapLcl({dim})",
        lambda c: _lower_map(c, lambda f: pat.MapLcl(f, dim)),
    )


def reduce_to_seq() -> Rule:
    def apply(call: FunCall) -> Optional[Expr]:
        if type(call.f) is not pat.Reduce:
            return None
        return FunCall(
            pat.ReduceSeq(_fresh_decl(call.f.f)),
            [clone_expr(call.args[0]), clone_expr(call.args[1])],
        )

    return Rule("reduce -> reduceSeq", apply)


# ---------------------------------------------------------------------------
# algorithmic rules
# ---------------------------------------------------------------------------

def split_join(k: ArithExpr | int) -> Rule:
    """map(f)  ->  join o map(map(f)) o split(k)  — the tiling rule."""
    k = to_expr(k)

    def apply(call: FunCall) -> Optional[Expr]:
        if type(call.f) is not pat.Map:
            return None
        inner = pat.Map(_fresh_decl(call.f.f))
        split_arg = FunCall(pat.Split(k), [clone_expr(call.args[0])])
        mapped = FunCall(pat.Map(inner), [split_arg])
        return FunCall(pat.Join(), [mapped])

    return Rule(f"split-join({k})", apply)


def map_fusion() -> Rule:
    """map(f) o map(g)  ->  map(f o g)."""

    def apply(call: FunCall) -> Optional[Expr]:
        if type(call.f) is not pat.Map:
            return None
        arg = call.args[0]
        if not isinstance(arg, FunCall) or type(arg.f) is not pat.Map:
            return None
        f = _fresh_decl(call.f.f)
        g = _fresh_decl(arg.f.f)
        p = Param()
        fused = Lambda([p], FunCall(f, [FunCall(g, [p])]))
        return FunCall(pat.Map(fused), [clone_expr(arg.args[0])])

    return Rule("map fusion", apply)


def map_reduce_fusion() -> Rule:
    """reduce(g, z) o map(f)  ->  reduce(λ(a, x). g(a, f(x)), z)."""

    def apply(call: FunCall) -> Optional[Expr]:
        if not isinstance(call.f, pat.ReduceSeq):
            return None
        arr = call.args[1]
        if not isinstance(arr, FunCall) or type(arr.f) not in (pat.Map, pat.MapSeq):
            return None
        g = _fresh_decl(call.f.f)
        f = _fresh_decl(arr.f.f)
        acc, x = Param(), Param()
        fused = Lambda([acc, x], FunCall(g, [acc, FunCall(f, [x])]))
        reduce_cls = type(call.f)
        return FunCall(
            reduce_cls(fused), [clone_expr(call.args[0]), clone_expr(arr.args[0])]
        )

    return Rule("map-reduce fusion", apply)


def to_local_insertion() -> Rule:
    """mapLcl(f)  ->  mapLcl(f) o toLocal(mapLcl(id)) — stage the input
    of a work-group computation in local memory."""

    def apply(call: FunCall) -> Optional[Expr]:
        if not isinstance(call.f, pat.MapLcl):
            return None
        arg = call.args[0]
        if isinstance(arg, FunCall) and isinstance(arg.f, pat.AddressSpaceWrapper):
            return None  # already staged
        elem_t = None
        if arg.type is not None:
            from repro.types import ArrayType

            if isinstance(arg.type, ArrayType) and isinstance(
                arg.type.elem, ScalarType
            ):
                elem_t = arg.type.elem
        from repro.ir.dsl import id_fun

        copy = pat.ToLocal(pat.MapLcl(id_fun(elem_t) if elem_t else id_fun()))
        staged = FunCall(copy, [clone_expr(arg)])
        return FunCall(
            pat.MapLcl(_fresh_decl(call.f.f), call.f.dim), [staged]
        )

    return Rule("toLocal insertion", apply)


def vectorize_map(width: int) -> Rule:
    """map(uf)  ->  asScalar o map(vectorize(uf)) o asVector(width)
    for unary scalar user functions (paper section 3.2).

    When the argument carries a type annotation, the rule refuses inputs
    whose (concrete) length the width does not divide — ``asVector(4)``
    over a one-element array would reinterpret garbage.  Untyped graphs
    (the explorer enumerates those) are accepted here and rejected by
    the explorer's shape-validity filter after type inference.
    """

    def apply(call: FunCall) -> Optional[Expr]:
        if type(call.f) is not pat.Map:
            return None
        from repro.types import ArrayType

        arg_t = call.args[0].type
        if isinstance(arg_t, ArrayType):
            from repro.arith import simplify

            length = simplify(arg_t.length).try_int()
            if length is not None and (length <= 0 or length % width):
                return None
        lam = _unwrap(call.f.f)
        if not isinstance(lam, Lambda) or len(lam.params) != 1:
            return None
        body = lam.body
        if not (
            isinstance(body, FunCall)
            and isinstance(body.f, UserFun)
            and len(body.args) == 1
            and body.args[0] is lam.params[0]
        ):
            return None
        uf = body.f
        if not all(isinstance(t, ScalarType) for t in uf.in_types):
            return None
        vec_uf = uf.vectorized(width)
        as_vec = FunCall(pat.AsVector(width), [clone_expr(call.args[0])])
        mapped = FunCall(pat.Map(vec_uf), [as_vec])
        return FunCall(pat.AsScalar(), [mapped])

    return Rule(f"vectorize({width})", apply)


# ---------------------------------------------------------------------------
# simplification rules
# ---------------------------------------------------------------------------

def join_split_cancel() -> Rule:
    """join o split(k) = id."""

    def apply(call: FunCall) -> Optional[Expr]:
        if not isinstance(call.f, pat.Join):
            return None
        arg = call.args[0]
        if isinstance(arg, FunCall) and isinstance(arg.f, pat.Split):
            return clone_expr(arg.args[0])
        return None

    return Rule("join o split = id", apply)


def split_join_cancel() -> Rule:
    """split(k) o join = id when the inner length is k."""

    def apply(call: FunCall) -> Optional[Expr]:
        if not isinstance(call.f, pat.Split):
            return None
        arg = call.args[0]
        if not (isinstance(arg, FunCall) and isinstance(arg.f, pat.Join)):
            return None
        inner = arg.args[0]
        from repro.arith import simplify
        from repro.types import ArrayType

        if (
            inner.type is not None
            and isinstance(inner.type, ArrayType)
            and isinstance(inner.type.elem, ArrayType)
            and simplify(inner.type.elem.length) == simplify(call.f.n)
        ):
            return clone_expr(inner)
        return None

    return Rule("split o join = id", apply)


def scalar_vector_cancel() -> Rule:
    """asScalar o asVector(w) = id."""

    def apply(call: FunCall) -> Optional[Expr]:
        if not isinstance(call.f, pat.AsScalar):
            return None
        arg = call.args[0]
        if isinstance(arg, FunCall) and isinstance(arg.f, pat.AsVector):
            return clone_expr(arg.args[0])
        return None

    return Rule("asScalar o asVector = id", apply)


def transpose_transpose_cancel() -> Rule:
    """transpose o transpose = id."""

    def apply(call: FunCall) -> Optional[Expr]:
        if not isinstance(call.f, pat.Transpose):
            return None
        arg = call.args[0]
        if isinstance(arg, FunCall) and isinstance(arg.f, pat.Transpose):
            return clone_expr(arg.args[0])
        return None

    return Rule("transpose o transpose = id", apply)


# ---------------------------------------------------------------------------
# rule collections
# ---------------------------------------------------------------------------

def lowering_rules(dim: int = 0) -> list:
    return [
        map_to_glb(dim),
        map_to_wrg(dim),
        map_to_lcl(dim),
        map_to_seq(),
        reduce_to_seq(),
    ]


def fusion_rules() -> list:
    return [map_fusion(), map_reduce_fusion()]


def simplification_rules() -> list:
    return [
        join_split_cancel(),
        split_join_cancel(),
        scalar_vector_cancel(),
        transpose_transpose_cancel(),
    ]


RULES = lowering_rules() + fusion_rules() + simplification_rules()
