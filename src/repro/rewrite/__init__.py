"""Rewrite rules and lowering strategies.

The paper builds on prior work ([18], ICFP 2015) that maps portable
high-level Lift IL (generic ``map``/``reduce``) onto the OpenCL-specific
low-level IL via semantics-preserving rewrite rules.  This package
reproduces that substrate: algorithmic rules (fusion, split-join,
vectorization), lowering rules (map -> mapGlb/mapWrg/mapLcl/mapSeq), a
small strategy language, and deterministic lowering recipes.
"""

from repro.rewrite.rules import (
    RULES,
    Rewrite,
    Rule,
    fusion_rules,
    lowering_rules,
    simplification_rules,
)
from repro.rewrite.strategies import (
    apply_at,
    apply_everywhere,
    exhaustively,
    find_matches,
    rewrite_first,
)
from repro.rewrite.lowering import lower_to_global, lower_to_work_groups
from repro.rewrite.explore import (
    ExplorationResult,
    ExploreConfig,
    ExploreStats,
    ExploredCandidate,
    explore_program,
)

__all__ = [
    "ExplorationResult",
    "ExploreConfig",
    "ExploreStats",
    "ExploredCandidate",
    "explore_program",
    "RULES",
    "Rewrite",
    "Rule",
    "apply_at",
    "apply_everywhere",
    "exhaustively",
    "find_matches",
    "fusion_rules",
    "lower_to_global",
    "lower_to_work_groups",
    "lowering_rules",
    "rewrite_first",
    "simplification_rules",
]
