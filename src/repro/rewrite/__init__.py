"""Rewrite rules and lowering strategies.

The paper builds on prior work ([18], ICFP 2015) that maps portable
high-level Lift IL (generic ``map``/``reduce``) onto the OpenCL-specific
low-level IL via semantics-preserving rewrite rules.  This package
reproduces that substrate: algorithmic rules (fusion, split-join,
vectorization), lowering rules (map -> mapGlb/mapWrg/mapLcl/mapSeq), a
small strategy language, the dimension-aware mapping layer
(:mod:`repro.rewrite.mapping`, including the 2-D tiling macro rule),
and deterministic lowering recipes.  ``src/repro/rewrite/REWRITE.md``
documents the whole rewrite → explore → cost stack.
"""

from repro.rewrite.rules import (
    RULES,
    Rewrite,
    Rule,
    fusion_rules,
    lowering_rules,
    simplification_rules,
)
from repro.rewrite.mapping import (
    MappingStrategy,
    global_1d,
    global_nd,
    replace_map_nest,
    tile_2d,
    tiling_rules,
    work_group_1d,
)
from repro.rewrite.strategies import (
    apply_at,
    apply_everywhere,
    exhaustively,
    find_matches,
    rewrite_first,
)
from repro.rewrite.lowering import lower_to_global, lower_to_work_groups
from repro.rewrite.explore import (
    ExplorationResult,
    ExploreConfig,
    ExploreStats,
    ExploredCandidate,
    explore_program,
)

__all__ = [
    "ExplorationResult",
    "ExploreConfig",
    "ExploreStats",
    "ExploredCandidate",
    "explore_program",
    "MappingStrategy",
    "RULES",
    "Rewrite",
    "Rule",
    "apply_at",
    "apply_everywhere",
    "exhaustively",
    "find_matches",
    "fusion_rules",
    "global_1d",
    "global_nd",
    "lower_to_global",
    "lower_to_work_groups",
    "lowering_rules",
    "replace_map_nest",
    "rewrite_first",
    "simplification_rules",
    "tile_2d",
    "tiling_rules",
    "work_group_1d",
]
