"""Derivation-tree exploration of the rewrite space.

The paper's Figure 1 separates *optimization* (rewrite rules plus
exploration, prior work [18]) from *code generation*.  The fixed menu in
:mod:`repro.rewrite.autotune` covers the code-generation evaluation; this
module closes the optimization loop with an actual search over the rule
set of :mod:`repro.rewrite.rules`.

Search
------
Starting from a high-level ``Lambda``, the engine runs a bounded
breadth-first enumeration: at every level it applies each rule of the
menu at every matching position (via
:func:`repro.rewrite.strategies.find_matches` /
:func:`~repro.rewrite.strategies.apply_at`), recording the derivation
trace ``rule@position``.  The frontier is deduplicated with the
structural hash of :mod:`repro.ir.structural` — alpha-equivalent
programs (every rule application clones and renames) collapse to one
node — and capped at ``beam`` programs per level.

The rule menu includes the dimension-aware layer of
:mod:`repro.rewrite.mapping`: lowering rules parametrized over thread
dimensions, vectorization, and the 2-D tiling macro rule (``tile-2d``)
that turns a two-deep map nest into the paper's ``mapWrg(1)/mapWrg(0)``
+ ``mapLcl`` + ``toLocal`` tiled schedule in a single derivation step.

Every enumerated derivation is then *finished* into executable
schedules: if no parallel map was chosen yet, each applicable mapping
strategy (flat 1-D ``mapGlb``, and the 2-D ``mapGlb(1)/mapGlb(0)`` nest
when the spine has two nested maps) produces one variant; remaining
high-level patterns are lowered sequentially (``map → mapSeq``,
``reduce → reduceSeq``).  A structural validity check rejects schedules
the OpenCL thread hierarchy cannot express (nested parallel maps over
the same dimension, ``mapLcl`` outside a work-group of the same
dimension, parallel patterns under sequential ones, split factors that
do not divide their input length).

Pruning
-------
Surviving candidates are ranked by the *static* cost estimate
(:func:`repro.opencl.cost.static_program_cost`, parallelism-aware: a
critical-path estimate against the candidate's own launch geometry) —
no compilation or execution happens yet — and only the ``max_eval``
cheapest proceed.

Evaluation
----------
Survivors go through compile → simulate → verify on a
``concurrent.futures`` thread pool.  Execution results are verified
*bitwise* against the reference interpreter running the original
high-level program (our rules never reorder floating-point reductions,
so a correct schedule reproduces the exact bits).  Ranking divides the
measured-counter cost (:func:`repro.opencl.cost.estimate_cycles`) by
the launch's effective parallelism
(:func:`repro.opencl.cost.estimate_runtime`) — wider schedules win when
their per-thread work shrinks faster than their overheads grow.

Cache key
---------
With a :class:`repro.cache.TuningCache`, compilation is keyed by
``(structural hash of the program, CompilerOptions, size env)`` and
measured cycles additionally by ``(input fingerprint, launch geometry,
device, engine)``.  A warm cache therefore performs zero recompilations
and zero re-executions for unchanged programs; the explorer reports both
hit-rates in its stats.

Fault tolerance
---------------
The compile → simulate → verify loop degrades gracefully instead of
dying with the worst candidate (see ``src/repro/RESILIENCE.md``):

* every candidate failure is *classified* (``compile`` / ``simulate`` /
  ``verify`` / ``infra`` / ``timeout`` / ``cancelled``) and quarantined
  into a structured :class:`~repro.resilience.FailureReport` on
  :class:`ExplorationResult` — the rest of the search completes;
* transient failures (injected faults, :class:`~repro.resilience.TransientError`,
  ``OSError``) are retried with exponential backoff
  (``ExploreConfig.retries`` / ``retry_backoff``);
* ``ExploreConfig.candidate_timeout`` puts a wall-clock watchdog on
  each candidate attempt — a hung candidate becomes a ``timeout``
  report, not a hung search;
* an :class:`~repro.resilience.CancellationToken` in
  ``ExploreConfig.cancellation`` aborts the search cleanly at the next
  stage boundary (enumeration level, candidate start, pipeline stage);
  already-evaluated candidates are still ranked and returned.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.types import ArrayType
from repro.ir.nodes import Expr, FunCall, Lambda, Param
from repro.ir import patterns as pat
from repro.ir.interp import apply_fun
from repro.ir.structural import canonical
from repro.ir.typecheck import infer_types
from repro.ir.visit import clone_decl, clone_expr, post_order
from repro.arith import simplify
from repro.compiler.codegen import CodeGenError, compile_kernel
from repro.compiler.kernel import execute_kernel
from repro.compiler.options import CompilerOptions
from repro.opencl.cost import (
    DEVICES,
    estimate_cycles,
    runtime_from_cycles,
    static_program_cost,
)
from repro.rewrite.autotune import interp_args
from repro.rewrite.mapping import finish_mappings, tiling_rules
from repro.rewrite.rules import (
    Rule,
    fusion_rules,
    map_to_glb,
    map_to_lcl,
    map_to_seq,
    map_to_wrg,
    reduce_to_seq,
    simplification_rules,
    split_join,
    to_local_insertion,
    vectorize_map,
)
from repro.rewrite.strategies import exhaustively, one_step_rewrites
from repro import faultinject, obs
from repro.resilience import (
    TRANSIENT_ERRORS,
    Cancelled,
    CancellationToken,
    Deadline,
    DeadlineExceeded,
    FailureReport,
    deterministic_jitter,
    run_with_deadline,
)


class ExplorationError(Exception):
    pass


class _StageFailure(Exception):
    """A deterministic (non-transient) failure of one evaluation stage."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind
        self.message = message


@dataclass
class ExploreConfig:
    """Knobs of the derivation search (see the module docstring)."""

    depth: int = 3
    beam: int = 64
    max_eval: int = 16
    chunks: Sequence[int] = (4, 8, 16, 32, 64)
    #: Thread dimensions the lowering rules may assign.
    dims: Sequence[int] = (0, 1)
    #: Tile shapes of the 2-D tiling macro rule (rows x columns).
    tiles: Sequence[tuple] = ((4, 4), (8, 8))
    #: Widths of the vectorization rule (empty disables it).
    vector_widths: Sequence[int] = (4,)
    device: str = "nvidia"
    engine: Optional[str] = None
    workers: int = 4
    extra_rules: Sequence[Rule] = ()
    #: ``None`` demands bitwise equality with the reference interpreter;
    #: a float relaxes verification to ``np.allclose`` at that rtol.
    rtol: Optional[float] = None
    #: Wall-clock deadline (seconds) per candidate evaluation attempt,
    #: enforced by a watchdog thread; ``None`` disables it.
    candidate_timeout: Optional[float] = None
    #: Bounded retries for *transient* evaluation failures (injected
    #: faults, TransientError, OSError) with exponential backoff.
    retries: int = 2
    #: Initial backoff delay between retries (doubles per attempt).
    retry_backoff: float = 0.02
    #: Jitter spread on the retry backoff, seeded by the candidate label
    #: (:func:`repro.resilience.deterministic_jitter`): concurrent
    #: retries desynchronize, reruns replay identically.  0 disables.
    retry_jitter: float = 0.0
    #: The *request's* remaining wall-clock budget (set by the tuning
    #: service).  It propagates: each candidate attempt's watchdog is
    #: clamped to ``min(candidate_timeout, deadline.remaining())`` — a
    #: search admitted 50ms before its deadline runs 50ms attempts, not
    #: full-length ones — and enumeration stops at the next level
    #: boundary once the budget is spent.
    deadline: Optional[Deadline] = None
    #: Cooperative cancellation: cancel() aborts the search at the next
    #: stage boundary; partial results are still ranked and returned.
    cancellation: Optional[CancellationToken] = None
    #: Label under which evaluated candidates are recorded in the
    #: cost-model calibration log (:mod:`repro.obs.analysis`); the
    #: benchsuite passes the benchmark name.  ``None`` records under
    #: ``"adhoc"``.
    workload: Optional[str] = None

    def rule_menu(self) -> list:
        # Macro rules first: the beam caps each BFS level, and one
        # tiling application is worth more than many fine-grained steps.
        rules = tiling_rules(self.tiles)
        for dim in self.dims:
            rules += [map_to_glb(dim), map_to_wrg(dim), map_to_lcl(dim)]
        rules += [map_to_seq(), reduce_to_seq()]
        rules += fusion_rules()
        rules += simplification_rules()
        rules += [split_join(k) for k in self.chunks]
        rules += [to_local_insertion()]
        rules += [vectorize_map(w) for w in self.vector_widths]
        rules += list(self.extra_rules)
        return rules


@dataclass
class ExploreStats:
    enumerated: int = 0
    dedup_hits: int = 0
    finish_dedup_hits: int = 0
    finished: int = 0
    invalid: int = 0
    pruned: int = 0
    evaluated: int = 0
    compilations: int = 0
    executions: int = 0
    compile_failures: int = 0
    verify_failures: int = 0
    #: Failure taxonomy beyond compile/verify (see RESILIENCE.md):
    #: candidates whose execution raised (engine refusal, bad geometry).
    simulate_failures: int = 0
    #: Transient infrastructure failures that survived every retry.
    infra_failures: int = 0
    #: Candidates killed by the per-candidate watchdog deadline.
    timeouts: int = 0
    #: Candidates skipped or aborted through the cancellation token.
    cancelled: int = 0
    #: Transient failures absorbed by the retry/backoff loop.
    retries: int = 0
    #: True when a cancellation token stopped any part of the search.
    aborted: bool = False
    kernel_cache_hits: int = 0
    kernel_cache_misses: int = 0
    cycle_cache_hits: int = 0
    cycle_cache_misses: int = 0
    #: Closure pipelines compiled during evaluation — at most one per
    #: distinct kernel; repeat launches of a candidate reuse the
    #: pipeline through the source-keyed parse LRU (see
    #: :mod:`repro.opencl.simt_compile`).
    pipeline_compiles: int = 0

    def dedup_hit_rate(self) -> float:
        return self.dedup_hits / self.enumerated if self.enumerated else 0.0

    def kernel_cache_hit_rate(self) -> float:
        total = self.kernel_cache_hits + self.kernel_cache_misses
        return self.kernel_cache_hits / total if total else 0.0

    def cycle_cache_hit_rate(self) -> float:
        total = self.cycle_cache_hits + self.cycle_cache_misses
        return self.cycle_cache_hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "enumerated": self.enumerated,
            "dedup_hits": self.dedup_hits,
            "dedup_hit_rate": round(self.dedup_hit_rate(), 4),
            "finish_dedup_hits": self.finish_dedup_hits,
            "finished": self.finished,
            "invalid": self.invalid,
            "pruned": self.pruned,
            "evaluated": self.evaluated,
            "compilations": self.compilations,
            "executions": self.executions,
            "compile_failures": self.compile_failures,
            "verify_failures": self.verify_failures,
            "simulate_failures": self.simulate_failures,
            "infra_failures": self.infra_failures,
            "timeouts": self.timeouts,
            "cancelled": self.cancelled,
            "retries": self.retries,
            "aborted": self.aborted,
            "kernel_cache_hits": self.kernel_cache_hits,
            "kernel_cache_misses": self.kernel_cache_misses,
            "kernel_cache_hit_rate": round(self.kernel_cache_hit_rate(), 4),
            "cycle_cache_hits": self.cycle_cache_hits,
            "cycle_cache_misses": self.cycle_cache_misses,
            "cycle_cache_hit_rate": round(self.cycle_cache_hit_rate(), 4),
            "pipeline_compiles": self.pipeline_compiles,
        }


@dataclass
class ExploredCandidate:
    """One finished, schedulable point of the derivation space."""

    label: str
    program: Lambda
    trace: tuple
    local_size: tuple
    global_size: tuple
    static_cost: float
    cycles: Optional[float] = None
    #: ``cycles`` divided by the launch's effective parallelism — the
    #: quantity candidates are ranked by.
    runtime: Optional[float] = None
    kernel_source: Optional[str] = None
    #: Canonical (alpha-equivalence) form of ``program`` — the dedup
    #: key, reused as the calibration/trace join key.
    canonical_form: str = ""

    def describe_trace(self) -> str:
        return " -> ".join(self.trace) if self.trace else "(original)"


@dataclass
class ExplorationResult:
    candidates: list  # evaluated ExploredCandidates, best first
    stats: ExploreStats
    #: Structured quarantine records of candidates that failed, timed
    #: out or were cancelled (:class:`repro.resilience.FailureReport`);
    #: the search completes around them.
    failures: list = field(default_factory=list)

    def best(self) -> ExploredCandidate:
        if not self.candidates:
            raise ExplorationError("exploration produced no runnable candidate")
        return self.candidates[0]

    def describe(self, top: int = 5) -> str:
        lines = ["exploration ranking (fastest estimated runtime first):"]
        for rank, cand in enumerate(self.candidates[:top], 1):
            lines.append(
                f"  {rank}. {cand.label:<34} {cand.runtime:>12.1f} est "
                f"({cand.cycles:.0f} cycles over "
                f"{'x'.join(str(g) for g in cand.global_size)} items, "
                f"local {'x'.join(str(l) for l in cand.local_size)})"
            )
            lines.append(f"     derivation: {cand.describe_trace()}")
        s = self.stats
        lines.append(
            f"  [{s.enumerated} enumerated, dedup hit-rate "
            f"{s.dedup_hit_rate():.0%}, {s.evaluated} evaluated, "
            f"kernel cache hit-rate {s.kernel_cache_hit_rate():.0%}]"
        )
        if self.failures:
            lines.append(f"  {len(self.failures)} candidate(s) quarantined:")
            for report in self.failures[:top]:
                lines.append(f"    - {report.describe()}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# schedule validity and geometry
# ---------------------------------------------------------------------------

def _finish_variants(body: Expr) -> list:
    """Lower whatever the search left high-level into executable forms.

    Returns ``(finished_body, strategy_label)`` pairs.  A derivation
    that already chose parallel patterns finishes deterministically
    (sequential lowering of the rest, label ``None``); one that did not
    yields one variant per applicable mapping strategy — the flat 1-D
    schedule and, for two-deep map nests, the 2-D ``mapGlb`` nest."""
    has_parallel = any(
        isinstance(e, FunCall) and isinstance(e.f, pat.ParallelMap)
        for e in post_order(body)
    )
    seq_rules = [map_to_seq(), reduce_to_seq()]
    variants: list = []
    if has_parallel:
        mapped_bodies = [(body, None)]
    else:
        mapped_bodies = [
            (mapped, f"finish:{name}") for mapped, name in finish_mappings(body)
        ]
        if not mapped_bodies:
            # No high-level map on the spine: a sequential schedule.
            mapped_bodies = [(body, None)]
    for mapped, label in mapped_bodies:
        try:
            variants.append((exhaustively(seq_rules, mapped), label))
        except RuntimeError:
            continue
    return variants


def _finish(body: Expr) -> Optional[Expr]:
    """First finishing variant (the flat 1-D default); kept for tests
    and callers that need one deterministic schedule."""
    variants = _finish_variants(body)
    return variants[0][0] if variants else None


def _nesting_ok(body: Expr) -> bool:
    """OpenCL thread-hierarchy wellformedness of the parallel patterns.

    Walks the full data flow — including the bodies of beta-redex
    lambdas, which the tiled schedules use to share ``toLocal`` staging
    between compute maps."""

    def walk(e: Expr, active: frozenset, seq: bool) -> bool:
        if not isinstance(e, FunCall):
            return True
        f = e.f
        while isinstance(f, pat.AddressSpaceWrapper):
            f = f.f
        if isinstance(f, Lambda):
            for a in e.args:
                if not walk(a, active, seq):
                    return False
            return walk(f.body, active, seq)
        inner_active, inner_seq = active, seq
        if isinstance(f, pat.MapGlb):
            if seq or any(kind in ("wrg", "lcl") for kind, _ in active):
                return False
            if ("glb", f.dim) in active:
                return False
            inner_active = active | {("glb", f.dim)}
        elif isinstance(f, pat.MapWrg):
            if seq or ("wrg", f.dim) in active:
                return False
            if any(kind in ("glb", "lcl") for kind, _ in active):
                return False
            inner_active = active | {("wrg", f.dim)}
        elif isinstance(f, pat.MapLcl):
            if seq or ("lcl", f.dim) in active:
                return False
            if ("wrg", f.dim) not in active:
                return False
            if any(kind == "glb" for kind, _ in active):
                return False
            inner_active = active | {("lcl", f.dim)}
        elif isinstance(f, (pat.MapSeq, pat.ReduceSeq, pat.Iterate)):
            inner_seq = True

        for a in e.args:
            if not walk(a, active, seq):
                return False
        if isinstance(f, (pat.AbstractMap, pat.ReduceSeq, pat.Iterate)):
            g = f.f
            while isinstance(g, pat.AddressSpaceWrapper):
                g = g.f
            if isinstance(g, Lambda):
                return walk(g.body, inner_active, inner_seq)
        return True

    if not walk(body, frozenset(), False):
        return False

    # Every work-group map must actually use local parallelism.
    for e in post_order(body):
        if isinstance(e, FunCall) and isinstance(e.f, pat.MapWrg):
            if not any(
                isinstance(x, FunCall) and isinstance(x.f, pat.MapLcl)
                for x in post_order(e)
                if x is not e
            ):
                return False
    return True


def _splits_divide(body: Expr, size_env: Mapping[str, int]) -> bool:
    """Split factors and vector widths must divide their (typed) input
    lengths exactly (``asVector(4)`` over a one-element array would
    silently compute garbage)."""
    for e in post_order(body):
        if not isinstance(e, FunCall):
            continue
        if isinstance(e.f, pat.Split) or isinstance(e.f, pat.AsVector):
            arg_t = e.args[0].type
            if not isinstance(arg_t, ArrayType):
                return False
            try:
                n = int(simplify(arg_t.length).evaluate(dict(size_env)))
                if isinstance(e.f, pat.Split):
                    k = int(simplify(e.f.n).evaluate(dict(size_env)))
                else:
                    k = int(e.f.width)
            except Exception:
                continue  # symbolic: let the type checker decide
            if k <= 0 or n <= 0 or n % k:
                return False
    return True


def _collect_parallel(body: Expr) -> list:
    """Pre-order ``(kind, dim, trip-length-expr, staging)`` of parallel
    map calls.  ``staging`` marks maps that implement an address-space
    copy (their function sits under ``toLocal``/``toGlobal``/
    ``toPrivate``) — geometry selection prefers the trip counts of the
    *compute* maps and lets staging loops stride."""
    found: list = []

    def walk(e: Expr, staging: bool) -> None:
        if not isinstance(e, FunCall):
            return
        f = e.f
        inner_staging = staging
        while isinstance(f, pat.AddressSpaceWrapper):
            inner_staging = True
            f = f.f
        if isinstance(f, pat.ParallelMap):
            kind = {pat.MapGlb: "glb", pat.MapWrg: "wrg", pat.MapLcl: "lcl"}[
                type(f)
            ]
            arg_t = e.args[0].type
            length = arg_t.length if isinstance(arg_t, ArrayType) else None
            found.append((kind, f.dim, length, inner_staging))
        if isinstance(f, Lambda):
            walk(f.body, staging)
        if isinstance(f, (pat.AbstractMap, pat.ReduceSeq, pat.Iterate)):
            g = f.f
            while isinstance(g, pat.AddressSpaceWrapper):
                inner_staging = True
                g = g.f
            if isinstance(g, Lambda):
                walk(g.body, inner_staging)
        for a in e.args:
            walk(a, staging)

    walk(body, False)
    return found


#: Per-dimension cap on the chosen local size.
_MAX_LOCAL_PER_DIM = 64


def _geometry(
    parallel: list, size_env: Mapping[str, int]
) -> Optional[tuple]:
    """Launch geometry (local_size, global_size) for a valid schedule.

    Dimension-aware: every thread dimension with a ``mapWrg`` gets its
    group count from the first such map and its local size from the
    first non-staging ``mapLcl`` of that dimension (staging copies
    stride); pure ``mapGlb`` schedules keep the flat 1-D geometry of the
    fixed menu on dimension 0 and gain per-dimension sizes beyond it."""

    def ev(length) -> Optional[int]:
        if length is None:
            return None
        try:
            return int(simplify(length).evaluate(dict(size_env)))
        except Exception:
            return None

    def first_per_dim(kind: str, include_staging: bool = True) -> dict:
        out: dict = {}
        for k, d, t, staging in parallel:
            if k == kind and d not in out and (include_staging or not staging):
                out[d] = ev(t)
        return out

    wrg = first_per_dim("wrg")
    if wrg:
        lcl = first_per_dim("lcl", include_staging=False)
        lcl_any = first_per_dim("lcl")
        local = [1, 1, 1]
        glob = [1, 1, 1]
        for d in (0, 1, 2):
            groups = wrg.get(d)
            trip = lcl.get(d, lcl_any.get(d))
            if groups is None and d in wrg:
                return None
            if trip is None and d in lcl_any:
                return None
            local[d] = min(trip, _MAX_LOCAL_PER_DIM) if trip else 1
            glob[d] = (groups if groups else 1) * local[d]
        return tuple(local), tuple(glob)

    glb = first_per_dim("glb")
    if glb:
        if any(n is None for n in glb.values()):
            return None
        from repro.rewrite.autotune import flat_global_geometry

        local = [1, 1, 1]
        glob = [1, 1, 1]
        if len(glb) == 1:
            # A single mapGlb dimension gets the fixed menu's flat
            # geometry whatever the dimension is — an identical flat
            # schedule must rank identically on dim 0 and dim 1 (and
            # share tuning-cache keys with the menu on dim 0).
            (d, n), = glb.items()
            (l0, _, _), (g0, _, _) = flat_global_geometry(n)
            local[d], glob[d] = l0, g0
            return tuple(local), tuple(glob)
        import math

        # Multi-dimensional global schedules split the flat path's
        # ~1024-item launch budget across dimensions (32 per dim);
        # generated kernels stride when the NDRange is smaller than
        # the data, exactly like the flat 1-D case.
        per_dim_cap = 32
        for d, n in glb.items():
            local[d] = math.gcd(n, 16) or 1
            glob[d] = n if n <= per_dim_cap else per_dim_cap
        return tuple(local), tuple(glob)
    return (1, 1, 1), (1, 1, 1)


def specialize_sizes(fun: Lambda, size_env: Mapping[str, int]) -> Lambda:
    """Clone ``fun`` with every size variable — in parameter types and in
    pattern payloads (split factors, iterate counts, gather/scatter index
    functions) — replaced by its concrete value.

    The low-level benchmark programs are written this way by hand (gemv
    fixes ``K`` \"so the local staging buffers have compile-time sizes\");
    derived schedules that stage ``toLocal`` tiles need the same
    specialization, because OpenCL local arrays must have static sizes.
    Kernel cache keys stay on the *symbolic* program — the size
    environment is part of the key already."""
    from repro.arith import Cst, Var
    from repro.arith.expr import substitute
    from repro.types import ArrayType
    from repro.ir.visit import transform_calls

    env = {Var(k): Cst(int(v)) for k, v in size_env.items()}

    def subst_arith(x):
        return simplify(substitute(x, env))

    def subst_type(t):
        if isinstance(t, ArrayType):
            return ArrayType(subst_type(t.elem), subst_arith(t.length))
        return t

    def subst_idx_fun(fn: pat.IndexFun) -> pat.IndexFun:
        return pat.IndexFun(
            fn.name, lambda i, n, _f=fn.fn: substitute(_f(i, n), env)
        )

    def visit(call: FunCall) -> Optional[Expr]:
        f = call.f
        if isinstance(f, pat.Split):
            return FunCall(pat.Split(subst_arith(f.n)), list(call.args))
        if isinstance(f, pat.Iterate):
            return FunCall(pat.Iterate(subst_arith(f.n), f.f), list(call.args))
        if isinstance(f, (pat.Gather, pat.Scatter)):
            return FunCall(
                type(f)(subst_idx_fun(f.idx_fun)), list(call.args)
            )
        if isinstance(f, pat.Slide):
            return FunCall(
                pat.Slide(subst_arith(f.size), subst_arith(f.step)),
                list(call.args),
            )
        return None

    fresh = [Param(subst_type(p.type), p.name) for p in fun.params]
    body = clone_expr(fun.body, dict(zip(fun.params, fresh)))
    return Lambda(fresh, transform_calls(body, visit))


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------

def _enumerate(
    start: Expr, rules: list, config: ExploreConfig, stats: ExploreStats
) -> list:
    """Bounded BFS over rule applications; returns (body, trace) pairs."""
    seen = {canonical(start)}
    frontier: list = [(start, ())]
    derivations: list = [(start, ())]

    token = config.cancellation
    for level in range(config.depth):
        expired = config.deadline is not None and config.deadline.expired
        if (token is not None and token.cancelled) or expired:
            # Abort at a level boundary: the derivations found so far
            # still finish/rank, so a cancelled or out-of-budget search
            # returns cleanly.
            stats.aborted = True
            break
        next_frontier: list = []
        with obs.span(
            "explore.bfs-level", level=level, frontier=len(frontier)
        ):
            for body, trace in frontier:
                for rule in rules:
                    # One traversal yields every single-application variant
                    # (position order matches find_matches/apply_at).
                    for position, candidate in enumerate(
                        one_step_rewrites(rule, body)
                    ):
                        stats.enumerated += 1
                        key = canonical(candidate)
                        if key in seen:
                            stats.dedup_hits += 1
                            continue
                        seen.add(key)
                        entry = (
                            candidate, trace + (f"{rule.name}@{position}",)
                        )
                        next_frontier.append(entry)
                        derivations.append(entry)
                        if len(next_frontier) >= config.beam:
                            break
                    if len(next_frontier) >= config.beam:
                        break
                if len(next_frontier) >= config.beam:
                    break
        obs.observe("explore.level_width", len(next_frontier))
        frontier = next_frontier
        if not frontier:
            break
    return derivations


def explore_program(
    high_level: Lambda,
    inputs: Mapping[str, Any],
    size_env: Mapping[str, int],
    config: Optional[ExploreConfig] = None,
    cache=None,
) -> ExplorationResult:
    """Search the rewrite space of ``high_level`` and rank the survivors.

    ``inputs`` maps the program's parameter names to concrete values
    (arrays may be any shape; they are flattened for the simulator and
    nested for the interpreter).  ``cache`` is an optional
    :class:`repro.cache.TuningCache`.
    """
    config = config or ExploreConfig()
    stats = ExploreStats()
    profile = DEVICES[config.device]
    rules = config.rule_menu()

    with obs.span(
        "explore.enumerate", depth=config.depth, rules=len(rules)
    ):
        derivations = _enumerate(high_level.body, rules, config, stats)

    # -- finish, validate, dedup ----------------------------------------
    with obs.span("explore.finish", derivations=len(derivations)):
        finished: dict = {}
        for body, trace in derivations:
            for fin, finish_label in _finish_variants(body):
                full_trace = trace + ((finish_label,) if finish_label else ())
                program = clone_decl(Lambda(list(high_level.params), fin))
                assert isinstance(program, Lambda)
                key = canonical(program)
                if key in finished:
                    # Distinct derivations collapsing to one schedule after the
                    # finishing lowering; kept separate from the enumeration-time
                    # dedup_hits so dedup_hit_rate stays a fraction of enumerated.
                    stats.finish_dedup_hits += 1
                    continue
                typed = clone_decl(program)
                assert isinstance(typed, Lambda)
                try:
                    infer_types(typed.body)
                except Exception:
                    stats.invalid += 1
                    continue
                if not _nesting_ok(typed.body) or not _splits_divide(
                    typed.body, size_env
                ):
                    stats.invalid += 1
                    continue
                parallel = _collect_parallel(typed.body)
                if not parallel:
                    # An all-sequential schedule "wins" under the total-work
                    # cost model (no loop strides, no barriers) but is never a
                    # useful GPU schedule; the search only ranks parallel ones.
                    stats.invalid += 1
                    continue
                geometry = _geometry(parallel, size_env)
                if geometry is None:
                    stats.invalid += 1
                    continue
                local_size, global_size = geometry
                try:
                    static_cost = static_program_cost(
                        program, size_env, profile,
                        local_size=local_size, global_size=global_size,
                    )
                except Exception:
                    stats.invalid += 1
                    continue
                finished[key] = ExploredCandidate(
                    label="",
                    program=program,
                    trace=full_trace,
                    local_size=local_size,
                    global_size=global_size,
                    static_cost=static_cost,
                    canonical_form=key,
                )
    stats.finished = len(finished)

    # -- static prune ----------------------------------------------------
    ranked = sorted(
        finished.values(), key=lambda c: (c.static_cost, len(c.trace), c.trace)
    )
    survivors = ranked[: config.max_eval]
    stats.pruned = len(ranked) - len(survivors)
    for i, cand in enumerate(survivors):
        head = cand.trace[-1].split("@")[0] if cand.trace else "original"
        cand.label = f"#{i} {head} (depth {len(cand.trace)})"

    # -- reference -------------------------------------------------------
    with obs.span("explore.reference"):
        reference = np.asarray(
            apply_fun(
                high_level, interp_args(high_level, inputs, size_env), size_env
            ),
            dtype=float,
        ).ravel()

    # -- compile, simulate, verify --------------------------------------
    from repro.cache import fingerprint_inputs

    inputs_fp = fingerprint_inputs(inputs) if cache is not None else ""
    cache_before = replace(cache.stats) if cache is not None else None

    search_token = config.cancellation

    def _evaluate_once(
        cand: ExploredCandidate, events: dict, token: Optional[CancellationToken]
    ) -> ExploredCandidate:
        """One evaluation attempt: compile → simulate → verify.

        Raises :class:`_StageFailure` for deterministic stage failures,
        :class:`~repro.resilience.Cancelled` at a checkpoint after the
        token was cancelled, and lets transient errors (injected faults,
        ``OSError``...) propagate to the retry loop in ``evaluate``.
        """
        if token is not None:
            token.raise_if_cancelled()
        cand_hash = obs.analysis.short_hash(cand.canonical_form)
        options = CompilerOptions(local_size=cand.local_size)
        kernel = None
        key = None
        if cache is not None:
            key = cache.kernel_key(cand.program, options, size_env)
            kernel = cache.get_kernel(key)
        if kernel is None:
            try:
                with obs.span(
                    "explore.compile", candidate=cand.label,
                    structural_hash=cand_hash,
                ):
                    kernel = compile_kernel(
                        specialize_sizes(cand.program, size_env), options
                    )
            except TRANSIENT_ERRORS:
                raise
            except (CodeGenError, pat.LiftTypeError, ValueError) as exc:
                raise _StageFailure("compile", str(exc)) from exc
            events["compiled"] += 1
            if cache is not None:
                cache.put_kernel(key, kernel)

        if token is not None:
            token.raise_if_cancelled()
        cycles = None
        ck = None
        if cache is not None:
            ck = cache.cycles_key(
                key, inputs_fp, cand.global_size, cand.local_size,
                config.device, config.engine,
            )
            cycles = cache.get_cycles(ck)
        if cycles is None:
            kernel_inputs = {
                p.name: inputs[p.name] for p in cand.program.params
            }
            try:
                with obs.span(
                    "explore.simulate", candidate=cand.label,
                    structural_hash=cand_hash,
                ):
                    run = execute_kernel(
                        kernel, kernel_inputs, size_env, cand.global_size,
                        local_size=cand.local_size, engine=config.engine,
                    )
            except (Cancelled, DeadlineExceeded):
                raise
            except TRANSIENT_ERRORS:
                raise
            except Exception as exc:
                raise _StageFailure("simulate", str(exc)) from exc
            events["executed"] += 1
            if token is not None:
                token.raise_if_cancelled()
            faultinject.survive("verify")
            with obs.span(
                "explore.verify", candidate=cand.label,
                structural_hash=cand_hash,
            ):
                out = np.asarray(run.output, dtype=float).ravel()
                if config.rtol is None:
                    ok = out.shape == reference.shape and np.array_equal(
                        out, reference
                    )
                else:
                    ok = out.shape == reference.shape and np.allclose(
                        out, reference, rtol=config.rtol
                    )
            if not ok:
                raise _StageFailure("verify", "result differs from reference")
            cycles = estimate_cycles(run.counters, profile)
            if cache is not None:
                cache.put_cycles(ck, cycles)
        cand.cycles = cycles
        # Total work is what the cache stores (it is engine- and
        # geometry-keyed); the parallelism division is pure arithmetic.
        cand.runtime = runtime_from_cycles(
            cycles, profile, cand.global_size, cand.local_size
        )
        cand.kernel_source = kernel.source
        return cand

    def evaluate(cand: ExploredCandidate):
        """Fault-tolerant wrapper: watchdog deadline per attempt plus
        bounded retries with exponential backoff for transient errors.
        Returns ``(candidate | None, events, FailureReport | None)``."""
        events = {"compiled": 0, "executed": 0, "retries": 0}
        start = time.monotonic()

        def fail(kind: str, message: str, attempts: int):
            report = FailureReport(
                label=cand.label, trace=cand.trace, kind=kind,
                message=message, attempts=attempts,
                elapsed=time.monotonic() - start,
            )
            return None, dict(events), report

        delay = config.retry_backoff
        attempt = 0
        while True:
            attempt += 1
            # A child token per attempt: the watchdog cancels the
            # attempt's stray worker without aborting the whole search.
            attempt_token = (
                search_token.child() if search_token is not None
                else CancellationToken()
            )
            # The stage budget is the *remaining* request deadline
            # clamped by the per-candidate watchdog, never the full
            # candidate_timeout (deadline propagation).
            timeout = config.candidate_timeout
            if config.deadline is not None:
                if config.deadline.expired:
                    return fail(
                        "timeout", "request deadline exhausted", attempt
                    )
                timeout = config.deadline.clamp(config.candidate_timeout)
            try:
                if search_token is not None:
                    search_token.raise_if_cancelled()
                if timeout is not None:
                    result = run_with_deadline(
                        lambda: _evaluate_once(cand, events, attempt_token),
                        timeout,
                        token=attempt_token,
                    )
                else:
                    result = _evaluate_once(cand, events, attempt_token)
                events["elapsed"] = time.monotonic() - start
                return result, dict(events), None
            except _StageFailure as exc:
                return fail(exc.kind, exc.message, attempt)
            except Cancelled:
                return fail("cancelled", "exploration cancelled", attempt)
            except DeadlineExceeded as exc:
                return fail("timeout", str(exc), attempt)
            except TRANSIENT_ERRORS as exc:
                if attempt > config.retries:
                    return fail(
                        "infra", f"{type(exc).__name__}: {exc}", attempt
                    )
                events["retries"] += 1
                obs.instant(
                    "explore.retry", candidate=cand.label, attempt=attempt,
                    error=type(exc).__name__,
                )
                obs.inc("explore.retries")
                time.sleep(
                    delay
                    * deterministic_jitter(
                        cand.label, attempt, config.retry_jitter
                    )
                )
                delay = min(delay * 2, 1.0)
            except Exception as exc:  # unexpected: infra, not retried
                return fail(
                    "infra",
                    f"unexpected {type(exc).__name__}: {exc}",
                    attempt,
                )

    from repro.opencl import simt_compile

    _FAILURE_STAT = {
        "compile": "compile_failures",
        "simulate": "simulate_failures",
        "verify": "verify_failures",
        "infra": "infra_failures",
        "timeout": "timeouts",
        "cancelled": "cancelled",
    }

    pipelines_before = simt_compile.compile_count()
    evaluated: list = []
    failures: list = []
    workload = config.workload or "adhoc"
    with obs.span(
        "explore.evaluate", candidates=len(survivors),
        workers=max(1, config.workers),
        engine=config.engine or "auto", device=config.device,
        workload=workload,
    ), ThreadPoolExecutor(max_workers=max(1, config.workers)) as pool:
        scheduled = []
        for cand in survivors:
            if search_token is not None and search_token.cancelled:
                stats.aborted = True
                stats.cancelled += 1
                failures.append(
                    FailureReport(
                        label=cand.label, trace=cand.trace, kind="cancelled",
                        message="cancelled before evaluation started",
                        attempts=0,
                    )
                )
                continue
            scheduled.append(pool.submit(evaluate, cand))
        for future in scheduled:
            cand, events, report = future.result()
            stats.compilations += events["compiled"]
            stats.executions += events["executed"]
            stats.retries += events["retries"]
            if report is not None:
                failures.append(report)
                setattr(
                    stats,
                    _FAILURE_STAT[report.kind],
                    getattr(stats, _FAILURE_STAT[report.kind]) + 1,
                )
                if report.kind == "cancelled":
                    stats.aborted = True
                continue
            evaluated.append(cand)
            # Out-of-band calibration record: prediction (static cost)
            # next to measurement (counter-model runtime) — what
            # ``benchsuite calibrate`` summarizes and CI gates on.
            obs.analysis.record_candidate(
                workload=workload,
                label=cand.label,
                canonical_text=cand.canonical_form,
                trace=cand.trace,
                static_cost=cand.static_cost,
                modeled_runtime=cand.runtime,
                measured_cycles=cand.cycles,
                wall_seconds=events.get("elapsed"),
            )
    stats.evaluated = len(evaluated)
    stats.pipeline_compiles = simt_compile.compile_count() - pipelines_before

    if cache is not None and cache_before is not None:
        after = cache.stats
        stats.kernel_cache_hits = after.kernel_hits - cache_before.kernel_hits
        stats.kernel_cache_misses = (
            after.kernel_misses - cache_before.kernel_misses
        )
        stats.cycle_cache_hits = after.cycle_hits - cache_before.cycle_hits
        stats.cycle_cache_misses = after.cycle_misses - cache_before.cycle_misses

    evaluated.sort(key=lambda c: (c.runtime, len(c.trace), c.trace))
    # The latest search owns the metrics snapshot's "explore" slot.
    obs.register_explore(stats, failures)
    return ExplorationResult(
        candidates=evaluated, stats=stats, failures=failures
    )
