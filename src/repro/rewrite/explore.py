"""Derivation-tree exploration of the rewrite space.

The paper's Figure 1 separates *optimization* (rewrite rules plus
exploration, prior work [18]) from *code generation*.  The fixed menu in
:mod:`repro.rewrite.autotune` covers the code-generation evaluation; this
module closes the optimization loop with an actual search over the rule
set of :mod:`repro.rewrite.rules`.

Search
------
Starting from a high-level ``Lambda``, the engine runs a bounded
breadth-first enumeration: at every level it applies each rule of the
menu at every matching position (via
:func:`repro.rewrite.strategies.find_matches` /
:func:`~repro.rewrite.strategies.apply_at`), recording the derivation
trace ``rule@position``.  The frontier is deduplicated with the
structural hash of :mod:`repro.ir.structural` — alpha-equivalent
programs (every rule application clones and renames) collapse to one
node — and capped at ``beam`` programs per level.

Every enumerated derivation is then *finished* into an executable
schedule: if no parallel map was chosen yet, the outermost high-level
``map`` becomes ``mapGlb``; remaining high-level patterns are lowered
sequentially (``map → mapSeq``, ``reduce → reduceSeq``).  A structural
validity check rejects schedules the OpenCL thread hierarchy cannot
express (nested ``mapGlb`` over the same dimension, ``mapLcl`` outside a
work-group, parallel patterns under sequential ones, split factors that
do not divide their input length).

Pruning
-------
Surviving candidates are ranked by the *static* cost estimate
(:func:`repro.opencl.cost.static_program_cost`) — no compilation or
execution happens yet — and only the ``max_eval`` cheapest proceed.

Evaluation
----------
Survivors go through compile → simulate → verify on a
``concurrent.futures`` thread pool.  Execution results are verified
*bitwise* against the reference interpreter running the original
high-level program (our rules never reorder floating-point reductions,
so a correct schedule reproduces the exact bits).  Ranking uses the
measured-counter cost model (:func:`repro.opencl.cost.estimate_cycles`).

Cache key
---------
With a :class:`repro.cache.TuningCache`, compilation is keyed by
``(structural hash of the program, CompilerOptions, size env)`` and
measured cycles additionally by ``(input fingerprint, launch geometry,
device, engine)``.  A warm cache therefore performs zero recompilations
and zero re-executions for unchanged programs; the explorer reports both
hit-rates in its stats.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.types import ArrayType
from repro.ir.nodes import Expr, FunCall, Lambda, Param
from repro.ir import patterns as pat
from repro.ir.interp import apply_fun
from repro.ir.structural import canonical
from repro.ir.typecheck import infer_types
from repro.ir.visit import clone_decl, post_order
from repro.arith import simplify
from repro.compiler.codegen import CodeGenError, compile_kernel
from repro.compiler.kernel import execute_kernel
from repro.compiler.options import CompilerOptions
from repro.opencl.cost import DEVICES, estimate_cycles, static_program_cost
from repro.rewrite.autotune import interp_args
from repro.rewrite.rules import (
    Rule,
    fusion_rules,
    lowering_rules,
    map_to_seq,
    reduce_to_seq,
    simplification_rules,
    split_join,
    to_local_insertion,
)
from repro.rewrite.strategies import exhaustively, one_step_rewrites


class ExplorationError(Exception):
    pass


@dataclass
class ExploreConfig:
    """Knobs of the derivation search (see the module docstring)."""

    depth: int = 3
    beam: int = 64
    max_eval: int = 16
    chunks: Sequence[int] = (4, 8, 16, 32, 64)
    device: str = "nvidia"
    engine: Optional[str] = None
    workers: int = 4
    extra_rules: Sequence[Rule] = ()
    #: ``None`` demands bitwise equality with the reference interpreter;
    #: a float relaxes verification to ``np.allclose`` at that rtol.
    rtol: Optional[float] = None

    def rule_menu(self) -> list:
        rules = list(lowering_rules())
        rules += fusion_rules()
        rules += simplification_rules()
        rules += [split_join(k) for k in self.chunks]
        rules += [to_local_insertion()]
        rules += list(self.extra_rules)
        return rules


@dataclass
class ExploreStats:
    enumerated: int = 0
    dedup_hits: int = 0
    finish_dedup_hits: int = 0
    finished: int = 0
    invalid: int = 0
    pruned: int = 0
    evaluated: int = 0
    compilations: int = 0
    executions: int = 0
    compile_failures: int = 0
    verify_failures: int = 0
    kernel_cache_hits: int = 0
    kernel_cache_misses: int = 0
    cycle_cache_hits: int = 0
    cycle_cache_misses: int = 0
    #: Closure pipelines compiled during evaluation — at most one per
    #: distinct kernel; repeat launches of a candidate reuse the
    #: pipeline through the source-keyed parse LRU (see
    #: :mod:`repro.opencl.simt_compile`).
    pipeline_compiles: int = 0

    def dedup_hit_rate(self) -> float:
        return self.dedup_hits / self.enumerated if self.enumerated else 0.0

    def kernel_cache_hit_rate(self) -> float:
        total = self.kernel_cache_hits + self.kernel_cache_misses
        return self.kernel_cache_hits / total if total else 0.0

    def cycle_cache_hit_rate(self) -> float:
        total = self.cycle_cache_hits + self.cycle_cache_misses
        return self.cycle_cache_hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "enumerated": self.enumerated,
            "dedup_hits": self.dedup_hits,
            "dedup_hit_rate": round(self.dedup_hit_rate(), 4),
            "finish_dedup_hits": self.finish_dedup_hits,
            "finished": self.finished,
            "invalid": self.invalid,
            "pruned": self.pruned,
            "evaluated": self.evaluated,
            "compilations": self.compilations,
            "executions": self.executions,
            "compile_failures": self.compile_failures,
            "verify_failures": self.verify_failures,
            "kernel_cache_hits": self.kernel_cache_hits,
            "kernel_cache_misses": self.kernel_cache_misses,
            "kernel_cache_hit_rate": round(self.kernel_cache_hit_rate(), 4),
            "cycle_cache_hits": self.cycle_cache_hits,
            "cycle_cache_misses": self.cycle_cache_misses,
            "cycle_cache_hit_rate": round(self.cycle_cache_hit_rate(), 4),
            "pipeline_compiles": self.pipeline_compiles,
        }


@dataclass
class ExploredCandidate:
    """One finished, schedulable point of the derivation space."""

    label: str
    program: Lambda
    trace: tuple
    local_size: tuple
    global_size: tuple
    static_cost: float
    cycles: Optional[float] = None
    kernel_source: Optional[str] = None

    def describe_trace(self) -> str:
        return " -> ".join(self.trace) if self.trace else "(original)"


@dataclass
class ExplorationResult:
    candidates: list  # evaluated ExploredCandidates, best first
    stats: ExploreStats

    def best(self) -> ExploredCandidate:
        if not self.candidates:
            raise ExplorationError("exploration produced no runnable candidate")
        return self.candidates[0]

    def describe(self, top: int = 5) -> str:
        lines = ["exploration ranking (fewest estimated cycles first):"]
        for rank, cand in enumerate(self.candidates[:top], 1):
            lines.append(
                f"  {rank}. {cand.label:<34} {cand.cycles:>12.0f} cycles"
            )
            lines.append(f"     derivation: {cand.describe_trace()}")
        s = self.stats
        lines.append(
            f"  [{s.enumerated} enumerated, dedup hit-rate "
            f"{s.dedup_hit_rate():.0%}, {s.evaluated} evaluated, "
            f"kernel cache hit-rate {s.kernel_cache_hit_rate():.0%}]"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# schedule validity and geometry
# ---------------------------------------------------------------------------

def _finish(body: Expr) -> Optional[Expr]:
    """Lower whatever the search left high-level into an executable form."""
    from repro.rewrite.lowering import _replace_outermost_map

    has_parallel = any(
        isinstance(e, FunCall) and isinstance(e.f, pat.ParallelMap)
        for e in post_order(body)
    )
    if not has_parallel:
        try:
            body = _replace_outermost_map(body, lambda f: pat.MapGlb(f, 0))
        except ValueError:
            pass  # no high-level map on the spine: a sequential schedule
    try:
        return exhaustively([map_to_seq(), reduce_to_seq()], body)
    except RuntimeError:
        return None


def _nesting_ok(body: Expr) -> bool:
    """OpenCL thread-hierarchy wellformedness of the parallel patterns."""

    def walk(e: Expr, active: frozenset, seq: bool) -> bool:
        if not isinstance(e, FunCall):
            return True
        f = e.f
        while isinstance(f, pat.AddressSpaceWrapper):
            f = f.f
        inner_active, inner_seq = active, seq
        if isinstance(f, pat.MapGlb):
            if seq or any(kind in ("wrg", "lcl") for kind, _ in active):
                return False
            if ("glb", f.dim) in active:
                return False
            inner_active = active | {("glb", f.dim)}
        elif isinstance(f, pat.MapWrg):
            if seq or ("wrg", f.dim) in active:
                return False
            if any(kind in ("glb", "lcl") for kind, _ in active):
                return False
            inner_active = active | {("wrg", f.dim)}
        elif isinstance(f, pat.MapLcl):
            if seq or ("lcl", f.dim) in active:
                return False
            if ("wrg", f.dim) not in active:
                return False
            if any(kind == "glb" for kind, _ in active):
                return False
            inner_active = active | {("lcl", f.dim)}
        elif isinstance(f, (pat.MapSeq, pat.ReduceSeq, pat.Iterate)):
            inner_seq = True

        for a in e.args:
            if not walk(a, active, seq):
                return False
        if isinstance(f, (pat.AbstractMap, pat.ReduceSeq, pat.Iterate)):
            g = f.f
            while isinstance(g, pat.AddressSpaceWrapper):
                g = g.f
            if isinstance(g, Lambda):
                return walk(g.body, inner_active, inner_seq)
        return True

    if not walk(body, frozenset(), False):
        return False

    # Every work-group map must actually use local parallelism.
    for e in post_order(body):
        if isinstance(e, FunCall) and isinstance(e.f, pat.MapWrg):
            if not any(
                isinstance(x, FunCall) and isinstance(x.f, pat.MapLcl)
                for x in post_order(e)
                if x is not e
            ):
                return False
    return True


def _splits_divide(body: Expr, size_env: Mapping[str, int]) -> bool:
    """Split factors must divide their (typed) input lengths exactly."""
    for e in post_order(body):
        if isinstance(e, FunCall) and isinstance(e.f, pat.Split):
            arg_t = e.args[0].type
            if not isinstance(arg_t, ArrayType):
                return False
            try:
                n = int(simplify(arg_t.length).evaluate(dict(size_env)))
                k = int(simplify(e.f.n).evaluate(dict(size_env)))
            except Exception:
                continue  # symbolic: let the type checker decide
            if k <= 0 or n % k:
                return False
    return True


def _collect_parallel(body: Expr) -> list:
    """Pre-order ``(kind, dim, trip-length-expr)`` of parallel map calls."""
    found: list = []

    def walk(e: Expr) -> None:
        if not isinstance(e, FunCall):
            return
        f = e.f
        while isinstance(f, pat.AddressSpaceWrapper):
            f = f.f
        if isinstance(f, pat.ParallelMap):
            kind = {pat.MapGlb: "glb", pat.MapWrg: "wrg", pat.MapLcl: "lcl"}[
                type(f)
            ]
            arg_t = e.args[0].type
            length = arg_t.length if isinstance(arg_t, ArrayType) else None
            found.append((kind, f.dim, length))
        if isinstance(f, (pat.AbstractMap, pat.ReduceSeq, pat.Iterate)):
            g = f.f
            while isinstance(g, pat.AddressSpaceWrapper):
                g = g.f
            if isinstance(g, Lambda):
                walk(g.body)
        for a in e.args:
            walk(a)

    walk(body)
    return found


def _geometry(
    parallel: list, size_env: Mapping[str, int]
) -> Optional[tuple]:
    """Launch geometry (local_size, global_size) for a valid schedule."""

    def ev(length) -> Optional[int]:
        if length is None:
            return None
        try:
            return int(simplify(length).evaluate(dict(size_env)))
        except Exception:
            return None

    wrgs = [ev(t) for k, d, t in parallel if k == "wrg" and d == 0]
    lcls = [ev(t) for k, d, t in parallel if k == "lcl" and d == 0]
    glbs = [ev(t) for k, d, t in parallel if k == "glb" and d == 0]

    if wrgs:
        groups, chunk = wrgs[0], (lcls[0] if lcls else 1)
        if groups is None or chunk is None:
            return None
        local0 = min(chunk, 64)
        return (local0, 1, 1), (groups * local0, 1, 1)
    if glbs:
        n = glbs[0]
        if n is None:
            return None
        from repro.rewrite.autotune import flat_global_geometry

        return flat_global_geometry(n)
    return (1, 1, 1), (1, 1, 1)


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------

def _enumerate(
    start: Expr, rules: list, config: ExploreConfig, stats: ExploreStats
) -> list:
    """Bounded BFS over rule applications; returns (body, trace) pairs."""
    seen = {canonical(start)}
    frontier: list = [(start, ())]
    derivations: list = [(start, ())]

    for _ in range(config.depth):
        next_frontier: list = []
        for body, trace in frontier:
            for rule in rules:
                # One traversal yields every single-application variant
                # (position order matches find_matches/apply_at).
                for position, candidate in enumerate(
                    one_step_rewrites(rule, body)
                ):
                    stats.enumerated += 1
                    key = canonical(candidate)
                    if key in seen:
                        stats.dedup_hits += 1
                        continue
                    seen.add(key)
                    entry = (candidate, trace + (f"{rule.name}@{position}",))
                    next_frontier.append(entry)
                    derivations.append(entry)
                    if len(next_frontier) >= config.beam:
                        break
                if len(next_frontier) >= config.beam:
                    break
            if len(next_frontier) >= config.beam:
                break
        frontier = next_frontier
        if not frontier:
            break
    return derivations


def explore_program(
    high_level: Lambda,
    inputs: Mapping[str, Any],
    size_env: Mapping[str, int],
    config: Optional[ExploreConfig] = None,
    cache=None,
) -> ExplorationResult:
    """Search the rewrite space of ``high_level`` and rank the survivors.

    ``inputs`` maps the program's parameter names to concrete values
    (arrays may be any shape; they are flattened for the simulator and
    nested for the interpreter).  ``cache`` is an optional
    :class:`repro.cache.TuningCache`.
    """
    config = config or ExploreConfig()
    stats = ExploreStats()
    profile = DEVICES[config.device]
    rules = config.rule_menu()

    derivations = _enumerate(high_level.body, rules, config, stats)

    # -- finish, validate, dedup ----------------------------------------
    finished: dict = {}
    for body, trace in derivations:
        fin = _finish(body)
        if fin is None:
            stats.invalid += 1
            continue
        program = clone_decl(Lambda(list(high_level.params), fin))
        assert isinstance(program, Lambda)
        key = canonical(program)
        if key in finished:
            # Distinct derivations collapsing to one schedule after the
            # finishing lowering; kept separate from the enumeration-time
            # dedup_hits so dedup_hit_rate stays a fraction of enumerated.
            stats.finish_dedup_hits += 1
            continue
        typed = clone_decl(program)
        assert isinstance(typed, Lambda)
        try:
            infer_types(typed.body)
        except Exception:
            stats.invalid += 1
            continue
        if not _nesting_ok(typed.body) or not _splits_divide(typed.body, size_env):
            stats.invalid += 1
            continue
        parallel = _collect_parallel(typed.body)
        if not parallel:
            # An all-sequential schedule "wins" under the total-work cost
            # model (no loop strides, no barriers) but is never a useful
            # GPU schedule; the search only ranks parallel ones.
            stats.invalid += 1
            continue
        geometry = _geometry(parallel, size_env)
        if geometry is None:
            stats.invalid += 1
            continue
        try:
            static_cost = static_program_cost(program, size_env, profile)
        except Exception:
            stats.invalid += 1
            continue
        local_size, global_size = geometry
        finished[key] = ExploredCandidate(
            label="",
            program=program,
            trace=trace,
            local_size=local_size,
            global_size=global_size,
            static_cost=static_cost,
        )
    stats.finished = len(finished)

    # -- static prune ----------------------------------------------------
    ranked = sorted(
        finished.values(), key=lambda c: (c.static_cost, len(c.trace), c.trace)
    )
    survivors = ranked[: config.max_eval]
    stats.pruned = len(ranked) - len(survivors)
    for i, cand in enumerate(survivors):
        head = cand.trace[-1].split("@")[0] if cand.trace else "original"
        cand.label = f"#{i} {head} (depth {len(cand.trace)})"

    # -- reference -------------------------------------------------------
    reference = np.asarray(
        apply_fun(high_level, interp_args(high_level, inputs, size_env), size_env),
        dtype=float,
    ).ravel()

    # -- compile, simulate, verify --------------------------------------
    from repro.cache import fingerprint_inputs

    inputs_fp = fingerprint_inputs(inputs) if cache is not None else ""
    cache_before = replace(cache.stats) if cache is not None else None

    def evaluate(cand: ExploredCandidate):
        options = CompilerOptions(local_size=cand.local_size)
        events = {"compiled": 0, "executed": 0}
        kernel = None
        key = None
        if cache is not None:
            key = cache.kernel_key(cand.program, options, size_env)
            kernel = cache.get_kernel(key)
        if kernel is None:
            try:
                kernel = compile_kernel(cand.program, options)
            except (CodeGenError, pat.LiftTypeError) as exc:
                return None, events, f"compile: {exc}"
            events["compiled"] = 1
            if cache is not None:
                cache.put_kernel(key, kernel)

        cycles = None
        ck = None
        if cache is not None:
            ck = cache.cycles_key(
                key, inputs_fp, cand.global_size, cand.local_size,
                config.device, config.engine,
            )
            cycles = cache.get_cycles(ck)
        if cycles is None:
            kernel_inputs = {
                p.name: inputs[p.name] for p in cand.program.params
            }
            try:
                run = execute_kernel(
                    kernel, kernel_inputs, size_env, cand.global_size,
                    local_size=cand.local_size, engine=config.engine,
                )
            except Exception as exc:
                return None, events, f"execute: {exc}"
            events["executed"] = 1
            out = np.asarray(run.output, dtype=float).ravel()
            if config.rtol is None:
                ok = out.shape == reference.shape and np.array_equal(out, reference)
            else:
                ok = out.shape == reference.shape and np.allclose(
                    out, reference, rtol=config.rtol
                )
            if not ok:
                return None, events, "verify: result differs from reference"
            cycles = estimate_cycles(run.counters, profile)
            if cache is not None:
                cache.put_cycles(ck, cycles)
        cand.cycles = cycles
        cand.kernel_source = kernel.source
        return cand, events, None

    from repro.opencl import simt_compile

    pipelines_before = simt_compile.compile_count()
    evaluated: list = []
    with ThreadPoolExecutor(max_workers=max(1, config.workers)) as pool:
        for cand, events, error in pool.map(evaluate, survivors):
            stats.compilations += events["compiled"]
            stats.executions += events["executed"]
            if error is not None:
                if error.startswith("compile"):
                    stats.compile_failures += 1
                elif error.startswith("verify"):
                    stats.verify_failures += 1
                else:
                    stats.compile_failures += 1
                continue
            evaluated.append(cand)
    stats.evaluated = len(evaluated)
    stats.pipeline_compiles = simt_compile.compile_count() - pipelines_before

    if cache is not None and cache_before is not None:
        after = cache.stats
        stats.kernel_cache_hits = after.kernel_hits - cache_before.kernel_hits
        stats.kernel_cache_misses = (
            after.kernel_misses - cache_before.kernel_misses
        )
        stats.cycle_cache_hits = after.cycle_hits - cache_before.cycle_hits
        stats.cycle_cache_misses = after.cycle_misses - cache_before.cycle_misses

    evaluated.sort(key=lambda c: (c.cycles, len(c.trace), c.trace))
    return ExplorationResult(candidates=evaluated, stats=stats)
