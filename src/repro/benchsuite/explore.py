"""Rewrite-space exploration over benchmark programs.

``python -m repro.benchsuite explore [benchmark ...]`` runs the
derivation-tree search of :mod:`repro.rewrite.explore` on each
benchmark's portable high-level program, prints the winner with its
derivation trace and launch geometry, and compares it against the fixed
lowering menu of :func:`repro.rewrite.autotune.default_candidates` (the
paper-era baseline).  Ranking is by parallelism-aware estimated runtime
(:func:`repro.opencl.cost.estimate_runtime`); the report also records
where the measured winner sat in the *static* pre-execution ranking —
the acceptance bar is that the parallelism-aware static model puts the
derived schedule ahead before anything runs.  The same entry points feed
``benchmarks/bench_explore.py``, which records the metrics in
``BENCH_explore.json``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import obs
from repro.cache import TuningCache
from repro.rewrite.autotune import autotune
from repro.rewrite.explore import ExploreConfig, explore_program
from repro.benchsuite.common import get_benchmark

#: Benchmarks whose high-level program the explorer currently handles
#: (single-stage, parameters named after the input dictionary).  ``mm``
#: is the registry alias for the matrix multiplication high-level
#: program (shared by both Table 1 reference variants).
EXPLORABLE = ("nn", "gemv", "mm")


def explore_benchmark(
    name: str,
    depth: int = 3,
    max_eval: int = 12,
    size: str = "small",
    cache: Optional[TuningCache] = None,
    device: str = "nvidia",
    engine: Optional[str] = None,
) -> dict:
    """Explore one benchmark; returns a JSON-friendly metrics dict."""
    bench = get_benchmark(name)
    inputs, size_env = bench.inputs_for(size)
    high_level = bench.high_level(size_env)
    config = ExploreConfig(
        depth=depth, max_eval=max_eval, device=device, engine=engine,
        workload=name,
    )

    # timed_span measures whether or not tracing is active, so the
    # reported seconds equal the span durations in the trace — one
    # clock, one mechanism (satellite of the repro.obs work).
    with obs.timed_span(
        "explore", benchmark=name, size=size, depth=depth
    ) as explore_span:
        result = explore_program(
            high_level, inputs, size_env, config=config, cache=cache
        )

    with obs.timed_span("menu", benchmark=name, size=size) as menu_span:
        menu_results = autotune(
            high_level, inputs, size_env, device=device, engine=engine
        )
    explore_seconds = explore_span.elapsed
    menu_seconds = menu_span.elapsed

    best = result.best()
    menu_best = menu_results[0]
    static_order = sorted(result.candidates, key=lambda c: c.static_cost)
    winner_static_rank = static_order.index(best)
    return {
        "benchmark": name,
        "size": size,
        "depth": depth,
        "explorer_best_runtime": best.runtime,
        "explorer_best_cycles": best.cycles,
        "explorer_best_trace": list(best.trace),
        "winner_local_size": list(best.local_size),
        "winner_global_size": list(best.global_size),
        "winner_static_rank": winner_static_rank,
        "menu_best_runtime": menu_best.runtime,
        "menu_best_cycles": menu_best.cycles,
        "menu_best_label": menu_best.candidate.label,
        "best_vs_menu": (
            best.runtime / menu_best.runtime if menu_best.runtime else None
        ),
        "explore_seconds": round(explore_seconds, 3),
        "menu_seconds": round(menu_seconds, 3),
        "stats": result.stats.as_dict(),
        "ranking": [
            {
                "label": c.label,
                "runtime": c.runtime,
                "cycles": c.cycles,
                "trace": list(c.trace),
            }
            for c in result.candidates[:5]
        ],
    }


def run_explore(
    names: Optional[Sequence[str]] = None,
    depth: int = 3,
    max_eval: int = 12,
    size: str = "small",
    cache_dir: Optional[str] = None,
    device: str = "nvidia",
    engine: Optional[str] = None,
) -> dict:
    cache = TuningCache(cache_dir) if cache_dir is not None else TuningCache()
    entries = [
        explore_benchmark(
            name, depth=depth, max_eval=max_eval, size=size, cache=cache,
            device=device, engine=engine,
        )
        for name in (names or EXPLORABLE)
    ]
    return {
        "config": {
            "depth": depth,
            "max_eval": max_eval,
            "size": size,
            "device": device,
            "cache_dir": str(cache.root),
        },
        "benchmarks": entries,
    }


def format_explore(data: dict) -> str:
    lines = [
        "Rewrite-space exploration "
        f"(depth {data['config']['depth']}, size {data['config']['size']}, "
        f"cache {data['config']['cache_dir']})",
        "",
    ]
    for entry in data["benchmarks"]:
        ratio = entry["best_vs_menu"]
        stats = entry["stats"]
        local = "x".join(str(v) for v in entry["winner_local_size"])
        glob = "x".join(str(v) for v in entry["winner_global_size"])
        lines.append(f"== {entry['benchmark']} ==")
        lines.append(
            f"  winner: runtime {entry['explorer_best_runtime']:.1f} "
            f"({entry['explorer_best_cycles']:.0f} cycles, "
            f"global {glob}, local {local})"
        )
        lines.append(
            f"  menu best: runtime {entry['menu_best_runtime']:.1f} = "
            f"{entry['menu_best_label']} (ratio {ratio:.3f}; "
            f"static rank of winner: #{entry['winner_static_rank']})"
        )
        trace = entry["explorer_best_trace"]
        lines.append(
            "  derivation: " + (" -> ".join(trace) if trace else "(original)")
        )
        lines.append(
            f"  search: {stats['enumerated']} enumerated, "
            f"dedup hit-rate {stats['dedup_hit_rate']:.0%}, "
            f"{stats['evaluated']} evaluated, "
            f"{stats['compilations']} compiled, "
            f"kernel cache hit-rate {stats['kernel_cache_hit_rate']:.0%}, "
            f"cycle cache hit-rate {stats['cycle_cache_hit_rate']:.0%}"
        )
        lines.append(
            f"  time: explore {entry['explore_seconds']:.2f}s, "
            f"menu {entry['menu_seconds']:.2f}s"
        )
        lines.append("")
    return "\n".join(lines)
