"""Command-line entry point: regenerate the paper's evaluation.

    python -m repro.benchsuite table1
    python -m repro.benchsuite figure6
    python -m repro.benchsuite figure8 [--sizes small large] [--benchmarks nn gemv ...]
    python -m repro.benchsuite explore [--benchmarks nn gemv ...] [--depth 3] [--cache-dir DIR]
    python -m repro.benchsuite calibrate [--benchmarks nn gemv mm] [--depth 3]
    python -m repro.benchsuite hammer [--clients 8] [--requests-per-client 6] [--fault-plan 'seed=11;rate=0.05']
    python -m repro.benchsuite report --inputs m1.json m2.json --output perf-report.md
    python -m repro.benchsuite all
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.benchsuite",
        description="Regenerate the Lift paper's evaluation artifacts.",
    )
    parser.add_argument(
        "experiment",
        choices=["table1", "figure6", "figure8", "explore", "calibrate",
                 "hammer", "report", "all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--sizes", nargs="+", default=["small"],
        choices=["small", "large"], help="input sizes for figure8",
    )
    parser.add_argument(
        "--benchmarks", nargs="+", default=None,
        help="restrict figure8/table1/explore to these benchmarks",
    )
    parser.add_argument(
        "--depth", type=int, default=3,
        help="rewrite-space search depth for explore",
    )
    parser.add_argument(
        "--max-eval", type=int, default=12,
        help="how many explore candidates to compile and simulate",
    )
    parser.add_argument(
        "--device", default="nvidia", choices=["nvidia", "amd"],
        help="device profile for explore's cost model",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="tuning-cache directory for explore/figure8 (default: "
             "REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="run figure8 without the tuning cache",
    )
    parser.add_argument(
        "--engine", default=None,
        help="execution backend for figure8/explore launches (any name "
             "registered in repro.backend: auto, fused, compiled, interp, "
             "scalar, ...)",
    )
    parser.add_argument(
        "--clients", type=int, default=8,
        help="concurrent client threads for the hammer service soak",
    )
    parser.add_argument(
        "--requests-per-client", type=int, default=6,
        help="seeded mixed warm/cold requests each hammer client issues",
    )
    parser.add_argument(
        "--journal-dir", default=None,
        help="recovery-journal directory for the hammer's service "
             "(default: a fresh temporary directory)",
    )
    parser.add_argument(
        "--fault-plan", default=None,
        help="deterministic fault-injection spec (same syntax as "
             "REPRO_FAULT_PLAN, e.g. 'seed=11;rate=0.05'); recoveries "
             "are reported after the run",
    )
    parser.add_argument(
        "--inputs", nargs="+", default=None, metavar="PATH",
        help="metrics-snapshot JSON files the report command merges "
             "(default: the live in-process snapshot)",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the report markdown to PATH (default: stdout)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a Chrome trace_event JSON of the run to PATH "
             "(load it in chrome://tracing or ui.perfetto.dev; same as "
             "REPRO_TRACE)",
    )
    parser.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="dump the unified metrics snapshot (cache, explorer, "
             "ledger, fault sites, per-tier launch counts) to PATH",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="profile per-barrier-segment time and per-buffer traffic "
             "in the compiled/fused backends and print the table "
             "(same as REPRO_PROFILE=1)",
    )
    args = parser.parse_args(argv)

    from repro import faultinject, obs

    if args.trace is not None:
        obs.start_tracing(args.trace)
    if args.profile:
        obs.profile.enable()

    if args.fault_plan is not None:
        faultinject.set_plan(args.fault_plan)  # fail fast on bad specs

    if args.engine is not None:
        from repro.backend import resolve

        resolve(args.engine)  # fail fast with the list of valid names

    if args.experiment in ("table1", "all"):
        from repro.benchsuite.table1 import format_table1, run_table1

        print(format_table1(run_table1(args.benchmarks)))
        print()

    if args.experiment in ("figure6", "all"):
        from repro.benchsuite.figure6 import format_figure6

        print(format_figure6())
        print()

    if args.experiment in ("figure8", "all"):
        from repro.benchsuite.figure8 import format_figure8, run_figure8

        cache = None
        if not args.no_cache:
            from repro.cache import TuningCache

            cache = TuningCache(args.cache_dir)
        cells = run_figure8(
            args.benchmarks, sizes=tuple(args.sizes), cache=cache,
            engine=args.engine,
        )
        print(format_figure8(cells))
        if cache is not None:
            s = cache.stats
            print(
                f"[tuning cache: {s.run_hits} run hits / "
                f"{s.run_misses} misses, {s.kernel_hits} kernel hits]"
            )
            _print_cache_recoveries(s)
    _print_resilience_summary()

    status = 0
    if args.experiment == "hammer":
        from repro.benchsuite.hammer import format_hammer, run_hammer

        report = run_hammer(
            clients=args.clients,
            requests_per_client=args.requests_per_client,
            cache_dir=args.cache_dir,
            journal_dir=args.journal_dir,
            engine=args.engine,
        )
        print(format_hammer(report))
        _print_resilience_summary()
        if not report["ok"]:
            status = 1

    if args.experiment == "calibrate":
        from repro.benchsuite.calibrate import format_calibrate, run_calibrate

        data = run_calibrate(
            args.benchmarks,
            depth=args.depth,
            max_eval=args.max_eval,
            size=args.sizes[0],
            device=args.device,
            engine=args.engine,
        )
        print(format_calibrate(data))
        _print_resilience_summary()

    if args.experiment == "report":
        from repro.benchsuite.report import build_report

        markdown = build_report(args.inputs or ())
        if args.output is not None:
            with open(args.output, "w") as fh:
                fh.write(markdown + "\n")
            print(f"[perf report written to {args.output}]", file=sys.stderr)
        else:
            print(markdown)

    if args.experiment == "explore":
        from repro.benchsuite.explore import format_explore, run_explore

        data = run_explore(
            args.benchmarks,
            depth=args.depth,
            max_eval=args.max_eval,
            size=args.sizes[0],
            cache_dir=args.cache_dir,
            device=args.device,
            engine=args.engine,
        )
        print(format_explore(data))
        _print_resilience_summary()

    if args.profile:
        print(obs.profile.format_table(), file=sys.stderr)
    if args.metrics_json is not None:
        import json

        with open(args.metrics_json, "w") as fh:
            json.dump(obs.snapshot(), fh, indent=2, default=str)
        print(f"[metrics snapshot written to {args.metrics_json}]",
              file=sys.stderr)
    if args.trace is not None:
        path = obs.stop_tracing()
        if path is not None:
            print(f"[trace written to {path}]", file=sys.stderr)

    return status


def _print_cache_recoveries(stats) -> None:
    """Surface every non-silent cache recovery (nothing when clean).

    Diagnostics go to stderr: stdout carries the artifact tables, which
    must stay byte-identical across engines and fault plans."""
    recovered = {
        "quarantined": stats.quarantined,
        "io errors": stats.io_errors,
        "evictions": stats.evictions,
        "write skips": stats.write_skips,
        "faults recovered": stats.faults_recovered,
    }
    shown = {k: v for k, v in recovered.items() if v}
    if shown:
        print(
            "[cache recoveries: "
            + ", ".join(f"{v} {k}" for k, v in shown.items())
            + "]",
            file=sys.stderr,
        )


def _print_resilience_summary() -> None:
    """Fault-injection and backend-degradation observability: a chaos
    or degraded run must show its recoveries, a clean run prints
    nothing.  Stderr, like :func:`_print_cache_recoveries` — which
    tier served a launch may legitimately differ between engines."""
    from repro import faultinject, obs
    from repro.backend import ledger

    plan = faultinject.active_plan()
    if plan is not None:
        counts = faultinject.counts()
        if counts:
            parts = [
                f"{site}: {c.injected}/{c.checks} injected "
                f"({c.recovered} retried, {c.escaped} escaped)"
                for site, c in sorted(counts.items())
                if c.injected
            ]
            detail = "; ".join(parts) if parts else "no faults landed"
            print(f"[fault plan {plan.describe()} — {detail}]", file=sys.stderr)
    # The ledger digest renders from the unified metrics snapshot (the
    # same document --metrics-json dumps), not a bespoke formatter.
    ledger_snapshot = obs.snapshot().get("ledger", {})
    if ledger_snapshot.get("total"):
        print(ledger.format_snapshot(ledger_snapshot), file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
