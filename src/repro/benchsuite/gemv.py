"""GEMV — y = alpha*A*x + beta*y (CLBlast-style).

One work-group per matrix row: local threads compute strided partial dot
products (the gather permutation makes global reads coalesced, section
7.2), stage them in local memory and tree-reduce with ``iterate`` — the
same shape as the paper's Listing 1.
"""

from __future__ import annotations

import numpy as np

from repro.arith import Var
from repro.types import ArrayType, FLOAT, array
from repro.ir.nodes import Expr, FunCall, Lambda, Param, UserFun
from repro.ir.dsl import (
    add,
    compose,
    f32,
    gather,
    get,
    id_fun,
    iterate,
    join,
    lam,
    lam2,
    map_,
    map_lcl,
    map_seq,
    map_wrg,
    mult_and_sum_up,
    reduce_,
    reduce_seq,
    split,
    to_global,
    to_local,
    zip_,
)
from repro.ir.patterns import stride_indices
from repro.benchsuite.common import (
    Benchmark,
    Characteristics,
    LiftStage,
    RefLaunch,
    register,
)

LOCAL = 16  # work-group size; must be a power of two
_LOG2_LOCAL = 4

_REFERENCE_TEMPLATE = """
kernel void GEMV(const global float * restrict A,
                 const global float * restrict x,
                 const global float * restrict y,
                 global float *out, int N, int K,
                 float alpha, float beta) {{
  local float part[{L}];
  for (int wg = get_group_id(0); wg < N; wg += get_num_groups(0)) {{
    int l = get_local_id(0);
    float s = 0.0f;
    for (int j = l; j < K; j += {L}) {{
      s = s + A[wg * K + j] * x[j];
    }}
    part[l] = s;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int sz = {L} / 2; sz > 0; sz = sz / 2) {{
      if (l < sz) {{ part[l] = part[l] + part[l + sz]; }}
      barrier(CLK_LOCAL_MEM_FENCE);
    }}
    if (l < 1) {{ out[wg] = alpha * part[0] + beta * y[wg]; }}
    barrier(CLK_GLOBAL_MEM_FENCE);
  }}
}}
"""

REFERENCE = _REFERENCE_TEMPLATE.format(L=LOCAL)


def axpby_fun() -> UserFun:
    return UserFun(
        "axpby",
        ["dot", "y", "alpha", "beta"],
        "return alpha * dot + beta * y;",
        [FLOAT, FLOAT, FLOAT, FLOAT],
        FLOAT,
        py=lambda dot, y, alpha, beta: alpha * dot + beta * y,
    )


def halving_step():
    """One tree-reduction step: halve the array by pairwise addition
    (the iterate body of Listing 1)."""
    return compose(
        join(),
        map_lcl(compose(to_local(map_seq(id_fun())), reduce_seq(add(), f32(0.0)))),
        split(2),
    )


def dot_row_work_group(row_pairs: Expr, k) -> Expr:
    """Partial-dot + iterate tree-reduce over a zipped row (length k),
    yielding a one-element array in local memory.

    The per-thread chunk reduction is unrolled (CLBlast unrolls its
    work-per-thread loops the same way); unrolling turns the iteration
    index into a constant that the simplifier folds into every access.
    """
    from repro.ir.dsl import reduce_seq_unroll

    musu = mult_and_sum_up()
    reduce_pairs = lam2(
        lambda acc, xy: FunCall(musu, [acc, get(xy, 0), get(xy, 1)])
    )
    chunk = k // LOCAL
    chunk_concrete = chunk.try_int() if hasattr(chunk, "try_int") else chunk
    reducer = (
        reduce_seq_unroll(reduce_pairs, f32(0.0))
        if chunk_concrete is not None and int(chunk_concrete) <= 8
        else reduce_seq(reduce_pairs, f32(0.0))
    )
    return compose(
        iterate(_LOG2_LOCAL, halving_step()),
        join(),
        map_lcl(compose(to_local(map_seq(id_fun())), reducer)),
        split(chunk),
        gather(stride_indices(LOCAL)),
    )(row_pairs)


def gemv_program(low_level: bool, k_val=None):
    # The low-level kernel is specialized for a concrete K so the local
    # staging buffers have compile-time sizes and the mapLcl trip counts
    # are provably equal to the work-group size.
    n = Var("N")
    k = k_val if (low_level and k_val is not None) else Var("K")
    a = Param(array(FLOAT, n, k), "A")
    x = Param(ArrayType(FLOAT, k), "x")
    y = Param(ArrayType(FLOAT, n), "y")
    alpha = Param(FLOAT, "alpha")
    beta = Param(FLOAT, "beta")
    axpby = axpby_fun()

    if not low_level:
        musu = mult_and_sum_up()
        reduce_pairs = lam2(
            lambda acc, xy: FunCall(musu, [acc, get(xy, 0), get(xy, 1)])
        )

        def per_row_hl(ry):
            dot = reduce_(reduce_pairs, f32(0.0))(zip_(get(ry, 0), x))
            return map_(
                lam(lambda d: FunCall(axpby, [d, get(ry, 1), alpha, beta]))
            )(dot)

        body = join()(map_(lam(per_row_hl))(zip_(a, y)))
        return Lambda([a, x, y, alpha, beta], body)

    def per_row(ry):
        partial = dot_row_work_group(zip_(get(ry, 0), x), k)
        finish = to_global(
            map_lcl(lam(lambda d: FunCall(axpby, [d, get(ry, 1), alpha, beta])))
        )
        return finish(partial)

    body = join()(map_wrg(lam(per_row))(zip_(a, y)))
    return Lambda([a, x, y, alpha, beta], body)


def build() -> Benchmark:
    def make_inputs(size_env, rng):
        n, k = size_env["N"], size_env["K"]
        return {
            "A": rng.random((n, k)),
            "x": rng.random(k),
            "y": rng.random(n),
            "alpha": 1.5,
            "beta": 0.75,
        }

    def oracle(inputs, size_env):
        return (
            inputs["alpha"] * (inputs["A"] @ inputs["x"])
            + inputs["beta"] * inputs["y"]
        )

    def ref_args(inputs, size_env, scratch):
        return {
            "A": inputs["A"],
            "x": inputs["x"],
            "y": inputs["y"],
            "out": np.zeros(size_env["N"]),
            "N": size_env["N"],
            "K": size_env["K"],
            "alpha": inputs["alpha"],
            "beta": inputs["beta"],
        }

    return Benchmark(
        name="gemv",
        source_suite="CLBlast",
        characteristics=Characteristics(
            local_memory=True,
            private_memory=False,
            vectorization=False,
            coalescing=True,
            iteration_space="1D",
        ),
        sizes={
            "small": {"N": 64, "K": 64},
            "large": {"N": 128, "K": 128},
        },
        make_inputs=make_inputs,
        oracle=oracle,
        reference_source=REFERENCE,
        reference_launches=[
            RefLaunch(
                kernel="GEMV",
                make_args=ref_args,
                global_size=lambda env: (min(env["N"], 32) * LOCAL, 1, 1),
                local_size=(LOCAL, 1, 1),
                out_arg="out",
            )
        ],
        high_level=lambda env: gemv_program(low_level=False),
        stages=[
            LiftStage(
                build=lambda env: gemv_program(low_level=True, k_val=env["K"]),
                param_names=["A", "x", "y", "alpha", "beta"],
                global_size=lambda env: (min(env["N"], 32) * LOCAL, 1, 1),
                local_size=(LOCAL, 1, 1),
            )
        ],
        rtol=1e-9,
    )


register("gemv")(build)
