"""Imports every benchmark module so the registry is populated."""

import repro.benchsuite.nn  # noqa: F401
import repro.benchsuite.kmeans  # noqa: F401
import repro.benchsuite.mriq  # noqa: F401
import repro.benchsuite.md  # noqa: F401
import repro.benchsuite.nbody  # noqa: F401
import repro.benchsuite.gemv  # noqa: F401
import repro.benchsuite.atax  # noqa: F401
import repro.benchsuite.gesummv  # noqa: F401
import repro.benchsuite.convolution  # noqa: F401
import repro.benchsuite.mm  # noqa: F401
