"""ATAX — y = Aᵀ(Ax) (CLBlast/PolyBench-style).

Two chained GEMV-shaped kernels: the first computes ``tmp = A x``, the
second ``y = Aᵀ tmp`` (expressed in the Lift IL with a ``transpose``
view, so the second kernel reads A with a stride — no transposed copy is
ever materialized).  Kernel runtimes are summed, as the paper does for
multi-kernel benchmarks (section 6).
"""

from __future__ import annotations

import numpy as np

from repro.arith import Var
from repro.types import ArrayType, FLOAT, array
from repro.ir.nodes import Expr, FunCall, Lambda, Param
from repro.ir.dsl import (
    f32,
    get,
    id_fun,
    join,
    lam,
    lam2,
    map_,
    map_lcl,
    map_wrg,
    mult_and_sum_up,
    reduce_,
    to_global,
    transpose,
    zip_,
)
from repro.benchsuite.common import (
    Benchmark,
    Characteristics,
    LiftStage,
    RefLaunch,
    register,
)
from repro.benchsuite.gemv import LOCAL, dot_row_work_group

_REFERENCE_TEMPLATE = """
kernel void MV(const global float * restrict A,
               const global float * restrict x,
               global float *tmp, int N, int K) {{
  local float part[{L}];
  for (int wg = get_group_id(0); wg < N; wg += get_num_groups(0)) {{
    int l = get_local_id(0);
    float s = 0.0f;
    for (int j = l; j < K; j += {L}) {{
      s = s + A[wg * K + j] * x[j];
    }}
    part[l] = s;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int sz = {L} / 2; sz > 0; sz = sz / 2) {{
      if (l < sz) {{ part[l] = part[l] + part[l + sz]; }}
      barrier(CLK_LOCAL_MEM_FENCE);
    }}
    if (l < 1) {{ tmp[wg] = part[0]; }}
    barrier(CLK_GLOBAL_MEM_FENCE);
  }}
}}

kernel void MTV(const global float * restrict A,
                const global float * restrict tmp,
                global float *out, int N, int K) {{
  local float part[{L}];
  for (int wg = get_group_id(0); wg < K; wg += get_num_groups(0)) {{
    int l = get_local_id(0);
    float s = 0.0f;
    for (int j = l; j < N; j += {L}) {{
      s = s + A[j * K + wg] * tmp[j];
    }}
    part[l] = s;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int sz = {L} / 2; sz > 0; sz = sz / 2) {{
      if (l < sz) {{ part[l] = part[l] + part[l + sz]; }}
      barrier(CLK_LOCAL_MEM_FENCE);
    }}
    if (l < 1) {{ out[wg] = part[0]; }}
    barrier(CLK_GLOBAL_MEM_FENCE);
  }}
}}
"""

REFERENCE = _REFERENCE_TEMPLATE.format(L=LOCAL)


def _mv_stage(transposed: bool, n_val, k_val):
    """One GEMV-shaped stage, specialized for concrete dimensions; with
    ``transposed`` the matrix is read through a transpose view (strided
    accesses, no transposed copy)."""
    a = Param(array(FLOAT, n_val, k_val), "A")
    in_len = n_val if transposed else k_val
    x = Param(ArrayType(FLOAT, in_len), "x")

    def per_row(row):
        partial = dot_row_work_group(zip_(row, x), in_len)
        return to_global(map_lcl(id_fun()))(partial)

    matrix: Expr = transpose()(a) if transposed else a
    body = join()(map_wrg(lam(per_row))(matrix))
    return Lambda([a, x], body)


def _high_level():
    n, k = Var("N"), Var("K")
    a = Param(array(FLOAT, n, k), "A")
    x = Param(ArrayType(FLOAT, k), "x")
    musu = mult_and_sum_up()
    reduce_pairs = lam2(lambda acc, xy: FunCall(musu, [acc, get(xy, 0), get(xy, 1)]))

    def dot_with(vec):
        return lam(
            lambda row: map_(id_fun())(
                reduce_(reduce_pairs, f32(0.0))(zip_(row, vec))
            )
        )

    tmp_p = Param(ArrayType(FLOAT, n), "tmp")
    inner = Lambda([tmp_p], join()(map_(dot_with(tmp_p))(transpose()(a))))
    tmp = join()(map_(dot_with(x))(a))
    return Lambda([a, x], FunCall(inner, [tmp]))


def build() -> Benchmark:
    def make_inputs(size_env, rng):
        n, k = size_env["N"], size_env["K"]
        return {"A": rng.random((n, k)), "x": rng.random(k)}

    def oracle(inputs, size_env):
        a = inputs["A"]
        return a.T @ (a @ inputs["x"])

    def mv_args(inputs, size_env, scratch):
        return {
            "A": inputs["A"],
            "x": inputs["x"],
            "tmp": np.zeros(size_env["N"]),
            "N": size_env["N"],
            "K": size_env["K"],
        }

    def mtv_args(inputs, size_env, scratch):
        return {
            "A": inputs["A"],
            "tmp": scratch["MV"],
            "out": np.zeros(size_env["K"]),
            "N": size_env["N"],
            "K": size_env["K"],
        }

    def groups(env, count_key):
        return (min(env[count_key], 32) * LOCAL, 1, 1)

    return Benchmark(
        name="atax",
        source_suite="CLBlast",
        characteristics=Characteristics(
            local_memory=True,
            private_memory=False,
            vectorization=False,
            coalescing=True,
            iteration_space="1D",
        ),
        sizes={
            "small": {"N": 64, "K": 64},
            "large": {"N": 128, "K": 128},
        },
        make_inputs=make_inputs,
        oracle=oracle,
        reference_source=REFERENCE,
        reference_launches=[
            RefLaunch(
                kernel="MV",
                make_args=mv_args,
                global_size=lambda env: groups(env, "N"),
                local_size=(LOCAL, 1, 1),
                out_arg="tmp",
            ),
            RefLaunch(
                kernel="MTV",
                make_args=mtv_args,
                global_size=lambda env: groups(env, "K"),
                local_size=(LOCAL, 1, 1),
                out_arg="out",
            ),
        ],
        high_level=lambda env: _high_level(),
        stages=[
            LiftStage(
                build=lambda env: _mv_stage(False, env["N"], env["K"]),
                param_names=["A", "x"],
                global_size=lambda env: groups(env, "N"),
                local_size=(LOCAL, 1, 1),
            ),
            LiftStage(
                build=lambda env: _mv_stage(True, env["N"], env["K"]),
                param_names=["A", "__prev"],
                global_size=lambda env: groups(env, "K"),
                local_size=(LOCAL, 1, 1),
            ),
        ],
        rtol=1e-9,
    )


register("atax")(build)
