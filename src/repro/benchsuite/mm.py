"""Matrix multiplication — two CLBlast-style variants (Table 1 rows 11-12).

* **NVIDIA variant**: classic local-memory tiling; A- and B-tiles are
  staged cooperatively, the C-tile accumulator lives in local memory and
  is updated across k-tiles by an array-accumulator ``reduceSeq``.
* **AMD variant**: no local-memory tiling; each thread keeps a
  ``float4`` register block of the output row and streams the B columns
  through vector loads (``asVector``) — register blocking +
  vectorization, as the paper describes for CLBlast on AMD.
"""

from __future__ import annotations

import numpy as np

from repro.arith import Var
from repro.types import ArrayType, FLOAT, VectorType, array
from repro.ir.nodes import FunCall, Lambda, Param, UserFun
from repro.ir.dsl import (
    as_vector,
    f32,
    get,
    head,
    id_fun,
    join,
    lam,
    lam2,
    map_,
    map_glb,
    map_lcl,
    map_seq,
    map_wrg,
    mult_and_sum_up,
    reduce_,
    reduce_seq,
    scatter,
    split,
    to_global,
    to_local,
    transpose,
    vec_literal,
    zip_,
)
from repro.ir.patterns import ReduceSeq
from repro.benchsuite.common import (
    Benchmark,
    Characteristics,
    LiftStage,
    RefLaunch,
    register,
)
from repro.benchsuite.convolution import untile_indices

T = 8  # tile edge for the NVIDIA variant (Tm = Tn = Tk = T)
VW = 4  # vector width for the AMD variant

_REFERENCE_NVIDIA_TEMPLATE = """
kernel void MM(const global float * restrict A,
               const global float * restrict B,
               global float *out, int M, int N, int Kd) {{
  local float aTile[{TT}];
  local float bTile[{TT}];
  int tx = get_group_id(0);
  int ty = get_group_id(1);
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  float acc = 0.0f;
  for (int kt = 0; kt < Kd / {T}; kt += 1) {{
    aTile[ly * {T} + lx] = A[(ty * {T} + ly) * Kd + kt * {T} + lx];
    bTile[ly * {T} + lx] = B[(kt * {T} + ly) * N + tx * {T} + lx];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int k = 0; k < {T}; k += 1) {{
      acc = acc + aTile[ly * {T} + k] * bTile[k * {T} + lx];
    }}
    barrier(CLK_LOCAL_MEM_FENCE);
  }}
  out[(ty * {T} + ly) * N + tx * {T} + lx] = acc;
}}
"""

_REFERENCE_AMD_TEMPLATE = """
kernel void MM(const global float * restrict A,
               const global float * restrict B,
               global float *out, int M, int N, int Kd) {{
  int jv = get_global_id(0);
  int i = get_global_id(1);
  float4 acc = (float4)(0.0f, 0.0f, 0.0f, 0.0f);
  for (int k = 0; k < Kd; k += 1) {{
    float a = A[i * Kd + k];
    float4 b = vload4(jv, B + k * N);
    acc = acc + a * b;
  }}
  vstore4(acc, jv, out + i * N);
}}
"""

REFERENCE_NVIDIA = _REFERENCE_NVIDIA_TEMPLATE.format(T=T, TT=T * T)
REFERENCE_AMD = _REFERENCE_AMD_TEMPLATE.format(VW=VW)

_FLOAT4 = VectorType(FLOAT, 4)


def _zero() -> UserFun:
    return UserFun("zeroF", ["x"], "return 0.0f;", [FLOAT], FLOAT, py=lambda x: 0.0)


def _vmadd() -> UserFun:
    from repro.ir.interp import VecValue

    return UserFun(
        "vmadd",
        ["acc", "a", "b"],
        "return acc + a * b;",
        [_FLOAT4, FLOAT, _FLOAT4],
        _FLOAT4,
        py=lambda acc, a, b: VecValue(
            [acc.items[i] + a * b.items[i] for i in range(4)]
        ),
    )


def _id4() -> UserFun:
    return UserFun("idF4", ["v"], "return v;", [_FLOAT4], _FLOAT4, py=lambda v: v)


def _tiles_of_a(a):
    """A [[f]K]M  ->  tiles[i][kt] of shape [[f]T]T."""
    return map_(transpose())(split(T)(map_(split(T))(a)))


def _tiles_of_b_transposed(b):
    """B [[f]N]K  ->  tiles[j][kt] of shape [[f]T]T (j = column tile)."""
    tiles = map_(transpose())(split(T)(map_(split(T))(b)))  # [kt][j]
    return transpose()(tiles)  # [j][kt]


def _program_nvidia(m_val, n_val, k_val):
    a = Param(array(FLOAT, m_val, k_val), "A")
    b = Param(array(FLOAT, k_val, n_val), "B")
    musu = mult_and_sum_up()
    zero, id_f = _zero(), id_fun()

    def per_tile_pair(arow_tiles, bcol_tiles):
        def per_ij():
            acc0 = to_local(map_lcl(map_lcl(zero, 0), 1))(head(bcol_tiles))

            def per_ktile(acc_chunk, ab):
                a_loc = to_local(map_lcl(map_lcl(id_f, 0), 1))(get(ab, 0))
                b_loc = to_local(map_lcl(map_lcl(id_f, 0), 1))(get(ab, 1))
                at = Param(None, "at")
                bt = Param(None, "bt")

                def update_row(acc_a):
                    acc_row = get(acc_a, 0)
                    a_row = get(acc_a, 1)

                    def update_elem(acc_b):
                        inner = lam2(
                            lambda s, p: FunCall(
                                musu, [s, get(p, 0), get(p, 1)]
                            )
                        )
                        return FunCall(
                            reduce_seq(inner, get(acc_b, 0)),
                            [zip_(a_row, get(acc_b, 1))],
                        )

                    return join()(
                        map_lcl(lam(update_elem), 0)(
                            zip_(acc_row, transpose()(bt))
                        )
                    )

                body = map_lcl(lam(update_row), 1)(zip_(acc_chunk, at))
                return FunCall(Lambda([at, bt], body), [a_loc, b_loc])

            c_tile = join()(
                FunCall(
                    ReduceSeq(lam2(per_ktile)),
                    [acc0, zip_(arow_tiles, bcol_tiles)],
                )
            )
            write = to_global(map_lcl(lam(lambda r: map_lcl(id_f, 0)(r)), 1))
            return join()(write(c_tile))

        return per_ij()

    a_tiles = _tiles_of_a(a)
    b_tiles = _tiles_of_b_transposed(b)

    def per_row_tile(arow_tiles):
        return join()(
            map_wrg(
                lam(lambda bcol_tiles: per_tile_pair(arow_tiles, bcol_tiles)), 0
            )(b_tiles)
        )

    tiled = join()(map_wrg(lam(per_row_tile), 1)(a_tiles))
    body = scatter(untile_indices(m_val // T, n_val // T, T, n_val))(tiled)
    return Lambda([a, b], body)


def _program_amd(m_val, n_val, k_val):
    a = Param(array(FLOAT, m_val, k_val), "A")
    b = Param(array(FLOAT, k_val, n_val), "B")
    vmadd, id4 = _vmadd(), _id4()

    # B as columns of float4 groups: [[float4]K]{N/4}, all views.
    b_vec_cols = transpose()(map_(as_vector(VW))(b))

    def per_row(a_row):
        def per_col_group(b_col):
            step = lam2(
                lambda acc, p: FunCall(vmadd, [acc, get(p, 0), get(p, 1)])
            )
            acc = reduce_seq(step, vec_literal(0.0, 4))(zip_(a_row, b_col))
            return to_global(map_seq(id4))(acc)

        return join()(map_glb(lam(per_col_group), 0)(b_vec_cols))

    body = join()(map_glb(lam(per_row), 1)(a))
    return Lambda([a, b], body)


def _high_level():
    m, n, k = Var("M"), Var("N"), Var("Kd")
    a = Param(array(FLOAT, m, k), "A")
    b = Param(array(FLOAT, k, n), "B")
    musu = mult_and_sum_up()

    def per_row(a_row):
        def per_col(b_col):
            inner = lam2(lambda s, p: FunCall(musu, [s, get(p, 0), get(p, 1)]))
            return map_(id_fun())(reduce_(inner, f32(0.0))(zip_(a_row, b_col)))

        return join()(map_(lam(per_col))(transpose()(b)))

    body = join()(map_(lam(per_row))(a))
    return Lambda([a, b], body)


def _oracle(inputs, size_env):
    m, n, k = size_env["M"], size_env["N"], size_env["Kd"]
    return (inputs["A"].reshape(m, k) @ inputs["B"].reshape(k, n)).ravel()


def _make_inputs(size_env, rng):
    m, n, k = size_env["M"], size_env["N"], size_env["Kd"]
    return {"A": rng.random((m, k)), "B": rng.random((k, n))}


def _ref_args(inputs, size_env, scratch):
    return {
        "A": inputs["A"],
        "B": inputs["B"],
        "out": np.zeros(size_env["M"] * size_env["N"]),
        "M": size_env["M"],
        "N": size_env["N"],
        "Kd": size_env["Kd"],
    }


def _build_variant(variant: str) -> Benchmark:
    nvidia = variant == "nvidia"
    if nvidia:
        local = (T, T, 1)

        def geometry(env):
            return (env["N"], env["M"], 1)

    else:
        local = (4, 4, 1)

        def geometry(env):
            return (env["N"] // VW, env["M"], 1)

    return Benchmark(
        name=f"mm-{variant}",
        source_suite=f"CLBlast ({variant.upper()})",
        characteristics=Characteristics(
            local_memory=nvidia,
            private_memory=True,
            vectorization=True,
            coalescing=True,
            iteration_space="2D",
        ),
        sizes={
            "small": {"M": 16, "N": 16, "Kd": 16},
            "large": {"M": 32, "N": 32, "Kd": 32},
        },
        make_inputs=_make_inputs,
        oracle=_oracle,
        reference_source=REFERENCE_NVIDIA if nvidia else REFERENCE_AMD,
        reference_launches=[
            RefLaunch(
                kernel="MM",
                make_args=_ref_args,
                global_size=geometry,
                local_size=local,
                out_arg="out",
            )
        ],
        high_level=lambda env: _high_level(),
        stages=[
            LiftStage(
                build=lambda env: (
                    _program_nvidia(env["M"], env["N"], env["Kd"])
                    if nvidia
                    else _program_amd(env["M"], env["N"], env["Kd"])
                ),
                param_names=["A", "B"],
                global_size=geometry,
                local_size=local,
            )
        ],
        rtol=1e-9,
    )


def build_nvidia() -> Benchmark:
    return _build_variant("nvidia")


def build_amd() -> Benchmark:
    return _build_variant("amd")


register("mm-nvidia")(build_nvidia)
register("mm-amd")(build_amd)
# Plain "mm" (the name the explorer and the CLI use for the matrix
# multiplication *high-level* program, which both variants share) maps
# to the NVIDIA build; it is not part of ALL_BENCHMARKS, so Table 1 and
# Figure 8 keep listing the two reference variants separately.
register("mm")(build_nvidia)
