"""Figure 8 reproduction: relative performance of generated code.

For every benchmark, input size and optimization level, this harness

1. runs the hand-written reference kernel(s) on the simulated device,
2. compiles the low-level Lift IL at the given optimization level and
   runs the generated kernel(s),
3. checks both outputs against the NumPy oracle,
4. converts the two counter sets into estimated cycles under each device
   profile and reports the ratio (reference cycles / generated cycles).

A relative performance of 1.0 means parity with the hand-written
kernel; values below 1.0 mean the generated code is slower — the shape
the paper's Figure 8 plots per optimization level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

import numpy as np

from repro.compiler.options import OPTIMIZATION_LEVELS
from repro.opencl.cost import DEVICES, estimate_cycles
from repro.benchsuite.common import ALL_BENCHMARKS, Benchmark, get_benchmark

LEVEL_LABELS = {
    "none": "None",
    "barrier_cf": "Barrier elim. + Control-flow simp.",
    "all": "+ Array access simp.",
}


@dataclass
class Figure8Cell:
    """One bar of Figure 8."""

    benchmark: str
    size: str
    level: str
    device: str
    relative_performance: float
    reference_cycles: float
    generated_cycles: float


def measure_benchmark(
    bench: Benchmark, size: str, seed: int = 7, cache=None,
    engine: Optional[str] = None,
) -> list:
    """All Figure 8 cells for one benchmark at one input size.

    The simulator's counters are device-independent, so each
    configuration executes once and is priced under both device
    profiles.  With a :class:`repro.cache.TuningCache`, reference and
    generated runs are served from content-addressed run entries — a
    warm rerun performs zero compilations and zero simulations (the
    oracle checks still run against the cached outputs).  ``engine``
    names the execution backend for every launch (any name of
    :func:`repro.backend.engine_names`; cache run entries are keyed per
    engine).
    """
    from repro import obs

    inputs, size_env = bench.inputs_for(size, seed)
    expected = bench.oracle(inputs, size_env)

    with obs.span("figure8.reference", benchmark=bench.name, size=size):
        ref_out, ref_counters = bench.run_reference(
            inputs, size_env, cache=cache, engine=engine
        )
    np.testing.assert_allclose(
        ref_out, expected, rtol=bench.rtol, atol=1e-7,
        err_msg=f"{bench.name}: reference kernel produced wrong results",
    )

    cells: list[Figure8Cell] = []
    for level_name, factory in OPTIMIZATION_LEVELS.items():
        with obs.span(
            "figure8.generated", benchmark=bench.name, size=size,
            level=level_name,
        ):
            gen_out, gen_counters = bench.run_generated(
                inputs, size_env, options_factory=factory, cache=cache,
                engine=engine,
            )
        # Per-tier launch counts live in the registry's counters; the
        # last generated run's kernel Counters are snapshot under
        # "counters.kernel".
        obs.register_counters(gen_counters)
        np.testing.assert_allclose(
            gen_out, expected, rtol=bench.rtol, atol=1e-7,
            err_msg=(
                f"{bench.name}: generated kernel wrong at level {level_name}"
            ),
        )
        for device_name, profile in DEVICES.items():
            ref_cycles = estimate_cycles(ref_counters, profile)
            gen_cycles = estimate_cycles(gen_counters, profile)
            cells.append(
                Figure8Cell(
                    benchmark=bench.name,
                    size=size,
                    level=level_name,
                    device=device_name,
                    relative_performance=ref_cycles / gen_cycles,
                    reference_cycles=ref_cycles,
                    generated_cycles=gen_cycles,
                )
            )
    return cells


def run_figure8(
    benchmarks: Optional[Iterable[str]] = None,
    sizes: Iterable[str] = ("small", "large"),
    seed: int = 7,
    cache=None,
    engine: Optional[str] = None,
) -> list:
    from repro import obs

    names = list(benchmarks) if benchmarks is not None else list(ALL_BENCHMARKS)
    cells: list[Figure8Cell] = []
    for name in names:
        bench = get_benchmark(name)
        for size in sizes:
            with obs.span("figure8.benchmark", benchmark=name, size=size):
                cells.extend(
                    measure_benchmark(
                        bench, size, seed, cache=cache, engine=engine
                    )
                )
    return cells


def format_figure8(cells: Iterable[Figure8Cell]) -> str:
    """Render the cells as the paper's figure: one row per device and
    benchmark, bars per optimization level and size."""
    by_key: dict = {}
    for cell in cells:
        by_key.setdefault((cell.device, cell.benchmark, cell.size), {})[
            cell.level
        ] = cell.relative_performance

    lines = [
        "Figure 8: relative performance of generated code vs. hand-written"
        " OpenCL (1.0 = parity)",
        "",
        f"{'device':<8} {'benchmark':<14} {'size':<6} "
        f"{'None':>8} {'B+CF':>8} {'+AAS':>8}",
    ]
    for (device, benchmark, size), levels in sorted(by_key.items()):
        lines.append(
            f"{device:<8} {benchmark:<14} {size:<6} "
            f"{levels.get('none', float('nan')):>8.3f} "
            f"{levels.get('barrier_cf', float('nan')):>8.3f} "
            f"{levels.get('all', float('nan')):>8.3f}"
        )

    perf = [c.relative_performance for c in cells if c.level == "all"]
    if perf:
        lines.append("")
        lines.append(
            f"geometric mean (+AAS): {float(np.exp(np.mean(np.log(perf)))):.3f}"
        )
    return "\n".join(lines)
