"""GESUMMV — y = alpha*A*x + beta*B*x (CLBlast/PolyBench-style).

A single kernel: each work-group computes both dot products (a row of A
and the same row of B against x) with local tree reductions, then one
thread combines them with the scalars.
"""

from __future__ import annotations

import numpy as np

from repro.arith import Var
from repro.types import ArrayType, FLOAT, array
from repro.ir.nodes import FunCall, Lambda, Param, UserFun
from repro.ir.dsl import (
    f32,
    get,
    id_fun,
    join,
    lam,
    lam2,
    map_,
    map_lcl,
    map_wrg,
    mult_and_sum_up,
    reduce_,
    reduce_seq,
    to_global,
    to_local,
    zip_,
)
from repro.benchsuite.common import (
    Benchmark,
    Characteristics,
    LiftStage,
    RefLaunch,
    register,
)
from repro.benchsuite.gemv import LOCAL, dot_row_work_group

_REFERENCE_TEMPLATE = """
kernel void GESUMMV(const global float * restrict A,
                    const global float * restrict B,
                    const global float * restrict x,
                    global float *out, int N, int K,
                    float alpha, float beta) {{
  local float partA[{L}];
  local float partB[{L}];
  for (int wg = get_group_id(0); wg < N; wg += get_num_groups(0)) {{
    int l = get_local_id(0);
    float sa = 0.0f;
    float sb = 0.0f;
    for (int j = l; j < K; j += {L}) {{
      sa = sa + A[wg * K + j] * x[j];
      sb = sb + B[wg * K + j] * x[j];
    }}
    partA[l] = sa;
    partB[l] = sb;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int sz = {L} / 2; sz > 0; sz = sz / 2) {{
      if (l < sz) {{
        partA[l] = partA[l] + partA[l + sz];
        partB[l] = partB[l] + partB[l + sz];
      }}
      barrier(CLK_LOCAL_MEM_FENCE);
    }}
    if (l < 1) {{ out[wg] = alpha * partA[0] + beta * partB[0]; }}
    barrier(CLK_GLOBAL_MEM_FENCE);
  }}
}}
"""

REFERENCE = _REFERENCE_TEMPLATE.format(L=LOCAL)


def _combine_fun() -> UserFun:
    return UserFun(
        "sumScaled",
        ["da", "db", "alpha", "beta"],
        "return alpha * da + beta * db;",
        [FLOAT, FLOAT, FLOAT, FLOAT],
        FLOAT,
        py=lambda da, db, alpha, beta: alpha * da + beta * db,
    )


def _program(low_level: bool, k_val=None):
    n = Var("N")
    k = k_val if (low_level and k_val is not None) else Var("K")
    a = Param(array(FLOAT, n, k), "A")
    b = Param(array(FLOAT, n, k), "B")
    x = Param(ArrayType(FLOAT, k), "x")
    alpha = Param(FLOAT, "alpha")
    beta = Param(FLOAT, "beta")
    combine = _combine_fun()

    if not low_level:
        musu = mult_and_sum_up()
        reduce_pairs = lam2(
            lambda acc, xy: FunCall(musu, [acc, get(xy, 0), get(xy, 1)])
        )

        def per_rows(ab):
            dot_a = reduce_(reduce_pairs, f32(0.0))(zip_(get(ab, 0), x))
            dot_b = reduce_(reduce_pairs, f32(0.0))(zip_(get(ab, 1), x))
            return map_(
                lam(
                    lambda p: FunCall(
                        combine, [get(p, 0), get(p, 1), alpha, beta]
                    )
                )
            )(zip_(dot_a, dot_b))

        body = join()(map_(lam(per_rows))(zip_(a, b)))
        return Lambda([a, b, x, alpha, beta], body)

    # One fused pass, like the reference kernel's shared loop:
    # alpha*(A.x) + beta*(B.x) = sum((alpha*a + beta*b) * x), so a single
    # weighted partial dot and one tree reduction suffice.
    weighted = UserFun(
        "weightedMad",
        ["acc", "a", "b", "xv", "alpha", "beta"],
        "return acc + (alpha * a + beta * b) * xv;",
        [FLOAT] * 6,
        FLOAT,
        py=lambda acc, a, b, xv, alpha, beta: acc + (alpha * a + beta * b) * xv,
    )

    def per_rows(ab):
        triples = zip_(get(ab, 0), get(ab, 1), x)
        step = lam2(
            lambda acc, p: FunCall(
                weighted,
                [acc, get(p, 0), get(p, 1), get(p, 2), alpha, beta],
            )
        )
        from repro.benchsuite.gemv import LOCAL as _L, halving_step
        from repro.ir.dsl import compose, gather, id_fun, iterate, map_seq, split
        from repro.ir.patterns import stride_indices

        partial = compose(
            iterate(4, halving_step()),
            join(),
            map_lcl(compose(to_local(map_seq(id_fun())), reduce_seq(step, f32(0.0)))),
            split(k // _L),
            gather(stride_indices(_L)),
        )(triples)
        return to_global(map_lcl(id_fun()))(partial)

    body = join()(map_wrg(lam(per_rows))(zip_(a, b)))
    return Lambda([a, b, x, alpha, beta], body)


def build() -> Benchmark:
    def make_inputs(size_env, rng):
        n, k = size_env["N"], size_env["K"]
        return {
            "A": rng.random((n, k)),
            "B": rng.random((n, k)),
            "x": rng.random(k),
            "alpha": 1.25,
            "beta": 0.5,
        }

    def oracle(inputs, size_env):
        return (
            inputs["alpha"] * (inputs["A"] @ inputs["x"])
            + inputs["beta"] * (inputs["B"] @ inputs["x"])
        )

    def ref_args(inputs, size_env, scratch):
        return {
            "A": inputs["A"],
            "B": inputs["B"],
            "x": inputs["x"],
            "out": np.zeros(size_env["N"]),
            "N": size_env["N"],
            "K": size_env["K"],
            "alpha": inputs["alpha"],
            "beta": inputs["beta"],
        }

    return Benchmark(
        name="gesummv",
        source_suite="CLBlast",
        characteristics=Characteristics(
            local_memory=True,
            private_memory=False,
            vectorization=False,
            coalescing=True,
            iteration_space="1D",
        ),
        sizes={
            "small": {"N": 64, "K": 64},
            "large": {"N": 128, "K": 128},
        },
        make_inputs=make_inputs,
        oracle=oracle,
        reference_source=REFERENCE,
        reference_launches=[
            RefLaunch(
                kernel="GESUMMV",
                make_args=ref_args,
                global_size=lambda env: (min(env["N"], 32) * LOCAL, 1, 1),
                local_size=(LOCAL, 1, 1),
                out_arg="out",
            )
        ],
        high_level=lambda env: _program(low_level=False),
        stages=[
            LiftStage(
                build=lambda env: _program(low_level=True, k_val=env["K"]),
                param_names=["A", "B", "x", "alpha", "beta"],
                global_size=lambda env: (min(env["N"], 32) * LOCAL, 1, 1),
                local_size=(LOCAL, 1, 1),
            )
        ],
        rtol=1e-9,
    )


register("gesummv")(build)
