"""K-Means cluster assignment (Rodinia).

Each thread assigns one point to its nearest centroid.  The Lift version
stages the per-centroid distances in private memory and tracks the best
(distance, index) pair in a tuple accumulator — the private-memory usage
Table 1 lists for this benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.arith import Var
from repro.types import ArrayType, FLOAT, TupleType, array
from repro.ir.nodes import FunCall, Lambda, Param, UserFun
from repro.ir.dsl import (
    compose,
    f32,
    get,
    join,
    lam,
    lam2,
    make_tuple,
    map_,
    map_glb,
    map_seq,
    reduce_,
    reduce_seq,
    to_private,
    zip_,
)
from repro.benchsuite.common import (
    Benchmark,
    Characteristics,
    LiftStage,
    RefLaunch,
    register,
)

_REFERENCE = """
kernel void KMEANS(const global float * restrict points,
                   const global float * restrict centroids,
                   global float *out, int N, int K, int F) {
  int i = get_global_id(0);
  if (i < N) {
    float best = 3.40282e38f;
    float bestIdx = 0.0f;
    for (int k = 0; k < K; k += 1) {
      float d = 0.0f;
      for (int f = 0; f < F; f += 1) {
        float diff = points[i * F + f] - centroids[k * F + f];
        d = d + diff * diff;
      }
      if (d < best) { best = d; bestIdx = (float) k; }
    }
    out[i] = bestIdx;
  }
}
"""

_ACC = TupleType([FLOAT, FLOAT, FLOAT])  # (best distance, best index, current)


def _dist_acc() -> UserFun:
    return UserFun(
        "distAcc",
        ["acc", "pc"],
        "float diff = pc._0 - pc._1; return acc + diff * diff;",
        [FLOAT, TupleType([FLOAT, FLOAT])],
        FLOAT,
        # Multiplication (not pow) to match the C body bitwise.
        py=lambda acc, pc: acc + (pc[0] - pc[1]) * (pc[0] - pc[1]),
    )


def _pick_min() -> UserFun:
    def py(acc, d):
        best, best_idx, cur = acc
        if d < best:
            best, best_idx = d, cur
        return (best, best_idx, cur + 1.0)

    return UserFun(
        "pickMin",
        ["acc", "d"],
        "if (d < acc._0) { acc._0 = d; acc._1 = acc._2; }"
        " acc._2 = acc._2 + 1.0f; return acc;",
        [_ACC, FLOAT],
        _ACC,
        py=py,
    )


def _select_index() -> UserFun:
    return UserFun(
        "selectIndex", ["t"], "return t._1;", [_ACC], FLOAT, py=lambda t: t[1]
    )


def _program(low_level: bool, k=None, f=None):
    # The low-level program is specialized for concrete K and F (the Lift
    # compiler knows them at code-generation time; private arrays need
    # compile-time sizes).  The portable high-level program keeps them
    # symbolic.
    n = Var("N")
    k = k if k is not None else Var("K")
    f = f if f is not None else Var("F")
    points = Param(array(FLOAT, n, f), "points")
    centroids = Param(array(FLOAT, k, f), "centroids")

    dist_acc, pick, select = _dist_acc(), _pick_min(), _select_index()
    outer_map = map_glb if low_level else map_
    inner_map = map_seq if low_level else map_
    reduce_builder = reduce_seq if low_level else reduce_

    def per_point(p):
        dist_of_centroid = lam(
            lambda c: reduce_builder(
                lam2(lambda acc, pc: FunCall(dist_acc, [acc, pc])), f32(0.0)
            )(zip_(p, c))
        )
        dists_map = inner_map(dist_of_centroid)
        if low_level:
            dists = to_private(dists_map)(centroids)
        else:
            dists = dists_map(centroids)
        flat = join()(dists)
        init = make_tuple(f32(3.40282e38), f32(0.0), f32(0.0))
        best = reduce_builder(pick, init)(flat)
        return inner_map(select)(best)

    body = join()(outer_map(lam(per_point))(points))
    return Lambda([points, centroids], body)


def build() -> Benchmark:
    def make_inputs(size_env, rng):
        n, k, f = size_env["N"], size_env["K"], size_env["F"]
        return {
            "points": rng.random((n, f)),
            "centroids": rng.random((k, f)),
        }

    def oracle(inputs, size_env):
        points = inputs["points"]
        centroids = inputs["centroids"]
        d = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        return d.argmin(axis=1).astype(float)

    def ref_args(inputs, size_env, scratch):
        return {
            "points": inputs["points"],
            "centroids": inputs["centroids"],
            "out": np.zeros(size_env["N"]),
            "N": size_env["N"],
            "K": size_env["K"],
            "F": size_env["F"],
        }

    return Benchmark(
        name="kmeans",
        source_suite="Rodinia",
        characteristics=Characteristics(
            local_memory=False,
            private_memory=True,
            vectorization=False,
            coalescing=False,
            iteration_space="1D",
        ),
        sizes={
            "small": {"N": 256, "K": 5, "F": 4},
            "large": {"N": 1024, "K": 5, "F": 4},
        },
        make_inputs=make_inputs,
        oracle=oracle,
        reference_source=_REFERENCE,
        reference_launches=[
            RefLaunch(
                kernel="KMEANS",
                make_args=ref_args,
                global_size=lambda env: (env["N"], 1, 1),
                local_size=(64, 1, 1),
                out_arg="out",
            )
        ],
        high_level=lambda env: _program(low_level=False),
        stages=[
            LiftStage(
                build=lambda env: _program(
                    low_level=True, k=env["K"], f=env["F"]
                ),
                param_names=["points", "centroids"],
                global_size=lambda env: (env["N"], 1, 1),
                local_size=(64, 1, 1),
            )
        ],
    )


register("kmeans")(build)
