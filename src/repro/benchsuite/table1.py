"""Table 1 reproduction: benchmark overview, characteristics, code size.

Counts lines of code for the hand-written OpenCL reference, the portable
high-level Lift IL and the OpenCL-specific low-level Lift IL, alongside
the optimization characteristics of each reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.benchsuite.common import ALL_BENCHMARKS, get_benchmark


@dataclass
class Table1Row:
    benchmark: str
    source_suite: str
    input_small: str
    input_large: str
    local_memory: bool
    private_memory: bool
    vectorization: bool
    coalescing: bool
    iteration_space: str
    loc_opencl: int
    loc_high_level: int
    loc_low_level: int


def run_table1(benchmarks: Optional[Iterable[str]] = None) -> list:
    names = list(benchmarks) if benchmarks is not None else list(ALL_BENCHMARKS)
    rows = []
    for name in names:
        bench = get_benchmark(name)
        sizes = bench.code_sizes()
        ch = bench.characteristics

        def fmt(size_env):
            return "x".join(str(v) for v in size_env.values())

        rows.append(
            Table1Row(
                benchmark=bench.name,
                source_suite=bench.source_suite,
                input_small=fmt(bench.sizes["small"]),
                input_large=fmt(bench.sizes["large"]),
                local_memory=ch.local_memory,
                private_memory=ch.private_memory,
                vectorization=ch.vectorization,
                coalescing=ch.coalescing,
                iteration_space=ch.iteration_space,
                loc_opencl=sizes["opencl"],
                loc_high_level=sizes["high_level"],
                loc_low_level=sizes["low_level"],
            )
        )
    return rows


def format_table1(rows: Iterable[Table1Row]) -> str:
    def mark(flag: bool) -> str:
        return "yes" if flag else "-"

    lines = [
        "Table 1: Overview, Characteristics, and Code size of the benchmarks",
        "",
        f"{'benchmark':<14} {'suite':<18} {'small':<12} {'large':<12} "
        f"{'lmem':<5} {'pmem':<5} {'vec':<4} {'coal':<5} {'space':<6} "
        f"{'OpenCL':>7} {'highIL':>7} {'lowIL':>6}",
    ]
    for r in rows:
        lines.append(
            f"{r.benchmark:<14} {r.source_suite:<18} {r.input_small:<12} "
            f"{r.input_large:<12} {mark(r.local_memory):<5} "
            f"{mark(r.private_memory):<5} {mark(r.vectorization):<4} "
            f"{mark(r.coalescing):<5} {r.iteration_space:<6} "
            f"{r.loc_opencl:>7} {r.loc_high_level:>7} {r.loc_low_level:>6}"
        )
    return "\n".join(lines)
