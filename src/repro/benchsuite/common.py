"""Shared benchmark infrastructure.

A :class:`Benchmark` bundles everything needed to reproduce one row of
the paper's Table 1 and one group of bars of Figure 8.  Benchmarks may
consist of several chained kernels (ATAX runs two GEMV-shaped kernels);
stage outputs feed the next stage under the reserved name ``__prev``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

import numpy as np

from repro.ir.nodes import Lambda
from repro.ir.printer import program_lines
from repro.compiler.codegen import compile_kernel
from repro.compiler.kernel import execute_kernel
from repro.compiler.options import CompilerOptions
from repro.opencl import Buffer, Counters, OpenCLProgram, launch


@dataclass
class Characteristics:
    """The per-benchmark columns of Table 1."""

    local_memory: bool
    private_memory: bool
    vectorization: bool
    coalescing: bool
    iteration_space: str  # "1D" or "2D"


@dataclass
class LiftStage:
    """One Lift kernel of a benchmark.

    ``build`` receives the size environment and returns the low-level IL
    program; ``param_names`` maps the lambda's parameters to entries of
    the benchmark's input dictionary (``__prev`` is the previous stage's
    output buffer).
    """

    build: Callable[[Mapping[str, int]], Lambda]
    param_names: Sequence[str]
    global_size: Callable[[Mapping[str, int]], tuple]
    local_size: tuple


@dataclass
class RefLaunch:
    """One launch of the hand-written reference program."""

    kernel: str
    make_args: Callable[..., dict]  # (inputs, size_env, scratch) -> args
    global_size: Callable[[Mapping[str, int]], tuple]
    local_size: tuple
    out_arg: str  # which argument holds this launch's output


@dataclass
class Benchmark:
    name: str
    source_suite: str
    characteristics: Characteristics
    sizes: Mapping[str, Mapping[str, int]]  # "small"/"large" -> size env
    make_inputs: Callable[[Mapping[str, int], np.random.Generator], dict]
    oracle: Callable[[dict, Mapping[str, int]], np.ndarray]
    reference_source: str
    reference_launches: Sequence[RefLaunch]
    high_level: Callable[[Mapping[str, int]], Lambda]
    stages: Sequence[LiftStage]
    rtol: float = 1e-9

    # ------------------------------------------------------------------
    def inputs_for(self, size: str, seed: int = 7) -> tuple:
        size_env = dict(self.sizes[size])
        rng = np.random.default_rng(seed)
        return self.make_inputs(size_env, rng), size_env

    # ------------------------------------------------------------------
    def run_reference(
        self,
        inputs: dict,
        size_env: Mapping[str, int],
        engine: Optional[str] = None,
        cache=None,
    ) -> tuple:
        """Run the hand-written kernels; returns (output, counters).

        With a :class:`repro.cache.TuningCache`, each launch's output
        and counters are stored content-addressed (source + sizes +
        argument fingerprint + geometry + engine); warm reruns skip the
        simulation entirely.
        """
        program = OpenCLProgram(self.reference_source)
        counters = Counters()
        scratch: dict[str, Any] = {}
        output: Optional[np.ndarray] = None
        for launch_spec in self.reference_launches:
            args = launch_spec.make_args(inputs, size_env, scratch)
            run_key = None
            if cache is not None:
                from repro.cache import fingerprint_inputs

                source_key = cache.source_key(
                    self.reference_source, launch_spec.kernel, size_env
                )
                run_key = cache.run_key(
                    source_key,
                    fingerprint_inputs(args),
                    launch_spec.global_size(size_env),
                    launch_spec.local_size,
                    engine,
                )
                hit = cache.get_run(run_key)
                if hit is not None:
                    output, launch_counters = hit
                    counters = counters.merged_with(launch_counters)
                    scratch[launch_spec.kernel] = output
                    continue
            wrapped = {
                name: Buffer.from_array(v) if isinstance(v, np.ndarray) else v
                for name, v in args.items()
            }
            launch_counters = launch(
                program,
                launch_spec.global_size(size_env),
                launch_spec.local_size,
                wrapped,
                kernel_name=launch_spec.kernel,
                engine=engine,
            )
            counters = counters.merged_with(launch_counters)
            out_buffer = wrapped[launch_spec.out_arg]
            assert isinstance(out_buffer, Buffer)
            output = out_buffer.data.copy()
            scratch[launch_spec.kernel] = output
            if run_key is not None:
                cache.put_run(run_key, output, launch_counters)
        assert output is not None
        return output, counters

    # ------------------------------------------------------------------
    def run_generated(
        self,
        inputs: dict,
        size_env: Mapping[str, int],
        options_factory: Callable[..., CompilerOptions] = CompilerOptions.all,
        engine: Optional[str] = None,
        cache=None,
    ) -> tuple:
        """Compile and run the low-level Lift stages; returns
        (output, counters).

        With a :class:`repro.cache.TuningCache`, compiled kernels are
        served from the store (structural hash + options + sizes) and
        whole stage executions from run entries — a warm rerun performs
        zero compilations and zero simulations.
        """
        counters = Counters()
        prev: Optional[np.ndarray] = None
        for stage in self.stages:
            fun = stage.build(size_env)
            options = options_factory(local_size=stage.local_size)
            stage_inputs: dict[str, Any] = {}
            for lam_param, name in zip(fun.params, stage.param_names):
                if name == "__prev":
                    assert prev is not None
                    stage_inputs[lam_param.name] = prev
                else:
                    stage_inputs[lam_param.name] = inputs[name]

            kernel_key = run_key = None
            compiled = None
            if cache is not None:
                from repro.cache import fingerprint_inputs

                kernel_key = cache.kernel_key(fun, options, size_env)
                run_key = cache.run_key(
                    kernel_key,
                    fingerprint_inputs(stage_inputs),
                    stage.global_size(size_env),
                    stage.local_size,
                    engine,
                )
                hit = cache.get_run(run_key)
                if hit is not None:
                    prev, stage_counters = hit
                    counters = counters.merged_with(stage_counters)
                    continue
                compiled = cache.get_kernel(kernel_key)
            if compiled is None:
                compiled = compile_kernel(fun, options)
                if kernel_key is not None:
                    cache.put_kernel(kernel_key, compiled)
            result = execute_kernel(
                compiled,
                stage_inputs,
                size_env,
                stage.global_size(size_env),
                local_size=stage.local_size,
                engine=engine,
            )
            counters = counters.merged_with(result.counters)
            prev = result.output
            if run_key is not None:
                cache.put_run(run_key, prev, result.counters)
        assert prev is not None
        return prev, counters

    # ------------------------------------------------------------------
    def verify(
        self, size: str = "small", seed: int = 7, engine: Optional[str] = None
    ) -> None:
        """Check reference and generated outputs against the oracle."""
        inputs, size_env = self.inputs_for(size, seed)
        expected = self.oracle(inputs, size_env)
        ref_out, _ = self.run_reference(inputs, size_env, engine=engine)
        np.testing.assert_allclose(
            ref_out, expected, rtol=self.rtol, atol=1e-7,
            err_msg=f"{self.name}: reference kernel wrong",
        )
        gen_out, _ = self.run_generated(inputs, size_env, engine=engine)
        np.testing.assert_allclose(
            gen_out, expected, rtol=self.rtol, atol=1e-7,
            err_msg=f"{self.name}: generated kernel wrong",
        )

    # ------------------------------------------------------------------
    def code_sizes(self, size: str = "small") -> dict:
        """Lines of code for Table 1."""
        size_env = dict(self.sizes[size])
        opencl_loc = sum(
            1 for line in self.reference_source.splitlines() if line.strip()
        )
        high = program_lines(self.high_level(size_env))
        low = sum(program_lines(stage.build(size_env)) for stage in self.stages)
        return {"opencl": opencl_loc, "high_level": high, "low_level": low}


_REGISTRY: dict[str, Callable[[], Benchmark]] = {}


def register(name: str):
    def decorator(fn: Callable[[], Benchmark]):
        _REGISTRY[name] = fn
        return fn

    return decorator


def get_benchmark(name: str) -> Benchmark:
    import repro.benchsuite.loader  # noqa: F401 - populates the registry

    return _REGISTRY[name]()


def all_benchmark_names() -> list:
    import repro.benchsuite.loader  # noqa: F401

    return list(_REGISTRY)


#: Names in the paper's Table 1 order.
ALL_BENCHMARKS = [
    "nbody-nvidia",
    "nbody-amd",
    "md",
    "kmeans",
    "nn",
    "mriq",
    "convolution",
    "atax",
    "gemv",
    "gesummv",
    "mm-amd",
    "mm-nvidia",
]
