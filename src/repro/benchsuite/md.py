"""MD — Lennard-Jones force computation with neighbour lists (SHOC).

Each thread computes the force on one atom by walking its fixed-size
neighbour list.  The indirection (``pos[neigh[i*J + k]]``) is expressed
in the Lift IL with the ``filter`` pattern (data-dependent gather); the
force accumulator is a ``float4`` register, as in SHOC.
"""

from __future__ import annotations

import numpy as np

from repro.arith import Var
from repro.types import ArrayType, FLOAT, INT, VectorType, array
from repro.ir.nodes import FunCall, Lambda, Param, UserFun
from repro.ir.dsl import (
    get,
    join,
    lam,
    lam2,
    map_,
    map_glb,
    map_seq,
    reduce_,
    reduce_seq,
    split,
    to_global,
    vec_literal,
    zip_,
)
from repro.ir.patterns import Filter
from repro.benchsuite.common import (
    Benchmark,
    Characteristics,
    LiftStage,
    RefLaunch,
    register,
)

_CUTOFF = 16.0

_REFERENCE = """
kernel void MD(const global float * restrict px,
               const global float * restrict py,
               const global float * restrict pz,
               const global int * restrict neigh,
               global float *out, int N, int J) {
  int i = get_global_id(0);
  if (i < N) {
    float xi = px[i]; float yi = py[i]; float zi = pz[i];
    float fx = 0.0f; float fy = 0.0f; float fz = 0.0f;
    for (int k = 0; k < J; k += 1) {
      int j = neigh[i * J + k];
      float dx = xi - px[j];
      float dy = yi - py[j];
      float dz = zi - pz[j];
      float r2 = dx * dx + dy * dy + dz * dz;
      if (r2 < 16.0f) {
        float r2inv = 1.0f / r2;
        float r6inv = r2inv * r2inv * r2inv;
        float fc = r6inv * (r6inv - 0.5f) * r2inv;
        fx = fx + fc * dx;
        fy = fy + fc * dy;
        fz = fz + fc * dz;
      }
    }
    out[4 * i] = fx;
    out[4 * i + 1] = fy;
    out[4 * i + 2] = fz;
    out[4 * i + 3] = 0.0f;
  }
}
"""

_FLOAT4 = VectorType(FLOAT, 4)


def _lj_acc() -> UserFun:
    from repro.ir.interp import VecValue

    def py(acc, qx, qy, qz, xi, yi, zi):
        dx, dy, dz = xi - qx, yi - qy, zi - qz
        r2 = dx * dx + dy * dy + dz * dz
        if r2 >= _CUTOFF:
            return acc
        r2inv = 1.0 / r2
        r6inv = r2inv ** 3
        fc = r6inv * (r6inv - 0.5) * r2inv
        return VecValue(
            [acc.items[0] + fc * dx, acc.items[1] + fc * dy,
             acc.items[2] + fc * dz, acc.items[3]]
        )

    return UserFun(
        "ljAcc",
        ["acc", "qx", "qy", "qz", "xi", "yi", "zi"],
        "float dx = xi - qx; float dy = yi - qy; float dz = zi - qz;"
        " float r2 = dx * dx + dy * dy + dz * dz;"
        " if (r2 < 16.0f) {"
        " float r2inv = 1.0f / r2;"
        " float r6inv = r2inv * r2inv * r2inv;"
        " float fc = r6inv * (r6inv - 0.5f) * r2inv;"
        " acc = acc + (float4)(fc * dx, fc * dy, fc * dz, 0.0f); }"
        " return acc;",
        [_FLOAT4, FLOAT, FLOAT, FLOAT, FLOAT, FLOAT, FLOAT],
        _FLOAT4,
        py=py,
    )


def _id_float4() -> UserFun:
    return UserFun("idF4", ["v"], "return v;", [_FLOAT4], _FLOAT4, py=lambda v: v)


def _program(low_level: bool):
    n, j = Var("N"), Var("J")
    px = Param(ArrayType(FLOAT, n), "px")
    py_ = Param(ArrayType(FLOAT, n), "py")
    pz = Param(ArrayType(FLOAT, n), "pz")
    neigh = Param(array(INT, n * j), "neigh")

    lj = _lj_acc()
    outer_map = map_glb if low_level else map_
    copy_map = map_seq if low_level else map_
    reduce_builder = reduce_seq if low_level else reduce_

    def per_atom(pn):
        atom = get(pn, 0)
        nbr_ids = get(pn, 1)
        neighbours = zip_(
            FunCall(Filter(), [px, nbr_ids]),
            FunCall(Filter(), [py_, nbr_ids]),
            FunCall(Filter(), [pz, nbr_ids]),
        )
        step = lam2(
            lambda acc, q: FunCall(
                lj,
                [acc, get(q, 0), get(q, 1), get(q, 2),
                 get(atom, 0), get(atom, 1), get(atom, 2)],
            )
        )
        force = reduce_builder(step, vec_literal(0.0, 4))(neighbours)
        copy = copy_map(_id_float4())
        if low_level:
            return to_global(copy)(force)
        return copy(force)

    zipped = zip_(zip_(px, py_, pz), split(j)(neigh))
    body = join()(outer_map(lam(per_atom))(zipped))
    return Lambda([px, py_, pz, neigh], body)


def build() -> Benchmark:
    def make_inputs(size_env, rng):
        n, j = size_env["N"], size_env["J"]
        neigh = np.empty((n, j), dtype=np.int64)
        for i in range(n):
            # J distinct neighbours, never the atom itself.
            choices = rng.permutation(n - 1)[:j]
            neigh[i] = np.where(choices >= i, choices + 1, choices)
        return {
            "px": rng.random(n) * 4.0,
            "py": rng.random(n) * 4.0,
            "pz": rng.random(n) * 4.0,
            "neigh": neigh,
        }

    def oracle(inputs, size_env):
        n, j = size_env["N"], size_env["J"]
        px, py_, pz = inputs["px"], inputs["py"], inputs["pz"]
        neigh = inputs["neigh"].reshape(n, j)
        out = np.zeros((n, 4))
        for i in range(n):
            dx = px[i] - px[neigh[i]]
            dy = py_[i] - py_[neigh[i]]
            dz = pz[i] - pz[neigh[i]]
            r2 = dx * dx + dy * dy + dz * dz
            mask = r2 < _CUTOFF
            r2inv = np.where(mask, 1.0 / r2, 0.0)
            r6inv = r2inv ** 3
            fc = r6inv * (r6inv - 0.5) * r2inv
            out[i, 0] = (fc * dx)[mask].sum()
            out[i, 1] = (fc * dy)[mask].sum()
            out[i, 2] = (fc * dz)[mask].sum()
        return out.ravel()

    def ref_args(inputs, size_env, scratch):
        return {
            "px": inputs["px"],
            "py": inputs["py"],
            "pz": inputs["pz"],
            "neigh": inputs["neigh"],
            "out": np.zeros(4 * size_env["N"]),
            "N": size_env["N"],
            "J": size_env["J"],
        }

    return Benchmark(
        name="md",
        source_suite="SHOC",
        characteristics=Characteristics(
            local_memory=False,
            private_memory=True,
            vectorization=False,
            coalescing=True,
            iteration_space="1D",
        ),
        sizes={
            "small": {"N": 128, "J": 16},
            "large": {"N": 512, "J": 32},
        },
        make_inputs=make_inputs,
        oracle=oracle,
        reference_source=_REFERENCE,
        reference_launches=[
            RefLaunch(
                kernel="MD",
                make_args=ref_args,
                global_size=lambda env: (env["N"], 1, 1),
                local_size=(64, 1, 1),
                out_arg="out",
            )
        ],
        high_level=lambda env: _program(low_level=False),
        stages=[
            LiftStage(
                build=lambda env: _program(low_level=True),
                param_names=["px", "py", "pz", "neigh"],
                global_size=lambda env: (env["N"], 1, 1),
                local_size=(64, 1, 1),
            )
        ],
        rtol=1e-7,
    )


register("md")(build)
