"""The paper's benchmark suite (Table 1) and experiment harnesses.

Twelve benchmark configurations from six suites (NVIDIA SDK, AMD SDK,
SHOC, Rodinia, Parboil, CLBlast), each with:

* a hand-written reference OpenCL kernel faithful to the cited
  implementation's optimization strategy,
* a portable high-level Lift IL program,
* a low-level Lift IL program mimicking the reference optimizations,
* a NumPy oracle and input generators (small and large sizes).

``repro.benchsuite.figure8`` regenerates the paper's Figure 8;
``repro.benchsuite.table1`` regenerates Table 1.
"""

from repro.benchsuite.common import ALL_BENCHMARKS, Benchmark, get_benchmark

__all__ = ["ALL_BENCHMARKS", "Benchmark", "get_benchmark"]
