"""NN — nearest neighbour (Rodinia).

Each thread computes the Euclidean distance from one location to a fixed
target; Rodinia then selects the minimum on the host.  The simplest
benchmark of the suite: one user function under a ``mapGlb``.
"""

from __future__ import annotations

import numpy as np

from repro.arith import Var
from repro.types import ArrayType, FLOAT
from repro.ir.nodes import FunCall, Lambda, Param, UserFun
from repro.ir.dsl import get, lam, map_, map_glb, zip_
from repro.benchsuite.common import (
    Benchmark,
    Characteristics,
    LiftStage,
    RefLaunch,
    register,
)

_REFERENCE = """
kernel void NN(const global float * restrict lats,
               const global float * restrict lngs,
               global float *out, int N, float lat, float lng) {
  int i = get_global_id(0);
  if (i < N) {
    float dx = lats[i] - lat;
    float dy = lngs[i] - lng;
    out[i] = sqrt(dx * dx + dy * dy);
  }
}
"""


def _dist_fun() -> UserFun:
    return UserFun(
        "nnDist",
        ["plat", "plng", "lat", "lng"],
        "float dx = plat - lat; float dy = plng - lng;"
        " return sqrt(dx * dx + dy * dy);",
        [FLOAT, FLOAT, FLOAT, FLOAT],
        FLOAT,
        # Mirrors the C body operation-for-operation (multiplication, not
        # pow) so interpreter and simulator agree bitwise.
        py=lambda plat, plng, lat, lng: float(
            np.sqrt((plat - lat) * (plat - lat) + (plng - lng) * (plng - lng))
        ),
    )


def _program(map_builder):
    n = Var("N")
    lats = Param(ArrayType(FLOAT, n), "lats")
    lngs = Param(ArrayType(FLOAT, n), "lngs")
    lat = Param(FLOAT, "lat")
    lng = Param(FLOAT, "lng")
    dist = _dist_fun()
    body = map_builder(
        lam(lambda p: FunCall(dist, [get(p, 0), get(p, 1), lat, lng]))
    )(zip_(lats, lngs))
    return Lambda([lats, lngs, lat, lng], body)


def build() -> Benchmark:
    def make_inputs(size_env, rng):
        n = size_env["N"]
        return {
            "lats": rng.random(n) * 180 - 90,
            "lngs": rng.random(n) * 360 - 180,
            "lat": 30.0,
            "lng": 50.0,
        }

    def oracle(inputs, size_env):
        return np.sqrt(
            (inputs["lats"] - inputs["lat"]) ** 2
            + (inputs["lngs"] - inputs["lng"]) ** 2
        )

    def ref_args(inputs, size_env, scratch):
        return {
            "lats": inputs["lats"],
            "lngs": inputs["lngs"],
            "out": np.zeros(size_env["N"]),
            "N": size_env["N"],
            "lat": inputs["lat"],
            "lng": inputs["lng"],
        }

    return Benchmark(
        name="nn",
        source_suite="Rodinia",
        characteristics=Characteristics(
            local_memory=False,
            private_memory=False,
            vectorization=False,
            coalescing=True,
            iteration_space="1D",
        ),
        sizes={"small": {"N": 2048}, "large": {"N": 8192}},
        make_inputs=make_inputs,
        oracle=oracle,
        reference_source=_REFERENCE,
        reference_launches=[
            RefLaunch(
                kernel="NN",
                make_args=ref_args,
                global_size=lambda env: (env["N"], 1, 1),
                local_size=(64, 1, 1),
                out_arg="out",
            )
        ],
        high_level=lambda env: _program(map_),
        stages=[
            LiftStage(
                build=lambda env: _program(map_glb),
                param_names=["lats", "lngs", "lat", "lng"],
                global_size=lambda env: (env["N"], 1, 1),
                local_size=(64, 1, 1),
            )
        ],
    )


register("nn")(build)
