"""Figure 6 reproduction: the array-index simplification trace.

The paper shows the index generated for matrix transposition
(``split_nrows o gather(i -> i/M + (i mod M)*N) o join``) shrinking from
a three-line monster to the index a human would write,
``l_id * N + wg_id``.  This module reconstructs the exact expressions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arith import Range, Var, simplify
from repro.arith.expr import ArithExpr, IntDiv, Mod, Prod, Sum


@dataclass
class SimplificationTrace:
    raw: ArithExpr
    intermediate: ArithExpr
    simplified: ArithExpr

    def lines(self) -> list:
        return [str(self.raw), str(self.intermediate), str(self.simplified)]


def figure6_trace() -> SimplificationTrace:
    """Build the paper's Figure 6 line 1 expression with raw constructors
    and simplify it to line 3."""
    m, n = Var("M"), Var("N")
    wg_id = Var("wg_id", Range.of(0, n))
    l_id = Var("l_id", Range.of(0, m))

    # The flattened position a work-item touches: wg_id * M + l_id.
    flat = Sum([Prod([wg_id, m]), l_id])
    # The gather permutation i -> i / M + (i mod M) * N ...
    remapped = Sum([IntDiv(flat, m), Prod([Mod(flat, m), n])])
    # ... re-linearized by the split/join pair (Figure 6 line 1):
    raw = Sum([Prod([IntDiv(remapped, n), n]), Mod(remapped, n)])

    intermediate = simplify(remapped)  # Figure 6 line 2
    simplified = simplify(raw)  # Figure 6 line 3
    return SimplificationTrace(raw, intermediate, simplified)


def check_figure6() -> bool:
    """The trace must land exactly on the paper's line 3."""
    m, n = Var("M"), Var("N")
    wg_id = Var("wg_id", Range.of(0, n))
    l_id = Var("l_id", Range.of(0, m))
    trace = figure6_trace()
    return trace.simplified == simplify(Sum([Prod([l_id, n]), wg_id]))


def format_figure6() -> str:
    trace = figure6_trace()
    lines = trace.lines()
    return "\n".join(
        [
            "Figure 6: simplification of the matrix-transposition index",
            "",
            f"  raw (line 1):        {lines[0]}",
            f"  intermediate (2):    {lines[1]}",
            f"  simplified (line 3): {lines[2]}",
        ]
    )
