"""N-Body simulation — two reference styles, as in the paper's Table 1.

* **NVIDIA SDK style**: work-group tiling; each tile of bodies is staged
  in local memory (``toLocal(mapLcl(id))``) and every thread accumulates
  accelerations against the tile.  The across-tile accumulation is a
  ``reduceSeq`` with an *array* accumulator in local memory whose body is
  a ``mapLcl``.
* **AMD SDK style**: no local memory; one global thread per body reads
  every other body directly, with vectorized ``float4`` arithmetic.

Positions are ``float4`` (x, y, z, mass); the kernel writes ``float8``
(new position, new velocity) per body.
"""

from __future__ import annotations

import numpy as np

from repro.arith import Var
from repro.types import ArrayType, FLOAT, VectorType
from repro.ir.nodes import FunCall, Lambda, Param, UserFun
from repro.ir.dsl import (
    get,
    join,
    lam,
    lam2,
    map_,
    map_glb,
    map_lcl,
    map_seq,
    map_wrg,
    reduce_,
    reduce_seq,
    split,
    to_global,
    to_local,
    vec_literal,
    zip_,
)
from repro.benchsuite.common import (
    Benchmark,
    Characteristics,
    LiftStage,
    RefLaunch,
    register,
)

_FLOAT4 = VectorType(FLOAT, 4)
_FLOAT8 = VectorType(FLOAT, 8)

TILE = 16

_REFERENCE_NVIDIA_TEMPLATE = """
kernel void NBODY(const global float * restrict pos,
                  const global float * restrict vel,
                  global float *out, int N, float deltaT, float espSqr) {{
  local float tileBuf[{T4}];
  int i = get_global_id(0);
  int l = get_local_id(0);
  float4 p1 = vload4(i, pos);
  float4 acc = (float4)(0.0f, 0.0f, 0.0f, 0.0f);
  for (int t = 0; t < N / {T}; t += 1) {{
    vstore4(vload4(t * {T} + l, pos), l, tileBuf);
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int j = 0; j < {T}; j += 1) {{
      float4 p2 = vload4(j, tileBuf);
      float rx = p2.x - p1.x;
      float ry = p2.y - p1.y;
      float rz = p2.z - p1.z;
      float distSqr = rx * rx + ry * ry + rz * rz + espSqr;
      float invDist = 1.0f / sqrt(distSqr);
      float s = p2.w * invDist * invDist * invDist;
      acc = acc + (float4)(s * rx, s * ry, s * rz, 0.0f);
    }}
    barrier(CLK_LOCAL_MEM_FENCE);
  }}
  float4 v1 = vload4(i, vel);
  float8 r = (float8)(
    p1.x + v1.x * deltaT + 0.5f * acc.x * deltaT * deltaT,
    p1.y + v1.y * deltaT + 0.5f * acc.y * deltaT * deltaT,
    p1.z + v1.z * deltaT + 0.5f * acc.z * deltaT * deltaT,
    p1.w,
    v1.x + acc.x * deltaT,
    v1.y + acc.y * deltaT,
    v1.z + acc.z * deltaT,
    v1.w);
  vstore8(r, i, out);
}}
"""

_REFERENCE_AMD = """
kernel void NBODY(const global float * restrict pos,
                  const global float * restrict vel,
                  global float *out, int N, float deltaT, float espSqr) {
  int i = get_global_id(0);
  float4 p1 = vload4(i, pos);
  float4 acc = (float4)(0.0f, 0.0f, 0.0f, 0.0f);
  for (int j = 0; j < N; j += 1) {
    float4 p2 = vload4(j, pos);
    float rx = p2.x - p1.x;
    float ry = p2.y - p1.y;
    float rz = p2.z - p1.z;
    float distSqr = rx * rx + ry * ry + rz * rz + espSqr;
    float invDist = 1.0f / sqrt(distSqr);
    float s = p2.w * invDist * invDist * invDist;
    acc = acc + (float4)(s * rx, s * ry, s * rz, 0.0f);
  }
  float4 v1 = vload4(i, vel);
  float8 r = (float8)(
    p1.x + v1.x * deltaT + 0.5f * acc.x * deltaT * deltaT,
    p1.y + v1.y * deltaT + 0.5f * acc.y * deltaT * deltaT,
    p1.z + v1.z * deltaT + 0.5f * acc.z * deltaT * deltaT,
    p1.w,
    v1.x + acc.x * deltaT,
    v1.y + acc.y * deltaT,
    v1.z + acc.z * deltaT,
    v1.w);
  vstore8(r, i, out);
}
"""

REFERENCE_NVIDIA = _REFERENCE_NVIDIA_TEMPLATE.format(T=TILE, T4=4 * TILE)


def _calc_acc() -> UserFun:
    from repro.ir.interp import VecValue

    def py(acc, p1, p2, esp):
        rx = p2.items[0] - p1.items[0]
        ry = p2.items[1] - p1.items[1]
        rz = p2.items[2] - p1.items[2]
        dist_sqr = rx * rx + ry * ry + rz * rz + esp
        inv = 1.0 / np.sqrt(dist_sqr)
        s = p2.items[3] * inv * inv * inv
        return VecValue(
            [acc.items[0] + s * rx, acc.items[1] + s * ry,
             acc.items[2] + s * rz, acc.items[3]]
        )

    return UserFun(
        "calcAcc",
        ["acc", "p1", "p2", "espSqr"],
        "float rx = p2.x - p1.x;"
        " float ry = p2.y - p1.y;"
        " float rz = p2.z - p1.z;"
        " float distSqr = rx * rx + ry * ry + rz * rz + espSqr;"
        " float invDist = 1.0f / sqrt(distSqr);"
        " float s = p2.w * invDist * invDist * invDist;"
        " return acc + (float4)(s * rx, s * ry, s * rz, 0.0f);",
        [_FLOAT4, _FLOAT4, _FLOAT4, FLOAT],
        _FLOAT4,
        py=py,
    )


def _update() -> UserFun:
    from repro.ir.interp import VecValue

    def py(p, v, a, dt):
        return VecValue(
            [
                p.items[0] + v.items[0] * dt + 0.5 * a.items[0] * dt * dt,
                p.items[1] + v.items[1] * dt + 0.5 * a.items[1] * dt * dt,
                p.items[2] + v.items[2] * dt + 0.5 * a.items[2] * dt * dt,
                p.items[3],
                v.items[0] + a.items[0] * dt,
                v.items[1] + a.items[1] * dt,
                v.items[2] + a.items[2] * dt,
                v.items[3],
            ]
        )

    return UserFun(
        "update",
        ["p", "v", "a", "deltaT"],
        "return (float8)("
        "p.x + v.x * deltaT + 0.5f * a.x * deltaT * deltaT,"
        " p.y + v.y * deltaT + 0.5f * a.y * deltaT * deltaT,"
        " p.z + v.z * deltaT + 0.5f * a.z * deltaT * deltaT,"
        " p.w,"
        " v.x + a.x * deltaT, v.y + a.y * deltaT, v.z + a.z * deltaT, v.w);",
        [_FLOAT4, _FLOAT4, _FLOAT4, FLOAT],
        _FLOAT8,
        py=py,
    )


def _zero4() -> UserFun:
    from repro.ir.interp import VecValue

    return UserFun(
        "zero4",
        ["x"],
        "return (float4)(0.0f, 0.0f, 0.0f, 0.0f);",
        [_FLOAT4],
        _FLOAT4,
        py=lambda x: VecValue([0.0, 0.0, 0.0, 0.0]),
    )


def _id4() -> UserFun:
    return UserFun("idF4", ["v"], "return v;", [_FLOAT4], _FLOAT4, py=lambda v: v)


def _program_nvidia(n_val):
    """Work-group tiled version with local memory staging."""
    pos = Param(ArrayType(_FLOAT4, n_val), "pos")
    vel = Param(ArrayType(_FLOAT4, n_val), "vel")
    delta_t = Param(FLOAT, "deltaT")
    esp = Param(FLOAT, "espSqr")
    calc, upd, zero, id4 = _calc_acc(), _update(), _zero4(), _id4()

    def per_chunk(chunk):
        p1chunk = get(chunk, 0)
        v1chunk = get(chunk, 1)
        acc_init = to_local(map_lcl(zero))(p1chunk)

        def per_tile(acc_chunk, p2chunk):
            tile_local = to_local(map_lcl(id4))(p2chunk)

            def with_tile(tile):
                def per_body(ap):
                    # Keep the thread's own position in a register for
                    # the whole tile walk, as the reference does.
                    p1_reg = Param(None, "p1r")
                    inner = lam2(
                        lambda a, p2: FunCall(calc, [a, p1_reg, p2, esp])
                    )
                    reduced = FunCall(
                        reduce_seq(inner, get(ap, 0)), [tile]
                    )
                    return FunCall(
                        Lambda([p1_reg], reduced),
                        [FunCall(id4, [get(ap, 1)])],
                    )

                return join()(map_lcl(lam(per_body))(zip_(acc_chunk, p1chunk)))

            tile_p = Param(None, "tile")
            return FunCall(Lambda([tile_p], with_tile(tile_p)), [tile_local])

        acc_final = join()(
            FunCall(
                __reduce_seq_pattern()(lam2(per_tile)),
                [acc_init, split(TILE)(pos)],
            )
        )
        finish = to_global(
            map_lcl(
                lam(
                    lambda apv: FunCall(
                        upd, [get(apv, 1), get(apv, 2), get(apv, 0), delta_t]
                    )
                )
            )
        )
        return finish(zip_(acc_final, p1chunk, v1chunk))

    chunks = zip_(split(TILE)(pos), split(TILE)(vel))
    body = join()(map_wrg(lam(per_chunk))(chunks))
    return Lambda([pos, vel, delta_t, esp], body)


def __reduce_seq_pattern():
    from repro.ir.patterns import ReduceSeq

    return ReduceSeq


def _program_amd(n_val):
    """Flat version: one global thread per body, float4 arithmetic."""
    pos = Param(ArrayType(_FLOAT4, n_val), "pos")
    vel = Param(ArrayType(_FLOAT4, n_val), "vel")
    delta_t = Param(FLOAT, "deltaT")
    esp = Param(FLOAT, "espSqr")
    calc, upd = _calc_acc(), _update()

    def per_body(pv):
        p1_reg = Param(None, "p1r")
        step = lam2(lambda a, p2: FunCall(calc, [a, p1_reg, p2, esp]))
        acc = reduce_seq(step, vec_literal(0.0, 4))(pos)
        finish = to_global(
            map_seq(
                lam(lambda a: FunCall(upd, [p1_reg, get(pv, 1), a, delta_t]))
            )
        )
        return FunCall(
            Lambda([p1_reg], finish(acc)), [FunCall(_id4(), [get(pv, 0)])]
        )

    body = join()(map_glb(lam(per_body))(zip_(pos, vel)))
    return Lambda([pos, vel, delta_t, esp], body)


def _high_level(n_val=None):
    n = n_val if n_val is not None else Var("N")
    pos = Param(ArrayType(_FLOAT4, n), "pos")
    vel = Param(ArrayType(_FLOAT4, n), "vel")
    delta_t = Param(FLOAT, "deltaT")
    esp = Param(FLOAT, "espSqr")
    calc, upd = _calc_acc(), _update()

    def per_body(pv):
        step = lam2(lambda a, p2: FunCall(calc, [a, get(pv, 0), p2, esp]))
        acc = reduce_(step, vec_literal(0.0, 4))(pos)
        return map_(
            lam(lambda a: FunCall(upd, [get(pv, 0), get(pv, 1), a, delta_t]))
        )(acc)

    body = join()(map_(lam(per_body))(zip_(pos, vel)))
    return Lambda([pos, vel, delta_t, esp], body)


def _oracle(inputs, size_env):
    pos = inputs["pos"].reshape(-1, 4)
    vel = inputs["vel"].reshape(-1, 4)
    dt = inputs["deltaT"]
    esp = inputs["espSqr"]
    r = pos[None, :, :3] - pos[:, None, :3]
    dist_sqr = (r ** 2).sum(axis=2) + esp
    inv = 1.0 / np.sqrt(dist_sqr)
    s = pos[None, :, 3] * inv ** 3
    acc = (s[:, :, None] * r).sum(axis=1)
    out = np.zeros((len(pos), 8))
    out[:, :3] = pos[:, :3] + vel[:, :3] * dt + 0.5 * acc * dt * dt
    out[:, 3] = pos[:, 3]
    out[:, 4:7] = vel[:, :3] + acc * dt
    out[:, 7] = vel[:, 7 - 4]
    return out.ravel()


def _make_inputs(size_env, rng):
    n = size_env["N"]
    pos = rng.random((n, 4)) * 2.0
    pos[:, 3] = rng.random(n) + 0.5  # masses
    vel = rng.random((n, 4)) * 0.1
    return {
        "pos": pos.ravel(),
        "vel": vel.ravel(),
        "deltaT": 0.005,
        "espSqr": 500.0,
    }


def _ref_args(inputs, size_env, scratch):
    return {
        "pos": inputs["pos"],
        "vel": inputs["vel"],
        "out": np.zeros(8 * size_env["N"]),
        "N": size_env["N"],
        "deltaT": inputs["deltaT"],
        "espSqr": inputs["espSqr"],
    }


def _build_variant(variant: str) -> Benchmark:
    nvidia = variant == "nvidia"
    return Benchmark(
        name=f"nbody-{variant}",
        source_suite="NVIDIA SDK" if nvidia else "AMD SDK",
        characteristics=Characteristics(
            local_memory=nvidia,
            private_memory=True,
            vectorization=not nvidia,
            coalescing=True,
            iteration_space="1D",
        ),
        sizes={"small": {"N": 128}, "large": {"N": 384}},
        make_inputs=_make_inputs,
        oracle=_oracle,
        reference_source=REFERENCE_NVIDIA if nvidia else _REFERENCE_AMD,
        reference_launches=[
            RefLaunch(
                kernel="NBODY",
                make_args=_ref_args,
                global_size=lambda env: (env["N"], 1, 1),
                local_size=(TILE, 1, 1) if nvidia else (64, 1, 1),
                out_arg="out",
            )
        ],
        high_level=lambda env: _high_level(),
        stages=[
            LiftStage(
                build=lambda env: (
                    _program_nvidia(env["N"]) if nvidia else _program_amd(env["N"])
                ),
                param_names=["pos", "vel", "deltaT", "espSqr"],
                global_size=lambda env: (env["N"], 1, 1),
                local_size=(TILE, 1, 1) if nvidia else (64, 1, 1),
            )
        ],
        rtol=1e-7,
    )


def build_nvidia() -> Benchmark:
    return _build_variant("nvidia")


def build_amd() -> Benchmark:
    return _build_variant("amd")


register("nbody-nvidia")(build_nvidia)
register("nbody-amd")(build_amd)
