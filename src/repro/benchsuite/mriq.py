"""MRI-Q (Parboil): non-Cartesian MRI reconstruction, Q computation.

For every voxel the kernel accumulates a complex contribution from every
k-space sample.  Both the reference and the Lift version keep the
(real, imaginary) accumulator in a ``float2`` register and write the
interleaved result — the private-memory usage of Table 1.
"""

from __future__ import annotations

import numpy as np

from repro.arith import Var
from repro.types import ArrayType, FLOAT, VectorType
from repro.ir.nodes import FunCall, Lambda, Param, UserFun
from repro.ir.dsl import (
    compose,
    get,
    id_fun,
    join,
    lam,
    lam2,
    map_,
    map_glb,
    map_seq,
    reduce_,
    reduce_seq,
    to_global,
    vec_literal,
    zip_,
)
from repro.benchsuite.common import (
    Benchmark,
    Characteristics,
    LiftStage,
    RefLaunch,
    register,
)

# The same single-precision literal everywhere (reference kernel, Lift
# user function, oracle) so differential comparisons stay exact.
_TWO_PI = 6.2831853

_REFERENCE = """
kernel void MRIQ(const global float * restrict x,
                 const global float * restrict y,
                 const global float * restrict z,
                 const global float * restrict kx,
                 const global float * restrict ky,
                 const global float * restrict kz,
                 const global float * restrict mag,
                 global float *out, int N, int M) {
  int i = get_global_id(0);
  if (i < N) {
    float px = x[i]; float py = y[i]; float pz = z[i];
    float re = 0.0f; float im = 0.0f;
    for (int m = 0; m < M; m += 1) {
      float ang = 6.2831853f * (kx[m] * px + ky[m] * py + kz[m] * pz);
      re = re + mag[m] * cos(ang);
      im = im + mag[m] * sin(ang);
    }
    out[2 * i] = re;
    out[2 * i + 1] = im;
  }
}
"""

_FLOAT2 = VectorType(FLOAT, 2)


def _phase_acc() -> UserFun:
    from repro.ir.interp import VecValue

    def py(acc, kx, ky, kz, m, px, py_, pz):
        ang = _TWO_PI * (kx * px + ky * py_ + kz * pz)
        return VecValue(
            [acc.items[0] + m * np.cos(ang), acc.items[1] + m * np.sin(ang)]
        )

    return UserFun(
        "phaseAcc",
        ["acc", "kx", "ky", "kz", "m", "px", "py", "pz"],
        "float ang = 6.2831853f * (kx * px + ky * py + kz * pz);"
        " return acc + (float2)(m * cos(ang), m * sin(ang));",
        [_FLOAT2, FLOAT, FLOAT, FLOAT, FLOAT, FLOAT, FLOAT, FLOAT],
        _FLOAT2,
        py=py,
    )


def _id_float2() -> UserFun:
    return UserFun("idF2", ["v"], "return v;", [_FLOAT2], _FLOAT2, py=lambda v: v)


def _program(low_level: bool):
    n, m = Var("N"), Var("M")
    x = Param(ArrayType(FLOAT, n), "x")
    y = Param(ArrayType(FLOAT, n), "y")
    z = Param(ArrayType(FLOAT, n), "z")
    kx = Param(ArrayType(FLOAT, m), "kx")
    ky = Param(ArrayType(FLOAT, m), "ky")
    kz = Param(ArrayType(FLOAT, m), "kz")
    mag = Param(ArrayType(FLOAT, m), "mag")

    acc_fun = _phase_acc()
    outer_map = map_glb if low_level else map_
    copy_map = map_seq if low_level else map_
    reduce_builder = reduce_seq if low_level else reduce_

    def per_voxel(v):
        samples = zip_(kx, ky, kz, mag)
        step = lam2(
            lambda acc, s: FunCall(
                acc_fun,
                [
                    acc,
                    get(s, 0), get(s, 1), get(s, 2), get(s, 3),
                    get(v, 0), get(v, 1), get(v, 2),
                ],
            )
        )
        q = reduce_builder(step, vec_literal(0.0, 2))(samples)
        copy = copy_map(_id_float2())
        if low_level:
            return to_global(copy)(q)
        return copy(q)

    body = join()(outer_map(lam(per_voxel))(zip_(x, y, z)))
    return Lambda([x, y, z, kx, ky, kz, mag], body)


def build() -> Benchmark:
    def make_inputs(size_env, rng):
        n, m = size_env["N"], size_env["M"]
        return {
            "x": rng.random(n),
            "y": rng.random(n),
            "z": rng.random(n),
            "kx": rng.random(m),
            "ky": rng.random(m),
            "kz": rng.random(m),
            "mag": rng.random(m),
        }

    def oracle(inputs, size_env):
        x, y, z = inputs["x"], inputs["y"], inputs["z"]
        kx, ky, kz, mag = inputs["kx"], inputs["ky"], inputs["kz"], inputs["mag"]
        ang = _TWO_PI * (
            np.outer(x, kx) + np.outer(y, ky) + np.outer(z, kz)
        )
        re = (mag[None, :] * np.cos(ang)).sum(axis=1)
        im = (mag[None, :] * np.sin(ang)).sum(axis=1)
        out = np.empty(2 * len(x))
        out[0::2] = re
        out[1::2] = im
        return out

    def ref_args(inputs, size_env, scratch):
        args = dict(inputs)
        args["out"] = np.zeros(2 * size_env["N"])
        args["N"] = size_env["N"]
        args["M"] = size_env["M"]
        return args

    return Benchmark(
        name="mriq",
        source_suite="Parboil",
        characteristics=Characteristics(
            local_memory=False,
            private_memory=True,
            vectorization=False,
            coalescing=True,
            iteration_space="1D",
        ),
        sizes={
            "small": {"N": 128, "M": 64},
            "large": {"N": 512, "M": 128},
        },
        make_inputs=make_inputs,
        oracle=oracle,
        reference_source=_REFERENCE,
        reference_launches=[
            RefLaunch(
                kernel="MRIQ",
                make_args=ref_args,
                global_size=lambda env: (env["N"], 1, 1),
                local_size=(64, 1, 1),
                out_arg="out",
            )
        ],
        high_level=lambda env: _program(low_level=False),
        stages=[
            LiftStage(
                build=lambda env: _program(low_level=True),
                param_names=["x", "y", "z", "kx", "ky", "kz", "mag"],
                global_size=lambda env: (env["N"], 1, 1),
                local_size=(64, 1, 1),
            )
        ],
        rtol=1e-6,
    )


register("mriq")(build)
