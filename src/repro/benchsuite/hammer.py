"""``benchsuite hammer`` — concurrency-and-chaos soak of the service.

The daemon's contract is easy to state and easy to get wrong: every
result it serves — warm hit, coalesced follower, breaker-degraded
launch, retried attempt, journal replay — must be **bitwise-identical**
to the same request executed by the one-shot CLI path.  This harness
checks it the hard way:

1. **Solo baselines** — each workload (single-stage benchmark ×
   optimization level) runs once through the bare
   ``compile_kernel``/``execute_kernel`` path, with no cache, no
   breaker board and fault injection suspended.  These outputs and
   counters are the ground truth.
2. **Overload probe** — a deliberately tiny service (one worker, queue
   capacity one, paused) is driven past capacity: the surplus submit
   must raise :class:`~repro.service.admission.ServiceOverloaded`
   (traced as ``service.reject``), and the queued work must still
   produce baseline-identical results after resume.
3. **Recovery drill** — an orphaned journal entry is planted (as a
   killed predecessor would leave it) and
   :meth:`~repro.service.daemon.TuningService.recover` must replay it
   (traced as ``service.journal.replay``) to a baseline-identical
   result.
4. **Warm race** — every client submits the *same* cold workload while
   the workers are paused; exactly one execution may happen
   (single-flight), every follower gets the identical object.
5. **The hammer proper** — ``clients`` threads (≥8 in CI) each run a
   seeded schedule of mixed cold/warm requests under the chaos fault
   plan; transient failures and backpressure rejections are retried by
   the clients (deterministically jittered), and *every* response is
   compared bitwise against its baseline.
6. **Graceful drain** — shutdown must complete cleanly and leave zero
   orphaned journal entries.

``run_hammer`` returns a report dict; ``ok`` is True only when all six
phases held.  ``benchmarks/check_chaos.py --service-soak`` gates CI on
it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro import faultinject, obs
from repro.benchsuite.common import Benchmark, get_benchmark
from repro.cache import TuningCache
from repro.compiler.codegen import compile_kernel
from repro.compiler.kernel import execute_kernel
from repro.compiler.options import CompilerOptions
from repro.resilience import (
    TRANSIENT_ERRORS,
    RetryPolicy,
    deterministic_jitter,
)
from repro.service import (
    JournalEntry,
    RecoveryJournal,
    ServiceConfig,
    ServiceOverloaded,
    TuningService,
)

__all__ = [
    "HAMMER_BENCHMARKS",
    "OPTION_LEVELS",
    "Workload",
    "build_workloads",
    "solo_baseline",
    "spec_resolver",
    "run_hammer",
    "format_hammer",
]

#: Single-stage benchmarks (no ``__prev`` chaining), so one request ==
#: one kernel launch and the solo path is exactly one compile+execute.
HAMMER_BENCHMARKS = ("nn", "gemv", "mm-nvidia")

OPTION_LEVELS: Dict[str, Callable[..., CompilerOptions]] = {
    "none": CompilerOptions.none,
    "all": CompilerOptions.all,
}


@dataclass
class Workload:
    """One submittable request payload plus its journalable spec."""

    name: str  # "<benchmark>@<level>"
    spec: dict  # {"benchmark", "size", "level", "engine"} — JSON-able
    program: Any
    inputs: Dict[str, Any]
    size_env: Dict[str, int]
    global_size: tuple
    local_size: tuple
    options: CompilerOptions
    engine: Optional[str]

    def submit_kwargs(self) -> dict:
        return dict(
            program=self.program,
            inputs=self.inputs,
            size_env=self.size_env,
            global_size=self.global_size,
            local_size=self.local_size,
            options=self.options,
            engine=self.engine,
            spec=self.spec,
        )


def _materialize(spec: Mapping[str, Any]) -> Workload:
    bench: Benchmark = get_benchmark(spec["benchmark"])
    inputs, size_env = bench.inputs_for(spec["size"])
    stage = bench.stages[0]
    fun = stage.build(size_env)
    options = OPTION_LEVELS[spec["level"]](local_size=stage.local_size)
    stage_inputs = {
        param.name: inputs[name]
        for param, name in zip(fun.params, stage.param_names)
    }
    return Workload(
        name=f"{spec['benchmark']}@{spec['level']}",
        spec=dict(spec),
        program=fun,
        inputs=stage_inputs,
        size_env=dict(size_env),
        global_size=tuple(stage.global_size(size_env)),
        local_size=tuple(stage.local_size),
        options=options,
        engine=spec.get("engine"),
    )


def build_workloads(
    benchmarks: Sequence[str] = HAMMER_BENCHMARKS,
    levels: Sequence[str] = ("none", "all"),
    size: str = "small",
    engine: Optional[str] = None,
) -> List[Workload]:
    return [
        _materialize(
            {"benchmark": b, "size": size, "level": lv, "engine": engine}
        )
        for b in benchmarks
        for lv in levels
    ]


def spec_resolver(entry: JournalEntry) -> Optional[dict]:
    """Rebuild submission kwargs from a journaled hammer spec (the
    resolver handed to :meth:`TuningService.recover`)."""
    spec = entry.spec or {}
    if "benchmark" not in spec or spec["benchmark"] not in HAMMER_BENCHMARKS:
        return None
    if spec.get("level") not in OPTION_LEVELS:
        return None
    return _materialize(spec).submit_kwargs()


def solo_baseline(workload: Workload) -> tuple:
    """The one-shot CLI path: bare compile+execute, no cache, no board,
    fault injection suspended — the ground truth for bitwise checks."""
    with faultinject.plan_installed(None):
        compiled = compile_kernel(workload.program, workload.options)
        result = execute_kernel(
            compiled,
            workload.inputs,
            workload.size_env,
            workload.global_size,
            local_size=workload.local_size,
            engine=workload.engine,
        )
    return result.output, result.counters


def _matches(baseline: tuple, got: Any) -> bool:
    base_out, base_counters = baseline
    try:
        out, counters = got
    except (TypeError, ValueError):
        return False
    return (
        isinstance(out, np.ndarray)
        and out.dtype == base_out.dtype
        and out.shape == base_out.shape
        and out.tobytes() == base_out.tobytes()
        and counters == base_counters
    )


def run_hammer(
    clients: int = 8,
    requests_per_client: int = 6,
    cache_dir: "str | None" = None,
    journal_dir: "str | None" = None,
    seed: int = 23,
    engine: Optional[str] = None,
    benchmarks: Sequence[str] = HAMMER_BENCHMARKS,
) -> dict:
    """Run the six-phase soak; see the module docstring.  Honours any
    active fault plan (``--fault-plan``/``REPRO_FAULT_PLAN``) for every
    phase except the solo baselines."""
    import tempfile

    workloads = build_workloads(benchmarks, engine=engine)
    baselines = {w.name: solo_baseline(w) for w in workloads}

    scratch = tempfile.mkdtemp(prefix="repro-hammer-")
    cache_dir = cache_dir or f"{scratch}/cache"
    journal_dir = journal_dir or f"{scratch}/journal"

    report: dict = {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "workloads": [w.name for w in workloads],
        "mismatches": [],
        "client_errors": [],
        "resubmits": 0,
    }

    # -- phase 2: overload probe --------------------------------------
    probe_cfg = ServiceConfig(workers=1, max_queue=1, journal_dir=None)
    rejected = False
    with TuningService(cache=None, config=probe_cfg) as probe:
        probe.pause()
        first = probe.submit_run(**workloads[0].submit_kwargs())
        try:
            probe.submit_run(**workloads[1].submit_kwargs())
        except ServiceOverloaded:
            rejected = True
        probe.resume()
        queued = first.result(timeout=60.0)
        if not _matches(baselines[workloads[0].name], queued):
            report["mismatches"].append(("overload-probe", workloads[0].name))
    report["overload_rejected"] = rejected

    # -- phases 3-6: the main service ---------------------------------
    cache = TuningCache(cache_dir)
    config = ServiceConfig(
        workers=4,
        max_queue=max(8, 2 * clients),
        journal_dir=journal_dir,
    )

    # Plant the orphan a killed predecessor would leave behind.
    planted = JournalEntry(
        request_id="orphan-drill-1",
        kind="run",
        structural_hash="",
        spec=workloads[0].spec,
    )
    with faultinject.plan_installed(None):
        # The drill is about replay, not journal-write faults.
        RecoveryJournal(journal_dir).begin(planted)

    service = TuningService(cache=cache, config=config)
    try:
        replayed = service.recover(spec_resolver)
        report["replayed"] = replayed

        # -- phase 4: warm race (single-flight) -----------------------
        race = workloads[1]
        service.pause()
        responses = [
            service.submit_run(**race.submit_kwargs()) for _ in range(clients)
        ]
        service.resume()
        for response in responses:
            if not _matches(baselines[race.name], response.result(60.0)):
                report["mismatches"].append(("warm-race", race.name))
        report["coalesced"] = service.stats.coalesced

        # -- phase 5: the hammer proper -------------------------------
        lock = threading.Lock()

        def client(index: int) -> None:
            policy = RetryPolicy(
                attempts=6, base_delay=0.01, jitter=0.5
            )
            for step in range(requests_per_client):
                # Seeded schedule: deterministic per (seed, client, step).
                draw = deterministic_jitter(
                    f"hammer:{seed}:{index}:{step}", 0, 1.0
                )
                workload = workloads[int(draw * 1e6) % len(workloads)]

                def once():
                    response = service.submit_run(**workload.submit_kwargs())
                    return response.result(timeout=60.0)

                try:
                    got = policy.call(
                        once,
                        retry_on=TRANSIENT_ERRORS + (ServiceOverloaded,),
                        on_retry=lambda *_: _count_resubmit(),
                        key=f"client-{index}-{step}",
                    )
                except Exception as exc:  # noqa: BLE001 - reported below
                    with lock:
                        report["client_errors"].append(
                            f"client {index} step {step}: "
                            f"{type(exc).__name__}: {exc}"
                        )
                    continue
                if not _matches(baselines[workload.name], got):
                    with lock:
                        report["mismatches"].append(
                            (f"client-{index}", workload.name)
                        )

        def _count_resubmit() -> None:
            with lock:
                report["resubmits"] += 1

        threads = [
            threading.Thread(target=client, args=(i,), daemon=True)
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        report["stuck_clients"] = sum(1 for t in threads if t.is_alive())
    finally:
        # -- phase 6: graceful drain ----------------------------------
        report["drained_clean"] = service.shutdown()

    journal = RecoveryJournal(journal_dir)
    report["orphans_after_drain"] = len(journal)
    report["stats"] = service.stats.as_dict()
    report["breakers"] = service.breakers.snapshot()
    report["cache"] = {
        "run_hits": cache.stats.run_hits,
        "run_misses": cache.stats.run_misses,
    }
    # Latency SLOs per request class, from the quantile histograms the
    # service populated during the soak.  Structural only: CI asserts
    # the table's shape, never absolute latencies.
    report["slo"] = obs.analysis.slo_table()
    report["ok"] = (
        not report["mismatches"]
        and not report["client_errors"]
        and report["overload_rejected"]
        and report["replayed"] >= 1
        and report["coalesced"] >= clients - 1
        and report["stuck_clients"] == 0
        and report["drained_clean"]
        and report["orphans_after_drain"] == 0
    )
    obs.instant("service.hammer.done", ok=report["ok"])
    return report


def format_hammer(report: dict) -> str:
    lines = [
        "service hammer "
        f"({report['clients']} clients x {report['requests_per_client']} "
        f"requests over {len(report['workloads'])} workloads)",
        f"  completed: {report['stats']['completed']}  "
        f"warm hits: {report['stats']['warm_hits']}  "
        f"coalesced: {report['stats']['coalesced']}  "
        f"rejects: {report['stats']['rejects']}",
        f"  worker retries: {report['stats']['retries']}  "
        f"client resubmits: {report['resubmits']}  "
        f"replayed orphans: {report['replayed']}",
        f"  drain clean: {report['drained_clean']}  "
        f"orphans after drain: {report['orphans_after_drain']}",
    ]
    if report["mismatches"]:
        lines.append(f"  BITWISE MISMATCHES: {report['mismatches']}")
    if report["client_errors"]:
        lines.append(f"  CLIENT ERRORS: {report['client_errors']}")
    from repro.obs import analysis

    for line in analysis.format_slo(report.get("slo", [])).splitlines():
        lines.append("  " + line)
    lines.append(
        "  verdict: "
        + ("OK — every response bitwise-identical to the solo path"
           if report["ok"] else "FAILED")
    )
    return "\n".join(lines)
