"""Unified markdown performance report.

``python -m repro.benchsuite report --inputs m1.json m2.json --output
perf-report.md`` merges one or more ``--metrics-json`` snapshots (from
``calibrate``, ``figure8 --profile``, ``hammer``, ...) into a single
markdown document with four sections — cost-model calibration, roofline
attribution, service latency SLOs, and headline benchsuite counters —
which CI uploads as a workflow artifact, so every run leaves one
human-readable perf record behind.

Merging is last-writer-wins per top-level section: later inputs
override earlier ones where both carry real data (a snapshot whose
calibration section is empty does not erase an earlier populated one).
With no ``--inputs`` the live in-process snapshot is used.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.obs import analysis

__all__ = ["merge_snapshots", "build_report"]


def _has_data(section) -> bool:
    """Does this snapshot section carry real (non-placeholder) data?"""
    if not section:
        return False
    if isinstance(section, dict):
        if section.get("error"):
            return False
        # Placeholder providers: {"active": False}, empty calibration
        # ({"workloads": {}, ...}), disabled profile.
        if section == {"active": False}:
            return False
        if "workloads" in section and not section["workloads"]:
            return False
        if "segments" in section and not section["segments"]:
            return False
        return True
    return True


def merge_snapshots(snapshots: Sequence[dict]) -> dict:
    """Merge metrics snapshots, last-writer-wins where data exists."""
    merged: dict = {}
    for snap in snapshots:
        for key, section in snap.items():
            if key not in merged or _has_data(section):
                merged[key] = section
    return merged


def build_report(
    inputs: Sequence[str] = (),
    title: str = "Performance report",
) -> str:
    """Render the merged snapshots as a markdown document."""
    if inputs:
        snapshots = []
        for path in inputs:
            with open(path) as fh:
                snapshots.append(json.load(fh))
        doc = merge_snapshots(snapshots)
    else:
        from repro import obs

        doc = obs.snapshot()

    lines = [f"# {title}", ""]

    # -- calibration ----------------------------------------------------
    lines.append("## Cost-model calibration")
    lines.append("")
    workloads = (doc.get("calibration") or {}).get("workloads", {})
    if workloads:
        lines.append(
            "| workload | candidates | spearman | top-1 regret "
            "| top-5 regret | residual RMS |"
        )
        lines.append("|---|---|---|---|---|---|")
        for name in sorted(workloads):
            s = workloads[name]

            def fmt(v, pct=False):
                if v is None:
                    return "n/a"
                return f"{v * 100:.1f}%" if pct else f"{v:.3f}"

            lines.append(
                f"| {name} | {s['candidates']} | {fmt(s['spearman'])} "
                f"| {fmt(s['top1_regret'], pct=True)} "
                f"| {fmt(s['top5_regret'], pct=True)} "
                f"| {fmt(s['residual_rms'])} |"
            )
    else:
        lines.append("_No calibration records (run `benchsuite calibrate`)._")
    lines.append("")

    # -- roofline -------------------------------------------------------
    lines.append("## Roofline attribution")
    lines.append("")
    profile_doc = doc.get("profile") or {}
    rows = (
        analysis.roofline_segments(profile_doc=profile_doc)
        if profile_doc.get("segments") else []
    )
    if rows:
        ridge = rows[0]["ridge"]
        lines.append(f"Ridge point: {ridge:.1f} flop/byte.")
        lines.append("")
        lines.append(
            "| kernel | segment | kind | flops | bytes | flop/byte "
            "| bound |"
        )
        lines.append("|---|---|---|---|---|---|---|")
        for r in rows[:16]:
            ai = (
                "n/a" if r["intensity"] is None
                else f"{r['intensity']:.2f}"
            )
            lines.append(
                f"| {r['kernel']} | {r['segment']} | {r['kind']} "
                f"| {r['flops']} | {r['bytes']} | {ai} | {r['bound']} |"
            )
    else:
        lines.append("_No profiled segments (run with `--profile`)._")
    lines.append("")

    # -- SLOs -----------------------------------------------------------
    lines.append("## Service latency SLOs")
    lines.append("")
    slo_rows = analysis.slo_table(doc)
    if slo_rows:
        lines.append(
            "| class | count | p50 | p95 | p99 | max | queue p95 |"
        )
        lines.append("|---|---|---|---|---|---|---|")
        for r in slo_rows:
            qw = (
                "n/a" if r["queue_wait_p95_ms"] is None
                else f"{r['queue_wait_p95_ms']:.2f} ms"
            )
            lines.append(
                f"| {r['class']} | {r['count']} | {r['p50_ms']:.2f} ms "
                f"| {r['p95_ms']:.2f} ms | {r['p99_ms']:.2f} ms "
                f"| {r['max_ms']:.2f} ms | {qw} |"
            )
    else:
        lines.append("_No service requests observed (run `hammer`)._")
    lines.append("")

    # -- headline counters ----------------------------------------------
    lines.append("## Headline counters")
    lines.append("")
    counters = doc.get("counters") or {}
    if counters:
        lines.append("| counter | value |")
        lines.append("|---|---|")
        for name in sorted(counters):
            lines.append(f"| {name} | {counters[name]} |")
    else:
        lines.append("_No counters recorded._")
    lines.append("")
    return "\n".join(lines)
