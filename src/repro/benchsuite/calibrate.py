"""Cost-model calibration over the benchmark menus.

``python -m repro.benchsuite calibrate [--benchmarks nn gemv mm]``
re-runs the rewrite-space search on each benchmark (populating the
:mod:`repro.obs.analysis` calibration log with one record per evaluated
candidate) and prints, per workload, how well the pre-execution
prediction (``static_program_cost``) ranks candidates against the
measured-counter model (``estimate_runtime``): Spearman rank
correlation, top-1/top-5 regret, and scale-aligned residuals.

The same numbers land in the ``calibration`` section of the
``--metrics-json`` snapshot, which ``benchmarks/check_perf_regression.py
--calibration-json`` gates against the checked-in floor
(``benchmarks/calibration_floor.json``) — a cost-model regression fails
CI instead of silently degrading the explorer's choices.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.obs import analysis
from repro.benchsuite.explore import EXPLORABLE, explore_benchmark

__all__ = ["run_calibrate", "format_calibrate"]


def run_calibrate(
    names: Optional[Sequence[str]] = None,
    depth: int = 3,
    max_eval: int = 12,
    size: str = "small",
    cache=None,
    device: str = "nvidia",
    engine: Optional[str] = None,
) -> dict:
    """Populate the calibration log and return its per-workload summary.

    Returns ``{"workloads": {name: {spearman, top1_regret, ...}},
    "config": {...}}``.  No cache by default: calibration wants every
    candidate actually simulated, not served from the cycle cache with
    ``wall_seconds=None``."""
    names = tuple(names or EXPLORABLE)
    analysis.LOG.reset()
    for name in names:
        explore_benchmark(
            name, depth=depth, max_eval=max_eval, size=size,
            cache=cache, device=device, engine=engine,
        )
    doc = analysis.LOG.as_dict()
    return {
        "config": {
            "benchmarks": list(names),
            "depth": depth,
            "max_eval": max_eval,
            "size": size,
            "device": device,
            "engine": engine or "auto",
        },
        "workloads": doc["workloads"],
        "records": doc["records"],
    }


def format_calibrate(data: dict) -> str:
    cfg = data["config"]
    header = (
        f"Cost-model calibration (depth {cfg['depth']}, "
        f"max-eval {cfg['max_eval']}, size {cfg['size']}, "
        f"device {cfg['device']}, engine {cfg['engine']})"
    )
    table = analysis.format_calibration({"workloads": data["workloads"]})
    return f"{header}\n\n{table}"
