"""2D convolution (NVIDIA SDK style): tiled stencil with local memory.

Overlapping 2D tiles are built with the paper's slide composition
(``map(transpose) o slide o map(slide)``, section 7.2), staged
cooperatively in local memory, and each thread reduces one output
pixel's window against the weights.  The tiled output is reassembled
row-major through a ``scatter`` permutation — whose un-simplified index
expression is exactly the kind of monster the paper's section 7.4
blames for the 10-20x slowdowns without array-access simplification.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import correlate2d

from repro.arith import Cst
from repro.arith.expr import IntDiv, Mod, Prod, Sum
from repro.types import ArrayType, FLOAT, array
from repro.ir.nodes import FunCall, Lambda, Param
from repro.ir.dsl import (
    compose,
    f32,
    get,
    head,
    id_fun,
    join,
    lam,
    lam2,
    map_,
    map_lcl,
    map_seq,
    map_wrg,
    mult_and_sum_up,
    reduce_,
    reduce_seq,
    scatter,
    slide,
    split,
    to_global,
    to_local,
    transpose,
    zip_,
)
from repro.ir.patterns import IndexFun
from repro.benchsuite.common import (
    Benchmark,
    Characteristics,
    LiftStage,
    RefLaunch,
    register,
)

K = 5  # stencil diameter
T = 8  # tile (and work-group) edge
S = T + K - 1  # staged tile edge including the halo

_REFERENCE_TEMPLATE = """
kernel void CONV(const global float * restrict img,
                 const global float * restrict weights,
                 global float *out, int H, int W) {{
  local float tile[{SS}];
  int tx = get_group_id(0);
  int ty = get_group_id(1);
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int wp = W + {K} - 1;
  for (int r = ly; r < {S}; r += {T}) {{
    for (int c = lx; c < {S}; c += {T}) {{
      tile[r * {S} + c] = img[(ty * {T} + r) * wp + tx * {T} + c];
    }}
  }}
  barrier(CLK_LOCAL_MEM_FENCE);
  float s = 0.0f;
  for (int i = 0; i < {K}; i += 1) {{
    for (int j = 0; j < {K}; j += 1) {{
      s = s + tile[(ly + i) * {S} + lx + j] * weights[i * {K} + j];
    }}
  }}
  out[(ty * {T} + ly) * W + tx * {T} + lx] = s;
}}
"""

REFERENCE = _REFERENCE_TEMPLATE.format(K=K, T=T, S=S, SS=S * S)


def slide_2d(size, step):
    """The paper's 2D stencil composition (section 7.2)."""
    return compose(map_(transpose()), slide(size, step), map_(slide(size, step)))


def untile_indices(nty: int, ntx: int, tile: int, width: int) -> IndexFun:
    """Permutation reassembling a grid of flattened tiles row-major.

    Built with raw arithmetic nodes so the un-simplified form survives
    into the generated code when array-access simplification is off.
    """
    per_row = Cst(ntx * tile * tile)
    per_tile = Cst(tile * tile)
    t = Cst(tile)
    w = Cst(width)

    def fn(i, n):
        ty = IntDiv(i, per_row)
        rest = Mod(i, per_row)
        tx = IntDiv(rest, per_tile)
        r2 = Mod(rest, per_tile)
        py = IntDiv(r2, t)
        px = Mod(r2, t)
        row = Sum([Prod([ty, t]), py])
        col = Sum([Prod([tx, t]), px])
        return Sum([Prod([row, w]), col])

    return IndexFun(f"untile({nty}x{ntx},{tile},{width})", fn)


def _program(low_level: bool, h: int, w: int):
    hp, wp = h + K - 1, w + K - 1
    nty, ntx = h // T, w // T
    img = Param(array(FLOAT, hp, wp), "img")
    weights = Param(ArrayType(FLOAT, K * K), "weights")
    musu = mult_and_sum_up()
    reduce_pairs = lam2(lambda acc, p: FunCall(musu, [acc, get(p, 0), get(p, 1)]))

    def window_dot(reduce_builder, win):
        """Nested 2D reduction over the window rows, mirroring the
        reference's two tap loops (a flat join would introduce i/K and
        i%K into every access)."""
        def tap_row(acc, rw):
            inner = reduce_builder(reduce_pairs, acc)(
                zip_(get(rw, 0), get(rw, 1))
            )
            return head(inner)

        return reduce_builder(lam2(tap_row), f32(0.0))(
            zip_(win, split(K)(weights))
        )

    if not low_level:
        per_win = lam(
            lambda win: map_(id_fun())(window_dot(reduce_, win))
        )
        rows = slide_2d(K, 1)(img)
        body = join()(
            map_(lam(lambda row: join()(map_(per_win)(row))))(rows)
        )
        return Lambda([img, weights], body)

    def per_tile(t):
        staged = to_local(map_lcl(map_lcl(id_fun(), 0), 1))(t)
        wins = slide_2d(K, 1)(staged)
        per_pixel = lam(
            lambda win: to_global(map_seq(id_fun()))(
                window_dot(reduce_seq, win)
            )
        )
        computed = map_lcl(lam(lambda r: map_lcl(per_pixel, 0)(r)), 1)(wins)
        return join()(join()(computed))

    tiles = slide_2d(S, T)(img)
    tiled_out = join()(
        map_wrg(lam(lambda row: join()(map_wrg(lam(per_tile), 0)(row))), 1)(tiles)
    )
    body = scatter(untile_indices(nty, ntx, T, w))(tiled_out)
    return Lambda([img, weights], body)


def build() -> Benchmark:
    def make_inputs(size_env, rng):
        h, w = size_env["H"], size_env["W"]
        return {
            "img": rng.random((h + K - 1, w + K - 1)),
            "weights": rng.random((K, K)),
        }

    def oracle(inputs, size_env):
        img = inputs["img"].reshape(
            size_env["H"] + K - 1, size_env["W"] + K - 1
        )
        return correlate2d(img, inputs["weights"].reshape(K, K), "valid").ravel()

    def ref_args(inputs, size_env, scratch):
        return {
            "img": inputs["img"],
            "weights": inputs["weights"],
            "out": np.zeros(size_env["H"] * size_env["W"]),
            "H": size_env["H"],
            "W": size_env["W"],
        }

    return Benchmark(
        name="convolution",
        source_suite="NVIDIA SDK",
        characteristics=Characteristics(
            local_memory=True,
            private_memory=False,
            vectorization=False,
            coalescing=True,
            iteration_space="2D",
        ),
        sizes={
            "small": {"H": 16, "W": 16},
            "large": {"H": 32, "W": 32},
        },
        make_inputs=make_inputs,
        oracle=oracle,
        reference_source=REFERENCE,
        reference_launches=[
            RefLaunch(
                kernel="CONV",
                make_args=ref_args,
                global_size=lambda env: (env["W"], env["H"], 1),
                local_size=(T, T, 1),
                out_arg="out",
            )
        ],
        high_level=lambda env: _program(False, env["H"], env["W"]),
        stages=[
            LiftStage(
                build=lambda env: _program(True, env["H"], env["W"]),
                param_names=["img", "weights"],
                global_size=lambda env: (env["W"], env["H"], 1),
                local_size=(T, T, 1),
            )
        ],
        rtol=1e-9,
    )


register("convolution")(build)
