"""Per-backend circuit breakers for the service's fallback chains.

A fallback chain already recovers from a crashing backend — but it
recovers by *crashing into it again* on every launch: the chain pays
the failed ``plan()``/injected-fault cost each time before degrading.
Under a service that sees thousands of launches, a persistently broken
tier should be skipped pre-emptively and re-probed occasionally, not
re-crashed per request.  That is the classic circuit-breaker state
machine, per backend name:

* **closed** — healthy; launches flow through.  ``failure_threshold``
  *consecutive* health failures (crash declines, injected faults — not
  static capability refusals or dynamic bail-outs, which are the
  backend working as designed) trip it open.
* **open** — the chain skips the backend without trying it, recording
  a ``breaker`` decline in the :mod:`degradation ledger
  <repro.backend.ledger>`; after ``reset_timeout`` seconds the breaker
  moves to half-open.
* **half-open** — up to ``half_open_probes`` launches are let through
  as probes.  A probe success closes the breaker (the tier is
  restored); a probe failure reopens it for another ``reset_timeout``.
  A probe that ends in *neither* verdict (a static capability refusal
  or dynamic bail-out — the backend working as designed) releases its
  slot (:meth:`CircuitBreaker.release_probe`) so the next launch can
  probe again; as a backstop, probe slots held longer than
  ``reset_timeout`` without any verdict are reclaimed, so a lost probe
  can never wedge the breaker half-open forever.

The board is **opt-in and process-global**: :func:`install` (done by a
running :class:`~repro.service.daemon.TuningService`) makes
:meth:`~repro.backend.registry.ResolvedChain.execute` consult it; the
one-shot CLI paths never install one, so their behaviour is untouched.
The final member of a chain is always exempt — a graceful chain must
complete even with every breaker open.

Breakers change only *which tier serves a launch*, never its results:
every backend obeys the bitwise contract, so a breaker-degraded run
returns identical buffers and counters (and the ledger records that it
degraded).

State transitions emit ``service.breaker.open`` / ``.close`` /
``.half_open`` trace instants and bump matching counters;
:meth:`BreakerBoard.snapshot` feeds the ``service`` section of the
metrics snapshot.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro import obs

__all__ = [
    "BreakerConfig",
    "BreakerBoard",
    "CircuitBreaker",
    "board_installed",
    "install",
    "installed",
]

CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/reset policy shared by every breaker of a board."""

    #: Consecutive health failures that trip a closed breaker open.
    failure_threshold: int = 3
    #: Seconds an open breaker rejects before allowing half-open probes.
    reset_timeout: float = 0.25
    #: Concurrent probe launches admitted while half-open.
    half_open_probes: int = 1


class CircuitBreaker:
    """The three-state health gate for one backend (thread-safe)."""

    def __init__(
        self,
        name: str,
        config: Optional[BreakerConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.name = name
        self.config = config or BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes = 0
        self._half_open_at = 0.0
        self.opens = 0
        self.closes = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._refresh_locked()

    def _refresh_locked(self) -> str:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.config.reset_timeout
        ):
            self._state = HALF_OPEN
            self._probes = 0
            self._half_open_at = self._clock()
            obs.instant("service.breaker.half_open", backend=self.name)
        elif (
            self._state == HALF_OPEN
            and self._probes > 0
            and self._clock() - self._half_open_at >= self.config.reset_timeout
        ):
            # Backstop: a probe slot consumed by allow() whose launch
            # never reported a verdict (lost, or a no-verdict path that
            # missed release_probe()) would otherwise wedge the breaker
            # half-open forever.  Reclaim stale slots after a cool-down.
            self._probes = 0
            self._half_open_at = self._clock()
        return self._state

    def allow(self) -> bool:
        """May a launch try this backend right now?"""
        with self._lock:
            state = self._refresh_locked()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and self._probes < self.config.half_open_probes:
                self._probes += 1
                return True
            return False

    def release_probe(self) -> None:
        """Give back a half-open probe slot whose launch ended with no
        health verdict (static refusal / dynamic bail-out — the backend
        working as designed, neither success nor failure).  No-op when
        not half-open (closed launches consume no slot)."""
        with self._lock:
            if self._state == HALF_OPEN and self._probes > 0:
                self._probes -= 1
                self._half_open_at = self._clock()

    def record_success(self) -> None:
        with self._lock:
            was = self._refresh_locked()
            self._state = CLOSED
            self._failures = 0
            self._probes = 0
            if was != CLOSED:
                self.closes += 1
        if was != CLOSED:
            obs.instant("service.breaker.close", backend=self.name)
            obs.inc("service.breaker.closes")

    def record_failure(self) -> None:
        with self._lock:
            state = self._refresh_locked()
            self._failures += 1
            tripped = state == HALF_OPEN or (
                state == CLOSED
                and self._failures >= self.config.failure_threshold
            )
            if tripped:
                self._state = OPEN
                self._opened_at = self._clock()
                self._probes = 0
                self.opens += 1
        if tripped:
            obs.instant(
                "service.breaker.open",
                backend=self.name,
                failures=self._failures,
            )
            obs.inc("service.breaker.opens")

    def as_dict(self) -> dict:
        with self._lock:
            state = self._refresh_locked()
            return {
                "state": state,
                "consecutive_failures": self._failures,
                "opens": self.opens,
                "closes": self.closes,
            }


class BreakerBoard:
    """One breaker per backend name, created lazily, shared config."""

    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, backend: str) -> CircuitBreaker:
        with self._lock:
            b = self._breakers.get(backend)
            if b is None:
                b = CircuitBreaker(backend, self.config, self._clock)
                self._breakers[backend] = b
            return b

    def allow(self, backend: str) -> bool:
        return self.breaker(backend).allow()

    def success(self, backend: str) -> None:
        self.breaker(backend).record_success()

    def failure(self, backend: str) -> None:
        self.breaker(backend).record_failure()

    def release(self, backend: str) -> None:
        self.breaker(backend).release_probe()

    def snapshot(self) -> dict:
        with self._lock:
            names = list(self._breakers)
        return {name: self.breaker(name).as_dict() for name in sorted(names)}

    def open_count(self) -> int:
        return sum(
            1 for b in self.snapshot().values() if b["state"] != CLOSED
        )


# ---------------------------------------------------------------------------
# process-global installation (consulted by ResolvedChain.execute)
# ---------------------------------------------------------------------------

_installed: Optional[BreakerBoard] = None
_install_lock = threading.Lock()


def install(board: Optional[BreakerBoard]) -> None:
    """Make ``board`` the chain-consulted breaker board (``None``
    uninstalls).  Done by a starting/stopping ``TuningService``."""
    global _installed
    with _install_lock:
        _installed = board


def installed() -> Optional[BreakerBoard]:
    return _installed


class board_installed:
    """Context manager: install a board, restore the previous one on
    exit (tests and short-lived services)."""

    def __init__(self, board: Optional[BreakerBoard]):
        self._board = board
        self._saved: Optional[BreakerBoard] = None

    def __enter__(self) -> Optional[BreakerBoard]:
        global _installed
        with _install_lock:
            self._saved = _installed
            _installed = self._board
        return self._board

    def __exit__(self, *exc) -> None:
        global _installed
        with _install_lock:
            _installed = self._saved
