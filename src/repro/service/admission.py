"""Admission control: bounded queueing with explicit backpressure.

A long-lived service that buffers without bound does not degrade, it
*lies* — latency grows until every client times out at once.  The
admission queue therefore has a hard capacity: a submit against a full
queue raises :class:`ServiceOverloaded` immediately (counted, traced as
a ``service.reject`` instant) and the client decides — retry with
backoff, lower the load, or give up.  Warm cache hits never enter the
queue at all (:meth:`~repro.service.daemon.TuningService.submit_run`
serves them synchronously), so backpressure applies exactly to the
work that is actually expensive: cold explorations and compiles.

:class:`ServiceResponse` is the client-side future — a tiny
event-based promise (no ``concurrent.futures`` executor semantics:
workers complete it explicitly, drain cancels it explicitly).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro import obs
from repro.resilience import CancellationToken, Deadline

__all__ = [
    "AdmissionQueue",
    "ServiceClosed",
    "ServiceOverloaded",
    "ServiceRequest",
    "ServiceResponse",
]


class ServiceOverloaded(Exception):
    """The bounded queue is full — explicit backpressure, not buffering."""


class ServiceClosed(Exception):
    """The service is draining or stopped; admission is closed."""


class ServiceResponse:
    """A minimal thread-safe promise for one request's outcome."""

    def __init__(self, request_id: str):
        self.request_id = request_id
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None
        #: Monotonic submit timestamp, stamped by the service for
        #: latency SLO accounting (out-of-band; ``None`` when untimed).
        self.submitted_at: Optional[float] = None

    # -- producer side -------------------------------------------------
    def complete(self, value: Any) -> None:
        self._value = value
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    # -- consumer side -------------------------------------------------
    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def ok(self) -> bool:
        return self._event.is_set() and self._error is None

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    def result(self, timeout: Optional[float] = None) -> Any:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not done after {timeout:g}s"
            )
        if self._error is not None:
            raise self._error
        return self._value


@dataclass
class ServiceRequest:
    """One admitted unit of work moving through the service."""

    id: str
    kind: str  # "run" | "tune"
    #: Content identity used for warm probes and single-flight
    #: coalescing (run key / tune key).
    key: str
    #: Executes the work; called on a worker thread.
    work: Callable[["ServiceRequest"], Any]
    response: ServiceResponse
    token: CancellationToken
    deadline: Optional[Deadline] = None
    #: JSON-able description a resolver can rebuild the request from
    #: (journaled for crash recovery); ``None`` = not recoverable.
    spec: Optional[dict] = None
    structural_hash: str = ""
    #: Whether a journal entry exists for this request (and must be
    #: committed on completion).
    journaled: bool = False
    #: Monotonic submit timestamp for latency/queue-wait SLOs.
    submitted_at: Optional[float] = None
    #: Duplicate concurrent submissions coalesced onto this request.
    followers: List[ServiceResponse] = field(default_factory=list)

    def complete(self, value: Any) -> None:
        self.response.complete(value)
        for follower in self.followers:
            follower.complete(value)

    def fail(self, error: BaseException) -> None:
        self.response.fail(error)
        for follower in self.followers:
            follower.fail(error)


class AdmissionQueue:
    """Bounded FIFO with reject-on-full semantics and a depth gauge."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._items: deque = deque()
        self._closed = False
        self._paused = False

    def _set_depth_locked(self) -> None:
        obs.set_gauge("service.queue_depth", len(self._items))

    def submit(self, request: ServiceRequest) -> None:
        """Admit or reject; never blocks the client."""
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is draining; admission closed")
            if len(self._items) >= self.capacity:
                raise ServiceOverloaded(
                    f"queue full ({self.capacity} requests); retry later"
                )
            self._items.append(request)
            self._set_depth_locked()
            self._not_empty.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[ServiceRequest]:
        """Next request for a worker; ``None`` on timeout, while the
        queue is paused, or when it is closed and drained."""
        with self._not_empty:
            if self._paused or not self._items:
                if self._closed and not self._paused and not self._items:
                    return None
                self._not_empty.wait(timeout)
            if self._paused or not self._items:
                return None
            request = self._items.popleft()
            self._set_depth_locked()
            return request

    def set_paused(self, paused: bool) -> None:
        """While paused, workers pop nothing — queued requests stay put
        (deterministic tests of coalescing, backpressure and drain)."""
        with self._lock:
            self._paused = paused
            self._not_empty.notify_all()

    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def close(self) -> None:
        """Stop admission; pending items stay poppable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def drain_pending(self) -> List[ServiceRequest]:
        """Remove and return everything still queued (shutdown path:
        the caller cancels each and commits its journal entry)."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            self._set_depth_locked()
            self._not_empty.notify_all()
            return items
