"""``TuningService`` — the in-process tune/compile/run daemon.

The exploration pipeline only pays off at scale if tuning results are
computed once and served to many clients; this daemon is the layer
that stays *correct and available* while clients crash, explorations
hang, and the process itself is killed mid-flight.  Robustness is the
contract, not an afterthought:

* **Request lifecycle** — every request carries a
  :class:`~repro.resilience.Deadline` and a child
  :class:`~repro.resilience.CancellationToken`; admission is a bounded
  queue with explicit backpressure (:class:`~repro.service.admission.ServiceOverloaded`
  on a full queue, never unbounded buffering).  Warm
  :class:`~repro.cache.TuningCache` run hits bypass the queue entirely
  and are served synchronously; only cold work (compiles, explorations)
  occupies the worker pool.
* **Single-flight coalescing** — concurrent identical cold requests
  (the "warm race") collapse onto one execution; followers share the
  primary's result.  Computed once, served to many.
* **Per-backend circuit breakers** — the service installs a
  :class:`~repro.service.breaker.BreakerBoard` consulted by every
  backend fallback chain: repeated crash/fault declines open a
  breaker, requests degrade down the chain (ledgered), half-open
  probes restore the tier.
* **Write-ahead recovery journal** — cold requests are journaled
  (:mod:`repro.service.journal`) before work starts and committed only
  on completion; :meth:`TuningService.recover` re-enqueues whatever a
  killed predecessor left orphaned.  The shared cache needs no repair:
  its atomic writes guarantee a SIGKILL mid-exploration never corrupts
  it, so replaying is always safe.
* **Graceful drain** — :meth:`drain` stops admission, cancels queued
  work through its tokens (committing every journal entry: no
  orphans), and waits — bounded — for running work.

Every result the service returns is **bitwise-identical** to the same
request executed by the one-shot CLI path: the workers call the exact
same ``compile_kernel``/``execute_kernel``/``explore_program``
functions, and every robustness mechanism (retries, breakers, journal
replay) only re-orders or re-serves work, never changes it.  The
``hammer`` soak harness (:mod:`repro.benchsuite.hammer`) asserts this
under concurrency and injected faults.

See ``src/repro/SERVICE.md`` for the full design.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import threading
import time
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional

from repro import faultinject, obs
from repro.obs import metrics as obs_metrics
from repro.cache import TuningCache, fingerprint_inputs
from repro.compiler.codegen import compile_kernel
from repro.compiler.kernel import execute_kernel
from repro.compiler.options import CompilerOptions
from repro.faultinject import FaultInjected
from repro.ir.nodes import Lambda
from repro.ir.structural import canonical
from repro.resilience import (
    TRANSIENT_ERRORS,
    Cancelled,
    CancellationToken,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    run_with_deadline,
)
from repro.service import breaker as breaker_mod
from repro.service.admission import (
    AdmissionQueue,
    ServiceClosed,
    ServiceOverloaded,
    ServiceRequest,
    ServiceResponse,
)
from repro.service.breaker import BreakerBoard, BreakerConfig
from repro.service.journal import JournalEntry, RecoveryJournal

__all__ = ["ServiceConfig", "ServiceStats", "TuningService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Policy knobs of one :class:`TuningService`."""

    #: Worker threads executing cold requests.
    workers: int = 4
    #: Bounded admission-queue capacity (backpressure beyond it).
    max_queue: int = 32
    #: Default per-request wall-clock budget (seconds); ``None`` = none.
    default_timeout: Optional[float] = 60.0
    #: Per-candidate watchdog inside tune requests; each stage is
    #: additionally clamped by the request's remaining deadline budget.
    candidate_timeout: Optional[float] = 10.0
    #: Transient-failure retries per request at the worker (beyond the
    #: in-place fault-site retries); backoff is jittered per request id.
    worker_retries: int = 3
    retry_backoff: float = 0.02
    retry_jitter: float = 0.25
    #: Thread-pool width of explorations run on behalf of tune requests.
    explore_workers: int = 2
    #: Bounded wait for running work during drain (seconds).
    drain_timeout: float = 10.0
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: Recovery-journal directory; ``None`` disables journaling (and
    #: therefore crash recovery — warm serving still works).
    journal_dir: "str | Path | None" = None


@dataclass
class ServiceStats:
    """One service's lifetime accounting (``service`` metrics section)."""

    admits: int = 0
    #: Backpressure rejections (full queue) + admission-fault escapes.
    rejects: int = 0
    #: Warm cache hits served synchronously, bypassing the queue.
    warm_hits: int = 0
    #: Duplicate concurrent submissions coalesced onto an in-flight
    #: request (the "warm race" path).
    coalesced: int = 0
    completed: int = 0
    #: Deterministic request failures (bad program, verify mismatch...).
    failed: int = 0
    #: Transient failures that survived every worker retry.
    infra_failures: int = 0
    #: Requests that hit their deadline (admission-expired or watchdog).
    timeouts: int = 0
    cancelled: int = 0
    #: Transient worker failures absorbed by the retry loop.
    retries: int = 0
    #: Orphaned journal entries re-enqueued by :meth:`recover`.
    replayed: int = 0
    #: Orphaned entries no resolver could rebuild (quarantined).
    unrecoverable: int = 0
    #: Queued requests cancelled by drain.
    drained: int = 0

    def __post_init__(self) -> None:
        # Counters are bumped from worker *and* submitter threads; a
        # bare ``+=`` would lose increments under contention.
        self._lock = threading.Lock()

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def as_dict(self) -> dict:
        with self._lock:
            return {f.name: getattr(self, f.name) for f in fields(self)}


class TuningService:
    """The long-lived daemon; see the module docstring.

    Usable as a context manager — ``with TuningService(cache) as svc:``
    shuts down (graceful drain included) on exit.
    """

    def __init__(
        self,
        cache: Optional[TuningCache] = None,
        config: Optional[ServiceConfig] = None,
    ):
        self.config = config or ServiceConfig()
        self.cache = cache
        self.stats = ServiceStats()
        self._queue = AdmissionQueue(self.config.max_queue)
        self._journal = (
            RecoveryJournal(self.config.journal_dir)
            if self.config.journal_dir is not None
            else None
        )
        self._board = BreakerBoard(self.config.breaker)
        self._prev_board = breaker_mod.installed()
        breaker_mod.install(self._board)
        self._lock = threading.Lock()
        self._inflight: Dict[str, ServiceRequest] = {}
        self._running: set = set()
        self._running_cv = threading.Condition(self._lock)
        self._ids = itertools.count(1)
        self._active = True
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{i}",
                daemon=True,
            )
            for i in range(max(1, self.config.workers))
        ]
        for thread in self._workers:
            thread.start()
        # Mirror the breaker-board install: remember whatever served the
        # ``service`` metrics slot so shutdown() can put it back.
        self._prev_metrics_view = obs_metrics.provider("service")
        obs.register_service(self._metrics_view)

    # ------------------------------------------------------------------
    # lifecycle helpers
    # ------------------------------------------------------------------
    def __enter__(self) -> "TuningService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    @property
    def journal(self) -> Optional[RecoveryJournal]:
        return self._journal

    @property
    def breakers(self) -> BreakerBoard:
        return self._board

    def queue_depth(self) -> int:
        return self._queue.depth()

    def pause(self) -> None:
        """Stop workers from picking up queued work (tests, drills)."""
        self._queue.set_paused(True)

    def resume(self) -> None:
        self._queue.set_paused(False)

    def _next_id(self, kind: str, key: str) -> str:
        return f"{kind}-{key[:10]}-{os.getpid()}-{next(self._ids)}"

    def _metrics_view(self) -> dict:
        return {
            "active": self._active,
            "stats": self.stats.as_dict(),
            "queue": {
                "depth": self._queue.depth(),
                "capacity": self._queue.capacity,
                "closed": self._queue.closed,
            },
            "running": len(self._running),
            "breakers": self._board.snapshot(),
            "journal": {
                "pending": len(self._journal) if self._journal else 0,
                "skipped_writes": (
                    self._journal.skipped_writes if self._journal else 0
                ),
            },
        }

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit_run(
        self,
        program: Lambda,
        inputs: Mapping[str, Any],
        size_env: Mapping[str, int],
        global_size,
        local_size=None,
        options: Optional[CompilerOptions] = None,
        engine: Optional[str] = None,
        timeout: Optional[float] = -1.0,
        spec: Optional[dict] = None,
        _recover_entry: Optional[JournalEntry] = None,
    ) -> ServiceResponse:
        """Compile-and-run one program; returns a response future whose
        value is ``(output array, Counters)`` — bitwise-identical to
        :func:`repro.compiler.kernel.compile_and_run` on the same
        arguments."""
        options = options or CompilerOptions(
            local_size=local_size if local_size is not None else (1, 1, 1)
        )
        if local_size is None:
            local_size = options.local_size
        kernel_key = run_key = None
        if self.cache is not None:
            kernel_key = self.cache.kernel_key(program, options, size_env)
            run_key = self.cache.run_key(
                kernel_key, fingerprint_inputs(inputs), global_size,
                local_size, engine,
            )
        # The identity must match the cache's run key: program, options
        # (different optimization levels execute different kernels with
        # different counters), inputs, geometry, engine.
        key = run_key or self._content_key(
            "run", program, inputs, size_env, repr(options),
            repr(tuple(global_size) if hasattr(global_size, "__len__")
                 else global_size),
            repr(tuple(local_size)), engine or "auto",
        )

        def work(request: ServiceRequest):
            return self._execute_run(
                request, program, inputs, size_env, global_size, local_size,
                options, engine, kernel_key, run_key,
            )

        def warm_probe():
            if self.cache is None or run_key is None:
                return None
            hit = self.cache.get_run(run_key)
            if hit is None:
                return None
            output, counters = hit
            return output.copy(), counters

        return self._submit(
            "run", key, work, spec=spec, timeout=timeout,
            structural_hash=self._structural_hash(program),
            warm_probe=warm_probe,
            recover_entry=_recover_entry,
        )

    def submit_tune(
        self,
        program: Lambda,
        inputs: Mapping[str, Any],
        size_env: Mapping[str, int],
        depth: int = 3,
        max_eval: int = 8,
        device: str = "nvidia",
        engine: Optional[str] = None,
        timeout: Optional[float] = -1.0,
        spec: Optional[dict] = None,
        _recover_entry: Optional[JournalEntry] = None,
    ) -> ServiceResponse:
        """Explore the rewrite space of ``program``; the response value
        is the :class:`~repro.rewrite.explore.ExplorationResult`."""
        key = self._content_key(
            "tune", program, inputs, size_env,
            str(depth), str(max_eval), device, engine or "auto",
        )

        def work(request: ServiceRequest):
            from repro.rewrite.explore import ExploreConfig, explore_program

            config = ExploreConfig(
                depth=depth,
                max_eval=max_eval,
                device=device,
                engine=engine,
                workers=self.config.explore_workers,
                candidate_timeout=self.config.candidate_timeout,
                retry_backoff=self.config.retry_backoff,
                retry_jitter=self.config.retry_jitter,
                cancellation=request.token,
                deadline=request.deadline,
            )
            return explore_program(
                program, inputs, size_env, config=config, cache=self.cache
            )

        return self._submit(
            "tune", key, work, spec=spec, timeout=timeout,
            structural_hash=self._structural_hash(program),
            recover_entry=_recover_entry,
        )

    # -- internals -----------------------------------------------------
    @staticmethod
    def _structural_hash(program: Lambda) -> str:
        return hashlib.sha256(canonical(program).encode()).hexdigest()

    def _content_key(self, *parts) -> str:
        tokens = []
        for part in parts:
            if isinstance(part, Lambda):
                tokens.append(canonical(part))
            elif isinstance(part, Mapping):
                try:
                    tokens.append(fingerprint_inputs(part))
                except Exception:
                    tokens.append(repr(sorted(part.items())))
            else:
                tokens.append(str(part))
        return hashlib.sha256("\n".join(tokens).encode()).hexdigest()

    def _reject(self, reason: str, exc: Exception):
        self.stats.bump("rejects")
        obs.instant("service.reject", reason=reason)
        obs.inc("service.rejects")
        raise exc

    def _submit(
        self,
        kind: str,
        key: str,
        work: Callable[[ServiceRequest], Any],
        spec: Optional[dict],
        timeout: Optional[float],
        structural_hash: str,
        warm_probe: Optional[Callable[[], Any]] = None,
        recover_entry: Optional[JournalEntry] = None,
    ) -> ServiceResponse:
        submit_ts = time.monotonic()
        with obs.span("service.submit", kind=kind):
            if not self._active or self._queue.closed:
                raise ServiceClosed("service is draining; admission closed")
            if recover_entry is None:
                # ``service-admit`` fault site: pre-side-effect, bounded
                # in-place retries; an escape is explicit backpressure
                # (the client's retry loop is the recovery).  Recovery
                # re-enqueues are exempt — they were already admitted
                # once.
                try:
                    faultinject.survive("service-admit")
                except FaultInjected as exc:
                    self._reject(
                        "admission-fault",
                        ServiceOverloaded(f"admission failed: {exc}"),
                    )

            # Warm hits bypass the queue: served synchronously, no
            # worker, no journal entry, no backpressure.
            if warm_probe is not None:
                hit = warm_probe()
                if hit is not None:
                    self.stats.bump("warm_hits")
                    obs.inc("service.warm_hits")
                    if recover_entry is not None and self._journal is not None:
                        # The orphan's work finished (cached) before the
                        # kill: serving the cache entry completes it.
                        self._journal.commit(recover_entry.request_id)
                    response = ServiceResponse(self._next_id(kind, key))
                    response.submitted_at = submit_ts
                    response.complete(hit)
                    obs.observe(
                        "service.latency.warm_hit",
                        time.monotonic() - submit_ts,
                    )
                    return response

            if timeout is not None and timeout < 0:
                timeout = self.config.default_timeout
            deadline = Deadline.after(timeout) if timeout is not None else None
            request_id = (
                recover_entry.request_id
                if recover_entry is not None
                else self._next_id(kind, key)
            )
            request = ServiceRequest(
                id=request_id,
                kind=kind,
                key=key,
                work=work,
                response=ServiceResponse(request_id),
                token=CancellationToken(),
                deadline=deadline,
                spec=spec,
                structural_hash=structural_hash,
                submitted_at=submit_ts,
            )

            # Single-flight: identical concurrent cold requests coalesce
            # onto the in-flight primary ("computed once, served many").
            with self._lock:
                primary = self._inflight.get(key)
                if primary is not None:
                    follower = ServiceResponse(request_id)
                    follower.submitted_at = submit_ts
                    primary.followers.append(follower)
                    self.stats.bump("coalesced")
                    obs.inc("service.coalesced")
                    if recover_entry is not None and self._journal is not None:
                        # An identical request is already in flight; the
                        # primary's completion covers this orphan.
                        self._journal.commit(recover_entry.request_id)
                    return follower
                self._inflight[key] = request

            try:
                if self._journal is not None:
                    if recover_entry is not None:
                        request.journaled = True  # entry already on disk
                    else:
                        request.journaled = self._journal.begin(
                            JournalEntry(
                                request_id=request.id,
                                kind=kind,
                                structural_hash=structural_hash,
                                spec=spec,
                            )
                        )
                self._queue.submit(request)
            except (ServiceOverloaded, ServiceClosed) as exc:
                with self._lock:
                    self._inflight.pop(key, None)
                # Only commit (unlink) an entry this submit created: a
                # rejected *recovery* re-enqueue must leave the orphan
                # on disk so a later recover() can replay it.
                if (
                    recover_entry is None
                    and request.journaled
                    and self._journal is not None
                ):
                    self._journal.commit(request.id)
                if isinstance(exc, ServiceOverloaded):
                    self._reject("overloaded", exc)
                raise
            self.stats.bump("admits")
            obs.inc("service.admits")
            return request.response

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            request = self._queue.pop(timeout=0.1)
            if request is None:
                if self._queue.closed:
                    return
                continue
            with self._lock:
                self._running.add(request.id)
            try:
                self._process(request)
            finally:
                with self._running_cv:
                    self._running.discard(request.id)
                    self._running_cv.notify_all()

    def _finish(
        self,
        request: ServiceRequest,
        value: Any = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Complete a request: detach from single-flight, commit the
        journal entry (completion includes deterministic failure and
        cancellation — only a dead process leaves an orphan), settle
        the response and every coalesced follower."""
        with self._lock:
            self._inflight.pop(request.key, None)
        if request.journaled and self._journal is not None:
            self._journal.commit(request.id)
        if error is None:
            request.complete(value)
        else:
            request.fail(error)
        # End-to-end latency per request class (SLO histograms).  The
        # followers list is frozen: the request left ``_inflight`` above,
        # so no new coalesced submissions can attach.
        now = time.monotonic()
        if request.submitted_at is not None:
            obs.observe(
                "service.latency.cold", now - request.submitted_at
            )
        for follower in request.followers:
            if follower.submitted_at is not None:
                obs.observe(
                    "service.latency.coalesced",
                    now - follower.submitted_at,
                )

    def _process(self, request: ServiceRequest) -> None:
        if request.submitted_at is not None:
            obs.observe(
                "service.queue_wait.cold",
                time.monotonic() - request.submitted_at,
            )
        with obs.span(
            "service.execute", kind=request.kind, id=request.id,
            structural_hash=request.structural_hash[:12],
            request_class="cold",
            engine=(request.spec or {}).get("engine") or "auto",
        ):
            if request.token.cancelled:
                self.stats.bump("cancelled")
                self._finish(request, error=Cancelled("request cancelled"))
                return
            if request.deadline is not None and request.deadline.expired:
                self.stats.bump("timeouts")
                obs.inc("service.timeouts")
                self._finish(
                    request,
                    error=DeadlineExceeded(
                        "deadline expired before work started"
                    ),
                )
                return

            policy = RetryPolicy(
                attempts=max(1, self.config.worker_retries + 1),
                base_delay=self.config.retry_backoff,
                jitter=self.config.retry_jitter,
            )

            def attempt():
                # ``service-worker`` fault site: pre-side-effect, so the
                # in-place retries (and, on escape, the policy retries
                # around this closure) are exact.
                faultinject.survive("service-worker")
                request.token.raise_if_cancelled()
                return request.work(request)

            def on_retry(attempt_no: int, exc: BaseException) -> None:
                self.stats.bump("retries")
                obs.inc("service.worker_retries")
                obs.instant(
                    "service.retry", id=request.id, attempt=attempt_no,
                    error=type(exc).__name__,
                )

            try:
                value = policy.call(attempt, on_retry=on_retry, key=request.id)
            except Cancelled as exc:
                self.stats.bump("cancelled")
                self._finish(request, error=exc)
            except DeadlineExceeded as exc:
                self.stats.bump("timeouts")
                obs.inc("service.timeouts")
                self._finish(request, error=exc)
            except TRANSIENT_ERRORS as exc:
                self.stats.bump("infra_failures")
                obs.inc("service.infra_failures")
                self._finish(request, error=exc)
            except Exception as exc:
                self.stats.bump("failed")
                obs.inc("service.failures")
                self._finish(request, error=exc)
            else:
                self.stats.bump("completed")
                obs.inc("service.completed")
                self._finish(request, value=value)

    def _execute_run(
        self,
        request: ServiceRequest,
        program: Lambda,
        inputs: Mapping[str, Any],
        size_env: Mapping[str, int],
        global_size,
        local_size,
        options: CompilerOptions,
        engine: Optional[str],
        kernel_key: Optional[str],
        run_key: Optional[str],
    ):
        """The run-request work: identical calls to the one-shot path
        (``compile_kernel`` + ``execute_kernel``), plus cache serving."""
        if self.cache is not None and run_key is not None:
            # The single-flight primary may find the result freshly
            # cached (e.g. a journal replay of work that finished just
            # before the kill); serving it is the idempotent path.
            hit = self.cache.get_run(run_key)
            if hit is not None:
                output, counters = hit
                return output.copy(), counters
        compiled = None
        if self.cache is not None and kernel_key is not None:
            compiled = self.cache.get_kernel(kernel_key)
        if compiled is None:
            compiled = compile_kernel(program, options)
            if self.cache is not None and kernel_key is not None:
                self.cache.put_kernel(kernel_key, compiled)

        def launch_once():
            return execute_kernel(
                compiled, inputs, size_env, global_size,
                local_size=local_size, engine=engine,
            )

        budget = (
            request.deadline.clamp(None)
            if request.deadline is not None
            else None
        )
        if budget is not None:
            result = run_with_deadline(
                launch_once, budget, token=request.token.child()
            )
        else:
            result = launch_once()
        if self.cache is not None and run_key is not None:
            self.cache.put_run(run_key, result.output, result.counters)
        return result.output, result.counters

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(
        self,
        resolver: Callable[[JournalEntry], Optional[dict]],
    ) -> int:
        """Re-enqueue every orphaned journal entry a killed predecessor
        left behind; returns how many were replayed.

        ``resolver(entry)`` rebuilds submission arguments from the
        journaled ``spec``: a dict of :meth:`submit_run` /
        :meth:`submit_tune` keyword arguments (the entry's ``kind``
        picks the method), or ``None`` for an entry it cannot rebuild —
        those are quarantined (``.unrecoverable``), never silently
        dropped."""
        if self._journal is None:
            return 0
        replayed = 0
        for entry in self._journal.pending():
            rebuilt = None
            if entry.spec is not None:
                try:
                    rebuilt = resolver(entry)
                except Exception:
                    rebuilt = None
            if rebuilt is None:
                self.stats.bump("unrecoverable")
                obs.inc("service.journal.unrecoverable")
                self._journal.quarantine(entry.request_id)
                continue
            kwargs = dict(rebuilt)
            kwargs.setdefault("spec", entry.spec)
            submit = (
                self.submit_tune if entry.kind == "tune" else self.submit_run
            )
            try:
                submit(_recover_entry=entry, **kwargs)
            except (ServiceOverloaded, ServiceClosed):
                # Queue full during recovery: the entry stays journaled
                # and a later recover() picks it up.
                continue
            replayed += 1
            self.stats.bump("replayed")
            obs.instant(
                "service.journal.replay", id=entry.request_id,
                kind=entry.kind,
            )
            obs.inc("service.journal.replays")
        return replayed

    # ------------------------------------------------------------------
    # drain / shutdown
    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful drain: stop admission, cancel queued work (tokens +
        journal commits — no orphaned entries), wait bounded for
        running work.  Returns ``True`` when everything finished in
        time."""
        if timeout is None:
            timeout = self.config.drain_timeout
        with obs.span("service.drain"):
            self._queue.close()
            for request in self._queue.drain_pending():
                request.token.cancel()
                self.stats.bump("drained")
                self.stats.bump("cancelled")
                obs.inc("service.drained")
                self._finish(
                    request, error=Cancelled("service draining")
                )
            stop_at = time.monotonic() + timeout
            with self._running_cv:
                while self._running:
                    remaining = stop_at - time.monotonic()
                    if remaining <= 0:
                        break
                    self._running_cv.wait(min(0.05, remaining))
                clean = not self._running
            if not clean:
                # Out of patience: cancel the stragglers' tokens so
                # they stop at their next checkpoint.
                with self._lock:
                    stragglers = [
                        r for r in self._inflight.values()
                        if r.id in self._running
                    ]
                for request in stragglers:
                    request.token.cancel()
            obs.instant("service.drain.done", clean=clean)
            return clean

    def shutdown(self, timeout: Optional[float] = None) -> bool:
        """Drain, stop the workers, uninstall the breaker board and the
        metrics view."""
        if not self._active:
            return True
        self.resume()  # paused workers must run to exit
        clean = self.drain(timeout)
        for thread in self._workers:
            thread.join(timeout=1.0)
        self._active = False
        breaker_mod.install(self._prev_board)
        # Mirror the breaker-board uninstall for the metrics provider:
        # a stopped service must not keep serving its stale view in the
        # snapshot (nor leave a prior service's view clobbered).
        obs.register_service(
            self._prev_metrics_view or (lambda: {"active": False})
        )
        return clean
