"""Write-ahead recovery journal: no admitted request is ever lost.

Before a service worker starts an exploration or a kernel run, the
request is journaled — one JSON file per in-flight request, written
atomically (temp file + ``os.replace``), carrying the request id, its
kind, the *structural hash* of the program and a JSON ``spec`` that a
resolver can rebuild the request from.  The entry is removed
(*committed*) only when the request completes — success, deterministic
failure, or cancellation all count as completion; only a dead process
does not.  A ``SIGKILL`` mid-exploration therefore leaves exactly the
orphaned requests' entries behind, and a restarted service re-enqueues
them (:meth:`~repro.service.daemon.TuningService.recover`) instead of
losing the work.  The shared :class:`~repro.cache.TuningCache` needs no
repair on that path — its own atomic-write/quarantine machinery (PR 6)
guarantees a killed writer leaves no partial entry — so replaying an
orphan is always safe (at-least-once, and idempotent through the
cache).

Entry format (documented for ``src/repro/SERVICE.md``)::

    <journal-dir>/<request-id>.journal
    {"version": 1, "id": ..., "kind": "run"|"tune",
     "structural_hash": ..., "spec": {...}, "sequence": N}

A corrupt entry (unreadable JSON, wrong version, id/filename mismatch)
is moved aside as ``<name>.corrupt`` — visible, never silently
unlinked, mirroring the cache's quarantine policy.  Writes pass
through the ``service-journal`` fault-injection site with bounded
in-place retries; an escape degrades to *unjournaled* execution (the
request loses crash recovery, never correctness) and is counted.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from repro import faultinject, obs
from repro.faultinject import FaultInjected

__all__ = ["JournalEntry", "RecoveryJournal", "JOURNAL_VERSION"]

JOURNAL_VERSION = 1
_SUFFIX = ".journal"


@dataclass(frozen=True)
class JournalEntry:
    """One in-flight (or orphaned) request on disk."""

    request_id: str
    kind: str  # "run" | "tune"
    structural_hash: str
    spec: Optional[dict]
    sequence: int = 0

    def as_dict(self) -> dict:
        return {
            "version": JOURNAL_VERSION,
            "id": self.request_id,
            "kind": self.kind,
            "structural_hash": self.structural_hash,
            "spec": self.spec,
            "sequence": self.sequence,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "JournalEntry":
        if doc.get("version") != JOURNAL_VERSION:
            raise ValueError(f"journal version {doc.get('version')!r}")
        return cls(
            request_id=str(doc["id"]),
            kind=str(doc["kind"]),
            structural_hash=str(doc["structural_hash"]),
            spec=doc.get("spec"),
            sequence=int(doc.get("sequence", 0)),
        )


class RecoveryJournal:
    """Directory of atomically-written per-request entry files."""

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self._lock = threading.Lock()
        self._sequence = 0
        #: Entries that could not be journaled (injected fault escaped
        #: every in-place retry, or an OSError): the request still ran,
        #: it just lost crash recovery.
        self.skipped_writes = 0

    def _path(self, request_id: str) -> Path:
        return self.root / f"{request_id}{_SUFFIX}"

    # ------------------------------------------------------------------
    def begin(self, entry: JournalEntry) -> bool:
        """Journal one request before its work starts.

        Returns ``False`` (and counts it) when the write could not
        happen — the caller proceeds unjournaled rather than failing
        the request over lost *recovery*.
        """
        with self._lock:
            self._sequence += 1
            seq = self._sequence
        doc = dict(entry.as_dict(), sequence=seq)
        with obs.span("service.journal.begin", id=entry.request_id):
            try:
                faultinject.survive("service-journal")
            except FaultInjected:
                with self._lock:
                    self.skipped_writes += 1
                obs.inc("service.journal.skipped")
                return False
            try:
                self.root.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-")
                try:
                    with os.fdopen(fd, "w") as fh:
                        json.dump(doc, fh)
                    os.replace(tmp, self._path(entry.request_id))
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
            except OSError:
                with self._lock:
                    self.skipped_writes += 1
                obs.inc("service.journal.skipped")
                return False
        obs.inc("service.journal.begins")
        return True

    def commit(self, request_id: str) -> None:
        """Remove a completed request's entry (idempotent)."""
        try:
            self._path(request_id).unlink()
            obs.inc("service.journal.commits")
        except FileNotFoundError:
            pass
        except OSError:
            pass

    def quarantine(self, request_id: str, reason: str = "unrecoverable") -> None:
        """Move an entry aside as ``<name>.<reason>`` — for orphans no
        resolver could rebuild; visible on disk, never silently lost."""
        path = self._path(request_id)
        obs.instant("service.journal.quarantined", entry=path.name, reason=reason)
        obs.inc("service.journal.quarantined")
        try:
            os.replace(path, path.with_name(f"{path.name}.{reason}"))
        except OSError:
            pass

    # ------------------------------------------------------------------
    def pending(self) -> List[JournalEntry]:
        """Orphaned entries on disk, oldest (lowest sequence) first.

        Corrupt files are moved aside as ``<name>.corrupt`` — counted,
        never silently dropped."""
        if not self.root.is_dir():
            return []
        entries: List[JournalEntry] = []
        for path in sorted(self.root.iterdir()):
            if path.suffix != _SUFFIX or not path.is_file():
                continue
            try:
                entry = JournalEntry.from_dict(json.loads(path.read_text()))
                if entry.request_id != path.name[: -len(_SUFFIX)]:
                    raise ValueError("entry id does not match filename")
            except (OSError, ValueError, KeyError, json.JSONDecodeError):
                self._quarantine(path)
                continue
            entries.append(entry)
        entries.sort(key=lambda e: (e.sequence, e.request_id))
        return entries

    def _quarantine(self, path: Path) -> None:
        obs.instant("service.journal.corrupt", entry=path.name)
        obs.inc("service.journal.corrupt")
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(
            1
            for p in self.root.iterdir()
            if p.suffix == _SUFFIX and p.is_file()
        )
