"""``repro.service`` — the crash-tolerant autotuning daemon layer.

Four modules, one contract (every result bitwise-identical to the
one-shot CLI path, under concurrency and injected faults):

* :mod:`~repro.service.daemon` — :class:`TuningService`: workers,
  warm-hit bypass, single-flight coalescing, deadlines, drain,
  recovery.
* :mod:`~repro.service.admission` — bounded queue with explicit
  backpressure (:class:`ServiceOverloaded`) and the response promise.
* :mod:`~repro.service.breaker` — per-backend circuit breakers
  consulted by the backend fallback chains while a service runs.
* :mod:`~repro.service.journal` — write-ahead recovery journal; a
  killed service's orphaned requests are re-enqueued, never lost.

Design document: ``src/repro/SERVICE.md``.
"""

from repro.service.admission import (
    AdmissionQueue,
    ServiceClosed,
    ServiceOverloaded,
    ServiceRequest,
    ServiceResponse,
)
from repro.service.breaker import (
    BreakerBoard,
    BreakerConfig,
    CircuitBreaker,
    board_installed,
)
from repro.service.daemon import ServiceConfig, ServiceStats, TuningService
from repro.service.journal import JournalEntry, RecoveryJournal

__all__ = [
    "AdmissionQueue",
    "BreakerBoard",
    "BreakerConfig",
    "CircuitBreaker",
    "JournalEntry",
    "RecoveryJournal",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceOverloaded",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceStats",
    "TuningService",
    "board_installed",
]
