"""Persistent content-addressed store for tuning artifacts.

Exploring the rewrite space means compiling and simulating many
candidate programs, most of which reappear unchanged on the next run
(and across ``benchsuite`` invocations).  Following Loo.py's lead on
caching transformed-kernel artifacts, this module keeps three kinds of
entries on disk, all addressed by content, never by file name or
timestamp:

* **kernel entries** — the full :class:`~repro.compiler.codegen.CompiledKernel`
  (generated OpenCL source plus launch metadata), keyed by the
  *structural hash* of the IL program (:mod:`repro.ir.structural`, so
  parameter renaming and cloning do not defeat the cache) combined with
  the :class:`~repro.compiler.options.CompilerOptions` and the size
  environment;
* **cycle entries** — the measured simulated cycle count of one
  execution, keyed by the kernel key plus a fingerprint of the concrete
  input arrays, the launch geometry, the device profile and the
  simulator engine;
* **run entries** — the full outcome of one simulated execution (the
  output buffer and the device-independent :class:`Counters`), keyed
  like cycle entries minus the device.

Crash- and concurrency-safety (see ``src/repro/RESILIENCE.md``):

* Writes are atomic (temp file + ``os.replace``) and serialized across
  *processes* with an advisory ``fcntl`` lock on ``<root>/.lock`` —
  ``kill -9`` mid-write leaves at most a stale temp file (swept by the
  eviction pass), never a partial entry, and two concurrent explorers
  sharing one store cannot interleave evictions with writes.
* Every entry carries a header with format version and a SHA-256
  checksum of its payload.  A failing entry is *classified* — I/O
  errors count separately from decode/checksum failures and from
  version staleness — and corrupt/stale entries are moved to
  ``<root>/quarantine/`` (visible in :class:`CacheStats`, never
  silently unlinked) so a recurring corruption source can be diagnosed
  post-mortem.  The worst failure mode is still just a recompile.
* The store is size-capped: when ``max_bytes`` (constructor argument or
  ``REPRO_CACHE_MAX_BYTES``) is exceeded after a write, least-recently-
  used entries are evicted — hits refresh an entry's mtime, so recency
  is by *use*, not by creation.
* The ``cache-read``/``cache-write`` fault-injection sites
  (:mod:`repro.faultinject`) fire at the top of every get/put with
  bounded in-place retries; recoveries are counted in
  ``stats.faults_recovered``.

The store root comes from the ``REPRO_CACHE_DIR`` environment variable,
falling back to ``~/.cache/repro``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
from contextlib import contextmanager
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Mapping, Optional

import numpy as np

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro import faultinject, obs
from repro.compiler.codegen import CompiledKernel
from repro.compiler.options import CompilerOptions
from repro.faultinject import FaultInjected
from repro.ir.nodes import FunDecl
from repro.ir.structural import canonical
from repro.opencl.interp import Counters

#: Bump when the on-disk layout or any pickled class changes shape.
#: v3: entries carry a checksummed header; corrupt/stale entries are
#: quarantined instead of unlinked.
CACHE_VERSION = 3

_ENV_VAR = "REPRO_CACHE_DIR"
_MAX_BYTES_ENV_VAR = "REPRO_CACHE_MAX_BYTES"

#: Entry-header magic; the full header is
#: ``b"repro-cache <version> <sha256-of-body>\n"`` followed by the body.
_MAGIC = b"repro-cache"

#: Temp files older than this are crash leftovers; the eviction pass
#: sweeps them.
_TMP_MAX_AGE_SECONDS = 3600.0

QUARANTINE_DIR = "quarantine"


def default_cache_dir() -> Path:
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def fingerprint_inputs(inputs: Mapping[str, Any]) -> str:
    """Digest concrete kernel inputs (arrays by bytes, scalars by repr)."""
    h = hashlib.sha256()
    for name in sorted(inputs):
        value = inputs[name]
        h.update(name.encode())
        if isinstance(value, np.ndarray) or (
            hasattr(value, "__len__") and not isinstance(value, str)
        ):
            arr = np.ascontiguousarray(np.asarray(value))
            h.update(str(arr.dtype).encode())
            h.update(str(arr.shape).encode())
            h.update(arr.tobytes())
        else:
            h.update(repr(value).encode())
    return h.hexdigest()


class CacheFormatError(Exception):
    """An entry failed validation; ``reason`` classifies it.

    ``"corrupt"`` — bad magic, truncated header, checksum mismatch or
    undecodable payload; ``"stale"`` — a well-formed entry of another
    format version or keyed under a different content hash.
    """

    def __init__(self, reason: str, detail: str):
        super().__init__(f"{reason}: {detail}")
        self.reason = reason
        self.detail = detail


@dataclass
class CacheStats:
    """Hit/miss and failure-recovery accounting for one
    :class:`TuningCache` instance.  Nothing fails silently: every
    dropped or skipped entry shows up in exactly one counter."""

    kernel_hits: int = 0
    kernel_misses: int = 0
    cycle_hits: int = 0
    cycle_misses: int = 0
    run_hits: int = 0
    run_misses: int = 0
    puts: int = 0
    #: Total entries removed from the live store for cause
    #: (= quarantined; kept for backwards compatibility).
    invalid: int = 0
    #: Entries moved to ``<root>/quarantine/`` (corrupt + stale).
    quarantined: int = 0
    #: Quarantined for undecodable content (bad magic/checksum/pickle).
    corrupt_entries: int = 0
    #: Quarantined for version or key mismatch (well-formed, outdated).
    stale_entries: int = 0
    #: Reads/writes that failed with an ``OSError`` other than
    #: file-not-found (treated as a miss / skipped write, not corruption).
    io_errors: int = 0
    #: Entries evicted by the LRU size cap.
    evictions: int = 0
    #: Writes skipped because an injected fault exhausted its retries.
    write_skips: int = 0
    #: Injected faults absorbed by in-place retries at the cache sites.
    faults_recovered: int = 0

    def kernel_hit_rate(self) -> float:
        total = self.kernel_hits + self.kernel_misses
        return self.kernel_hits / total if total else 0.0

    def cycle_hit_rate(self) -> float:
        total = self.cycle_hits + self.cycle_misses
        return self.cycle_hits / total if total else 0.0

    def run_hit_rate(self) -> float:
        total = self.run_hits + self.run_misses
        return self.run_hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class TuningCache:
    """On-disk content-addressed store for compiled kernels and timings.

    ``max_bytes`` caps the total size of live entries (``None`` reads
    ``REPRO_CACHE_MAX_BYTES``; 0/unset disables eviction).
    """

    def __init__(
        self,
        root: "str | Path | None" = None,
        max_bytes: Optional[int] = None,
    ):
        self.root = Path(root) if root is not None else default_cache_dir()
        if max_bytes is None:
            env = os.environ.get(_MAX_BYTES_ENV_VAR)
            max_bytes = int(env) if env else 0
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        # The explorer's worker pool shares one cache: serialize file IO
        # and stats updates within the process; the fcntl lock in
        # _exclusive() serializes mutations across processes.
        self._lock = threading.Lock()
        # The newest cache owns the metrics snapshot's "cache" slot
        # (harnesses build exactly one per run).
        obs.register_cache_stats(self.stats)

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    @staticmethod
    def _options_token(options: CompilerOptions) -> str:
        parts = [
            f"{f.name}={getattr(options, f.name)!r}"
            for f in sorted(fields(options), key=lambda f: f.name)
        ]
        return ";".join(parts)

    def kernel_key(
        self,
        program: FunDecl,
        options: CompilerOptions,
        size_env: Mapping[str, int],
    ) -> str:
        sizes = ";".join(f"{k}={int(v)}" for k, v in sorted(size_env.items()))
        payload = "\n".join(
            [
                f"v{CACHE_VERSION}",
                canonical(program),
                self._options_token(options),
                sizes,
            ]
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @staticmethod
    def source_key(source: str, kernel_name: str, size_env: Mapping[str, int]) -> str:
        """Key for a hand-written (non-IL) kernel: raw source + sizes.

        The reference kernels of the benchsuite have no IL program to
        hash structurally; their source text is the identity.
        """
        sizes = ";".join(f"{k}={int(v)}" for k, v in sorted(size_env.items()))
        payload = "\n".join([f"v{CACHE_VERSION}", "src", kernel_name, sizes, source])
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def run_key(
        self,
        kernel_key: str,
        inputs_fingerprint: str,
        global_size,
        local_size,
        engine: Optional[str],
    ) -> str:
        payload = "\n".join(
            [
                "run",
                kernel_key,
                inputs_fingerprint,
                repr(tuple(global_size) if hasattr(global_size, "__len__") else global_size),
                repr(tuple(local_size) if hasattr(local_size, "__len__") else local_size),
                engine or "auto",
            ]
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def cycles_key(
        self,
        kernel_key: str,
        inputs_fingerprint: str,
        global_size,
        local_size,
        device: str,
        engine: Optional[str],
    ) -> str:
        payload = "\n".join(
            [
                kernel_key,
                inputs_fingerprint,
                repr(tuple(global_size) if hasattr(global_size, "__len__") else global_size),
                repr(tuple(local_size) if hasattr(local_size, "__len__") else local_size),
                device,
                engine or "auto",
            ]
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # entry framing: versioned, checksummed header
    # ------------------------------------------------------------------
    @staticmethod
    def _encode(body: bytes) -> bytes:
        digest = hashlib.sha256(body).hexdigest()
        header = f"{_MAGIC.decode()} {CACHE_VERSION} {digest}\n".encode()
        return header + body

    @staticmethod
    def _decode(raw: bytes) -> bytes:
        """Validate the header and checksum; returns the body."""
        newline = raw.find(b"\n")
        if newline < 0 or not raw.startswith(_MAGIC + b" "):
            raise CacheFormatError("corrupt", "missing entry header")
        parts = raw[:newline].split(b" ")
        if len(parts) != 3:
            raise CacheFormatError("corrupt", "malformed entry header")
        try:
            version = int(parts[1])
        except ValueError:
            raise CacheFormatError("corrupt", "malformed version field") from None
        if version != CACHE_VERSION:
            raise CacheFormatError(
                "stale", f"format v{version}, expected v{CACHE_VERSION}"
            )
        body = raw[newline + 1:]
        if hashlib.sha256(body).hexdigest().encode() != parts[2]:
            raise CacheFormatError("corrupt", "checksum mismatch")
        return body

    # ------------------------------------------------------------------
    # low-level file handling
    # ------------------------------------------------------------------
    def _path(self, key: str, kind: str) -> Path:
        return self.root / f"{key}.{kind}"

    @contextmanager
    def _exclusive(self):
        """Advisory cross-process lock on ``<root>/.lock`` (held around
        writes, quarantine moves and eviction; reads rely on atomic
        replace instead and stay lock-free)."""
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.root / ".lock", os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    def _write_atomic(self, path: Path, body: bytes) -> None:
        data = self._encode(body)
        self.root.mkdir(parents=True, exist_ok=True)
        with self._exclusive():
            fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(data)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._evict_locked()

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a failing entry aside — never silently unlink it."""
        obs.instant("cache.quarantine", entry=path.name, reason=reason)
        obs.inc("cache.quarantines")
        self.stats.invalid += 1
        self.stats.quarantined += 1
        if reason == "stale":
            self.stats.stale_entries += 1
        else:
            self.stats.corrupt_entries += 1
        target_dir = self.root / QUARANTINE_DIR
        try:
            with self._exclusive():
                target_dir.mkdir(parents=True, exist_ok=True)
                os.replace(path, target_dir / f"{path.name}.{reason}")
        except OSError:
            # Quarantine itself failed (permissions, cross-device...):
            # fall back to unlinking so the entry cannot poison reads.
            try:
                path.unlink()
            except OSError:
                pass

    def quarantined_entries(self) -> list:
        """Paths currently sitting in the quarantine directory."""
        qdir = self.root / QUARANTINE_DIR
        if not qdir.is_dir():
            return []
        return sorted(p for p in qdir.iterdir() if p.is_file())

    def _read_body(self, path: Path) -> Optional[bytes]:
        """Read and validate one entry; ``None`` is a classified miss."""
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            self.stats.io_errors += 1
            return None
        try:
            body = self._decode(raw)
        except CacheFormatError as exc:
            self._quarantine(path, exc.reason)
            return None
        try:
            # A hit refreshes recency for the LRU eviction pass.
            os.utime(path)
        except OSError:
            pass
        return body

    def _survive_read(self) -> bool:
        """``cache-read`` fault site; ``False`` = give up (treat as miss)."""
        try:
            self.stats.faults_recovered += faultinject.survive("cache-read")
            return True
        except FaultInjected:
            self.stats.io_errors += 1
            return False

    def _survive_write(self) -> bool:
        """``cache-write`` fault site; ``False`` = skip this write."""
        try:
            self.stats.faults_recovered += faultinject.survive("cache-write")
            return True
        except FaultInjected:
            self.stats.write_skips += 1
            return False

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    @staticmethod
    def _is_entry(path: Path) -> bool:
        return path.is_file() and not path.name.startswith(".")

    def _evict_locked(self) -> None:
        """LRU eviction down to ``max_bytes``; also sweeps stale temp
        files left by killed writers.  Caller holds ``_exclusive``."""
        import time

        now = time.time()
        entries = []
        total = 0
        try:
            children = list(self.root.iterdir())
        except OSError:
            return
        for path in children:
            if path.name.startswith(".tmp-"):
                try:
                    if now - path.stat().st_mtime > _TMP_MAX_AGE_SECONDS:
                        path.unlink()
                except OSError:
                    pass
                continue
            if not self._is_entry(path):
                continue
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, path))
            total += st.st_size
        if not self.max_bytes or total <= self.max_bytes:
            return
        entries.sort(key=lambda e: (e[0], e[2].name))
        evicted = 0
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.stats.evictions += 1
            evicted += 1
        if evicted:
            obs.instant("cache.evict", entries=evicted, live_bytes=total)
            obs.inc("cache.evictions", evicted)

    # ------------------------------------------------------------------
    # kernel entries
    # ------------------------------------------------------------------
    def get_kernel(self, key: str) -> Optional[CompiledKernel]:
        with obs.span("cache.get_kernel"), self._lock:
            if not self._survive_read():
                self.stats.kernel_misses += 1
                return None
            return self._get_kernel(key)

    def _get_kernel(self, key: str) -> Optional[CompiledKernel]:
        path = self._path(key, "kernel")
        body = self._read_body(path)
        if body is None:
            self.stats.kernel_misses += 1
            return None
        try:
            entry = pickle.loads(body)
            if entry["version"] != CACHE_VERSION or entry["key"] != key:
                raise CacheFormatError("stale", "entry version/key mismatch")
            kernel = entry["kernel"]
            if not isinstance(kernel, CompiledKernel):
                raise CacheFormatError("corrupt", "entry holds no kernel")
        except CacheFormatError as exc:
            self._quarantine(path, exc.reason)
            self.stats.kernel_misses += 1
            return None
        except Exception:
            # Checksummed body that still fails to unpickle: a schema
            # drift of the pickled classes, not bit rot.
            self._quarantine(path, "corrupt")
            self.stats.kernel_misses += 1
            return None
        self.stats.kernel_hits += 1
        return kernel

    def put_kernel(self, key: str, kernel: CompiledKernel) -> None:
        entry = {"version": CACHE_VERSION, "key": key, "kernel": kernel}
        with obs.span("cache.put_kernel"), self._lock:
            if not self._survive_write():
                return
            try:
                self._write_atomic(self._path(key, "kernel"), pickle.dumps(entry))
            except OSError:
                self.stats.io_errors += 1
                return
            self.stats.puts += 1

    # ------------------------------------------------------------------
    # cycle entries
    # ------------------------------------------------------------------
    def get_cycles(self, key: str) -> Optional[float]:
        with obs.span("cache.get_cycles"), self._lock:
            if not self._survive_read():
                self.stats.cycle_misses += 1
                return None
            return self._get_cycles(key)

    def _get_cycles(self, key: str) -> Optional[float]:
        path = self._path(key, "cycles.json")
        body = self._read_body(path)
        if body is None:
            self.stats.cycle_misses += 1
            return None
        try:
            entry = json.loads(body)
            if entry["version"] != CACHE_VERSION or entry["key"] != key:
                raise CacheFormatError("stale", "entry version/key mismatch")
            cycles = float(entry["cycles"])
        except CacheFormatError as exc:
            self._quarantine(path, exc.reason)
            self.stats.cycle_misses += 1
            return None
        except Exception:
            self._quarantine(path, "corrupt")
            self.stats.cycle_misses += 1
            return None
        self.stats.cycle_hits += 1
        return cycles

    def put_cycles(self, key: str, cycles: float) -> None:
        entry = {"version": CACHE_VERSION, "key": key, "cycles": float(cycles)}
        with obs.span("cache.put_cycles"), self._lock:
            if not self._survive_write():
                return
            try:
                self._write_atomic(
                    self._path(key, "cycles.json"), json.dumps(entry).encode("utf-8")
                )
            except OSError:
                self.stats.io_errors += 1
                return
            self.stats.puts += 1

    # ------------------------------------------------------------------
    # run entries (output buffer + counters)
    # ------------------------------------------------------------------
    def get_run(self, key: str) -> Optional[tuple]:
        """``(output array, Counters)`` of a cached execution, or ``None``."""
        with obs.span("cache.get_run"), self._lock:
            if not self._survive_read():
                self.stats.run_misses += 1
                return None
            return self._get_run(key)

    def _get_run(self, key: str) -> Optional[tuple]:
        path = self._path(key, "run")
        body = self._read_body(path)
        if body is None:
            self.stats.run_misses += 1
            return None
        try:
            entry = pickle.loads(body)
            if entry["version"] != CACHE_VERSION or entry["key"] != key:
                raise CacheFormatError("stale", "entry version/key mismatch")
            output = entry["output"]
            if not isinstance(output, np.ndarray):
                raise CacheFormatError("corrupt", "entry holds no output array")
            counters = Counters(**entry["counters"])
        except CacheFormatError as exc:
            self._quarantine(path, exc.reason)
            self.stats.run_misses += 1
            return None
        except Exception:
            self._quarantine(path, "corrupt")
            self.stats.run_misses += 1
            return None
        self.stats.run_hits += 1
        return output, counters

    def put_run(self, key: str, output: np.ndarray, counters: Counters) -> None:
        entry = {
            "version": CACHE_VERSION,
            "key": key,
            "output": np.asarray(output),
            "counters": dict(vars(counters)),
        }
        with obs.span("cache.put_run"), self._lock:
            if not self._survive_write():
                return
            try:
                self._write_atomic(self._path(key, "run"), pickle.dumps(entry))
            except OSError:
                self.stats.io_errors += 1
                return
            self.stats.puts += 1

    # ------------------------------------------------------------------
    def clear(self, include_quarantine: bool = True) -> int:
        """Delete every live entry (and, by default, the quarantine);
        returns the number of entry files removed."""
        removed = 0
        if self.root.is_dir():
            with self._exclusive():
                for path in self.root.iterdir():
                    if path.suffix in (".kernel", ".json", ".run") or (
                        path.name.startswith(".tmp-")
                    ):
                        try:
                            path.unlink()
                            removed += 1
                        except OSError:
                            pass
        if include_quarantine:
            for path in self.quarantined_entries():
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed
