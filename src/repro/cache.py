"""Persistent content-addressed store for tuning artifacts.

Exploring the rewrite space means compiling and simulating many
candidate programs, most of which reappear unchanged on the next run
(and across ``benchsuite`` invocations).  Following Loo.py's lead on
caching transformed-kernel artifacts, this module keeps two kinds of
entries on disk, both addressed by content, never by file name or
timestamp:

* **kernel entries** — the full :class:`~repro.compiler.codegen.CompiledKernel`
  (generated OpenCL source plus launch metadata), keyed by the
  *structural hash* of the IL program (:mod:`repro.ir.structural`, so
  parameter renaming and cloning do not defeat the cache) combined with
  the :class:`~repro.compiler.options.CompilerOptions` and the size
  environment;
* **cycle entries** — the measured simulated cycle count of one
  execution, keyed by the kernel key plus a fingerprint of the concrete
  input arrays, the launch geometry, the device profile and the
  simulator engine;
* **run entries** — the full outcome of one simulated execution (the
  output buffer and the device-independent :class:`Counters`), keyed
  like cycle entries minus the device.  These are what let the
  ``figure8`` harness skip re-executing reference and generated kernels
  on warm reruns (the per-device cycle estimate is recomputed from the
  cached counters, which is pure arithmetic).

Entries are written atomically (temp file + ``os.replace``) and carry a
format version; a corrupt, truncated or stale entry is treated as a
miss (and deleted), so the worst failure mode is a recompile.  The
store root comes from the ``REPRO_CACHE_DIR`` environment variable,
falling back to ``~/.cache/repro``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Mapping, Optional

import numpy as np

from repro.compiler.codegen import CompiledKernel
from repro.compiler.options import CompilerOptions
from repro.ir.nodes import FunDecl
from repro.ir.structural import canonical
from repro.opencl.interp import Counters

#: Bump when the on-disk layout or any pickled class changes shape.
#: v2: arith nodes are hash-consed (pickled via ``__getnewargs__``), and
#: run entries (output + counters) joined the store.
CACHE_VERSION = 2

_ENV_VAR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def fingerprint_inputs(inputs: Mapping[str, Any]) -> str:
    """Digest concrete kernel inputs (arrays by bytes, scalars by repr)."""
    h = hashlib.sha256()
    for name in sorted(inputs):
        value = inputs[name]
        h.update(name.encode())
        if isinstance(value, np.ndarray) or (
            hasattr(value, "__len__") and not isinstance(value, str)
        ):
            arr = np.ascontiguousarray(np.asarray(value))
            h.update(str(arr.dtype).encode())
            h.update(str(arr.shape).encode())
            h.update(arr.tobytes())
        else:
            h.update(repr(value).encode())
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`TuningCache` instance."""

    kernel_hits: int = 0
    kernel_misses: int = 0
    cycle_hits: int = 0
    cycle_misses: int = 0
    run_hits: int = 0
    run_misses: int = 0
    puts: int = 0
    invalid: int = 0

    def kernel_hit_rate(self) -> float:
        total = self.kernel_hits + self.kernel_misses
        return self.kernel_hits / total if total else 0.0

    def cycle_hit_rate(self) -> float:
        total = self.cycle_hits + self.cycle_misses
        return self.cycle_hits / total if total else 0.0

    def run_hit_rate(self) -> float:
        total = self.run_hits + self.run_misses
        return self.run_hits / total if total else 0.0


class TuningCache:
    """On-disk content-addressed store for compiled kernels and timings."""

    def __init__(self, root: "str | Path | None" = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()
        # The explorer's worker pool shares one cache: serialize file IO
        # and stats updates.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    @staticmethod
    def _options_token(options: CompilerOptions) -> str:
        parts = [
            f"{f.name}={getattr(options, f.name)!r}"
            for f in sorted(fields(options), key=lambda f: f.name)
        ]
        return ";".join(parts)

    def kernel_key(
        self,
        program: FunDecl,
        options: CompilerOptions,
        size_env: Mapping[str, int],
    ) -> str:
        sizes = ";".join(f"{k}={int(v)}" for k, v in sorted(size_env.items()))
        payload = "\n".join(
            [
                f"v{CACHE_VERSION}",
                canonical(program),
                self._options_token(options),
                sizes,
            ]
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @staticmethod
    def source_key(source: str, kernel_name: str, size_env: Mapping[str, int]) -> str:
        """Key for a hand-written (non-IL) kernel: raw source + sizes.

        The reference kernels of the benchsuite have no IL program to
        hash structurally; their source text is the identity.
        """
        sizes = ";".join(f"{k}={int(v)}" for k, v in sorted(size_env.items()))
        payload = "\n".join([f"v{CACHE_VERSION}", "src", kernel_name, sizes, source])
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def run_key(
        self,
        kernel_key: str,
        inputs_fingerprint: str,
        global_size,
        local_size,
        engine: Optional[str],
    ) -> str:
        payload = "\n".join(
            [
                "run",
                kernel_key,
                inputs_fingerprint,
                repr(tuple(global_size) if hasattr(global_size, "__len__") else global_size),
                repr(tuple(local_size) if hasattr(local_size, "__len__") else local_size),
                engine or "auto",
            ]
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def cycles_key(
        self,
        kernel_key: str,
        inputs_fingerprint: str,
        global_size,
        local_size,
        device: str,
        engine: Optional[str],
    ) -> str:
        payload = "\n".join(
            [
                kernel_key,
                inputs_fingerprint,
                repr(tuple(global_size) if hasattr(global_size, "__len__") else global_size),
                repr(tuple(local_size) if hasattr(local_size, "__len__") else local_size),
                device,
                engine or "auto",
            ]
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # low-level file handling
    # ------------------------------------------------------------------
    def _path(self, key: str, kind: str) -> Path:
        return self.root / f"{key}.{kind}"

    def _write_atomic(self, path: Path, data: bytes) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _drop(self, path: Path) -> None:
        self.stats.invalid += 1
        try:
            path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # kernel entries
    # ------------------------------------------------------------------
    def get_kernel(self, key: str) -> Optional[CompiledKernel]:
        with self._lock:
            return self._get_kernel(key)

    def _get_kernel(self, key: str) -> Optional[CompiledKernel]:
        path = self._path(key, "kernel")
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.kernel_misses += 1
            return None
        try:
            entry = pickle.loads(raw)
            if entry["version"] != CACHE_VERSION or entry["key"] != key:
                raise ValueError("stale cache entry")
            kernel = entry["kernel"]
            if not isinstance(kernel, CompiledKernel):
                raise TypeError("cache entry holds no kernel")
        except Exception:
            # Corrupt/stale entries fall back to a recompile.
            self._drop(path)
            self.stats.kernel_misses += 1
            return None
        self.stats.kernel_hits += 1
        return kernel

    def put_kernel(self, key: str, kernel: CompiledKernel) -> None:
        entry = {"version": CACHE_VERSION, "key": key, "kernel": kernel}
        with self._lock:
            self._write_atomic(self._path(key, "kernel"), pickle.dumps(entry))
            self.stats.puts += 1

    # ------------------------------------------------------------------
    # cycle entries
    # ------------------------------------------------------------------
    def get_cycles(self, key: str) -> Optional[float]:
        with self._lock:
            return self._get_cycles(key)

    def _get_cycles(self, key: str) -> Optional[float]:
        path = self._path(key, "cycles.json")
        try:
            raw = path.read_text()
        except OSError:
            self.stats.cycle_misses += 1
            return None
        try:
            entry = json.loads(raw)
            if entry["version"] != CACHE_VERSION or entry["key"] != key:
                raise ValueError("stale cache entry")
            cycles = float(entry["cycles"])
        except Exception:
            self._drop(path)
            self.stats.cycle_misses += 1
            return None
        self.stats.cycle_hits += 1
        return cycles

    def put_cycles(self, key: str, cycles: float) -> None:
        entry = {"version": CACHE_VERSION, "key": key, "cycles": float(cycles)}
        with self._lock:
            self._write_atomic(
                self._path(key, "cycles.json"), json.dumps(entry).encode("utf-8")
            )
            self.stats.puts += 1

    # ------------------------------------------------------------------
    # run entries (output buffer + counters)
    # ------------------------------------------------------------------
    def get_run(self, key: str) -> Optional[tuple]:
        """``(output array, Counters)`` of a cached execution, or ``None``."""
        with self._lock:
            return self._get_run(key)

    def _get_run(self, key: str) -> Optional[tuple]:
        path = self._path(key, "run")
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.run_misses += 1
            return None
        try:
            entry = pickle.loads(raw)
            if entry["version"] != CACHE_VERSION or entry["key"] != key:
                raise ValueError("stale cache entry")
            output = entry["output"]
            if not isinstance(output, np.ndarray):
                raise TypeError("cache entry holds no output array")
            counters = Counters(**entry["counters"])
        except Exception:
            self._drop(path)
            self.stats.run_misses += 1
            return None
        self.stats.run_hits += 1
        return output, counters

    def put_run(self, key: str, output: np.ndarray, counters: Counters) -> None:
        entry = {
            "version": CACHE_VERSION,
            "key": key,
            "output": np.asarray(output),
            "counters": dict(vars(counters)),
        }
        with self._lock:
            self._write_atomic(self._path(key, "run"), pickle.dumps(entry))
            self.stats.puts += 1

    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.iterdir():
                if path.suffix in (".kernel", ".json", ".run") or path.name.startswith(
                    ".tmp-"
                ):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed
