"""Backend registry: names -> backends -> fallback chains.

Two name spaces live here:

* **backend names** — concrete :class:`~repro.backend.base.Backend`
  implementations (``scalar``, ``interp``, ``compiled``, ``fused``),
  registered with :func:`register_backend`;
* **engine names** — what ``launch(engine=...)`` / ``REPRO_SIM_ENGINE``
  accept.  Every engine name resolves to an ordered *fallback chain* of
  backends plus a strictness flag, registered with
  :func:`register_engine`.  Single-backend strict engines (``compiled``)
  and multi-tier preferences (``auto``, ``fused``) are the same
  mechanism; the historical tier names stay as chain aliases.

Chain semantics (:meth:`ResolvedChain.execute`):

1. Backends are tried in order.  A static refusal
   (:class:`CompileUnsupported` from ``plan`` — or from ``run`` before
   any buffer was touched, e.g. a launch-shape cap) falls through to
   the next backend.
2. A *dynamic* refusal (``run`` returns ``False`` after rolling the
   buffers back) skips every remaining backend of the same
   ``dynamic_class`` — a same-class backend would detect the same
   condition — and continues with the next class.
3. A strict chain that runs out of backends raises
   :class:`~repro.opencl.simt.VectorizationError` (the historical
   behaviour of forcing ``engine="vector"`` onto an unsupported
   kernel); graceful chains end in ``scalar``, which always succeeds.
4. Every decline — static, dynamic, an unexpected ``plan()`` crash
   (shielded for non-final members), an injected ``backend-run``
   fault, or an open circuit breaker — is recorded in the degradation
   ledger (:mod:`repro.backend.ledger`), so a silently-degraded run is
   observable after the fact.
5. When a :class:`~repro.service.breaker.BreakerBoard` is installed
   (only ever by a running :class:`~repro.service.daemon.TuningService`),
   non-final backends whose breaker is open are skipped pre-emptively;
   crash/fault declines feed the breaker, served launches reset it.

``REPRO_SIM_ENGINE`` expresses a *preferred default*, not a hard
requirement: resolving a strict engine name from the environment
(:func:`resolve` with ``prefer=True``) extends the chain with the
remaining graceful tiers so a whole test-suite run can be steered
through one backend without breaking kernels only the scalar reference
supports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.backend.base import Backend, CompileUnsupported, ExecutionRequest

__all__ = [
    "EngineSpec",
    "ResolvedChain",
    "register_backend",
    "register_engine",
    "get_backend",
    "backend_names",
    "engine_names",
    "resolve",
]

_BACKENDS: Dict[str, Backend] = {}
_ENGINES: Dict[str, "EngineSpec"] = {}


@dataclass(frozen=True)
class EngineSpec:
    """One engine name: an ordered backend chain + strictness."""

    name: str
    members: Tuple[str, ...]
    strict: bool = False
    description: str = ""


def register_backend(backend: Backend, replace: bool = False) -> Backend:
    """Add a backend under ``backend.name``; returns it (decorator-
    friendly).  Re-registering an existing name requires ``replace``."""
    name = backend.name
    if not name:
        raise ValueError("backend has no name")
    if name in _BACKENDS and not replace:
        raise ValueError(f"backend {name!r} is already registered")
    _BACKENDS[name] = backend
    return backend


def register_engine(
    name: str,
    members: Sequence[str],
    strict: bool = False,
    description: str = "",
    replace: bool = False,
) -> EngineSpec:
    """Register an engine name resolving to a backend fallback chain."""
    if name in _ENGINES and not replace:
        raise ValueError(f"engine {name!r} is already registered")
    for member in members:
        if member not in _BACKENDS:
            raise ValueError(
                f"engine {name!r} references unknown backend {member!r}"
            )
    spec = EngineSpec(name, tuple(members), strict, description)
    _ENGINES[name] = spec
    return spec


def get_backend(name: str) -> Backend:
    """Look a backend up by name; raises ``ValueError`` listing the
    registered names for unknown ones."""
    try:
        return _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS)) or "<none>"
        raise ValueError(
            f"unknown execution backend {name!r} (registered: {known})"
        ) from None


def backend_names() -> tuple:
    return tuple(sorted(_BACKENDS))


def engine_names() -> tuple:
    """Every name ``launch(engine=...)``/``REPRO_SIM_ENGINE`` accepts."""
    return tuple(sorted(_ENGINES))


@dataclass
class ResolvedChain:
    """An engine name resolved to live backend instances."""

    name: str
    members: Tuple[Backend, ...]
    strict: bool

    def execute(self, request: ExecutionRequest) -> None:
        from repro import faultinject
        from repro.backend import ledger
        from repro.faultinject import FaultInjected
        from repro.obs import metrics, span
        from repro.opencl.simt import VectorizationError
        from repro.service import breaker as breaker_mod

        refusals = []
        skip_classes: set = set()
        last = self.members[-1] if self.members else None
        # The service's circuit-breaker board, when one is installed
        # (repro.service.breaker): a backend with repeated crash/fault
        # declines is skipped pre-emptively and re-probed after a
        # cool-down.  One-shot CLI runs never install a board, so this
        # is a no-op outside the service.
        board = breaker_mod.installed()
        metrics.inc("launch.total")
        for backend in self.members:
            if backend.dynamic_class in skip_classes:
                continue
            if (
                board is not None
                and backend is not last
                and not board.allow(backend.name)
            ):
                # Skipping an unhealthy tier is itself a degradation:
                # ledgered like any other decline, and the breaker is
                # exempt for the final member so graceful chains always
                # complete.
                ledger.record(
                    self.name, backend.name, "breaker", "circuit open"
                )
                refusals.append(f"{backend.name}: circuit open")
                continue
            if backend is not last:
                # ``backend-run`` fault site: an injected fault declines
                # this backend (exercising the chain + ledger); the final
                # member is exempt so a graceful chain still completes.
                try:
                    faultinject.maybe_fail("backend-run")
                except FaultInjected as exc:
                    ledger.record(self.name, backend.name, "fault", str(exc))
                    refusals.append(f"{backend.name}: injected fault")
                    if board is not None:
                        board.failure(backend.name)
                    continue
            try:
                with span("plan", backend=backend.name, engine=self.name):
                    plan = backend.plan(request.parsed, request.kernel)
            except CompileUnsupported as exc:
                ledger.record(self.name, backend.name, "static", str(exc))
                refusals.append(f"{backend.name}: {exc}")
                if board is not None and backend is not last:
                    # A static refusal is no health verdict: give back
                    # the half-open probe slot allow() may have taken
                    # (final members never take one), or the breaker
                    # could stay half-open forever.
                    board.release(backend.name)
                continue
            except Exception as exc:
                # Crash shield: an unexpected bug in a backend's plan()
                # must not take the launch down while healthier tiers
                # remain.  plan() precedes any buffer write, so falling
                # through is exact.  The crash is ledgered with the
                # crashing backend's name at *every* chain position; the
                # final member additionally re-raises (a chain with no
                # healthy backend is a real error).
                ledger.record(
                    self.name, backend.name, "crash",
                    f"{type(exc).__name__}: {exc}",
                )
                if board is not None:
                    board.failure(backend.name)
                if backend is last:
                    raise
                refusals.append(
                    f"{backend.name}: crashed in plan ({type(exc).__name__})"
                )
                continue
            try:
                with span(
                    "run", backend=backend.name, engine=self.name,
                    kernel=request.kernel.name,
                ):
                    done = backend.run(plan, request)
            except CompileUnsupported as exc:
                # Launch-shape refusal before any buffer was touched.
                ledger.record(self.name, backend.name, "static", str(exc))
                refusals.append(f"{backend.name}: {exc}")
                if board is not None and backend is not last:
                    board.release(backend.name)  # no verdict: free probe
                continue
            if done:
                metrics.inc(f"launch.served.{backend.name}")
                if board is not None:
                    # Only health outcomes feed the breaker: a served
                    # launch closes it; static/dynamic refusals are the
                    # backend working as designed and count as neither.
                    board.success(backend.name)
                return
            ledger.record(
                self.name, backend.name, "dynamic", "dynamic bail-out"
            )
            refusals.append(f"{backend.name}: dynamic bail-out")
            if board is not None and backend is not last:
                board.release(backend.name)  # no verdict: free probe
            skip_classes.add(backend.dynamic_class)
        detail = "; ".join(refusals) or "empty backend chain"
        kind = "strict engine" if self.strict else "engine"
        raise VectorizationError(
            f"kernel {request.kernel.name!r} not supported by {kind} "
            f"{self.name!r} ({detail})"
        )


def resolve(name: str, prefer: bool = False) -> ResolvedChain:
    """Resolve an engine name to its backend chain.

    ``prefer`` marks the name as a *preference* (the ``REPRO_SIM_ENGINE``
    path): strict chains gain the remaining graceful tiers so the run
    never fails on kernels the preferred backend cannot execute.
    """
    spec = _ENGINES.get(name)
    if spec is None:
        known = ", ".join(engine_names()) or "<none>"
        raise ValueError(
            f"unknown execution engine {name!r}: valid engines are {known}"
        )
    members = list(spec.members)
    strict = spec.strict
    if prefer and strict:
        for tail in ("interp", "scalar"):
            if tail in _BACKENDS and tail not in members:
                members.append(tail)
        strict = False
    return ResolvedChain(
        spec.name, tuple(get_backend(m) for m in members), strict
    )
