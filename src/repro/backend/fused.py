"""The whole-grid fused-numpy execution backend.

The blocked tiers (:mod:`repro.opencl.simt` / ``simt_compile``) execute
one block of work-groups at a time and pay, per element, a handful of
numpy passes for dynamic race detection and fancy-indexed memory
traffic.  This backend executes the **entire launch as one block** —
one ``(num_groups, lanes_per_group)`` axis, flattened — and compiles
barrier-delimited straight-line segments into *fused numpy array
programs* that eliminate those passes where a static proof replaces the
dynamic machinery:

* **lazy affine values** — ``get_global_id(0)`` and integer arithmetic
  on it stay a symbolic ``base + g*group + l*lane`` descriptor
  (:class:`Aff`) instead of a materialized lane array;
* **slice memory traffic** — a load/store whose address is affine in
  the flat lane index with non-zero stride becomes a numpy slice (a
  view for loads from read-only buffers: zero passes) instead of a
  gather/scatter through an index array;
* **proof-carrying stores** — a buffer whose *only* access in the whole
  kernel is a single store through pairwise-distinct (affine,
  stride != 0) addresses is race-free by construction, so the store
  skips the hazard detector entirely (unaliased at launch time, checked
  O(1));
* **prefix masks** — a branch condition comparing an increasing affine
  value against a grid-uniform bound (``if (i < n)``) becomes a prefix
  of the lane axis: the active count is computed arithmetically and the
  guarded body runs on length-``k`` array prefixes, never materializing
  a boolean mask;
* **closed-form load accounting** — the cached-load log stores affine
  chunk descriptors and settles ``events - distinct (lane, address)``
  pairs arithmetically when the access pattern allows, instead of
  sorting address arrays.

Anything outside this algebra degrades gracefully, never incorrectly:

* an *expression* that leaves the algebra materializes into the exact
  lane arrays the blocked engine would hold and continues through the
  shared :class:`~repro.opencl.simt._Block` helpers (same counters,
  same hazard bookkeeping — bitwise-identical by construction);
* a *segment* the fuser cannot compile at all runs the corresponding
  closure segment of the shared :class:`~repro.opencl.simt_compile`
  pipeline, over the same whole-grid block (this is how barrier-heavy
  kernels like the gemv reference run here: still zero per-work-group
  Python loop iterations, every statement executes once for the whole
  grid);
* a *kernel* the closure compiler refuses (or a launch beyond the
  whole-grid lane cap) raises
  :class:`~repro.backend.base.CompileUnsupported` and the engine chain
  falls back to the compiled tier;
* a *dynamic* bail-out (cross-lane race, masked type mixing) restores
  the written buffers from a snapshot and reports ``False`` so the
  chain continues — the whole-grid race detector is more conservative
  than the blocked one (it sees cross-group conflicts blocks order by
  construction), which is safe: the fallback reproduces the scalar
  result bit for bit.

Like every backend, the contract is bitwise-identical buffers and
identical :class:`~repro.opencl.interp.Counters` against the scalar
reference for every launch it completes.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

import numpy as np

from repro.compiler import cast as c
from repro.obs import profile as _obs_profile
from repro.backend.base import Backend, CompileUnsupported, ExecutionRequest
from repro.backend.registry import register_backend, register_engine
from repro.opencl import simt, simt_compile
from repro.opencl.cparser import ParsedProgram
from repro.opencl.interp import Counters, ExecError, Pointer, _MATH_BUILTINS
from repro.opencl.simt import (
    RowPtr,
    VPtr,
    VectorUnsupported,
    _Block,
    _Frame,
    _LoadLog,
    _VMATH,
    _is_uniform,
    _release_hazards,
    _pool_tls,
    analyze_kernel,
    written_pointer_roots,
)

__all__ = ["Aff", "FusedBackend", "FusedKernel", "FUSED_MAX_LANES"]

#: Launches with more work-items than this refuse the whole-grid layout
#: (CompileUnsupported -> the chain falls back to the blocked compiled
#: tier, which caps memory at MAX_LANES per block).
FUSED_MAX_LANES = 1 << 21


class _Unfusable(Exception):
    """Compile-time: this segment runs the generic closure instead."""


_INT_UNIFORM = (int, np.integer)


def _is_int_uniform(v) -> bool:
    return isinstance(v, _INT_UNIFORM) and not isinstance(v, (bool, np.bool_))


# ---------------------------------------------------------------------------
# lazy affine lane values
# ---------------------------------------------------------------------------

class Aff:
    """Lazy integer lane vector ``base + gs*group + ls*lane_in_group``
    over the whole grid (``group`` = work-group ordinal, ``lane_in_group``
    = in-group lane ordinal, both in the scalar scheduler's order).

    ``flat_stride(Lc)`` is the stride over the *flat* lane index when
    the descriptor is expressible as ``base + s*flat`` (i.e. when
    ``gs == ls * Lc``), else ``None`` — the form slice accesses and
    prefix masks require.
    """

    __slots__ = ("base", "gs", "ls")

    def __init__(self, base: int, gs: int, ls: int):
        self.base = base
        self.gs = gs
        self.ls = ls

    def flat_stride(self, lanes_per_group: int) -> Optional[int]:
        if self.gs == self.ls * lanes_per_group:
            return self.ls
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Aff({self.base} + {self.gs}*g + {self.ls}*l)"


def _aff_binop(op: str, l, r):
    """Affine-preserving integer arithmetic; ``None`` = not representable."""
    la, ra = isinstance(l, Aff), isinstance(r, Aff)
    if op == "+":
        if la and ra:
            return Aff(l.base + r.base, l.gs + r.gs, l.ls + r.ls)
        if la and _is_int_uniform(r):
            return Aff(l.base + int(r), l.gs, l.ls)
        if ra and _is_int_uniform(l):
            return Aff(r.base + int(l), r.gs, r.ls)
    elif op == "-":
        if la and ra:
            return Aff(l.base - r.base, l.gs - r.gs, l.ls - r.ls)
        if la and _is_int_uniform(r):
            return Aff(l.base - int(r), l.gs, l.ls)
        if ra and _is_int_uniform(l):
            return Aff(int(l) - r.base, -r.gs, -r.ls)
    elif op == "*":
        if la and _is_int_uniform(r):
            u = int(r)
            return Aff(l.base * u, l.gs * u, l.ls * u)
        if ra and _is_int_uniform(l):
            u = int(l)
            return Aff(r.base * u, r.gs * u, r.ls * u)
    return None


# ---------------------------------------------------------------------------
# symbolic load accounting
# ---------------------------------------------------------------------------

class _SymChunks:
    """Per-buffer symbolic load chunks (fused fast-path gathers).

    Each chunk is ``(stride, base, k)`` for an affine access over the
    first ``k`` lanes (``stride None`` = grid-uniform address ``base``).
    ``settle`` computes ``(events, distinct (lane, address) pairs)`` in
    closed form when the chunk set provably cannot collide across
    descriptors — all-affine with one common stride (same stride +
    different base never share an address for the same lane; same
    descriptor trivially overlaps) or all-uniform (distinct addresses
    are disjoint pair sets).  Mixed or multi-stride sets materialize
    into the standard :class:`~repro.opencl.simt._LoadLog` arrays
    instead — exact, just not O(1).
    """

    __slots__ = ("array", "space", "chunks", "events")

    def __init__(self, array: np.ndarray, space: str):
        self.array = array  # keep the buffer alive while its id is a key
        self.space = space
        self.chunks: list = []  # (stride | None, base, k)
        self.events = 0

    def add(self, stride: Optional[int], base: int, k: int) -> None:
        self.chunks.append((stride, base, k))
        self.events += k

    def settle(self) -> Optional[tuple]:
        """(events, distinct) in closed form, or ``None``."""
        strides = {s for s, _, _ in self.chunks}
        if len(strides) != 1:
            return None  # mixed descriptors may collide: materialize
        per_base: dict = {}
        for _, base, k in self.chunks:
            per_base[base] = max(per_base.get(base, 0), k)
        return self.events, sum(per_base.values())

    def materialize_into(self, log: _LoadLog, lane_ids: np.ndarray) -> None:
        """Replay the chunks as the lane arrays the blocked engine would
        have logged (same (lane, address) pairs)."""
        for stride, base, k in self.chunks:
            lanes = lane_ids[:k]
            if stride is None:
                aa = np.broadcast_to(np.int64(base), (k,))
            else:
                aa = base + stride * lanes
            log.add(aa, lanes, k)


# ---------------------------------------------------------------------------
# whole-grid block
# ---------------------------------------------------------------------------

class _GridBlock(_Block):
    """One :class:`~repro.opencl.simt._Block` covering the entire launch,
    extended with the fused fast paths (affine values, slice memory
    traffic, proof-carrying stores, symbolic load log)."""

    def __init__(self, *args, sole_ids=None, one_d=False, **kwargs):
        super().__init__(*args, **kwargs)
        #: Arrays whose single kernel-wide access is one proven store.
        self._sole_ids = sole_ids or frozenset()
        #: Effectively 1-D launch: geometry builtins yield Aff values.
        self._one_d = one_d
        self._sym_log: dict = {}

    # -- affine helpers --------------------------------------------------
    def aff_values(self, v: Aff, k: int) -> np.ndarray:
        """Materialize the first ``k`` lanes of an affine descriptor."""
        s = v.flat_stride(self._lanes_per_group)
        lanes = self._lane_ids if k == self.L else self._lane_ids[:k]
        if s is not None:
            if s == 0:
                return np.broadcast_to(np.int64(v.base), (k,))
            return v.base + s * lanes
        out = v.base + v.gs * (
            self.group_row if k == self.L else self.group_row[:k]
        )
        if v.ls:
            out = out + v.ls * (self.lid[0] if k == self.L else self.lid[0][:k])
        return out

    def lanes_k(self, v, k: int):
        """Materialize ``v`` for the active prefix; uniforms stay scalar
        (exactly the blocked engine's value discipline)."""
        if isinstance(v, Aff):
            return self.aff_values(v, k)
        if isinstance(v, np.ndarray) and v.ndim == 1 and v.shape[0] != k:
            return v[:k]
        return v

    def materialize_env(self) -> None:
        """Collapse affine descriptors before generic closures run."""
        env = self.env
        for name, v in env.items():
            if isinstance(v, Aff):
                env[name] = self.aff_values(v, self.L)

    def prefix_mask(self, k: int) -> np.ndarray:
        if k == self.L:
            return self._full
        m = np.zeros(self.L, dtype=bool)
        m[:k] = True
        return m

    # -- symbolic load log ----------------------------------------------
    def log_sym(self, ptr, stride: Optional[int], base: int, k: int) -> None:
        key = (id(ptr.array), 0)
        sym = self._sym_log.get(key)
        if sym is None:
            sym = _SymChunks(ptr.array, ptr.space)
            self._sym_log[key] = sym
        sym.add(stride, base, k)

    def _obs_load_events(self) -> int:
        """Running load-event total including the symbolic log (the
        closed-form chunks count element events as they are added)."""
        return super()._obs_load_events() + sum(
            sym.events for sym in self._sym_log.values()
        )

    def _flush_load_log(self) -> None:
        counters = self.counters
        prof = _obs_profile.ACTIVE
        for key, sym in self._sym_log.items():
            log = self._load_log.get(key)
            if log is None:
                closed = sym.settle()
                if closed is not None:
                    events, distinct = closed
                    counters.cached_loads += events - distinct
                    if sym.space == "global":
                        counters.global_loads += distinct
                    else:
                        counters.local_loads += distinct
                    if prof is not None:
                        prof.record_loads(
                            sym.array, sym.space, distinct, events - distinct
                        )
                    continue
                log = _LoadLog(sym.array, sym.space, 0, self.L)
                self._load_log[key] = log
            sym.materialize_into(log, self._lane_ids)
        self._sym_log.clear()
        super()._flush_load_log()

    # -- fused memory traffic --------------------------------------------
    def _flat_ptr(self, ptr, addr):
        """(flat array, flat affine address) for a shared-buffer access,
        folding a RowPtr's per-group row into the descriptor; ``None``
        when not representable."""
        if not isinstance(addr, Aff):
            return None
        offset = ptr.offset
        if not (type(offset) is int):
            return None
        if type(ptr) is VPtr:
            aff = Aff(addr.base + offset, addr.gs, addr.ls)
            return ptr.array, aff
        # Local buffers: one row per work-group, rows == group ordinal.
        if ptr.rows is not self.group_row:
            return None
        width = ptr.array.shape[1]
        aff = Aff(addr.base + offset, addr.gs + width, addr.ls)
        return ptr.array.reshape(-1), aff

    def fused_gather(self, ptr, index, k: int):
        off = ptr.offset
        addr = index if type(off) is int and off == 0 else _addr_add(off, index)
        if ptr.space == "private":
            self.counters.private_loads += k
            aa = self.lanes_k(addr, k)
            if type(ptr) is RowPtr:
                rows = ptr.rows if k == self.L else ptr.rows[:k]
                if _is_uniform(aa):
                    return ptr.array[rows, int(aa)]
                return ptr.array[rows, aa]
            if _is_uniform(aa):
                return ptr.array[int(aa)]
            return ptr.array[aa]
        tracked = self._needs_hazard(ptr)
        if not tracked:
            if isinstance(addr, Aff):
                flat = self._flat_ptr(ptr, addr)
                if flat is not None:
                    arr, aff = flat
                    s = aff.flat_stride(self._lanes_per_group)
                    if s is not None and s >= 0:
                        base = aff.base
                        last = base + s * (k - 1)
                        if 0 <= base and last < arr.shape[0]:
                            if s == 0:
                                self.log_sym(ptr, None, base, k)
                                return arr[base]
                            self.log_sym(ptr, s, base, k)
                            # Read-only view: nothing writes this buffer
                            # (untracked), so aliasing cannot bite.
                            return arr[base : base + k] if s == 1 else (
                                arr[base : last + 1 : s]
                            )
            elif _is_uniform(addr) and type(ptr) is VPtr:
                self.log_sym(ptr, None, int(addr), k)
                return ptr.array[int(addr)]
        # Generic: materialize and mirror the blocked engine's exact
        # path (same logged pairs, same hazard notes, same values).
        aa = self.lanes_k(addr, k)
        arr = ptr.array
        lanes = self._lane_ids if k == self.L else self._lane_ids[:k]
        if type(ptr) is RowPtr:
            rows = ptr.rows if k == self.L else ptr.rows[:k]
            flat = rows * arr.shape[1] + aa  # broadcasts a uniform addr
            self._log_load(ptr, flat, lanes, 0, k)
            if tracked:
                self._hazard(ptr).note_read(
                    flat, lanes, self._segment, self._seg_base
                )
            if _is_uniform(aa):
                return arr[rows, int(aa)]
            return arr.reshape(-1)[flat]
        if _is_uniform(aa):
            logged = np.broadcast_to(np.asarray(aa), (k,))
        else:
            logged = aa
        self._log_load(ptr, logged, lanes, 0, k)
        if tracked:
            self._hazard(ptr).note_read(
                logged, lanes, self._segment, self._seg_base
            )
        if _is_uniform(aa):
            return arr[int(aa)]
        return arr[aa]

    def fused_scatter(self, ptr, index, value, k: int, sole_site: bool) -> None:
        off = ptr.offset
        addr = index if type(off) is int and off == 0 else _addr_add(off, index)
        if ptr.space == "private":
            vals = self.lanes_k(value, k)
            aa = self.lanes_k(addr, k)
            if type(ptr) is RowPtr:
                rows = ptr.rows if k == self.L else ptr.rows[:k]
                ptr.array[rows, aa] = vals
            else:
                ptr.array[aa] = vals
            self._count_stores(ptr, "private", k)
            return
        if not self._needs_hazard(ptr):
            raise VectorUnsupported(
                "store through a buffer the write analysis missed"
            )
        if sole_site and id(ptr.array) in self._sole_ids:
            flat = self._flat_ptr(ptr, addr)
            if flat is not None:
                arr, aff = flat
                s = aff.flat_stride(self._lanes_per_group)
                if s is not None and s > 0:
                    base = aff.base
                    last = base + s * (k - 1)
                    if 0 <= base and last < arr.shape[0]:
                        vals = self.lanes_k(value, k)
                        # Pairwise-distinct addresses + sole kernel-wide
                        # access + unaliased at launch: race-free by
                        # construction, no hazard bookkeeping.
                        if s == 1:
                            arr[base : base + k] = vals
                        else:
                            arr[base : last + 1 : s] = vals
                        self._count_stores(ptr, ptr.space, k)
                        return
        # Generic: the blocked engine's scatter (hazard + fancy store;
        # ascending lane order resolves duplicate addresses).
        aa = self.lanes_k(addr, k)
        if _is_uniform(aa):
            aa = np.broadcast_to(np.asarray(aa, dtype=np.int64), (k,))
        vals = self.lanes_k(value, k)
        arr = ptr.array
        if type(ptr) is RowPtr:
            rows = ptr.rows if k == self.L else ptr.rows[:k]
            aa = rows * arr.shape[1] + aa
        lanes = self._lane_ids if k == self.L else self._lane_ids[:k]
        self._hazard(ptr).note_write(aa, lanes, self._segment, self._seg_base)
        if not isinstance(vals, np.ndarray):
            vals = np.broadcast_to(np.asarray(vals), (k,))
        arr.reshape(-1)[aa] = vals
        self._count_stores(ptr, ptr.space, k)


def _addr_add(off, index):
    out = _aff_binop("+", off, index)
    if out is not None:
        return out
    return off + index


# ---------------------------------------------------------------------------
# grid-uniformity analysis (loop trip counts)
# ---------------------------------------------------------------------------
#
# A fused loop must have a *grid-uniform* trip count — every work-item
# of the whole launch agrees — so the loop can run as a plain Python
# loop over whole-grid closures.  This mirrors the group-uniformity
# fixpoint of ``simt._barriers_group_uniform`` with one difference:
# ``get_group_id`` is *not* grid-uniform (only the size getters are).

_GEOM_GRID_UNIFORM = {"get_local_size", "get_global_size", "get_num_groups"}


def _guniform_expr(e, names: set) -> bool:
    if isinstance(e, (c.CInt, c.CFloat)):
        return True
    if isinstance(e, c.CIdent):
        return e.name in names
    if isinstance(e, c.CBinOp):
        return _guniform_expr(e.lhs, names) and _guniform_expr(e.rhs, names)
    if isinstance(e, c.CUnOp):
        return _guniform_expr(e.operand, names)
    if isinstance(e, c.CTernary):
        return all(
            _guniform_expr(x, names) for x in (e.cond, e.then, e.otherwise)
        )
    if isinstance(e, c.CCast):
        return _guniform_expr(e.operand, names)
    if isinstance(e, c.CCall):
        if e.func in _GEOM_GRID_UNIFORM or e.func in _MATH_BUILTINS:
            return all(_guniform_expr(a, names) for a in e.args)
        return False
    return False


def _gwalk(s, ctrl: bool, names: set, demoted: list) -> None:
    if isinstance(s, c.CBlock):
        for sub in s.stmts:
            _gwalk(sub, ctrl, names, demoted)
    elif isinstance(s, c.CDecl):
        if s.array_size is not None:
            value_uniform = True
        else:
            value_uniform = s.init is None or _guniform_expr(s.init, names)
        if not (ctrl and value_uniform):
            demoted.append(s.name)
    elif isinstance(s, c.CAssign):
        if isinstance(s.target, c.CIdent):
            value_uniform = _guniform_expr(s.value, names)
            if s.op != "=":
                value_uniform = value_uniform and s.target.name in names
            if not (ctrl and value_uniform):
                demoted.append(s.target.name)
        elif isinstance(s.target, c.CMember) and isinstance(
            s.target.base, c.CIdent
        ):
            demoted.append(s.target.base.name)
    elif isinstance(s, c.CFor):
        if s.init is not None:
            _gwalk(s.init, ctrl, names, demoted)
        inner = ctrl and (s.cond is None or _guniform_expr(s.cond, names))
        _gwalk(s.body, inner, names, demoted)
        if s.step is not None:
            _gwalk(s.step, inner, names, demoted)
    elif isinstance(s, c.CIf):
        inner = ctrl and _guniform_expr(s.cond, names)
        _gwalk(s.then, inner, names, demoted)
        if s.otherwise is not None:
            _gwalk(s.otherwise, inner, names, demoted)


def _grid_uniform_names(kernel: c.CFunctionDef) -> frozenset:
    names = {p.name for p in kernel.params}
    simt._collect_assigned(kernel.body, names)
    while True:
        demoted: list = []
        _gwalk(kernel.body, True, names, demoted)
        shrunk = names.intersection(demoted)
        if not shrunk:
            break
        names.difference_update(shrunk)
    return frozenset(names)


# ---------------------------------------------------------------------------
# sole-store analysis (proof-carrying stores)
# ---------------------------------------------------------------------------

def _sole_store_sites(kernel: c.CFunctionDef) -> tuple:
    """``(qualified names, {id(store stmt)})`` for buffers whose only
    kernel-wide access is one loop-free store.

    A name qualifies when it has exactly one store site, zero load
    sites, appears nowhere else (any other occurrence — helper
    argument, pointer assignment, vload/vstore operand — poisons it),
    and the store is not inside any loop (a repeated affine store could
    collide with its own earlier executions at shifted bases).  Such a
    store with pairwise-distinct addresses is race-free however the
    launch is scheduled, so the fused backend skips hazard bookkeeping
    for it (after an O(1) aliasing check at launch time).
    """
    universe = {p.name for p in kernel.params if p.is_pointer}
    stores: dict = {}
    loads: dict = {}
    poison: set = set()

    def scan_expr(e) -> None:
        if isinstance(e, c.CIndex):
            if isinstance(e.base, c.CIdent):
                loads[e.base.name] = loads.get(e.base.name, 0) + 1
            else:
                scan_expr(e.base)
            scan_expr(e.index)
        elif isinstance(e, c.CIdent):
            poison.add(e.name)
        elif isinstance(e, c.CBinOp):
            scan_expr(e.lhs)
            scan_expr(e.rhs)
        elif isinstance(e, c.CUnOp):
            scan_expr(e.operand)
        elif isinstance(e, c.CTernary):
            scan_expr(e.cond)
            scan_expr(e.then)
            scan_expr(e.otherwise)
        elif isinstance(e, c.CMember):
            scan_expr(e.base)
        elif isinstance(e, c.CCast):
            scan_expr(e.operand)
        elif isinstance(e, c.CVectorLiteral):
            for item in e.items:
                scan_expr(item)
        elif isinstance(e, c.CCall):
            for a in e.args:
                scan_expr(a)

    def scan_stmt(s, in_loop: bool) -> None:
        if isinstance(s, c.CBlock):
            for sub in s.stmts:
                scan_stmt(sub, in_loop)
        elif isinstance(s, c.CDecl):
            if s.qualifier == "local" and s.array_size is not None:
                universe.add(s.name)
            if s.init is not None:
                scan_expr(s.init)
        elif isinstance(s, c.CAssign):
            target = s.target
            if isinstance(target, c.CIndex) and isinstance(
                target.base, c.CIdent
            ):
                stores.setdefault(target.base.name, []).append((s, in_loop))
                if s.op != "=":  # compound store re-loads the address
                    loads[target.base.name] = (
                        loads.get(target.base.name, 0) + 1
                    )
                scan_expr(target.index)
            else:
                scan_expr(target)
            scan_expr(s.value)
        elif isinstance(s, c.CFor):
            if s.init is not None:
                scan_stmt(s.init, in_loop)
            if s.cond is not None:
                scan_expr(s.cond)
            if s.step is not None:
                scan_stmt(s.step, True)
            scan_stmt(s.body, True)
        elif isinstance(s, c.CIf):
            scan_expr(s.cond)
            scan_stmt(s.then, in_loop)
            if s.otherwise is not None:
                scan_stmt(s.otherwise, in_loop)
        elif isinstance(s, c.CExprStmt):
            scan_expr(s.expr)
        elif isinstance(s, c.CReturn):
            if s.value is not None:
                scan_expr(s.value)

    scan_stmt(kernel.body, False)
    qualified = set()
    sole_sites = set()
    for name in universe:
        sites = stores.get(name, [])
        if (
            len(sites) == 1
            and not sites[0][1]
            and loads.get(name, 0) == 0
            and name not in poison
        ):
            qualified.add(name)
            sole_sites.add(id(sites[0][0]))
    return qualified, sole_sites


# ---------------------------------------------------------------------------
# fused segment compiler
# ---------------------------------------------------------------------------
#
# Fused closures take ``(block, k)``: the active lanes are always the
# *first k* of the whole grid (k == L at segment top level; a prefix
# under a fused branch).  Materialized arrays are length-k prefixes,
# which is what lets a guarded store slice-assign without ever building
# a boolean mask.  Statements that bind variables compile only in
# unmasked position (k == L by construction), so the environment never
# holds a compressed array.

_CMP_UFUNC = simt_compile._CMP_UFUNC
_align = _Block._align


class _FCtx:
    """Per-kernel fuse-compilation state."""

    def __init__(self, parsed: ParsedProgram, kernel: c.CFunctionDef):
        self.parsed = parsed
        self.sctx = simt_compile._Ctx(parsed)
        self.uniform_names = _grid_uniform_names(kernel)
        qualified, sole_sites = _sole_store_sites(kernel)
        self.sole_names = qualified
        self.sole_sites = sole_sites


def _fuse_expr(e, fc: _FCtx):
    t = type(e)
    if t is c.CInt or t is c.CFloat:
        value = e.value
        return lambda b, k: value
    if t is c.CIdent:
        name = e.name

        def load_ident(b, k):
            try:
                v = b.env[name]
            except KeyError:
                raise ExecError(f"undefined identifier {name!r}") from None
            if (
                k != b.L
                and isinstance(v, np.ndarray)
                and v.shape[0] == b.L
            ):
                return v[:k]
            return v

        return load_ident
    if t is c.CBinOp:
        return _fuse_binop(e, fc)
    if t is c.CUnOp:
        if e.op != "-":
            raise _Unfusable(f"fused: unary operator {e.op}")
        operand = _fuse_expr(e.operand, fc)

        def negate(b, k):
            v = operand(b, k)
            if isinstance(v, Aff):
                return Aff(-v.base, -v.gs, -v.ls)
            return -v

        return negate
    if t is c.CIndex:
        base_c = _fuse_expr(e.base, fc)
        index_c = _fuse_expr(e.index, fc)

        def gather(b, k):
            bv = base_c(b, k)
            iv = index_c(b, k)
            if isinstance(bv, (VPtr, RowPtr)):
                return b.fused_gather(bv, iv, k)
            raise VectorUnsupported(f"fused: cannot index {bv!r}")

        return gather
    if t is c.CCall:
        return _fuse_call(e, fc)
    if t is c.CCast:
        operand = _fuse_expr(e.operand, fc)
        if e.type_name in ("int", "uint", "long"):

            def to_int(b, k):
                v = operand(b, k)
                if isinstance(v, Aff):
                    return v  # affine descriptors are already integer
                if isinstance(v, np.ndarray):
                    return v.astype(np.int64)
                return int(v)

            return to_int
        if e.type_name in ("float", "double"):

            def to_float(b, k):
                v = operand(b, k)
                if isinstance(v, Aff):
                    v = b.aff_values(v, k)
                if isinstance(v, np.ndarray):
                    return v.astype(np.float64)
                return float(v)

            return to_float
        return operand
    raise _Unfusable(f"fused: cannot compile expression {e!r}")


def _fuse_binop(e: c.CBinOp, fc: _FCtx):
    op = e.op
    if op == "&&" or op == "||":
        raise _Unfusable("fused: short-circuit operator")
    lhs = _fuse_expr(e.lhs, fc)
    rhs = _fuse_expr(e.rhs, fc)
    cmp = _CMP_UFUNC.get(op)
    if cmp is not None:

        def compare(b, k):
            l = lhs(b, k)
            r = rhs(b, k)
            b.counters.iops += k
            l = b.lanes_k(l, k)
            r = b.lanes_k(r, k)
            l, r = _align(l, r)
            return cmp(l, r)

        return compare
    value_of, count = simt_compile._binop_parts(op, type(e.rhs) is c.CInt)

    def arith(b, k):
        l = lhs(b, k)
        r = rhs(b, k)
        av = _aff_binop(op, l, r)
        if av is not None:
            count(b, l, r, k)  # Aff counts as an integer lane vector
            return av
        l = b.lanes_k(l, k)
        r = b.lanes_k(r, k)
        count(b, l, r, k)
        return value_of(b, l, r, True)

    return arith


def _fuse_call(e: c.CCall, fc: _FCtx):
    name = e.func
    if name.startswith("get_"):
        field = simt_compile._GEOMETRY_FIELDS.get(name)
        if field is None:
            raise _Unfusable(f"fused: unknown geometry builtin {name!r}")
        if not e.args:
            dim = 0
        elif type(e.args[0]) is c.CInt:
            dim = e.args[0].value
        else:
            raise _Unfusable("fused: dynamic geometry dimension")
        if name in _GEOM_GRID_UNIFORM:
            return lambda b, k: getattr(b, field)[dim]

        kind = name

        def geometry(b, k):
            if b._one_d and dim == 0:
                if kind == "get_global_id":
                    return Aff(0, b._lanes_per_group, 1)
                if kind == "get_local_id":
                    return Aff(0, 0, 1)
                return Aff(0, 1, 0)  # get_group_id
            arr = getattr(b, field)[dim]
            return arr if k == b.L else arr[:k]

        return geometry
    builtin = _VMATH.get(name)
    if builtin is not None and name not in simt._UNSUPPORTED_BUILTINS:
        cost, fn = builtin
        arg_cs = [_fuse_expr(a, fc) for a in e.args]

        def call(b, k):
            args = [b.lanes_k(ac(b, k), k) for ac in arg_cs]
            width = 1
            for a in args:
                if isinstance(a, np.ndarray) and a.ndim == 2:
                    width = a.shape[1]
                    break
            b.counters.flops += cost * width * k
            return fn(*args)

        return call
    raise _Unfusable(f"fused: call to {name!r}")


# -- conditions --------------------------------------------------------------

def _fuse_cond(e, fc: _FCtx):
    """Compile a branch condition to ``(b, k) -> (kind, value)`` with
    kind ``"u"`` (grid-uniform bool), ``"p"`` (prefix count), or
    ``"a"`` (length-k boolean array)."""
    if isinstance(e, c.CBinOp):
        cmpfn = _CMP_UFUNC.get(e.op)
        if cmpfn is not None:
            op = e.op
            lhs = _fuse_expr(e.lhs, fc)
            rhs = _fuse_expr(e.rhs, fc)
            lt_like = op in ("<", "<=")

            def cond_cmp(b, k):
                l = lhs(b, k)
                r = rhs(b, k)
                b.counters.iops += k
                if isinstance(l, Aff) and _is_int_uniform(r) and lt_like:
                    s = l.flat_stride(b._lanes_per_group)
                    if s is not None and s > 0:
                        bound = int(r) + (1 if op == "<=" else 0)
                        kk = -(-(bound - l.base) // s)  # ceil, s > 0
                        return "p", min(max(kk, 0), k)
                l2 = b.lanes_k(l, k)
                r2 = b.lanes_k(r, k)
                if _is_uniform(l2) and _is_uniform(r2):
                    return "u", bool(cmpfn(l2, r2))
                l2, r2 = _align(l2, r2)
                return "a", cmpfn(l2, r2)

            return cond_cmp
    expr = _fuse_expr(e, fc)

    def cond_any(b, k):
        v = expr(b, k)
        if isinstance(v, Aff):
            v = b.aff_values(v, k)
        if _is_uniform(v):
            return "u", bool(v)
        if isinstance(v, np.ndarray):
            if v.ndim != 1:
                raise VectorUnsupported("vector used in a scalar condition")
            return "a", v if v.dtype.kind == "b" else v != 0
        raise VectorUnsupported(f"cannot use {v!r} as a condition")

    return cond_any


# -- statements --------------------------------------------------------------

def _fuse_stmt(s, fc: _FCtx, masked: bool):
    t = type(s)
    if t is c.CBlock:
        fns = []
        for sub in s.stmts:
            fn = _fuse_stmt(sub, fc, masked)
            if fn is not None:
                fns.append(fn)
        if len(fns) == 1:
            return fns[0]

        def run_block(b, k):
            for fn in fns:
                fn(b, k)

        return run_block
    if t is c.CComment:
        return None
    if t is c.CAssign:
        if isinstance(s.target, c.CIndex):
            return _fuse_store(s, fc)
        if masked:
            raise _Unfusable("fused: variable binding under a mask")
        if isinstance(s.target, c.CIdent):
            return _fuse_assign_ident(s, fc)
        raise _Unfusable(f"fused: cannot assign to {s.target!r}")
    if t is c.CExprStmt:
        expr = _fuse_expr(s.expr, fc)

        def run_expr(b, k):
            expr(b, k)

        return run_expr
    if masked:
        raise _Unfusable(f"fused: {type(s).__name__} under a mask")
    if t is c.CDecl:
        return _fuse_decl(s, fc)
    if t is c.CFor:
        return _fuse_for(s, fc)
    if t is c.CIf:
        return _fuse_if(s, fc)
    if t is c.CBarrier:
        return _barrier_closure
    raise _Unfusable(f"fused: cannot compile statement {s!r}")


def _compound_value(s: c.CAssign, fc: _FCtx):
    """RHS closure for an assignment, folding compound operators the
    way the closure compiler does (same evaluation and count order)."""
    value_c = _fuse_expr(s.value, fc)
    if s.op == "=":
        return value_c
    op = s.op[0]
    current_c = _fuse_expr(s.target, fc)
    value_of, count = simt_compile._binop_parts(op, False)

    def compound(b, k):
        v = value_c(b, k)
        cur = current_c(b, k)
        av = _aff_binop(op, cur, v)
        if av is not None:
            count(b, cur, av, k)
            return av
        cur = b.lanes_k(cur, k)
        v = b.lanes_k(v, k)
        r = value_of(b, cur, v, True)
        count(b, cur, r, k)
        return r

    return compound


def _fuse_assign_ident(s: c.CAssign, fc: _FCtx):
    value_c = _compound_value(s, fc)
    name = s.target.name

    def assign(b, k):  # unmasked: k == L by construction
        b.env[name] = value_c(b, k)

    return assign


def _fuse_store(s: c.CAssign, fc: _FCtx):
    value_c = _compound_value(s, fc)
    target = s.target
    base_c = _fuse_expr(target.base, fc)
    index_c = _fuse_expr(target.index, fc)
    sole = id(s) in fc.sole_sites

    def store(b, k):
        v = value_c(b, k)
        bv = base_c(b, k)
        iv = index_c(b, k)
        if not isinstance(bv, (VPtr, RowPtr)):
            raise ExecError(f"indexed store into non-pointer {bv!r}")
        b.fused_scatter(bv, iv, v, k, sole)

    return store


def _fuse_decl(decl: c.CDecl, fc: _FCtx):
    name = decl.name
    if decl.qualifier == "local" and decl.array_size is not None:

        def check_local(b, k):
            if name not in b.env:
                raise ExecError(f"local buffer {name} was not pre-allocated")

        return check_local
    if decl.array_size is not None:
        dtype = (
            np.int64 if decl.type_name in ("int", "uint", "long")
            else np.float64
        )
        size = decl.array_size

        def alloc_private(b, k):
            b.env[name] = RowPtr(
                np.zeros((b.L, size), dtype=dtype), b._lane_ids, 0, "private"
            )

        return alloc_private
    if decl.init is not None:
        init_c = _fuse_expr(decl.init, fc)

        def declare_init(b, k):
            b.env[name] = init_c(b, k)

        return declare_init
    if fc.parsed.structs.get(decl.type_name) is not None:
        raise _Unfusable("fused: struct declaration")
    base_type = decl.type_name.rstrip("1234568")
    if base_type != decl.type_name and base_type in (
        "float", "int", "uint", "double"
    ):
        raise _Unfusable("fused: vector declaration")

    def declare_zero(b, k):
        b.env[name] = 0

    return declare_zero


def _static_grid_uniform_stmt(s, names) -> bool:
    if s is None:
        return True
    if isinstance(s, c.CDecl):
        return s.init is None or _guniform_expr(s.init, names)
    if isinstance(s, c.CAssign) and isinstance(s.target, c.CIdent):
        return _guniform_expr(s.value, names) and (
            s.op == "=" or s.target.name in names
        )
    return False


def _fuse_for(s: c.CFor, fc: _FCtx):
    names = fc.uniform_names
    if not (
        _static_grid_uniform_stmt(s.init, names)
        and (s.cond is None or _guniform_expr(s.cond, names))
        and _static_grid_uniform_stmt(s.step, names)
    ):
        raise _Unfusable("fused: lane-varying loop")
    init_c = _fuse_stmt(s.init, fc, masked=False) if s.init is not None else None
    cond_c = _fuse_expr(s.cond, fc) if s.cond is not None else None
    step_c = _fuse_stmt(s.step, fc, masked=False) if s.step is not None else None
    body_c = _fuse_stmt(s.body, fc, masked=False)
    if body_c is None:
        body_c = lambda b, k: None  # noqa: E731 - comment-only body

    def run_for(b, k):
        if init_c is not None:
            init_c(b, k)
        counters = b.counters
        while True:
            if cond_c is not None:
                cv = cond_c(b, k)
                if not _is_uniform(cv):
                    raise VectorUnsupported(
                        "fused: loop condition became lane-varying"
                    )
                if not cv:
                    break
            counters.loop_iterations += k
            body_c(b, k)
            if step_c is not None:
                step_c(b, k)

    return run_for


def _fuse_if(s: c.CIf, fc: _FCtx):
    cond_c = _fuse_cond(s.cond, fc)
    try:
        then_f = _fuse_stmt(s.then, fc, masked=True)
    except _Unfusable:
        then_f = None
    try:
        else_f = (
            _fuse_stmt(s.otherwise, fc, masked=True)
            if s.otherwise is not None
            else None
        )
        have_else_f = s.otherwise is not None
    except _Unfusable:
        else_f = None
        have_else_f = False
    # Generic closures for the array-mask path (and fused-refused
    # branches); compiled through the shared closure compiler so counts
    # and semantics match the blocked engine exactly.
    try:
        then_g = simt_compile._compile_stmt(s.then, fc.sctx, has_returns=False)
        else_g = (
            simt_compile._compile_stmt(s.otherwise, fc.sctx, has_returns=False)
            if s.otherwise is not None
            else None
        )
    except simt_compile.CompileUnsupported as exc:
        raise _Unfusable(str(exc)) from None
    has_else = s.otherwise is not None

    def run_then(b, k):
        if then_f is not None:
            then_f(b, k)
        elif then_g is not None:
            b.materialize_env()
            then_g(b, b.prefix_mask(k), k, b._fused_frame)

    def run_else(b, k):
        if have_else_f and else_f is not None:
            else_f(b, k)
        elif else_g is not None:
            b.materialize_env()
            else_g(b, b.prefix_mask(k), k, b._fused_frame)

    def run_if(b, k):
        b.counters.branches += k
        kind, val = cond_c(b, k)
        if kind == "p" and has_else:
            # The complement of a prefix is a suffix; fall back to the
            # boolean-mask path for if/else.
            arr = np.zeros(k, dtype=bool)
            arr[:val] = True
            kind, val = "a", arr
        if kind == "u":
            if val:
                run_then(b, k)
            elif has_else:
                run_else(b, k)
        elif kind == "p":
            if val:
                run_then(b, val)
        else:
            cv = val
            if k == b.L:
                cv_full = cv
                m = b._full
            else:
                cv_full = np.zeros(b.L, dtype=bool)
                cv_full[:k] = cv
                m = b.prefix_mask(k)
            mt = m & cv_full
            nt = int(np.count_nonzero(mt))
            b.materialize_env()
            if nt and then_g is not None:
                then_g(b, mt, nt, b._fused_frame)
            if else_g is not None and nt < k:
                mf = m & ~cv_full
                else_g(b, mf, k - nt, b._fused_frame)

    return run_if


# ---------------------------------------------------------------------------
# fused kernels and the backend
# ---------------------------------------------------------------------------

def _wrap_fused(stmt_c):
    """Adapt a fused statement closure to the segment signature shared
    with the generic pipeline closures."""

    def segment(b, m, n, frame):
        if stmt_c is not None:
            stmt_c(b, n)

    return segment


def _barrier_closure(b, k):
    b.counters.barriers += k
    b._segment += 1


class FusedKernel:
    """A kernel compiled for whole-grid execution: fused segments where
    the algebra allows, the shared closure-pipeline segments elsewhere."""

    __slots__ = (
        "kernel_name", "segments", "has_returns", "sole_names",
        "fused_segment_count",
    )

    def __init__(self, kernel_name, segments, has_returns, sole_names,
                 fused_segment_count):
        self.kernel_name = kernel_name
        self.segments = segments  # (kind, closure) per barrier segment
        self.has_returns = has_returns
        self.sole_names = sole_names
        self.fused_segment_count = fused_segment_count

    def execute(self, request: ExecutionRequest) -> bool:
        gsize, lsize = request.gsize, request.lsize
        total = request.total_work_items
        if total > FUSED_MAX_LANES:
            raise CompileUnsupported(
                f"launch of {total} work-items exceeds the whole-grid cap "
                f"({FUSED_MAX_LANES})"
            )
        parsed, kernel = request.parsed, request.kernel
        geometry = simt._block_geometry(gsize, lsize, whole_grid=True)
        geo = geometry["blocks"][0]
        group_row = geo["group_row"]

        written = written_pointer_roots(parsed, kernel)
        base_env = request.base_env
        arg_ids: dict = {}
        for v in base_env.values():
            if isinstance(v, Pointer):
                arg_ids[id(v.array)] = arg_ids.get(id(v.array), 0) + 1
        tracked = {
            id(v.array)
            for name, v in base_env.items()
            if isinstance(v, Pointer) and name in written
        }
        env: dict = {}
        sole_ids: set = set()
        for name, v in base_env.items():
            if isinstance(v, Pointer):
                env[name] = VPtr(v.array, v.offset, v.space)
                if name in self.sole_names and arg_ids[id(v.array)] == 1:
                    sole_ids.add(id(v.array))
            else:
                env[name] = v
        for decl in request.local_decls:
            dtype = (
                np.int64 if decl.type_name in ("int", "uint", "long")
                else np.float64
            )
            local_array = np.zeros(
                (geo["n_groups"], decl.array_size), dtype=dtype
            )
            env[decl.name] = RowPtr(local_array, group_row, 0, "local")
            if decl.name in written:
                tracked.add(id(local_array))
            if decl.name in self.sole_names:
                sole_ids.add(id(local_array))  # fresh array: never aliased

        staged = Counters()
        block = _GridBlock(
            parsed, staged, geo["lanes"], group_row, geo["lid"], geo["gid"],
            geo["group_ids"], gsize, lsize, geometry["num_groups"],
            seg_start=getattr(_pool_tls, "epoch", 0),
            tracked=tracked,
            lane_ids=geo["lane_ids"],
            full=geo["full"],
            sole_ids=frozenset(sole_ids),
            one_d=(
                lsize[1] == 1 and lsize[2] == 1
                and gsize[1] == 1 and gsize[2] == 1
            ),
        )
        block.env = env
        block._fused_frame = _Frame(block.L)

        prof = _obs_profile.ACTIVE
        if prof is not None:
            prof.begin_launch(kernel.name)
            for name, v in env.items():
                if isinstance(v, (VPtr, RowPtr)):
                    prof.map_buffer(v.array, name)

        snapshot: dict = {}
        for v in base_env.values():
            if isinstance(v, Pointer) and id(v.array) in tracked:
                if id(v.array) not in snapshot:
                    snapshot[id(v.array)] = (v.array, v.array.copy())
        try:
            with np.errstate(all="ignore"):
                frame = _Frame(block.L)
                m = block._full
                n = block.L
                for index, (kind, fn) in enumerate(self.segments):
                    if self.has_returns and frame.returned_any:
                        m = m & ~frame.ret_mask
                        n = int(np.count_nonzero(m))
                        if n == 0:
                            break
                    if kind == "generic":
                        block.materialize_env()
                    if prof is None:
                        fn(block, m, n, frame)
                    else:
                        before = dict(vars(block.counters))
                        loads0 = block._obs_load_events()
                        t0 = time.perf_counter()
                        fn(block, m, n, frame)
                        prof.record_segment(
                            index, kind, time.perf_counter() - t0
                        )
                        after = vars(block.counters)
                        deltas = {
                            k: after[k] - v
                            for k, v in before.items()
                            if after[k] != v
                        }
                        load_events = block._obs_load_events() - loads0
                        if load_events:
                            deltas["load_events"] = load_events
                        prof.record_segment_counters(index, kind, deltas)
                block._flush_load_log()
        except (VectorUnsupported, MemoryError):
            # MemoryError: the whole-grid layout multiplies per-lane
            # state (private arrays, temporaries) by the entire launch;
            # a failed allocation is a dynamic refusal like any other —
            # restore and let the blocked tiers run it in cache-sized
            # blocks.
            for array, saved in snapshot.values():
                array[:] = saved
            return False
        finally:
            _pool_tls.epoch = block._segment + 1
            _release_hazards(block._hazards)
        request.counters.merge_in(staged)
        request.counters.work_items += total
        return True


def _build_fused(
    parsed: ParsedProgram, kernel: c.CFunctionDef, pipeline
) -> FusedKernel:
    fc = _FCtx(parsed, kernel)
    entries: list = []
    current: list = []
    for stmt in kernel.body.stmts:
        if type(stmt) is c.CBarrier:
            if current:
                entries.append(current)
                current = []
            entries.append("barrier")
        else:
            current.append(stmt)
    if current or not entries:
        entries.append(current)
    if len(entries) != pipeline.segment_count:
        # The split above must mirror compile_kernel_pipeline's; if the
        # shared segmentation ever changes shape, decline instead of
        # pairing segments with the wrong closures.
        raise CompileUnsupported(
            "whole-grid segmentation no longer matches the closure pipeline"
        )

    segments: list = []
    fused_count = 0
    for i, entry in enumerate(entries):
        generic = pipeline.segments[i]
        if entry == "barrier":
            segments.append(("fused", _wrap_fused(_barrier_closure)))
        elif pipeline.has_returns:
            segments.append(("generic", generic))
        else:
            try:
                stmt_c = _fuse_stmt(c.CBlock(list(entry)), fc, masked=False)
            except _Unfusable:
                segments.append(("generic", generic))
            else:
                segments.append(("fused", _wrap_fused(stmt_c)))
                fused_count += 1
    return FusedKernel(
        kernel.name, segments, pipeline.has_returns,
        frozenset(fc.sole_names), fused_count,
    )


_fused_lock = threading.Lock()
_MISSING = object()


def get_fused_kernel(
    parsed: ParsedProgram, kernel: c.CFunctionDef
) -> Optional[FusedKernel]:
    """The whole-grid compilation of a kernel, or ``None`` when the
    static analysis / closure compiler refuse it.  Cached on the parsed
    program like the closure pipelines."""
    cache = getattr(parsed, "_fused_kernels", None)
    if cache is not None:
        entry = cache.get(kernel.name, _MISSING)
        if entry is not _MISSING:
            return entry
    with _fused_lock:
        cache = getattr(parsed, "_fused_kernels", None)
        if cache is None:
            cache = {}
            parsed._fused_kernels = cache
        entry = cache.get(kernel.name, _MISSING)
        if entry is not _MISSING:
            return entry
        fused: Optional[FusedKernel] = None
        if analyze_kernel(parsed, kernel) is None:
            pipeline = simt_compile.get_pipeline(parsed, kernel)
            if pipeline is not None:
                try:
                    fused = _build_fused(parsed, kernel, pipeline)
                except CompileUnsupported:
                    fused = None
        cache[kernel.name] = fused
        return fused


class FusedBackend(Backend):
    """Whole-grid fused-numpy execution (see the module docstring)."""

    name = "fused"
    dynamic_class = "grid"
    description = "whole-grid fused numpy array programs"

    def plan(self, parsed, kernel):
        fused = get_fused_kernel(parsed, kernel)
        if fused is None:
            reason = analyze_kernel(parsed, kernel) or "no closure pipeline"
            raise CompileUnsupported(reason)
        return fused

    def run(self, plan: FusedKernel, request: ExecutionRequest) -> bool:
        return plan.execute(request)


register_backend(FusedBackend())
register_engine(
    "fused",
    ("fused", "compiled", "interp", "scalar"),
    description="whole-grid fused numpy -> compiled -> interp -> scalar",
)
