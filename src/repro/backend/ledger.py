"""Degradation ledger: make silently-degraded runs observable.

A fallback chain (:meth:`repro.backend.registry.ResolvedChain.execute`)
is the right recovery mechanism for a backend that cannot run a kernel
— but before this ledger existed, a run that silently fell from the
fused tier all the way to the scalar reference looked *identical* to a
healthy one (that is the point of the bitwise contract) while being
orders of magnitude slower.  Every decline is now recorded here with
the engine name, the declining backend and a reason, so harnesses (the
benchsuite CLI, the chaos checker) can report exactly which tiers
degraded and why.

The ledger is deliberately **not** part of :class:`~repro.opencl.interp.Counters`:
counters obey the cross-backend bitwise-equality contract, and which
tier ultimately served a launch is precisely the thing that may differ
between engines without affecting results.

Decline kinds:

``static``
    ``plan``/``run`` raised :class:`~repro.backend.base.CompileUnsupported`
    before touching buffers.
``dynamic``
    ``run`` returned ``False`` after rolling buffers back (e.g. a
    cross-lane race detected mid-launch).
``crash``
    ``plan`` raised an unexpected exception; the chain shields the
    launch and falls through (the final member re-raises).
``fault``
    a deterministic injected fault (:mod:`repro.faultinject`,
    site ``backend-run``) declined the backend.
``breaker``
    an open circuit breaker (:mod:`repro.service.breaker`) skipped the
    backend without trying it — repeated crash/fault declines tripped
    it and the chain degraded to the next tier pre-emptively.
"""

from __future__ import annotations

import threading
from collections import Counter as _Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "DegradationEvent",
    "DegradationLedger",
    "LEDGER",
    "clear",
    "counts",
    "events",
    "format_snapshot",
    "record",
    "summary",
]

#: Cap on retained individual events (counts are kept exactly beyond it).
_MAX_EVENTS = 10_000

DECLINE_KINDS = ("static", "dynamic", "crash", "fault", "breaker")


@dataclass(frozen=True)
class DegradationEvent:
    """One backend declining one launch."""

    engine: str
    backend: str
    kind: str  # one of DECLINE_KINDS
    reason: str


class DegradationLedger:
    """Thread-safe record of backend declines (see module docstring)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[DegradationEvent] = []
        self._counts: _Counter = _Counter()
        self._dropped = 0

    def record(self, engine: str, backend: str, kind: str, reason: str) -> None:
        event = DegradationEvent(engine, backend, kind, reason)
        with self._lock:
            self._counts[(engine, backend, kind)] += 1
            if len(self._events) < _MAX_EVENTS:
                self._events.append(event)
            else:
                self._dropped += 1

    def events(self) -> Tuple[DegradationEvent, ...]:
        with self._lock:
            return tuple(self._events)

    def counts(self) -> Dict[Tuple[str, str, str], int]:
        """``(engine, backend, kind) -> count`` — exact even past the
        per-event cap."""
        with self._lock:
            return dict(self._counts)

    def total(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._counts.clear()
            self._dropped = 0

    def as_dict(self) -> dict:
        """JSON-serializable view for the metrics registry (repro.obs).

        The exact per-(engine, backend, kind) counts plus the retained
        event tail; :func:`format_snapshot` renders this back into the
        human digest, so the CLI and ``--metrics-json`` show the same
        data."""
        with self._lock:
            return {
                "total": sum(self._counts.values()),
                "dropped_events": self._dropped,
                "declines": [
                    {
                        "engine": engine,
                        "backend": backend,
                        "kind": kind,
                        "count": n,
                    }
                    for (engine, backend, kind), n
                    in sorted(self._counts.items())
                ],
                "events": [
                    {
                        "engine": e.engine,
                        "backend": e.backend,
                        "kind": e.kind,
                        "reason": e.reason,
                    }
                    for e in self._events
                ],
            }

    def summary(self) -> str:
        """Human-readable per-(engine, backend, kind) digest."""
        return format_snapshot(self.as_dict())

    def __len__(self) -> int:
        return self.total()


def format_snapshot(snapshot: dict) -> str:
    """Render a ledger ``as_dict()`` snapshot (e.g. pulled out of a
    ``repro.obs`` metrics document) as the CLI digest."""
    declines = snapshot.get("declines", [])
    if not declines:
        return "degradation ledger: empty (no backend declined)"
    lines = ["degradation ledger:"]
    for d in declines:
        lines.append(
            f"  engine {d['engine']!r}: backend {d['backend']!r} declined "
            f"{d['count']}x ({d['kind']})"
        )
    dropped = snapshot.get("dropped_events", 0)
    if dropped:
        lines.append(f"  [{dropped} events past the cap; counts exact]")
    return "\n".join(lines)


#: The process-global ledger every fallback chain records into.
LEDGER = DegradationLedger()


def record(engine: str, backend: str, kind: str, reason: str) -> None:
    LEDGER.record(engine, backend, kind, reason)


def events() -> Tuple[DegradationEvent, ...]:
    return LEDGER.events()


def counts() -> Dict[Tuple[str, str, str], int]:
    return LEDGER.counts()


def clear() -> None:
    LEDGER.clear()


def summary() -> str:
    return LEDGER.summary()
