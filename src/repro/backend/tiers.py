"""Backend adapters for the three original SIMT execution tiers.

These wrap the pre-existing engines behind the
:class:`~repro.backend.base.Backend` protocol:

* :class:`ScalarBackend` — the per-work-item reference interpreter of
  :mod:`repro.opencl.interp` (generators synchronizing at barriers);
  defines the semantics every other backend must reproduce bit for bit.
* :class:`InterpBackend` — the lane-batched interpretive walk of
  :mod:`repro.opencl.simt` (one block of work-groups per step).
* :class:`CompiledBackend` — the same block runtime driven by the
  closure pipeline of :mod:`repro.opencl.simt_compile`.

The module only *adapts*; all execution semantics live in the wrapped
modules.  The scalar group scheduler (formerly inlined in
``opencl.runtime.launch``) lives here because the scalar tier is its
only user.
"""

from __future__ import annotations

import numpy as np

from repro.compiler import cast as c
from repro.backend.base import Backend, CompileUnsupported, ExecutionRequest
from repro.backend.registry import register_backend, register_engine
from repro.opencl import simt, simt_compile
from repro.opencl.interp import (
    BarrierDivergence,
    LaunchContext,
    Pointer,
    WorkItem,
    _Return,
)

__all__ = ["ScalarBackend", "InterpBackend", "CompiledBackend"]


# ---------------------------------------------------------------------------
# scalar reference tier
# ---------------------------------------------------------------------------

def _item_driver(item: WorkItem, body: c.CBlock):
    try:
        yield from item.run_gen(body)
    except _Return:
        pass


def _run_group(
    ctx: LaunchContext,
    kernel: c.CFunctionDef,
    group_env: dict,
    group: tuple,
    lsize: tuple,
) -> None:
    generators = []
    for lz in range(lsize[2]):
        for ly in range(lsize[1]):
            for lx in range(lsize[0]):
                lid = (lx, ly, lz)
                gid = tuple(
                    group[d] * lsize[d] + lid[d] for d in range(3)
                )
                item = WorkItem(ctx, dict(group_env), gid, lid, group)
                generators.append(_item_driver(item, kernel.body))

    alive = list(generators)
    while alive:
        statuses = []
        still_alive = []
        for gen in alive:
            try:
                status = next(gen)
                statuses.append(status)
                still_alive.append(gen)
            except StopIteration:
                statuses.append("done")
        if still_alive and any(s == "done" for s in statuses):
            raise BarrierDivergence(
                "some work-items finished while others wait at a barrier"
            )
        alive = still_alive


class ScalarBackend(Backend):
    """The per-work-item reference interpreter; never refuses."""

    name = "scalar"
    dynamic_class = "scalar"
    description = "per-work-item reference interpreter"

    def plan(self, parsed, kernel):
        return None

    def run(self, plan, request: ExecutionRequest) -> bool:
        kernel = request.kernel
        gsize, lsize = request.gsize, request.lsize
        counters = request.counters
        ctx = LaunchContext(request.parsed, gsize, lsize, counters)
        num_groups = tuple(g // l for g, l in zip(gsize, lsize))
        items_per_group = lsize[0] * lsize[1] * lsize[2]
        for gz in range(num_groups[2]):
            for gy in range(num_groups[1]):
                for gx in range(num_groups[0]):
                    group = (gx, gy, gz)
                    group_env = dict(request.base_env)
                    for decl in request.local_decls:
                        dtype = (
                            np.int64
                            if decl.type_name in ("int", "uint", "long")
                            else np.float64
                        )
                        group_env[decl.name] = Pointer(
                            np.zeros(decl.array_size, dtype=dtype), 0, "local"
                        )
                    _run_group(ctx, kernel, group_env, group, lsize)
                    counters.work_items += items_per_group
        return True


# ---------------------------------------------------------------------------
# lane-batched tiers
# ---------------------------------------------------------------------------

class InterpBackend(Backend):
    """Lane-batched interpretive walk (blocked, AST per statement)."""

    name = "interp"
    dynamic_class = "blocked"
    description = "lane-batched interpretive vector walk"

    def plan(self, parsed, kernel):
        reason = simt.analyze_kernel(parsed, kernel)
        if reason is not None:
            raise CompileUnsupported(reason)
        return None

    def run(self, plan, request: ExecutionRequest) -> bool:
        return simt.try_launch(
            request.parsed, request.kernel, request.gsize, request.lsize,
            dict(request.base_env), request.local_decls, request.counters,
            strict=False, pipeline=plan,
        )


class CompiledBackend(InterpBackend):
    """Lane-batched runtime driven by the closure pipeline."""

    name = "compiled"
    dynamic_class = "blocked"
    description = "closure-compiled lane-batched pipeline"

    def plan(self, parsed, kernel):
        reason = simt.analyze_kernel(parsed, kernel)
        if reason is not None:
            raise CompileUnsupported(reason)
        pipeline = simt_compile.get_pipeline(parsed, kernel)
        if pipeline is None:
            raise CompileUnsupported(
                f"kernel {kernel.name!r} has no closure pipeline"
            )
        return pipeline


def _register_default_tiers() -> None:
    register_backend(ScalarBackend())
    register_backend(InterpBackend())
    register_backend(CompiledBackend())
    register_engine(
        "scalar", ("scalar",),
        description="reference interpreter only",
    )
    register_engine(
        "interp", ("interp",), strict=True,
        description="interpretive vector walk, strict",
    )
    register_engine(
        "compiled", ("compiled",), strict=True,
        description="closure pipeline, strict",
    )
    register_engine(
        "vector", ("compiled", "interp"), strict=True,
        description="lane-batched (compiled when possible), strict",
    )
    register_engine(
        "auto", ("compiled", "interp", "scalar"),
        description="compiled -> interpretive vector -> scalar",
    )


_register_default_tiers()
