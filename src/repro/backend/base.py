"""Common protocol of the pluggable execution backends.

A *backend* is one way of running a kernel launch on the simulated
device: the scalar reference interpreter, the lane-batched interpretive
walk, the closure-compiled pipeline, or the whole-grid fused-numpy
engine.  Every backend obeys one contract — **bitwise-identical buffer
contents and identical** :class:`~repro.opencl.interp.Counters` for
every launch it completes — so the launcher may pick any of them (and
fall through a chain of them) without observable differences beyond
speed.

The life cycle mirrors an OpenCL driver:

``plan``
    Compile/analyze the kernel once per parsed program.  Raises
    :class:`CompileUnsupported` when the backend cannot run this kernel
    at all (the launcher then falls through to the next backend in the
    chain).  Plans are cached by the backend on the parsed program
    object, which the runtime shares per source through an LRU.

``run``
    Execute one launch.  Returns ``True`` on success (buffers written,
    counters merged).  Returns ``False`` for a *dynamic* refusal — the
    backend noticed mid-launch that it cannot reproduce the scalar
    semantics (e.g. a cross-lane data race) and has already rolled the
    global buffers back to their pre-launch contents.  It may also
    raise :class:`CompileUnsupported` for launch-shape refusals that
    occur before any buffer is touched (e.g. the fused backend's
    whole-grid lane cap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

# The closure compiler's static-refusal exception doubles as the
# backend-level one: "this backend cannot run this kernel, try the next
# one".  Sharing the type keeps the fallback seam identical whether the
# refusal comes from closure compilation or from a backend adapter.
from repro.opencl.simt_compile import CompileUnsupported

__all__ = [
    "Backend",
    "CompileUnsupported",
    "ExecutionRequest",
]


@dataclass
class ExecutionRequest:
    """Everything one kernel launch needs, backend-independent.

    ``base_env`` maps parameter names to
    :class:`~repro.opencl.interp.Pointer` values (global buffers) or
    scalars; ``local_decls`` are the kernel's ``local`` array
    declarations (allocated per work-group by each backend in its own
    layout).  ``counters`` is the caller's accumulator — backends must
    only merge into it on success.
    """

    parsed: Any  # ParsedProgram
    kernel: Any  # c.CFunctionDef
    gsize: tuple
    lsize: tuple
    base_env: Mapping[str, Any]
    local_decls: Sequence
    counters: Any  # Counters

    @property
    def total_work_items(self) -> int:
        g = self.gsize
        return g[0] * g[1] * g[2]


class Backend:
    """Base class of the execution backends (see the module docstring).

    ``dynamic_class`` groups backends that share one dynamic-refusal
    behaviour: when a backend refuses a launch *dynamically*, trying
    another backend of the same class is pointless (it would detect the
    same condition), so the fallback chain skips ahead to the next
    class.  The lane-batched tiers (interpretive and compiled) share
    ``"blocked"``; the fused whole-grid engine is ``"grid"`` (its race
    detector sees cross-group conflicts the blocked tiers order by
    construction); the scalar reference is ``"scalar"`` and never
    refuses.
    """

    #: Registry name (also the ``launch(engine=...)`` spelling).
    name: str = ""
    #: Dynamic-refusal equivalence class (see above).
    dynamic_class: str = ""
    #: One-line description for the registry listing.
    description: str = ""

    def plan(self, parsed, kernel):
        """Prepare a kernel once; raise :class:`CompileUnsupported` to
        decline.  The returned object is passed back to :meth:`run`."""
        raise NotImplementedError

    def run(self, plan, request: ExecutionRequest) -> bool:
        """Execute one launch; ``False`` = dynamic refusal after
        rollback (see the module docstring)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<backend {self.name!r}>"
