"""Pluggable execution backends for the simulated OpenCL platform.

The paper's premise is one IR, many targets; this package is the
simulator-side seam for that: every way of executing a kernel launch is
a :class:`~repro.backend.base.Backend` behind a common
compile -> launch -> buffers + counters protocol, registered by name in
:mod:`repro.backend.registry`, and ``repro.opencl.launch`` resolves
``engine=`` / ``REPRO_SIM_ENGINE`` strings into fallback chains of
them.

Built-in backends: ``scalar`` (reference interpreter), ``interp``
(lane-batched interpretive walk), ``compiled`` (closure pipeline) —
both blocked — and ``fused`` (whole-grid fused numpy array programs,
:mod:`repro.backend.fused`).  All are bitwise-identical in buffer
contents and :class:`~repro.opencl.interp.Counters` on every launch
they complete; see ``src/repro/opencl/ENGINES.md``.
"""

from repro.backend.base import Backend, CompileUnsupported, ExecutionRequest
from repro.backend.ledger import LEDGER, DegradationEvent, DegradationLedger
from repro.backend.registry import (
    EngineSpec,
    ResolvedChain,
    backend_names,
    engine_names,
    get_backend,
    register_backend,
    register_engine,
    resolve,
)

# Importing the implementation modules populates the registry.
from repro.backend import tiers as _tiers  # noqa: F401
from repro.backend import fused as _fused  # noqa: F401
from repro.backend.fused import FusedBackend, FusedKernel, get_fused_kernel

__all__ = [
    "Backend",
    "CompileUnsupported",
    "DegradationEvent",
    "DegradationLedger",
    "EngineSpec",
    "LEDGER",
    "ExecutionRequest",
    "FusedBackend",
    "FusedKernel",
    "ResolvedChain",
    "backend_names",
    "engine_names",
    "get_backend",
    "get_fused_kernel",
    "register_backend",
    "register_engine",
    "resolve",
]
