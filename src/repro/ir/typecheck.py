"""Type analysis for Lift IR graphs (paper section 5.1).

Types of function bodies are inferred from parameter types by traversing
the graph following the data flow.  Every expression node is annotated in
place with its type; the same pass is re-run by the compiler after
rewrites.
"""

from __future__ import annotations

from typing import Sequence

from repro.types import DataType
from repro.ir.nodes import Expr, FunCall, FunDecl, Lambda, Literal, Param, UserFun
from repro.ir.patterns import LiftTypeError, Pattern


def infer_types(expr: Expr) -> DataType:
    """Infer and annotate the type of ``expr`` and everything below it.

    Parameters reachable from ``expr`` must already carry types (they are
    the roots of the data flow).
    """
    if expr.type is not None and not isinstance(expr, FunCall):
        return expr.type
    if isinstance(expr, Literal):
        assert expr.type is not None
        return expr.type
    if isinstance(expr, Param):
        if expr.type is None:
            raise LiftTypeError(f"parameter {expr.name} has no type")
        return expr.type
    if isinstance(expr, FunCall):
        arg_types = [infer_types(a) for a in expr.args]
        result = infer_fun_type(expr.f, arg_types, expr)
        expr.type = result
        return result
    raise LiftTypeError(f"cannot type {expr!r}")


def infer_fun_type(
    f: FunDecl, arg_types: Sequence[DataType], call: FunCall | None = None
) -> DataType:
    """Infer the result type of applying ``f`` to ``arg_types``."""
    if isinstance(f, Lambda):
        if len(f.params) != len(arg_types):
            raise LiftTypeError(
                f"lambda of {len(f.params)} parameter(s) applied to "
                f"{len(arg_types)} argument(s)"
            )
        for p, t in zip(f.params, arg_types):
            p.type = t
        return infer_types(f.body)
    if isinstance(f, UserFun):
        if len(arg_types) != len(f.in_types):
            raise LiftTypeError(
                f"user function {f.name} arity mismatch: "
                f"{len(arg_types)} vs {len(f.in_types)}"
            )
        for got, want in zip(arg_types, f.in_types):
            if got != want:
                raise LiftTypeError(
                    f"user function {f.name} expects {want}, got {got}"
                )
        return f.out_type
    if isinstance(f, Pattern):
        return f.infer_type(arg_types, call)  # type: ignore[arg-type]
    raise LiftTypeError(f"cannot infer type of call to {f!r}")
