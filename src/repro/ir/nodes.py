"""The Lift IR node classes (paper section 4, Figure 2).

Programs are graphs of two kinds of objects:

* :class:`Expr` — values: literals, parameters, and function calls;
* :class:`FunDecl` — things that can be called: lambdas, user functions
  and the built-in patterns (defined in :mod:`repro.ir.patterns`).

Compiler passes annotate expressions in place (``type``, ``addr_space``,
``mem``, ``view``), mirroring the mutable-graph design of the original
Scala implementation, which avoids wholesale renaming when transforming
functional programs.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.types import DataType

if TYPE_CHECKING:  # pragma: no cover
    from repro.compiler.memory import Memory
    from repro.compiler.views import View

_param_counter = itertools.count()


class AddressSpace(enum.Enum):
    """The three OpenCL address spaces (paper section 3.2)."""

    GLOBAL = "global"
    LOCAL = "local"
    PRIVATE = "private"

    def __str__(self) -> str:
        return self.value


class Expr:
    """Base class of IR expressions.

    ``type`` is filled in by type inference, ``addr_space`` by Algorithm 1,
    ``mem`` by memory allocation and ``view`` by the view construction that
    runs inside code generation.
    """

    __slots__ = ("type", "addr_space", "mem", "view")

    def __init__(self) -> None:
        self.type: Optional[DataType] = None
        self.addr_space: Optional[AddressSpace] = None
        self.mem: Optional["Memory"] = None
        self.view: Optional["View"] = None


class Literal(Expr):
    """A compile-time constant such as ``0.0f``."""

    __slots__ = ("value",)

    def __init__(self, value: float | int | str, type_: DataType):
        super().__init__()
        self.value = value
        self.type = type_

    def __repr__(self) -> str:
        return f"Literal({self.value})"


class Param(Expr):
    """A function parameter; its value is bound at each call site."""

    __slots__ = ("name",)

    def __init__(self, type_: Optional[DataType] = None, name: Optional[str] = None):
        super().__init__()
        self.type = type_
        self.name = name if name is not None else f"p_{next(_param_counter)}"

    def __repr__(self) -> str:
        return f"Param({self.name})"


class FunCall(Expr):
    """Application of a function declaration to argument expressions."""

    __slots__ = ("f", "args")

    def __init__(self, f: "FunDecl", args: Sequence[Expr]):
        super().__init__()
        if len(args) != f.arity:
            raise TypeError(
                f"{f} expects {f.arity} argument(s), got {len(args)}"
            )
        self.f = f
        self.args = tuple(args)

    def __repr__(self) -> str:
        return f"FunCall({self.f!r}, {len(self.args)} args)"


class FunDecl:
    """Base class of anything callable: lambdas, patterns, user functions."""

    __slots__ = ()

    arity: int = 1

    def __call__(self, *args: Expr) -> FunCall:
        return FunCall(self, args)

    def name_hint(self) -> str:
        return type(self).__name__


class Lambda(FunDecl):
    """An anonymous function with explicit parameters and a body."""

    __slots__ = ("params", "body")

    def __init__(self, params: Sequence[Param], body: Expr):
        self.params = tuple(params)
        self.body = body

    @property
    def arity(self) -> int:  # type: ignore[override]
        return len(self.params)

    def __repr__(self) -> str:
        names = ", ".join(p.name for p in self.params)
        return f"Lambda({names})"


class UserFun(FunDecl):
    """A user function: a C expression over scalar/vector/tuple values.

    ``body`` is the C function body (it must ``return`` a value); the code
    generator pastes it into the kernel as a helper function.  The Lift IL
    restricts user functions to non-array types (paper section 3.2).
    """

    __slots__ = ("name", "param_names", "body", "in_types", "out_type", "py")

    def __init__(
        self,
        name: str,
        param_names: Sequence[str],
        body: str,
        in_types: Sequence[DataType],
        out_type: DataType,
        py=None,
    ):
        from repro.types import ArrayType

        if len(param_names) != len(in_types):
            raise TypeError("UserFun parameter names and types differ in length")
        for t in tuple(in_types) + (out_type,):
            if isinstance(t, ArrayType):
                raise TypeError("user functions may not take or return arrays")
        self.name = name
        self.param_names = tuple(param_names)
        self.body = body
        self.in_types = tuple(in_types)
        self.out_type = out_type
        # Optional Python semantics, used by the reference interpreter for
        # differential testing against generated OpenCL code.
        self.py = py

    @property
    def arity(self) -> int:  # type: ignore[override]
        return len(self.in_types)

    def vectorized(self, width: int) -> "UserFun":
        """A vector-width-``width`` version of this function.

        OpenCL arithmetic is defined component-wise on vector types, so the
        same C body works as long as it only uses arithmetic operators and
        vector-capable built-ins (paper section 3.2, vectorize pattern).
        """
        from repro.types import ScalarType, VectorType

        def vec(t: DataType) -> DataType:
            if isinstance(t, ScalarType):
                return VectorType(t, width)
            return t

        vec_py = None
        if self.py is not None:
            scalar_py = self.py

            def vec_py(*args):  # noqa: F811 - deliberate conditional def
                from repro.ir.interp import VecValue

                lanes = []
                for lane in range(width):
                    lane_args = [
                        a.items[lane] if isinstance(a, VecValue) else a for a in args
                    ]
                    lanes.append(scalar_py(*lane_args))
                return VecValue(lanes)

        return UserFun(
            f"{self.name}{width}",
            self.param_names,
            self.body,
            [vec(t) for t in self.in_types],
            vec(self.out_type),
            py=vec_py,
        )

    def name_hint(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"UserFun({self.name})"


class Pattern(FunDecl):
    """Base class of the built-in algorithmic and data-layout patterns."""

    __slots__ = ()

    def infer_type(self, arg_types: Sequence[DataType], call: FunCall) -> DataType:
        raise NotImplementedError(f"{type(self).__name__} has no type rule")


def iter_args(expr: Expr) -> Iterable[Expr]:
    """The direct argument expressions of a call (empty otherwise)."""
    if isinstance(expr, FunCall):
        return expr.args
    return ()
