"""Reference interpreter for the Lift IL.

Executes a Lift IR graph directly on Python values, giving the patterns
their paper semantics (section 3.2).  It is deliberately simple and slow;
its purpose is *differential testing*: for every benchmark, the NumPy
oracle, this interpreter, and the generated OpenCL kernel executed on the
simulator must all agree.

Values are represented as:

* scalars — Python ``float``/``int``;
* tuples — Python ``tuple``;
* arrays — Python ``list`` (nested for multi-dimensional arrays);
* vectors — :class:`VecValue` (distinct from arrays on purpose).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.arith import simplify
from repro.ir.nodes import Expr, FunCall, FunDecl, Lambda, Literal, Param, UserFun
from repro.ir import patterns as pat


class VecValue:
    """An OpenCL vector value of fixed width."""

    __slots__ = ("items",)

    def __init__(self, items):
        self.items = tuple(items)

    @property
    def width(self) -> int:
        return len(self.items)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VecValue) and other.items == self.items

    def __repr__(self) -> str:
        return f"VecValue{self.items}"


class Evaluator:
    """Evaluates IR expressions given parameter bindings.

    ``size_env`` supplies integer values for free size variables (``N``,
    tile sizes...) appearing in pattern parameters such as ``split`` or
    ``iterate`` counts.
    """

    def __init__(self, size_env: Mapping[str, int] | None = None):
        self.size_env = dict(size_env or {})

    # -- helpers ---------------------------------------------------------
    def _int(self, e) -> int:
        value = simplify(e).evaluate(self.size_env)
        return int(value)

    # -- expression evaluation -------------------------------------------
    def eval_expr(self, expr: Expr, env: Mapping[Param, Any]) -> Any:
        if isinstance(expr, Literal):
            from repro.types import VectorType

            if isinstance(expr.type, VectorType):
                # Vector literals broadcast, as in OpenCL: (float4)(0.0f).
                return VecValue([expr.value] * expr.type.width)
            return expr.value
        if isinstance(expr, Param):
            try:
                return env[expr]
            except KeyError:
                raise KeyError(f"unbound parameter {expr.name}") from None
        if isinstance(expr, FunCall):
            args = [self.eval_expr(a, env) for a in expr.args]
            return self.apply(expr.f, args, env)
        raise TypeError(f"cannot evaluate {expr!r}")

    # -- function application ---------------------------------------------
    def apply(self, f: FunDecl, args: list, env: Mapping[Param, Any]) -> Any:
        if isinstance(f, Lambda):
            inner = dict(env)
            for p, a in zip(f.params, args):
                inner[p] = a
            return self.eval_expr(f.body, inner)

        if isinstance(f, UserFun):
            if f.py is None:
                raise NotImplementedError(
                    f"user function {f.name} has no Python semantics"
                )
            return f.py(*args)

        if isinstance(f, pat.AbstractMap):
            (xs,) = args
            return [self.apply(f.f, [x], env) for x in xs]

        if isinstance(f, pat.ReduceSeq):  # covers Reduce as well
            init, xs = args
            acc = init
            for x in xs:
                acc = self.apply(f.f, [acc, x], env)
            return [acc]

        if isinstance(f, pat.Iterate):
            (xs,) = args
            result = xs
            for _ in range(self._int(f.n)):
                result = self.apply(f.f, [result], env)
            return result

        if isinstance(f, pat.Split):
            (xs,) = args
            k = self._int(f.n)
            if len(xs) % k:
                raise ValueError(f"split({k}) of array of length {len(xs)}")
            return [xs[i : i + k] for i in range(0, len(xs), k)]

        if isinstance(f, pat.Join):
            (xs,) = args
            return [x for chunk in xs for x in chunk]

        if isinstance(f, pat.Gather):
            (xs,) = args
            n = len(xs)
            return [xs[f.idx_fun.eval(i, n)] for i in range(n)]

        if isinstance(f, pat.Scatter):
            (xs,) = args
            n = len(xs)
            out = [None] * n
            for i, x in enumerate(xs):
                out[f.idx_fun.eval(i, n)] = x
            return out

        if isinstance(f, pat.Transpose):
            (xs,) = args
            return [list(col) for col in zip(*xs)]

        if isinstance(f, pat.Zip):
            length = len(args[0])
            for a in args[1:]:
                if len(a) != length:
                    raise ValueError("zip of arrays with different lengths")
            return [tuple(items) for items in zip(*args)]

        if isinstance(f, pat.Get):
            (t,) = args
            return t[f.index]

        if isinstance(f, pat.MakeTuple):
            return tuple(args)

        if isinstance(f, pat.Head):
            (xs,) = args
            return xs[0]

        if isinstance(f, pat.Filter):
            data, idx = args
            return [data[int(j)] for j in idx]

        if isinstance(f, pat.Slide):
            (xs,) = args
            size, step = self._int(f.size), self._int(f.step)
            count = (len(xs) - size) // step + 1
            return [xs[i * step : i * step + size] for i in range(count)]

        if isinstance(f, pat.Pad):
            (xs,) = args
            return [xs[0]] * f.left + list(xs) + [xs[-1]] * f.right

        if isinstance(f, pat.AddressSpaceWrapper):
            return self.apply(f.f, args, env)

        if isinstance(f, pat.AsVector):
            (xs,) = args
            w = f.width
            if len(xs) % w:
                raise ValueError(f"asVector({w}) of array of length {len(xs)}")
            return [VecValue(xs[i : i + w]) for i in range(0, len(xs), w)]

        if isinstance(f, pat.AsScalar):
            (xs,) = args
            return [lane for v in xs for lane in v.items]

        raise NotImplementedError(f"no interpreter semantics for {f!r}")


def evaluate(
    expr: Expr,
    bindings: Mapping[Param, Any],
    size_env: Mapping[str, int] | None = None,
) -> Any:
    """Evaluate an IR expression with the given parameter bindings."""
    return Evaluator(size_env).eval_expr(expr, dict(bindings))


def apply_fun(
    f: FunDecl,
    args: list,
    size_env: Mapping[str, int] | None = None,
) -> Any:
    """Apply a function declaration to Python values."""
    return Evaluator(size_env).apply(f, list(args), {})
