"""The Lift IL patterns (paper section 3.2).

Algorithmic patterns
    ``mapSeq``, ``reduceSeq``, ``iterate`` (plus the high-level ``map`` and
    ``reduce`` that the rewrite system lowers).

Data-layout patterns
    ``split``, ``join``, ``gather``, ``scatter``, ``zip``, ``get``,
    ``slide``, ``transpose``, ``pad`` — they perform no computation and
    compile to *views* instead of memory operations.

Parallel patterns
    ``mapGlb``/``mapWrg``/``mapLcl`` in up to three dimensions.

Address-space patterns
    ``toGlobal``, ``toLocal``, ``toPrivate``.

Vectorization patterns
    ``asVector``, ``asScalar`` and vectorized user functions.

Each pattern implements its dependent-type rule in :meth:`infer_type`;
the driver lives in :mod:`repro.ir.typecheck`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.arith import ArithExpr, Cst, Range, Var, simplify
from repro.arith.expr import substitute, to_expr
from repro.types import (
    ArrayType,
    DataType,
    ScalarType,
    TupleType,
    VectorType,
)
from repro.ir.nodes import (
    AddressSpace,
    Expr,
    FunCall,
    FunDecl,
    Lambda,
    Param,
    Pattern,
    UserFun,
)


class LiftTypeError(TypeError):
    """A Lift IL program failed to type check."""


def ensure_lambda(f: FunDecl, arity: int = 1) -> FunDecl:
    """Canonicalize a nested function to a lambda.

    In the IR graph every application point is an explicit ``FunCall``
    node (paper Figure 3: each map's ``f`` is a ``Lambda1`` whose body is
    a call chain); compiler passes hang their annotations on those nodes.
    ``mapSeq(id)`` therefore becomes ``mapSeq(λp. id(p))``.
    """
    if isinstance(f, Lambda):
        return f
    if isinstance(f, AddressSpaceWrapper):
        # The wrapper itself is transparent; canonicalize what it wraps.
        return type(f)(ensure_lambda(f.f, arity))  # type: ignore[call-arg]
    params = [Param() for _ in range(arity)]
    return Lambda(params, FunCall(f, params))


def _expect_array(t: DataType, who: str) -> ArrayType:
    if not isinstance(t, ArrayType):
        raise LiftTypeError(f"{who} expects an array, got {t}")
    return t


def _infer_fun(f: FunDecl, arg_types: Sequence[DataType]) -> DataType:
    """Infer the result type of applying ``f`` to values of ``arg_types``."""
    from repro.ir.typecheck import infer_fun_type

    return infer_fun_type(f, arg_types)


def _mul_exact(a: ArithExpr, b: ArithExpr) -> ArithExpr:
    """Multiply two array lengths knowing divisions were exact.

    ``split``/``asVector`` require their factor to divide the array length
    (the paper's types assume this implicitly), so when ``join`` multiplies
    the lengths back, ``(n / k) * k`` recombines to ``n``.  This knowledge
    belongs to the *type rules*; the general simplifier must not assume it
    because index expressions use true floor division.
    """
    from repro.arith.expr import IntDiv

    a, b = simplify(a), simplify(b)
    if isinstance(a, IntDiv) and simplify(a.denom) == b:
        return a.numer
    if isinstance(b, IntDiv) and simplify(b.denom) == a:
        return b.numer
    return simplify(a * b)


# ---------------------------------------------------------------------------
# algorithmic patterns
# ---------------------------------------------------------------------------

class AbstractMap(Pattern):
    """Common behaviour of every map variant."""

    __slots__ = ("f",)

    arity = 1

    def __init__(self, f: FunDecl):
        self.f = ensure_lambda(f, arity=1)

    def infer_type(self, arg_types: Sequence[DataType], call: FunCall) -> DataType:
        arr = _expect_array(arg_types[0], type(self).__name__)
        out_elem = _infer_fun(self.f, [arr.elem])
        return ArrayType(out_elem, arr.length)


class Map(AbstractMap):
    """The high-level, implementation-agnostic map (lowered by rewriting)."""


class MapSeq(AbstractMap):
    """Sequential map: a plain loop in the generated code."""


class MapSeqUnroll(MapSeq):
    """Sequential map emitted as straight-line code (no loop).

    A first-class pattern in the real Lift code base; unrolling lets the
    arithmetic simplifier fold the (now constant) iteration index into
    every array access.  Requires a compile-time trip count.
    """


class ParallelMap(AbstractMap):
    """A map whose iterations execute in parallel across OpenCL threads."""

    __slots__ = ("dim",)

    def __init__(self, f: FunDecl, dim: int = 0):
        super().__init__(f)
        if dim not in (0, 1, 2):
            raise ValueError("OpenCL supports dimensions 0, 1, 2")
        self.dim = dim


class MapGlb(ParallelMap):
    """Map over global threads (flat parallelism)."""


class MapWrg(ParallelMap):
    """Map over work groups; its body must contain a mapLcl."""


class MapLcl(ParallelMap):
    """Map over the local threads of a work group."""


class ReduceSeq(Pattern):
    """Sequential reduction with an explicit initial value.

    Call convention: ``FunCall(ReduceSeq(f), [init, array])``; the result
    is a one-element array, matching the paper's semantics.
    """

    __slots__ = ("f",)

    arity = 2

    def __init__(self, f: FunDecl):
        self.f = ensure_lambda(f, arity=2)

    def infer_type(self, arg_types: Sequence[DataType], call: FunCall) -> DataType:
        init_t = arg_types[0]
        arr = _expect_array(arg_types[1], "reduceSeq")
        out_t = _infer_fun(self.f, [init_t, arr.elem])
        if out_t != init_t:
            raise LiftTypeError(
                f"reduction function returns {out_t}, expected accumulator type {init_t}"
            )
        return ArrayType(init_t, Cst(1))


class ReduceSeqUnroll(ReduceSeq):
    """Sequential reduction emitted as straight-line code (no loop);
    see :class:`MapSeqUnroll`."""


class Reduce(ReduceSeq):
    """High-level reduction (requires associativity; lowered by rewriting)."""


class Iterate(Pattern):
    """Apply ``f`` a number of times, feeding each output back as input.

    The output length is inferred as a closed form of the per-iteration
    length change ``g`` (paper section 3.2): ``g(n) = n`` stays ``n``,
    ``g(n) = n / k`` becomes ``n / k^m`` and ``g(n) = n * k`` becomes
    ``n * k^m``; other shapes are unrolled when ``m`` is concrete.
    """

    __slots__ = ("n", "f")

    arity = 1

    def __init__(self, n: ArithExpr | int, f: FunDecl):
        self.n = to_expr(n)
        self.f = ensure_lambda(f, arity=1)

    def infer_type(self, arg_types: Sequence[DataType], call: FunCall) -> DataType:
        arr = _expect_array(arg_types[0], "iterate")
        length_var = Var.fresh("itr_n", Range.natural())
        probe = _infer_fun(self.f, [ArrayType(arr.elem, length_var)])
        probe_arr = _expect_array(probe, "iterate body result")
        if probe_arr.elem != arr.elem:
            raise LiftTypeError("iterate body must preserve the element type")
        out_len = self.closed_form_length(probe_arr.length, length_var, arr.length)
        return ArrayType(arr.elem, out_len)

    def closed_form_length(
        self, g_of_n: ArithExpr, n_var: Var, n0: ArithExpr
    ) -> ArithExpr:
        """Length after ``self.n`` applications of the map ``n -> g(n)``."""
        from repro.arith.expr import IntDiv, Prod

        g = simplify(g_of_n)
        if g == n_var:
            return n0
        # g(n) = n / k   ->   n0 / k^m
        if isinstance(g, IntDiv) and g.numer == n_var:
            return simplify(n0 // (g.denom ** self.n))
        # g(n) = n * k   ->   n0 * k^m
        if isinstance(g, Prod) and n_var in g.factors:
            rest = list(g.factors)
            rest.remove(n_var)
            k = rest[0] if len(rest) == 1 else Prod(rest)
            return simplify(n0 * (simplify(k) ** self.n))
        m = self.n.try_int()
        if m is None:
            raise LiftTypeError(
                f"cannot find a closed form for iterate length change {g_of_n}"
            )
        length = n0
        for _ in range(m):
            length = simplify(substitute(g, {n_var: length}))
        return length


# ---------------------------------------------------------------------------
# data-layout patterns
# ---------------------------------------------------------------------------

class Split(Pattern):
    """Add a dimension: ``[T]_n  ->  [[T]_k]_{n/k}``."""

    __slots__ = ("n",)

    def __init__(self, n: ArithExpr | int):
        self.n = to_expr(n)

    def infer_type(self, arg_types: Sequence[DataType], call: FunCall) -> DataType:
        arr = _expect_array(arg_types[0], "split")
        return ArrayType(ArrayType(arr.elem, self.n), simplify(arr.length // self.n))


class Join(Pattern):
    """Remove a dimension: ``[[T]_m]_n  ->  [T]_{n*m}``."""

    def infer_type(self, arg_types: Sequence[DataType], call: FunCall) -> DataType:
        outer = _expect_array(arg_types[0], "join")
        inner = _expect_array(outer.elem, "join")
        return ArrayType(inner.elem, _mul_exact(outer.length, inner.length))


class IndexFun:
    """A permutation on array indices used by gather and scatter.

    ``apply`` maps a symbolic index (plus the array length) to a new
    symbolic index; the same function evaluated on integers drives the
    reference interpreter.
    """

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[ArithExpr, ArithExpr], ArithExpr]):
        self.name = name
        self.fn = fn

    def apply(self, i: ArithExpr, n: ArithExpr) -> ArithExpr:
        return self.fn(i, n)

    def eval(self, i: int, n: int) -> int:
        result = self.fn(Cst(i), Cst(n))
        value = simplify(result).try_int()
        if value is None:
            raise ValueError(f"index function {self.name} did not evaluate")
        return value

    def __repr__(self) -> str:
        return f"IndexFun({self.name})"


def reverse_indices() -> IndexFun:
    return IndexFun("reverse", lambda i, n: n - i - 1)


def shift_indices(k: int) -> IndexFun:
    return IndexFun(f"shift({k})", lambda i, n: (i + Cst(k)) % n)


def transpose_indices(rows: ArithExpr | int, cols: ArithExpr | int) -> IndexFun:
    """The permutation of the paper's matrix-transposition example:
    ``i -> (i mod rows) * cols + i / rows`` on the flattened array."""
    r, c = to_expr(rows), to_expr(cols)

    def fn(i: ArithExpr, n: ArithExpr) -> ArithExpr:
        from repro.arith.expr import IntDiv, Mod, Prod, Sum

        return Sum([Prod([Mod(i, r), c]), IntDiv(i, r)])

    return IndexFun(f"transpose({r},{c})", fn)


def stride_indices(s: ArithExpr | int) -> IndexFun:
    """Strided reordering used for coalescing: ``i -> (i * s) mod n +
    (i * s) / n`` — a column-major walk over an ``n/s x s`` grid."""
    stride = to_expr(s)

    def fn(i: ArithExpr, n: ArithExpr) -> ArithExpr:
        from repro.arith.expr import IntDiv, Mod, Prod, Sum

        return Sum([Mod(Prod([i, stride]), n), IntDiv(Prod([i, stride]), n)])

    return IndexFun(f"stride({stride})", fn)


class Gather(Pattern):
    """Remap indices when *reading*: ``gather(f, xs)[i] = xs[f(i)]``."""

    __slots__ = ("idx_fun",)

    def __init__(self, idx_fun: IndexFun):
        self.idx_fun = idx_fun

    def infer_type(self, arg_types: Sequence[DataType], call: FunCall) -> DataType:
        arr = _expect_array(arg_types[0], "gather")
        return arr


class Scatter(Pattern):
    """Remap indices when *writing*: ``scatter(f, xs)[f(i)] = xs[i]``."""

    __slots__ = ("idx_fun",)

    def __init__(self, idx_fun: IndexFun):
        self.idx_fun = idx_fun

    def infer_type(self, arg_types: Sequence[DataType], call: FunCall) -> DataType:
        arr = _expect_array(arg_types[0], "scatter")
        return arr


class Transpose(Pattern):
    """Swap the two outermost dimensions (first-class in the Lift code
    base; equivalent to the split/gather/join composition of section 3.2).
    """

    def infer_type(self, arg_types: Sequence[DataType], call: FunCall) -> DataType:
        outer = _expect_array(arg_types[0], "transpose")
        inner = _expect_array(outer.elem, "transpose")
        return ArrayType(ArrayType(inner.elem, outer.length), inner.length)


class Zip(Pattern):
    """Combine arrays element-wise into an array of tuples."""

    __slots__ = ("n",)

    def __init__(self, n: int = 2):
        if n < 2:
            raise ValueError("zip needs at least two arrays")
        self.n = n

    @property
    def arity(self) -> int:  # type: ignore[override]
        return self.n

    def infer_type(self, arg_types: Sequence[DataType], call: FunCall) -> DataType:
        arrays = [_expect_array(t, "zip") for t in arg_types]
        length = arrays[0].length
        for other in arrays[1:]:
            if simplify(other.length) != simplify(length):
                raise LiftTypeError(
                    f"zip requires equal lengths, got {length} and {other.length}"
                )
        return ArrayType(TupleType([a.elem for a in arrays]), length)


class Get(Pattern):
    """Project the ``i``-th component out of a tuple value."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def infer_type(self, arg_types: Sequence[DataType], call: FunCall) -> DataType:
        t = arg_types[0]
        if not isinstance(t, TupleType):
            raise LiftTypeError(f"get expects a tuple, got {t}")
        if not 0 <= self.index < len(t.elems):
            raise LiftTypeError(f"tuple index {self.index} out of range for {t}")
        return t.elems[self.index]


class MakeTuple(Pattern):
    """Build a tuple value from components (used for reduce accumulators)."""

    __slots__ = ("n",)

    def __init__(self, n: int = 2):
        self.n = n

    @property
    def arity(self) -> int:  # type: ignore[override]
        return self.n

    def infer_type(self, arg_types: Sequence[DataType], call: FunCall) -> DataType:
        return TupleType(list(arg_types))


class Head(Pattern):
    """The first element of an array (as a view; present in real Lift)."""

    def infer_type(self, arg_types: Sequence[DataType], call: FunCall) -> DataType:
        arr = _expect_array(arg_types[0], "head")
        return arr.elem


class Filter(Pattern):
    """Data-dependent gather: ``filter(data, indices)[i] = data[indices[i]]``.

    Present in the real Lift code base; the SHOC MD benchmark uses it for
    neighbour-list indirection.  The indices array has integer type.
    """

    arity = 2

    def infer_type(self, arg_types: Sequence[DataType], call: FunCall) -> DataType:
        data = _expect_array(arg_types[0], "filter")
        idx = _expect_array(arg_types[1], "filter")
        if not isinstance(idx.elem, ScalarType) or idx.elem.name not in ("int", "float"):
            raise LiftTypeError(f"filter indices must be scalars, got {idx.elem}")
        return ArrayType(data.elem, idx.length)


class Slide(Pattern):
    """Overlapping windows for stencils: ``[T]_n -> [[T]_size]_count``
    with ``count = (n - size) / step + 1``."""

    __slots__ = ("size", "step")

    def __init__(self, size: ArithExpr | int, step: ArithExpr | int):
        self.size = to_expr(size)
        self.step = to_expr(step)

    def infer_type(self, arg_types: Sequence[DataType], call: FunCall) -> DataType:
        arr = _expect_array(arg_types[0], "slide")
        count = simplify((arr.length - self.size) // self.step + Cst(1))
        return ArrayType(ArrayType(arr.elem, self.size), count)


class Pad(Pattern):
    """Virtually extend an array at both ends (clamped boundary)."""

    __slots__ = ("left", "right")

    def __init__(self, left: int, right: int):
        self.left = left
        self.right = right

    def infer_type(self, arg_types: Sequence[DataType], call: FunCall) -> DataType:
        arr = _expect_array(arg_types[0], "pad")
        return ArrayType(arr.elem, simplify(arr.length + Cst(self.left + self.right)))


# ---------------------------------------------------------------------------
# address-space patterns
# ---------------------------------------------------------------------------

class AddressSpaceWrapper(Pattern):
    """``toGlobal``/``toLocal``/``toPrivate``: wrap a function so its
    output lands in a chosen address space (paper section 3.2)."""

    __slots__ = ("f", "space")

    def __init__(self, f: FunDecl, space: AddressSpace):
        self.f = f
        self.space = space

    @property
    def arity(self) -> int:  # type: ignore[override]
        return self.f.arity

    def infer_type(self, arg_types: Sequence[DataType], call: FunCall) -> DataType:
        return _infer_fun(self.f, arg_types)


class ToGlobal(AddressSpaceWrapper):
    def __init__(self, f: FunDecl):
        super().__init__(f, AddressSpace.GLOBAL)


class ToLocal(AddressSpaceWrapper):
    def __init__(self, f: FunDecl):
        super().__init__(f, AddressSpace.LOCAL)


class ToPrivate(AddressSpaceWrapper):
    def __init__(self, f: FunDecl):
        super().__init__(f, AddressSpace.PRIVATE)


# ---------------------------------------------------------------------------
# vectorization patterns
# ---------------------------------------------------------------------------

class AsVector(Pattern):
    """Reinterpret ``[S]_n`` as ``[S<w>]_{n/w}``."""

    __slots__ = ("width",)

    def __init__(self, width: int):
        self.width = width

    def infer_type(self, arg_types: Sequence[DataType], call: FunCall) -> DataType:
        arr = _expect_array(arg_types[0], "asVector")
        if not isinstance(arr.elem, ScalarType):
            raise LiftTypeError(f"asVector expects scalars, got {arr.elem}")
        return ArrayType(
            VectorType(arr.elem, self.width), simplify(arr.length // Cst(self.width))
        )


class AsScalar(Pattern):
    """Reinterpret ``[S<w>]_n`` as ``[S]_{n*w}``."""

    def infer_type(self, arg_types: Sequence[DataType], call: FunCall) -> DataType:
        arr = _expect_array(arg_types[0], "asScalar")
        if not isinstance(arr.elem, VectorType):
            raise LiftTypeError(f"asScalar expects vectors, got {arr.elem}")
        return ArrayType(arr.elem.elem, _mul_exact(arr.length, Cst(arr.elem.width)))


def vectorize(uf: UserFun, width: int) -> UserFun:
    """The paper's ``mapVec``/vectorize transformation for user functions."""
    return uf.vectorized(width)
