"""Ergonomic builders for writing Lift IL programs in Python.

The paper writes programs as compositions read right-to-left::

    (join o mapWrg0(...) o split128)(zip(x, y))

The DSL offers both that style (:func:`compose`) and a left-to-right
pipeline (:func:`pipe`).  Pattern builders follow the paper's names with
snake_case (``map_wrg``, ``reduce_seq``, ``to_local`` ...).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.arith import ArithExpr
from repro.types import DataType, FLOAT, INT, ScalarType, VectorType
from repro.ir.nodes import (
    Expr,
    FunCall,
    FunDecl,
    Lambda,
    Literal,
    Param,
    UserFun,
)
from repro.ir.patterns import (
    AsScalar,
    AsVector,
    Gather,
    Get,
    IndexFun,
    Iterate,
    Join,
    MakeTuple,
    Map,
    MapGlb,
    MapLcl,
    MapSeq,
    MapWrg,
    Pad,
    Reduce,
    ReduceSeq,
    Scatter,
    Slide,
    Split,
    ToGlobal,
    ToLocal,
    ToPrivate,
    Transpose,
    Zip,
)


# ---------------------------------------------------------------------------
# function-level combinators
# ---------------------------------------------------------------------------

def lam(fn: Callable[..., Expr], arity: int = 1) -> Lambda:
    """Build a lambda from a Python function over parameter nodes."""
    params = [Param() for _ in range(arity)]
    return Lambda(params, fn(*params))


def lam2(fn: Callable[[Param, Param], Expr]) -> Lambda:
    return lam(fn, arity=2)


def compose(*fs: FunDecl) -> FunDecl:
    """Right-to-left composition: ``compose(f, g)(x) = f(g(x))``."""
    if not fs:
        raise ValueError("compose requires at least one function")
    if len(fs) == 1:
        return fs[0]
    p = Param()
    body: Expr = p
    for f in reversed(fs):
        body = FunCall(f, [body])
    return Lambda([p], body)


def pipe(x: Expr, *fs: FunDecl) -> Expr:
    """Left-to-right application: ``pipe(x, f, g) = g(f(x))``."""
    result = x
    for f in fs:
        result = FunCall(f, [result])
    return result


# ---------------------------------------------------------------------------
# pattern builders
# ---------------------------------------------------------------------------

def map_(f: FunDecl) -> Map:
    return Map(f)


def map_seq(f: FunDecl) -> MapSeq:
    return MapSeq(f)


def map_seq_unroll(f: FunDecl):
    from repro.ir.patterns import MapSeqUnroll

    return MapSeqUnroll(f)


def map_glb(f: FunDecl, dim: int = 0) -> MapGlb:
    return MapGlb(f, dim)


def map_wrg(f: FunDecl, dim: int = 0) -> MapWrg:
    return MapWrg(f, dim)


def map_lcl(f: FunDecl, dim: int = 0) -> MapLcl:
    return MapLcl(f, dim)


def reduce_seq(f: FunDecl, init: Expr) -> Lambda:
    """Partially applied sequential reduction: returns a unary function."""
    p = Param()
    return Lambda([p], FunCall(ReduceSeq(f), [init, p]))


def reduce_seq_unroll(f: FunDecl, init: Expr) -> Lambda:
    """Unrolled sequential reduction (requires a concrete length)."""
    from repro.ir.patterns import ReduceSeqUnroll

    p = Param()
    return Lambda([p], FunCall(ReduceSeqUnroll(f), [init, p]))


def reduce_(f: FunDecl, init: Expr) -> Lambda:
    p = Param()
    return Lambda([p], FunCall(Reduce(f), [init, p]))


def iterate(n: ArithExpr | int, f: FunDecl) -> Iterate:
    return Iterate(n, f)


def split(n: ArithExpr | int) -> Split:
    return Split(n)


def join() -> Join:
    return Join()


def gather(idx_fun: IndexFun) -> Gather:
    return Gather(idx_fun)


def scatter(idx_fun: IndexFun) -> Scatter:
    return Scatter(idx_fun)


def transpose() -> Transpose:
    return Transpose()


def slide(size: ArithExpr | int, step: ArithExpr | int) -> Slide:
    return Slide(size, step)


def pad(left: int, right: int) -> Pad:
    return Pad(left, right)


def head(arr: Expr) -> FunCall:
    from repro.ir.patterns import Head

    return FunCall(Head(), [arr])


def zip_(*arrays: Expr) -> FunCall:
    return FunCall(Zip(len(arrays)), arrays)


def get(tup: Expr, index: int) -> FunCall:
    return FunCall(Get(index), [tup])


def make_tuple(*components: Expr) -> FunCall:
    return FunCall(MakeTuple(len(components)), components)


def to_global(f: FunDecl) -> ToGlobal:
    return ToGlobal(f)


def to_local(f: FunDecl) -> ToLocal:
    return ToLocal(f)


def to_private(f: FunDecl) -> ToPrivate:
    return ToPrivate(f)


def as_vector(width: int) -> AsVector:
    return AsVector(width)


def as_scalar() -> AsScalar:
    return AsScalar()


# ---------------------------------------------------------------------------
# literals
# ---------------------------------------------------------------------------

def f32(value: float) -> Literal:
    return Literal(float(value), FLOAT)


def i32(value: int) -> Literal:
    return Literal(int(value), INT)


def vec_literal(value: float, width: int, elem: ScalarType = FLOAT) -> Literal:
    return Literal(float(value), VectorType(elem, width))


# ---------------------------------------------------------------------------
# common user functions
# ---------------------------------------------------------------------------

def id_fun(t: DataType = FLOAT) -> UserFun:
    """The identity user function (used for copies, paper Listing 1)."""
    return UserFun("id", ["x"], "return x;", [t], t, py=lambda x: x)


def add(t: DataType = FLOAT) -> UserFun:
    return UserFun("add", ["a", "b"], "return a + b;", [t, t], t, py=lambda a, b: a + b)


def mult(t: DataType = FLOAT) -> UserFun:
    return UserFun("mult", ["a", "b"], "return a * b;", [t, t], t, py=lambda a, b: a * b)


def sub_fun(t: DataType = FLOAT) -> UserFun:
    return UserFun("subtract", ["a", "b"], "return a - b;", [t, t], t, py=lambda a, b: a - b)


def mult_and_sum_up(t: DataType = FLOAT) -> UserFun:
    """acc + x*y — the inner operation of dot product (paper Listing 1)."""
    return UserFun(
        "multAndSumUp",
        ["acc", "x", "y"],
        "return acc + x * y;",
        [t, t, t],
        t,
        py=lambda acc, x, y: acc + x * y,
    )


def square(t: DataType = FLOAT) -> UserFun:
    return UserFun("square", ["x"], "return x * x;", [t], t, py=lambda x: x * x)


def zero_literal(t: DataType = FLOAT) -> Literal:
    return Literal(0.0 if t == FLOAT else 0, t)
