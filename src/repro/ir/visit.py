"""Traversal and rebuilding utilities for IR graphs.

The rewrite system and several compiler passes need to walk expression
graphs, collect nodes, and build modified copies.  Because expressions
carry mutable annotations, rewriting always *clones* — a rewritten program
shares no ``Expr`` nodes with its source, so annotations never leak
between versions.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.ir.nodes import Expr, FunCall, FunDecl, Lambda, Literal, Param, UserFun
from repro.ir import patterns as pat


def post_order(expr: Expr) -> Iterator[Expr]:
    """Yield every expression below (and including) ``expr``, arguments
    first.  Lambda bodies of called functions are visited too."""
    if isinstance(expr, FunCall):
        for a in expr.args:
            yield from post_order(a)
        for inner in _decl_bodies(expr.f):
            yield from post_order(inner)
    yield expr


def _decl_bodies(f: FunDecl) -> Iterator[Expr]:
    if isinstance(f, Lambda):
        yield f.body
    elif isinstance(f, pat.AddressSpaceWrapper):
        yield from _decl_bodies(f.f)
    elif isinstance(f, (pat.AbstractMap, pat.ReduceSeq, pat.Iterate)):
        yield from _decl_bodies(f.f)


def count_nodes(expr: Expr) -> int:
    return sum(1 for _ in post_order(expr))


def clone_expr(expr: Expr, mapping: dict[Param, Expr] | None = None) -> Expr:
    """Deep-copy an expression graph, replacing parameters per ``mapping``.

    Fresh ``Param`` objects are created for parameters of nested lambdas so
    the clone shares no mutable node with the original.
    """
    mapping = dict(mapping or {})

    def go_expr(e: Expr) -> Expr:
        if isinstance(e, Literal):
            return Literal(e.value, e.type)  # type: ignore[arg-type]
        if isinstance(e, Param):
            replacement = mapping.get(e)
            if replacement is not None:
                return replacement
            # Free parameter (program input): keep identity.
            return e
        if isinstance(e, FunCall):
            return FunCall(go_decl(e.f), [go_expr(a) for a in e.args])
        raise TypeError(f"cannot clone {e!r}")

    def go_decl(f: FunDecl) -> FunDecl:
        if isinstance(f, Lambda):
            fresh = [Param(p.type, p.name) for p in f.params]
            for old, new in zip(f.params, fresh):
                mapping[old] = new
            body = go_expr(f.body)
            for old in f.params:
                del mapping[old]
            return Lambda(fresh, body)
        if isinstance(f, UserFun):
            return f  # immutable, safe to share
        if isinstance(f, pat.Map):
            return pat.Map(go_decl(f.f))
        if isinstance(f, pat.MapSeqUnroll):
            return pat.MapSeqUnroll(go_decl(f.f))
        if isinstance(f, pat.MapSeq):
            return pat.MapSeq(go_decl(f.f))
        if isinstance(f, pat.MapGlb):
            return pat.MapGlb(go_decl(f.f), f.dim)
        if isinstance(f, pat.MapWrg):
            return pat.MapWrg(go_decl(f.f), f.dim)
        if isinstance(f, pat.MapLcl):
            return pat.MapLcl(go_decl(f.f), f.dim)
        if isinstance(f, pat.Reduce):
            return pat.Reduce(go_decl(f.f))
        if isinstance(f, pat.ReduceSeqUnroll):
            return pat.ReduceSeqUnroll(go_decl(f.f))
        if isinstance(f, pat.ReduceSeq):
            return pat.ReduceSeq(go_decl(f.f))
        if isinstance(f, pat.Iterate):
            return pat.Iterate(f.n, go_decl(f.f))
        if isinstance(f, pat.ToGlobal):
            return pat.ToGlobal(go_decl(f.f))
        if isinstance(f, pat.ToLocal):
            return pat.ToLocal(go_decl(f.f))
        if isinstance(f, pat.ToPrivate):
            return pat.ToPrivate(go_decl(f.f))
        # Leaf patterns carry no function and no mutable state.
        return f

    return go_expr(expr)


def clone_decl(f: FunDecl) -> FunDecl:
    """Deep-copy a function declaration (see :func:`clone_expr`)."""
    if isinstance(f, Lambda):
        fresh = [Param(p.type, p.name) for p in f.params]
        body = clone_expr(f.body, dict(zip(f.params, fresh)))
        return Lambda(fresh, body)
    dummy = Param()
    cloned_call = clone_expr(FunCall(f, [dummy] * f.arity))
    assert isinstance(cloned_call, FunCall)
    return cloned_call.f


def transform_calls(
    expr: Expr, fn: Callable[[FunCall], Expr | None]
) -> Expr:
    """Bottom-up rebuild: ``fn`` may replace any ``FunCall`` node.

    ``fn`` receives a freshly cloned call whose arguments have already been
    transformed; returning ``None`` keeps the call unchanged.
    """

    def go_expr(e: Expr) -> Expr:
        if isinstance(e, Literal):
            return Literal(e.value, e.type)  # type: ignore[arg-type]
        if isinstance(e, Param):
            return e
        if isinstance(e, FunCall):
            rebuilt = FunCall(_go_decl(e.f), [go_expr(a) for a in e.args])
            replaced = fn(rebuilt)
            return rebuilt if replaced is None else replaced
        raise TypeError(f"cannot transform {e!r}")

    def _go_decl(f: FunDecl) -> FunDecl:
        if isinstance(f, Lambda):
            return Lambda(list(f.params), go_expr(f.body))
        if isinstance(f, pat.Map):
            return pat.Map(_go_decl(f.f))
        if isinstance(f, pat.MapSeqUnroll):
            return pat.MapSeqUnroll(_go_decl(f.f))
        if isinstance(f, pat.MapSeq):
            return pat.MapSeq(_go_decl(f.f))
        if isinstance(f, pat.MapGlb):
            return pat.MapGlb(_go_decl(f.f), f.dim)
        if isinstance(f, pat.MapWrg):
            return pat.MapWrg(_go_decl(f.f), f.dim)
        if isinstance(f, pat.MapLcl):
            return pat.MapLcl(_go_decl(f.f), f.dim)
        if isinstance(f, pat.Reduce):
            return pat.Reduce(_go_decl(f.f))
        if isinstance(f, pat.ReduceSeqUnroll):
            return pat.ReduceSeqUnroll(_go_decl(f.f))
        if isinstance(f, pat.ReduceSeq):
            return pat.ReduceSeq(_go_decl(f.f))
        if isinstance(f, pat.Iterate):
            return pat.Iterate(f.n, _go_decl(f.f))
        if isinstance(f, pat.ToGlobal):
            return pat.ToGlobal(_go_decl(f.f))
        if isinstance(f, pat.ToLocal):
            return pat.ToLocal(_go_decl(f.f))
        if isinstance(f, pat.ToPrivate):
            return pat.ToPrivate(_go_decl(f.f))
        return f

    return go_expr(expr)
