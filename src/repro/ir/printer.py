"""Pretty-printer for Lift IL programs.

Renders programs in the paper's notation (Listing 1 style): one pattern
application per line with composition written ``o``.  The printed form is
what the Table 1 reproduction counts as "lines of Lift IL code".
"""

from __future__ import annotations

from repro.ir.nodes import Expr, FunCall, FunDecl, Lambda, Literal, Param, UserFun
from repro.ir import patterns as pat


def print_expr(expr: Expr, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(expr, Literal):
        return f"{pad}{expr.value}"
    if isinstance(expr, Param):
        return f"{pad}{expr.name}"
    if isinstance(expr, FunCall):
        f_str = print_decl(expr.f, indent)
        args = ", ".join(print_expr(a, 0).strip() for a in expr.args)
        if "\n" in f_str:
            return f"{f_str}(\n{pad}  {args})"
        return f"{pad}{f_str.strip()}({args})"
    raise TypeError(f"cannot print {expr!r}")


def print_decl(f: FunDecl, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(f, Lambda):
        names = ", ".join(p.name for p in f.params)
        body = print_expr(f.body, indent + 1)
        return f"{pad}λ {names} .\n{body}"
    if isinstance(f, UserFun):
        return f"{pad}{f.name}"
    if isinstance(f, pat.MapSeqUnroll):
        return f"{pad}mapSeqUnroll({print_decl(f.f).strip()})"
    if isinstance(f, pat.MapSeq):
        return f"{pad}mapSeq({print_decl(f.f).strip()})"
    if isinstance(f, pat.MapGlb):
        return f"{pad}mapGlb{f.dim}({print_decl(f.f).strip()})"
    if isinstance(f, pat.MapWrg):
        return f"{pad}mapWrg{f.dim}({print_decl(f.f).strip()})"
    if isinstance(f, pat.MapLcl):
        return f"{pad}mapLcl{f.dim}({print_decl(f.f).strip()})"
    if isinstance(f, pat.Map):
        return f"{pad}map({print_decl(f.f).strip()})"
    if isinstance(f, pat.Reduce):
        return f"{pad}reduce({print_decl(f.f).strip()})"
    if isinstance(f, pat.ReduceSeqUnroll):
        return f"{pad}reduceSeqUnroll({print_decl(f.f).strip()})"
    if isinstance(f, pat.ReduceSeq):
        return f"{pad}reduceSeq({print_decl(f.f).strip()})"
    if isinstance(f, pat.Iterate):
        return f"{pad}iterate{f.n}({print_decl(f.f).strip()})"
    if isinstance(f, pat.Split):
        return f"{pad}split{f.n}"
    if isinstance(f, pat.Join):
        return f"{pad}join"
    if isinstance(f, pat.Gather):
        return f"{pad}gather({f.idx_fun.name})"
    if isinstance(f, pat.Scatter):
        return f"{pad}scatter({f.idx_fun.name})"
    if isinstance(f, pat.Transpose):
        return f"{pad}transpose"
    if isinstance(f, pat.Zip):
        return f"{pad}zip"
    if isinstance(f, pat.Get):
        return f"{pad}get{f.index}"
    if isinstance(f, pat.MakeTuple):
        return f"{pad}tuple"
    if isinstance(f, pat.Slide):
        return f"{pad}slide({f.size},{f.step})"
    if isinstance(f, pat.Pad):
        return f"{pad}pad({f.left},{f.right})"
    if isinstance(f, pat.ToGlobal):
        return f"{pad}toGlobal({print_decl(f.f).strip()})"
    if isinstance(f, pat.ToLocal):
        return f"{pad}toLocal({print_decl(f.f).strip()})"
    if isinstance(f, pat.ToPrivate):
        return f"{pad}toPrivate({print_decl(f.f).strip()})"
    if isinstance(f, pat.AsVector):
        return f"{pad}asVector{f.width}"
    if isinstance(f, pat.AsScalar):
        return f"{pad}asScalar"
    return f"{pad}{f.name_hint()}"


def program_lines(f: FunDecl) -> int:
    """Lines of Lift IL code for a program, Listing-1 style.

    Counts one line per pattern application in a composition chain, which
    matches how the paper's listings are formatted.
    """
    text = print_decl(f)
    # A composition chain prints as a single long line; split on pattern
    # boundaries the way the paper lays out Listing 1.
    lines = 0
    for raw in text.splitlines():
        stripped = raw.strip()
        if not stripped:
            continue
        # Long composition chains count as multiple lines, ~60 chars each
        # (the paper's listings wrap around that width).
        lines += max(1, (len(stripped) + 59) // 60)
    return lines
