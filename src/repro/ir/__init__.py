"""The Lift intermediate representation (paper sections 3 and 4)."""

from repro.ir.nodes import (
    AddressSpace,
    Expr,
    FunCall,
    FunDecl,
    Lambda,
    Literal,
    Param,
    Pattern,
    UserFun,
)
from repro.ir.typecheck import infer_fun_type, infer_types
from repro.ir.structural import canonical, structural_eq, structural_hash

__all__ = [
    "canonical",
    "structural_eq",
    "structural_hash",
    "AddressSpace",
    "Expr",
    "FunCall",
    "FunDecl",
    "Lambda",
    "Literal",
    "Param",
    "Pattern",
    "UserFun",
    "infer_fun_type",
    "infer_types",
]
