"""The Lift intermediate representation (paper sections 3 and 4)."""

from repro.ir.nodes import (
    AddressSpace,
    Expr,
    FunCall,
    FunDecl,
    Lambda,
    Literal,
    Param,
    Pattern,
    UserFun,
)
from repro.ir.typecheck import infer_fun_type, infer_types

__all__ = [
    "AddressSpace",
    "Expr",
    "FunCall",
    "FunDecl",
    "Lambda",
    "Literal",
    "Param",
    "Pattern",
    "UserFun",
    "infer_fun_type",
    "infer_types",
]
