"""Structural hashing and equality for Lift IR graphs.

The rewrite-space explorer enumerates thousands of candidate programs;
telling two of them apart must not depend on the *names* of lambda
parameters (every ``clone_expr``/``clone_decl`` invents fresh ``Param``
objects) nor on Python object identity.  This module gives every IR
graph a canonical textual form:

* bound parameters are numbered de-Bruijn-style in binding order, so
  alpha-equivalent programs canonicalize identically;
* free parameters (program inputs) are numbered by first occurrence,
  which is stable under cloning (clones share free ``Param`` objects);
* patterns serialize their static payload (split factor, dimension,
  vector width, index-function name, ...);
* arithmetic expressions use their structural ``str`` form (``Var``
  equality is by name, matching :mod:`repro.arith`);
* user functions serialize name, parameter names, C body and types —
  two independently constructed ``id`` functions are equal.

``structural_hash`` digests the canonical form with SHA-256, giving a
process-independent key (Python's built-in ``hash`` is salted per
process) that the persistent :mod:`repro.cache` store can use on disk.
Canonical strings are interned, so repeated hashing of equal programs
(the explorer's dedup loop) reuses one string object per class.
"""

from __future__ import annotations

import hashlib
import sys
from typing import Union

from repro.arith import ArithExpr
from repro.ir.nodes import Expr, FunCall, FunDecl, Lambda, Literal, Param, UserFun
from repro.ir import patterns as pat

Node = Union[Expr, FunDecl]


class _Canonicalizer:
    def __init__(self) -> None:
        self.bound: dict[int, int] = {}  # id(Param) -> de Bruijn number
        self.free: dict[int, tuple] = {}  # id(Param) -> (number, param)
        self.next_bound = 0

    # -- expressions -----------------------------------------------------
    def expr(self, e: Expr) -> str:
        if isinstance(e, Literal):
            return f"(lit {e.value!r}:{e.type})"
        if isinstance(e, Param):
            number = self.bound.get(id(e))
            if number is not None:
                return f"(b{number})"
            entry = self.free.get(id(e))
            if entry is None:
                entry = (len(self.free), e)
                self.free[id(e)] = entry
            return f"(free{entry[0]})"
        if isinstance(e, FunCall):
            args = " ".join(self.expr(a) for a in e.args)
            return f"(call {self.decl(e.f)} {args})"
        raise TypeError(f"cannot canonicalize {e!r}")

    # -- declarations ----------------------------------------------------
    def decl(self, f: FunDecl) -> str:
        if isinstance(f, Lambda):
            numbers = []
            for p in f.params:
                self.bound[id(p)] = self.next_bound
                numbers.append(self.next_bound)
                self.next_bound += 1
            body = self.expr(f.body)
            types = ",".join(str(p.type) for p in f.params)
            for p in f.params:
                del self.bound[id(p)]
            return f"(lam [{types}] {body})"
        if isinstance(f, UserFun):
            sig = ",".join(str(t) for t in f.in_types)
            return (
                f"(uf {f.name} [{','.join(f.param_names)}] "
                f"{f.body!r} [{sig}]->{f.out_type})"
            )
        if isinstance(f, pat.AddressSpaceWrapper):
            return f"(to:{f.space} {self.decl(f.f)})"
        if isinstance(f, pat.ParallelMap):
            return f"({type(f).__name__}:{f.dim} {self.decl(f.f)})"
        if isinstance(f, pat.AbstractMap):
            return f"({type(f).__name__} {self.decl(f.f)})"
        if isinstance(f, pat.ReduceSeq):  # covers Reduce/ReduceSeqUnroll
            return f"({type(f).__name__} {self.decl(f.f)})"
        if isinstance(f, pat.Iterate):
            return f"(Iterate:{f.n} {self.decl(f.f)})"
        if isinstance(f, pat.Split):
            return f"(Split:{f.n})"
        if isinstance(f, pat.Gather):
            return f"(Gather:{f.idx_fun.name})"
        if isinstance(f, pat.Scatter):
            return f"(Scatter:{f.idx_fun.name})"
        if isinstance(f, pat.Zip):
            return f"(Zip:{f.n})"
        if isinstance(f, pat.Get):
            return f"(Get:{f.index})"
        if isinstance(f, pat.MakeTuple):
            return f"(MakeTuple:{f.n})"
        if isinstance(f, pat.Slide):
            return f"(Slide:{f.size}:{f.step})"
        if isinstance(f, pat.Pad):
            return f"(Pad:{f.left}:{f.right})"
        if isinstance(f, pat.AsVector):
            return f"(AsVector:{f.width})"
        if isinstance(f, pat.Filter):
            return "(Filter)"
        # Leaf patterns without payload: Join, Transpose, AsScalar, Head...
        return f"({type(f).__name__})"


def canonical(node: Node) -> str:
    """The canonical (alpha-equivalence-respecting) form of a graph."""
    c = _Canonicalizer()
    if isinstance(node, Expr):
        text = c.expr(node)
    elif isinstance(node, FunDecl):
        text = c.decl(node)
    else:
        raise TypeError(f"cannot canonicalize {node!r}")
    return sys.intern(text)


def structural_eq(a: Node, b: Node) -> bool:
    """Alpha-equivalence: equal up to parameter naming and cloning."""
    return canonical(a) == canonical(b)


def structural_hash(node: Node) -> str:
    """A process-independent SHA-256 digest of the canonical form.

    Suitable as an on-disk content address; equal for alpha-equivalent
    programs, different (modulo hash collisions) otherwise.
    """
    return hashlib.sha256(canonical(node).encode("utf-8")).hexdigest()


def arith_hash(e: ArithExpr) -> str:
    """Digest of an arithmetic expression (used in composite cache keys)."""
    return hashlib.sha256(str(e).encode("utf-8")).hexdigest()
