"""Symbolic simplification of arithmetic expressions.

Implements the paper's algebraic rules (section 5.3):

    (1)  x / y = 0                      if 0 <= x < y
    (2)  (x * y + z) / y = x + z / y    if y > 0
    (3)  x mod y = x                    if 0 <= x < y
    (4)  (x / y) * y + x mod y = x      if y > 0
    (5)  (x * y) mod y = 0              if y > 0
    (6)  (x + y) mod z = (x mod z + y mod z) mod z

together with the canonicalizations that make them fire: sums and products
are flattened, constants folded, like terms collected, and products
distributed over sums.  Side conditions such as ``x < y`` are discharged
with the range information variables carry (section 5.1): bounds of an
expression are computed by substituting each variable's range limits and
re-simplifying, then compared structurally.

All divisors are assumed positive — array lengths and split factors in the
Lift type system are natural numbers, which is exactly the domain knowledge
a generic C compiler lacks (the paper's matrix-transposition example).
"""

from __future__ import annotations

import math
import threading as _threading
from collections import OrderedDict
from typing import Iterable, Sequence

from repro.arith.expr import (
    ArithExpr,
    Cst,
    IntDiv,
    LoadIndex,
    Log2,
    Mod,
    Pow,
    Prod,
    Sum,
    Var,
    to_expr,
)

ZERO = Cst(0)
ONE = Cst(1)

# Re-entrancy guard: while proving side conditions we must not apply the
# range-based rules again (bounds are themselves simplified expressions),
# otherwise proofs could recurse without end.  The depth is thread-local:
# the rewrite-space explorer compiles candidates on a worker pool, and a
# shared counter would race (a lost update permanently disables the memo
# gate below; a cross-thread read could cache a depth-truncated result).
_tls = _threading.local()
_MAX_PROOF_DEPTH = 6


def _proof_depth() -> int:
    return getattr(_tls, "proof_depth", 0)


def _proof_enter() -> None:
    _tls.proof_depth = _proof_depth() + 1


def _proof_exit() -> None:
    _tls.proof_depth = _proof_depth() - 1


# ---------------------------------------------------------------------------
# memoization
# ---------------------------------------------------------------------------
#
# The compiler re-simplifies identical view-index expressions many times
# per kernel, and ``prove_lt`` re-discharges the same bounds proofs.
# Expression nodes are hash-consed (:mod:`repro.arith.expr`): a
# structurally identical expression — *including* variable ranges, which
# ``Var.__eq__`` deliberately ignores but the intern key folds in — is
# the same object, so the memo tables key by identity.  Entries pin the
# keyed expressions (cache values hold strong references), which keeps
# their ``id`` valid for exactly as long as the entry lives; the ``is``
# check on lookup makes id recycling harmless either way.  Results
# computed under a non-zero proof depth are *not* cached (they may have
# been cut short by the depth guard).

_SIMPLIFY_CACHE: "OrderedDict[int, tuple]" = OrderedDict()
_PROVE_LT_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_CACHE_SIZE = 4096
#: Guards the two OrderedDicts (get + move_to_end is not atomic; a
#: concurrent eviction would raise KeyError under the explorer's pool).
_CACHE_LOCK = _threading.Lock()


def _cache_put(cache: OrderedDict, key, value) -> None:
    with _CACHE_LOCK:
        cache[key] = value
        while len(cache) > _CACHE_SIZE:
            cache.popitem(last=False)


def _cache_get(cache: OrderedDict, key):
    with _CACHE_LOCK:
        value = cache.get(key)
        if value is not None:
            cache.move_to_end(key)
        return value


def clear_caches() -> None:
    """Drop the memoized simplification and proof results."""
    with _CACHE_LOCK:
        _SIMPLIFY_CACHE.clear()
        _PROVE_LT_CACHE.clear()


# ---------------------------------------------------------------------------
# term/factor decomposition helpers
# ---------------------------------------------------------------------------

def _as_factors(expr: ArithExpr) -> tuple[int, tuple[ArithExpr, ...]]:
    """Split an expression into (integer coefficient, sorted atom factors)."""
    if isinstance(expr, Cst):
        return expr.value, ()
    if isinstance(expr, Prod):
        coeff = 1
        atoms: list[ArithExpr] = []
        for f in expr.factors:
            if isinstance(f, Cst):
                coeff *= f.value
            else:
                atoms.append(f)
        atoms.sort(key=lambda a: a.sort_key())
        return coeff, tuple(atoms)
    return 1, (expr,)


def _from_factors(coeff: int, atoms: Sequence[ArithExpr]) -> ArithExpr:
    if coeff == 0:
        return ZERO
    parts: list[ArithExpr] = list(atoms)
    if not parts:
        return Cst(coeff)
    if coeff != 1:
        parts = [Cst(coeff)] + parts
    if len(parts) == 1:
        return parts[0]
    return Prod(parts)


def _as_terms(expr: ArithExpr) -> list[ArithExpr]:
    if isinstance(expr, Sum):
        return list(expr.terms)
    return [expr]


# ---------------------------------------------------------------------------
# smart constructors
# ---------------------------------------------------------------------------

def sum_of(terms: Iterable[ArithExpr]) -> ArithExpr:
    """Build a canonical, simplified sum."""
    # Flatten nested sums and fold constants.
    flat: list[ArithExpr] = []
    for t in terms:
        flat.extend(_as_terms(t))

    const = 0
    by_atoms: dict[tuple[ArithExpr, ...], int] = {}
    for t in flat:
        coeff, atoms = _as_factors(t)
        if not atoms:
            const += coeff
        else:
            by_atoms[atoms] = by_atoms.get(atoms, 0) + coeff

    by_atoms = {a: c for a, c in by_atoms.items() if c != 0}
    by_atoms = _apply_div_mod_recomposition(by_atoms)

    result: list[ArithExpr] = [
        _from_factors(c, a)
        for a, c in sorted(by_atoms.items(), key=lambda item: item[0][0].sort_key())
    ]
    if const != 0 or not result:
        result.append(Cst(const))
    if len(result) == 1:
        return result[0]
    return Sum(result)


def _apply_div_mod_recomposition(
    by_atoms: dict[tuple[ArithExpr, ...], int],
) -> dict[tuple[ArithExpr, ...], int]:
    """Rule (4): find ``c*r*(x/y)*y`` and ``c*r*(x mod y)``, replace by
    ``c*r*x``.  ``r`` is any shared residual factor multiset."""
    changed = True
    while changed:
        changed = False
        for atoms, coeff in list(by_atoms.items()):
            div = None
            rest: list[ArithExpr] = []
            result_coeff = coeff
            for a in atoms:
                if not isinstance(a, IntDiv):
                    continue
                candidate_rest = [x for x in atoms if x is not a]
                denom_const = a.denom.try_int()
                if a.denom in candidate_rest:
                    # symbolic divisor: r * (x/y) * y  +  r * (x mod y)
                    div = a
                    rest = list(candidate_rest)
                    rest.remove(a.denom)
                    result_coeff = coeff
                    break
                if denom_const is not None and denom_const != 0 and coeff % denom_const == 0:
                    # constant divisor folded into the coefficient:
                    # (c*k) * (x/k)  +  c * (x mod k)  ->  c * x
                    div = a
                    rest = candidate_rest
                    result_coeff = coeff // denom_const
                    break
            if div is None:
                continue
            partner_atoms = tuple(
                sorted(rest + [Mod(div.numer, div.denom)], key=lambda e: e.sort_key())
            )
            partner = by_atoms.get(partner_atoms)
            if partner is None or partner != result_coeff:
                continue
            del by_atoms[atoms]
            del by_atoms[partner_atoms]
            replacement = mul(_from_factors(result_coeff, rest), div.numer)
            r_coeff, r_atoms = _as_factors(replacement)
            if r_atoms or r_coeff:
                by_atoms[r_atoms] = by_atoms.get(r_atoms, 0) + r_coeff
                if by_atoms[r_atoms] == 0:
                    del by_atoms[r_atoms]
            changed = True
            break
    return by_atoms


def prod_of(factors: Iterable[ArithExpr]) -> ArithExpr:
    """Build a canonical, simplified product (distributing over sums)."""
    flat: list[ArithExpr] = []
    for f in factors:
        if isinstance(f, Prod):
            flat.extend(f.factors)
        else:
            flat.append(f)

    coeff = 1
    atoms: list[ArithExpr] = []
    sums: list[Sum] = []
    for f in flat:
        if isinstance(f, Cst):
            coeff *= f.value
        elif isinstance(f, Sum):
            sums.append(f)
        else:
            atoms.append(f)

    if coeff == 0:
        return ZERO

    if sums:
        # Distribute: multiply out one sum at a time.
        base = _from_factors(coeff, sorted(atoms, key=lambda a: a.sort_key()))
        result: list[ArithExpr] = [base]
        for s in sums:
            result = [prod_of([r, t]) for r in result for t in s.terms]
        return sum_of(result)

    atoms.sort(key=lambda a: a.sort_key())
    return _from_factors(coeff, atoms)


def add(a: ArithExpr, b: ArithExpr) -> ArithExpr:
    return sum_of([a, b])


def sub(a: ArithExpr, b: ArithExpr) -> ArithExpr:
    return sum_of([a, prod_of([Cst(-1), b])])


def mul(a: ArithExpr, b: ArithExpr) -> ArithExpr:
    return prod_of([a, b])


def int_div(numer: ArithExpr, denom: ArithExpr) -> ArithExpr:
    """Simplified integer division (rules 1 and 2)."""
    nc, dc = numer.try_int(), denom.try_int()
    if dc == 1:
        return numer
    if nc == 0:
        return ZERO
    if nc is not None and dc is not None and dc != 0:
        return Cst(nc // dc)
    if numer == denom:
        return ONE

    # (x / y) / z = x / (y * z) for positive divisors.
    if isinstance(numer, IntDiv):
        return int_div(numer.numer, mul(numer.denom, denom))

    # Cancel shared factors: (c * y * r) / y = c * r ;
    # reduce constant coefficients by gcd.
    reduced = _cancel_factors_div(numer, denom)
    if reduced is not None:
        return reduced

    # Rule (2): pull terms that are multiples of the divisor out of a sum.
    if isinstance(numer, Sum):
        outside: list[ArithExpr] = []
        inside: list[ArithExpr] = []
        for t in numer.terms:
            q = _exact_quotient(t, denom)
            if q is not None:
                outside.append(q)
            else:
                inside.append(t)
        if outside:
            rest = sum_of(inside) if inside else ZERO
            return sum_of(outside + [int_div(rest, denom)])

    # Rule (1): x / y = 0 if 0 <= x < y.
    if _prove_in_range(numer, denom):
        return ZERO

    return IntDiv(numer, denom)


def mod(numer: ArithExpr, denom: ArithExpr) -> ArithExpr:
    """Simplified modulo (rules 3, 5 and 6)."""
    nc, dc = numer.try_int(), denom.try_int()
    if dc == 1:
        return ZERO
    if nc == 0:
        return ZERO
    if nc is not None and dc is not None and dc != 0:
        return Cst(nc % dc)
    if numer == denom:
        return ZERO

    # (x mod y) mod y = x mod y
    if isinstance(numer, Mod) and numer.denom == denom:
        return numer

    # Rule (5): (x * y) mod y = 0 — including constant multiples.
    if _exact_quotient(numer, denom) is not None:
        return ZERO

    # Rule (6) specialized: drop terms of a sum that are multiples of the
    # divisor, then retry on the remainder.
    if isinstance(numer, Sum):
        kept = [t for t in numer.terms if _exact_quotient(t, denom) is None]
        if len(kept) < len(numer.terms):
            rest = sum_of(kept) if kept else ZERO
            return mod(rest, denom)

    # Factor out a shared constant: (c*x) mod (c*y) = c * (x mod y).
    factored = _factor_common_mod(numer, denom)
    if factored is not None:
        return factored

    # Rule (3): x mod y = x if 0 <= x < y.
    if _prove_in_range(numer, denom):
        return numer

    return Mod(numer, denom)


def _exact_quotient(term: ArithExpr, denom: ArithExpr) -> ArithExpr | None:
    """Return ``term / denom`` when the division is provably exact."""
    t_coeff, t_atoms = _as_factors(term)
    d_coeff, d_atoms = _as_factors(denom)
    if d_coeff == 0:
        return None
    atoms = list(t_atoms)
    for a in d_atoms:
        if a in atoms:
            atoms.remove(a)
        else:
            return None
    if t_coeff % d_coeff != 0:
        return None
    return _from_factors(t_coeff // d_coeff, atoms)


def _cancel_factors_div(numer: ArithExpr, denom: ArithExpr) -> ArithExpr | None:
    """Cancel common atom factors and constant gcds in a division."""
    n_coeff, n_atoms = _as_factors(numer)
    d_coeff, d_atoms = _as_factors(denom)
    if d_coeff == 0 or isinstance(numer, Sum):
        return None
    n_list, d_list = list(n_atoms), list(d_atoms)
    cancelled = False
    for a in list(d_list):
        if a in n_list:
            n_list.remove(a)
            d_list.remove(a)
            cancelled = True
    g = math.gcd(abs(n_coeff), abs(d_coeff))
    if g > 1:
        n_coeff //= g
        d_coeff //= g
        cancelled = True
    if not cancelled:
        return None
    new_numer = _from_factors(n_coeff, n_list)
    new_denom = _from_factors(d_coeff, d_list)
    return int_div(new_numer, new_denom)


def _factor_common_mod(numer: ArithExpr, denom: ArithExpr) -> ArithExpr | None:
    """(c * x) mod (c * y) = c * (x mod y) for a shared constant c > 1.

    Also covers (c*x) mod d with c | d:  c * (x mod (d/c))."""
    n_coeff, n_atoms = _as_factors(numer)
    d_coeff, d_atoms = _as_factors(denom)
    if isinstance(numer, Sum) or d_coeff == 0:
        return None
    g = math.gcd(abs(n_coeff), abs(d_coeff))
    if g <= 1:
        return None
    inner = mod(_from_factors(n_coeff // g, n_atoms), _from_factors(d_coeff // g, d_atoms))
    return mul(Cst(g), inner)


def pow_(base: ArithExpr, exp: ArithExpr) -> ArithExpr:
    bc, ec = base.try_int(), exp.try_int()
    if ec == 0:
        return ONE
    if ec == 1:
        return base
    if bc is not None and ec is not None and ec >= 0:
        return Cst(bc**ec)
    if bc == 1:
        return ONE
    return Pow(base, exp)


def log2(arg: ArithExpr) -> ArithExpr:
    v = arg.try_int()
    if v is not None and v > 0 and not (v & (v - 1)):
        return Cst(v.bit_length() - 1)
    if isinstance(arg, Pow) and arg.base == Cst(2):
        return arg.exp
    return Log2(arg)


def simplify(expr: ArithExpr) -> ArithExpr:
    """Fully re-simplify a (possibly raw) expression bottom-up.

    Top-level results (outside any bounds proof) are memoized by node
    identity — hash-consing makes structurally identical expressions
    the same object, so the lookup is O(1) instead of a key-building
    tree walk.
    """
    if _proof_depth() == 0 and not isinstance(expr, (Cst, Var)):
        entry = _cache_get(_SIMPLIFY_CACHE, id(expr))
        if entry is not None and entry[0] is expr:
            return entry[1]
        result = _simplify_uncached(expr)
        _cache_put(_SIMPLIFY_CACHE, id(expr), (expr, result))
        return result
    return _simplify_uncached(expr)


def _simplify_uncached(expr: ArithExpr) -> ArithExpr:
    if isinstance(expr, Var):
        # A variable whose logical range is [0, 1) is identically zero;
        # this is how the paper's Figure 7 writes z[wg_id] rather than
        # z[wg_id + l_id] for the single-element copy to global memory.
        if expr.range.min.try_int() == 0 and expr.range.max is not None:
            if simplify(expr.range.max).try_int() == 1:
                return ZERO
        return expr
    if isinstance(expr, Cst):
        return expr
    if isinstance(expr, Sum):
        return sum_of([simplify(t) for t in expr.terms])
    if isinstance(expr, Prod):
        return prod_of([simplify(f) for f in expr.factors])
    if isinstance(expr, IntDiv):
        return int_div(simplify(expr.numer), simplify(expr.denom))
    if isinstance(expr, Mod):
        return mod(simplify(expr.numer), simplify(expr.denom))
    if isinstance(expr, Pow):
        return pow_(simplify(expr.base), simplify(expr.exp))
    if isinstance(expr, Log2):
        return log2(simplify(expr.arg))
    if isinstance(expr, LoadIndex):
        return LoadIndex(expr.memory_name, simplify(expr.index))
    raise TypeError(f"unknown arithmetic node {expr!r}")


# ---------------------------------------------------------------------------
# range reasoning
# ---------------------------------------------------------------------------

def bound_min(expr: ArithExpr) -> ArithExpr | None:
    """An inclusive lower bound with every variable grounded through its
    range, or ``None`` when unknown."""
    return _bound(expr, want_max=False, keep_vars=False)


def bound_max(expr: ArithExpr) -> ArithExpr | None:
    """An inclusive upper bound with every variable grounded through its
    range, or ``None`` when unknown."""
    return _bound(expr, want_max=True, keep_vars=False)


def _bound(expr: ArithExpr, want_max: bool, keep_vars: bool) -> ArithExpr | None:
    if _proof_depth() >= _MAX_PROOF_DEPTH:
        return None
    _proof_enter()
    try:
        return _bound_inner(expr, want_max, keep_vars)
    finally:
        _proof_exit()


def _bound_inner(expr: ArithExpr, want_max: bool, keep_vars: bool) -> ArithExpr | None:
    """Directed bound computation.

    With ``keep_vars`` the bound keeps a variable symbolic when the variable
    itself is a valid bound in the requested direction (always true for a
    lower bound, since ``v <= v``).  This is what lets ``N - l_id`` with
    ``l_id in [0, N)`` prove positive even though ``N`` is unbounded: the
    lower bound becomes ``N - (N - 1) = 1``.
    """
    if isinstance(expr, Cst):
        return expr
    if isinstance(expr, Var):
        if want_max:
            if expr.range.max is not None:
                return sub(expr.range.max, ONE)
            return expr if keep_vars else None
        return expr if keep_vars else expr.range.min
    if isinstance(expr, Sum):
        parts = [_bound_inner(t, want_max, keep_vars) for t in expr.terms]
        if any(p is None for p in parts):
            return None
        return sum_of(parts)  # type: ignore[arg-type]
    if isinstance(expr, Prod):
        coeff, atoms = _as_factors(expr)
        flip = coeff < 0
        parts = [_bound_inner(a, want_max != flip, keep_vars) for a in atoms]
        if any(p is None for p in parts):
            return None
        if len(parts) > 1:
            # A product of bounds only bounds the product when every
            # factor's bound is non-negative; a single linear term needs
            # no such restriction.
            for p in parts:
                if not _is_non_negative(p):  # type: ignore[arg-type]
                    return None
        return prod_of([Cst(coeff)] + parts)  # type: ignore[list-item]
    if isinstance(expr, IntDiv):
        n = _bound_inner(expr.numer, want_max, keep_vars)
        d = _bound_inner(expr.denom, not want_max, keep_vars)
        if n is None or not _is_non_negative(n):
            return None
        if d is None or not _is_positive(d):
            # floor(n / d) >= 0 for non-negative n and positive d.
            return ZERO if not want_max else None
        return int_div(n, d)
    if isinstance(expr, Mod):
        if want_max:
            d = _bound_inner(expr.denom, True, keep_vars)
            if d is None:
                return None
            return sub(d, ONE)
        return ZERO
    if isinstance(expr, Pow):
        b = _bound_inner(expr.base, want_max, keep_vars)
        e = _bound_inner(expr.exp, want_max, keep_vars)
        if b is None or e is None or not _is_non_negative(b):
            return None
        return pow_(b, e)
    return None


def _is_non_negative(expr: ArithExpr) -> bool:
    """Structural non-negativity check (conservative)."""
    if isinstance(expr, Cst):
        return expr.value >= 0
    if isinstance(expr, Var):
        lo = expr.range.min.try_int()
        if lo is not None:
            return lo >= 0
        return _is_non_negative(expr.range.min)
    if isinstance(expr, Sum):
        return all(_is_non_negative(t) for t in expr.terms)
    if isinstance(expr, Prod):
        coeff, atoms = _as_factors(expr)
        return coeff >= 0 and all(_is_non_negative(a) for a in atoms)
    if isinstance(expr, (IntDiv, Mod)):
        return _is_non_negative(expr.numer) and _is_non_negative(expr.denom)
    if isinstance(expr, Pow):
        return _is_non_negative(expr.base)
    if isinstance(expr, Log2):
        return True
    return False


def _is_positive(expr: ArithExpr) -> bool:
    """Structural positivity check (conservative)."""
    if isinstance(expr, Cst):
        return expr.value > 0
    if isinstance(expr, Var):
        lo = expr.range.min.try_int()
        if lo is not None:
            return lo >= 1
        return _is_positive(expr.range.min)
    if isinstance(expr, Sum):
        return all(_is_non_negative(t) for t in expr.terms) and any(
            _is_positive(t) for t in expr.terms
        )
    if isinstance(expr, Prod):
        coeff, atoms = _as_factors(expr)
        return coeff > 0 and all(_is_positive(a) for a in atoms)
    if isinstance(expr, Pow):
        return _is_positive(expr.base)
    return False


def prove_ge_zero(expr: ArithExpr) -> bool:
    """Prove ``expr >= 0`` using structure and range information."""
    if _is_non_negative(expr):
        return True
    lo = _bound(expr, want_max=False, keep_vars=True)
    return lo is not None and _is_non_negative(lo)


def prove_lt(a: ArithExpr, b: ArithExpr) -> bool:
    """Prove ``a < b`` using range information.

    Proved by showing a lower bound of ``b - a`` is positive; the bound
    keeps variables symbolic where valid so that e.g. ``l_id < N`` holds
    for ``l_id`` in ``[0, N)`` even when ``N`` itself is unbounded.
    Proof outcomes at depth zero are memoized (depth-limited inner
    proofs may be cut short, so only the top level is cacheable).
    """
    if _proof_depth() >= _MAX_PROOF_DEPTH:
        return False
    key = None
    if _proof_depth() == 0:
        key = (id(a), id(b))
        entry = _cache_get(_PROVE_LT_CACHE, key)
        if entry is not None and entry[0] is a and entry[1] is b:
            return entry[2]
    _proof_enter()
    try:
        diff = sub(b, a)
    finally:
        _proof_exit()
    lo = _bound(diff, want_max=False, keep_vars=True)
    result = lo is not None and _is_positive(lo)
    if key is not None:
        _cache_put(_PROVE_LT_CACHE, key, (a, b, result))
    return result


def _prove_in_range(x: ArithExpr, y: ArithExpr) -> bool:
    """Side condition of rules (1) and (3): ``0 <= x < y``."""
    if _proof_depth() >= _MAX_PROOF_DEPTH:
        return False
    return prove_ge_zero(x) and prove_lt(x, y)


def to_int(expr: ArithExpr | int) -> int:
    """Extract a concrete integer, raising when the expression is symbolic."""
    e = to_expr(expr)
    v = e.try_int()
    if v is None:
        raise ValueError(f"expected a concrete integer, got {e}")
    return v
