"""Arithmetic expression nodes.

These are the raw, immutable AST nodes.  Constructing them performs *no*
simplification; the smart constructors live in :mod:`repro.arith.simplify`
and are reached through the overloaded Python operators.  All nodes are
hashable so they can be used as dictionary keys during canonicalization.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, Mapping

from repro.arith.ranges import Range

_var_counter = itertools.count()


class ArithExpr:
    """Base class of all arithmetic expressions.

    Subclasses are value objects: equality and hashing are structural.
    The overloaded operators produce *simplified* results; use the node
    constructors directly (``Sum([a, b])``) to build raw expressions.
    """

    __slots__ = ()

    # -- operators (smart constructors) ---------------------------------
    def __add__(self, other: "ArithExpr | int") -> "ArithExpr":
        from repro.arith.simplify import add

        return add(self, to_expr(other))

    def __radd__(self, other: int) -> "ArithExpr":
        from repro.arith.simplify import add

        return add(to_expr(other), self)

    def __sub__(self, other: "ArithExpr | int") -> "ArithExpr":
        from repro.arith.simplify import sub

        return sub(self, to_expr(other))

    def __rsub__(self, other: int) -> "ArithExpr":
        from repro.arith.simplify import sub

        return sub(to_expr(other), self)

    def __mul__(self, other: "ArithExpr | int") -> "ArithExpr":
        from repro.arith.simplify import mul

        return mul(self, to_expr(other))

    def __rmul__(self, other: int) -> "ArithExpr":
        from repro.arith.simplify import mul

        return mul(to_expr(other), self)

    def __floordiv__(self, other: "ArithExpr | int") -> "ArithExpr":
        from repro.arith.simplify import int_div

        return int_div(self, to_expr(other))

    def __rfloordiv__(self, other: int) -> "ArithExpr":
        from repro.arith.simplify import int_div

        return int_div(to_expr(other), self)

    def __mod__(self, other: "ArithExpr | int") -> "ArithExpr":
        from repro.arith.simplify import mod

        return mod(self, to_expr(other))

    def __rmod__(self, other: int) -> "ArithExpr":
        from repro.arith.simplify import mod

        return mod(to_expr(other), self)

    def __pow__(self, other: "ArithExpr | int") -> "ArithExpr":
        from repro.arith.simplify import pow_

        return pow_(self, to_expr(other))

    def __neg__(self) -> "ArithExpr":
        from repro.arith.simplify import mul

        return mul(Cst(-1), self)

    # -- evaluation ------------------------------------------------------
    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate to an integer given a value for every free variable."""
        raise NotImplementedError

    def children(self) -> Iterable["ArithExpr"]:
        return ()

    def try_int(self) -> int | None:
        """Return the integer value if this is a constant, else ``None``."""
        return None

    # -- ordering key for canonical forms --------------------------------
    def sort_key(self) -> tuple:
        return (type(self).__name__, str(self))


class Cst(ArithExpr):
    """An integer constant."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        if not isinstance(value, int):
            raise TypeError(f"Cst requires an int, got {value!r}")
        self.value = value

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.value

    def try_int(self) -> int | None:
        return self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Cst) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Cst", self.value))

    def __repr__(self) -> str:
        return str(self.value)

    __str__ = __repr__


class Var(ArithExpr):
    """A named variable with an optional value range.

    Two variables are equal iff their names are equal; the range is
    metadata attached by whoever introduced the variable (a map loop, a
    size parameter).  Use :meth:`fresh` for generated loop indices.
    """

    __slots__ = ("name", "range")

    def __init__(self, name: str, range_: Range | None = None):
        self.name = name
        self.range = range_ if range_ is not None else Range.natural()

    @staticmethod
    def fresh(prefix: str, range_: Range | None = None) -> "Var":
        return Var(f"{prefix}_{next(_var_counter)}", range_)

    def evaluate(self, env: Mapping[str, int]) -> int:
        try:
            return env[self.name]
        except KeyError:
            raise KeyError(f"no value for variable {self.name!r}") from None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))

    def __repr__(self) -> str:
        return self.name

    __str__ = __repr__


class Sum(ArithExpr):
    """A sum of two or more terms."""

    __slots__ = ("terms",)

    def __init__(self, terms: Iterable[ArithExpr]):
        self.terms = tuple(terms)
        if len(self.terms) < 2:
            raise ValueError("Sum requires at least two terms")

    def evaluate(self, env: Mapping[str, int]) -> int:
        return sum(t.evaluate(env) for t in self.terms)

    def children(self) -> Iterable[ArithExpr]:
        return self.terms

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Sum) and other.terms == self.terms

    def __hash__(self) -> int:
        return hash(("Sum", self.terms))

    def __repr__(self) -> str:
        return "(" + " + ".join(map(str, self.terms)) + ")"

    __str__ = __repr__


class Prod(ArithExpr):
    """A product of two or more factors."""

    __slots__ = ("factors",)

    def __init__(self, factors: Iterable[ArithExpr]):
        self.factors = tuple(factors)
        if len(self.factors) < 2:
            raise ValueError("Prod requires at least two factors")

    def evaluate(self, env: Mapping[str, int]) -> int:
        result = 1
        for f in self.factors:
            result *= f.evaluate(env)
        return result

    def children(self) -> Iterable[ArithExpr]:
        return self.factors

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Prod) and other.factors == self.factors

    def __hash__(self) -> int:
        return hash(("Prod", self.factors))

    def __repr__(self) -> str:
        return "(" + " * ".join(map(str, self.factors)) + ")"

    __str__ = __repr__


class IntDiv(ArithExpr):
    """Integer (floor) division; the divisor is assumed positive."""

    __slots__ = ("numer", "denom")

    def __init__(self, numer: ArithExpr, denom: ArithExpr):
        self.numer = numer
        self.denom = denom

    def evaluate(self, env: Mapping[str, int]) -> int:
        d = self.denom.evaluate(env)
        if d == 0:
            raise ZeroDivisionError(f"division by zero in {self}")
        return self.numer.evaluate(env) // d

    def children(self) -> Iterable[ArithExpr]:
        return (self.numer, self.denom)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IntDiv)
            and other.numer == self.numer
            and other.denom == self.denom
        )

    def __hash__(self) -> int:
        return hash(("IntDiv", self.numer, self.denom))

    def __repr__(self) -> str:
        return f"({self.numer} / {self.denom})"

    __str__ = __repr__


class Mod(ArithExpr):
    """Modulo; the divisor is assumed positive."""

    __slots__ = ("numer", "denom")

    def __init__(self, numer: ArithExpr, denom: ArithExpr):
        self.numer = numer
        self.denom = denom

    def evaluate(self, env: Mapping[str, int]) -> int:
        d = self.denom.evaluate(env)
        if d == 0:
            raise ZeroDivisionError(f"modulo by zero in {self}")
        return self.numer.evaluate(env) % d

    def children(self) -> Iterable[ArithExpr]:
        return (self.numer, self.denom)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Mod)
            and other.numer == self.numer
            and other.denom == self.denom
        )

    def __hash__(self) -> int:
        return hash(("Mod", self.numer, self.denom))

    def __repr__(self) -> str:
        return f"({self.numer} % {self.denom})"

    __str__ = __repr__


class Pow(ArithExpr):
    """A power with integer exponent."""

    __slots__ = ("base", "exp")

    def __init__(self, base: ArithExpr, exp: ArithExpr):
        self.base = base
        self.exp = exp

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.base.evaluate(env) ** self.exp.evaluate(env)

    def children(self) -> Iterable[ArithExpr]:
        return (self.base, self.exp)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Pow)
            and other.base == self.base
            and other.exp == self.exp
        )

    def __hash__(self) -> int:
        return hash(("Pow", self.base, self.exp))

    def __repr__(self) -> str:
        return f"pow({self.base}, {self.exp})"

    __str__ = __repr__


class Log2(ArithExpr):
    """Base-2 logarithm (exact; the argument must be a power of two)."""

    __slots__ = ("arg",)

    def __init__(self, arg: ArithExpr):
        self.arg = arg

    def evaluate(self, env: Mapping[str, int]) -> int:
        v = self.arg.evaluate(env)
        if v <= 0 or v & (v - 1):
            raise ValueError(f"log2 of non-power-of-two {v} in {self}")
        return v.bit_length() - 1

    def children(self) -> Iterable[ArithExpr]:
        return (self.arg,)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Log2) and other.arg == self.arg

    def __hash__(self) -> int:
        return hash(("Log2", self.arg))

    def __repr__(self) -> str:
        return f"log2({self.arg})"

    __str__ = __repr__


class LoadIndex(ArithExpr):
    """A runtime-dependent index: the value loaded from an index buffer.

    Produced by the ``filter`` pattern (data-dependent gather, as used by
    the SHOC MD benchmark's neighbour lists).  The simplifier treats it
    as an opaque atom: it simplifies the inner index but can prove
    nothing about the loaded value.
    """

    __slots__ = ("memory_name", "index")

    def __init__(self, memory_name: str, index: ArithExpr):
        self.memory_name = memory_name
        self.index = index

    def evaluate(self, env: Mapping[str, int]) -> int:
        raise NotImplementedError(
            "LoadIndex depends on buffer contents; it only exists in "
            "generated code"
        )

    def children(self) -> Iterable[ArithExpr]:
        return (self.index,)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LoadIndex)
            and other.memory_name == self.memory_name
            and other.index == self.index
        )

    def __hash__(self) -> int:
        return hash(("LoadIndex", self.memory_name, self.index))

    def __repr__(self) -> str:
        return f"{self.memory_name}[{self.index}]"

    __str__ = __repr__


def to_expr(value: "ArithExpr | int") -> ArithExpr:
    """Coerce a plain integer to a constant node."""
    if isinstance(value, ArithExpr):
        return value
    if isinstance(value, int):
        return Cst(value)
    raise TypeError(f"cannot convert {value!r} to an arithmetic expression")


def free_vars(expr: ArithExpr) -> set[Var]:
    """Collect every variable occurring in ``expr`` (including in ranges
    is *not* done here; only the expression itself is walked)."""
    found: set[Var] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Var):
            found.add(node)
        else:
            stack.extend(node.children())
    return found


def substitute(expr: ArithExpr, mapping: Mapping[Var, ArithExpr]) -> ArithExpr:
    """Replace variables by expressions, re-simplifying along the way."""
    from repro.arith.simplify import int_div, log2, mod, pow_, prod_of, sum_of

    def go(node: ArithExpr) -> ArithExpr:
        if isinstance(node, Var):
            return mapping.get(node, node)
        if isinstance(node, Cst):
            return node
        if isinstance(node, Sum):
            return sum_of([go(t) for t in node.terms])
        if isinstance(node, Prod):
            return prod_of([go(f) for f in node.factors])
        if isinstance(node, IntDiv):
            return int_div(go(node.numer), go(node.denom))
        if isinstance(node, Mod):
            return mod(go(node.numer), go(node.denom))
        if isinstance(node, Pow):
            return pow_(go(node.base), go(node.exp))
        if isinstance(node, Log2):
            return log2(go(node.arg))
        if isinstance(node, LoadIndex):
            return LoadIndex(node.memory_name, go(node.index))
        raise TypeError(f"unknown arithmetic node {node!r}")

    return go(expr)


def walk(expr: ArithExpr) -> Iterator[ArithExpr]:
    """Yield every node of the expression tree (pre-order)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())


def rebuild(expr: ArithExpr, fn: Callable[[ArithExpr], ArithExpr]) -> ArithExpr:
    """Bottom-up rebuild applying ``fn`` at every node (raw constructors)."""
    if isinstance(expr, (Var, Cst)):
        return fn(expr)
    if isinstance(expr, Sum):
        return fn(Sum([rebuild(t, fn) for t in expr.terms]))
    if isinstance(expr, Prod):
        return fn(Prod([rebuild(f, fn) for f in expr.factors]))
    if isinstance(expr, IntDiv):
        return fn(IntDiv(rebuild(expr.numer, fn), rebuild(expr.denom, fn)))
    if isinstance(expr, Mod):
        return fn(Mod(rebuild(expr.numer, fn), rebuild(expr.denom, fn)))
    if isinstance(expr, Pow):
        return fn(Pow(rebuild(expr.base, fn), rebuild(expr.exp, fn)))
    if isinstance(expr, Log2):
        return fn(Log2(rebuild(expr.arg, fn)))
    if isinstance(expr, LoadIndex):
        return fn(LoadIndex(expr.memory_name, rebuild(expr.index, fn)))
    raise TypeError(f"unknown arithmetic node {expr!r}")
