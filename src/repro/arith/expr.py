"""Arithmetic expression nodes.

These are the raw, immutable AST nodes.  Constructing them performs *no*
simplification; the smart constructors live in :mod:`repro.arith.simplify`
and are reached through the overloaded Python operators.  All nodes are
hashable so they can be used as dictionary keys during canonicalization.

Nodes are **hash-consed**: construction interns each node in a weak
table keyed by its structure (for variables, including the range — two
same-named variables with different ranges must stay distinct objects).
Structurally identical expressions built through the constructors are
therefore the *same* Python object, which makes repeated hashing,
equality and — crucially — the memo tables of
:mod:`repro.arith.simplify` identity-keyed O(1) instead of
tree-walking.  Intern keys reference child nodes by identity; that is
sound because an interned parent holds strong references to its
children, so a child's ``id`` cannot be recycled while any key
containing it is alive.  Unpickling (e.g. from the tuning cache)
reconstructs nodes through ``__getnewargs__``, so they re-intern on
load; pickles written before hash-consing fail to reconstruct and are
treated as cache misses by the stores that hold them.
"""

from __future__ import annotations

import itertools
import weakref
from typing import Callable, Iterable, Iterator, Mapping

from repro.arith.ranges import Range

_var_counter = itertools.count()

#: The intern table.  Weak values: nodes live exactly as long as
#: something outside the table references them.
_INTERN: "weakref.WeakValueDictionary[tuple, ArithExpr]" = (
    weakref.WeakValueDictionary()
)

def _intern(key: tuple, inst: "ArithExpr") -> "ArithExpr":
    _INTERN[key] = inst
    return inst


def intern_table_size() -> int:
    """Number of live interned nodes (for tests and diagnostics)."""
    return len(_INTERN)


class ArithExpr:
    """Base class of all arithmetic expressions.

    Subclasses are value objects: equality and hashing are structural.
    The overloaded operators produce *simplified* results; use the node
    constructors directly (``Sum([a, b])``) to build raw expressions.
    """

    __slots__ = ("__weakref__", "_hash", "_sort_key")

    # -- operators (smart constructors) ---------------------------------
    def __add__(self, other: "ArithExpr | int") -> "ArithExpr":
        from repro.arith.simplify import add

        return add(self, to_expr(other))

    def __radd__(self, other: int) -> "ArithExpr":
        from repro.arith.simplify import add

        return add(to_expr(other), self)

    def __sub__(self, other: "ArithExpr | int") -> "ArithExpr":
        from repro.arith.simplify import sub

        return sub(self, to_expr(other))

    def __rsub__(self, other: int) -> "ArithExpr":
        from repro.arith.simplify import sub

        return sub(to_expr(other), self)

    def __mul__(self, other: "ArithExpr | int") -> "ArithExpr":
        from repro.arith.simplify import mul

        return mul(self, to_expr(other))

    def __rmul__(self, other: int) -> "ArithExpr":
        from repro.arith.simplify import mul

        return mul(to_expr(other), self)

    def __floordiv__(self, other: "ArithExpr | int") -> "ArithExpr":
        from repro.arith.simplify import int_div

        return int_div(self, to_expr(other))

    def __rfloordiv__(self, other: int) -> "ArithExpr":
        from repro.arith.simplify import int_div

        return int_div(to_expr(other), self)

    def __mod__(self, other: "ArithExpr | int") -> "ArithExpr":
        from repro.arith.simplify import mod

        return mod(self, to_expr(other))

    def __rmod__(self, other: int) -> "ArithExpr":
        from repro.arith.simplify import mod

        return mod(to_expr(other), self)

    def __pow__(self, other: "ArithExpr | int") -> "ArithExpr":
        from repro.arith.simplify import pow_

        return pow_(self, to_expr(other))

    def __neg__(self) -> "ArithExpr":
        from repro.arith.simplify import mul

        return mul(Cst(-1), self)

    # -- evaluation ------------------------------------------------------
    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate to an integer given a value for every free variable."""
        raise NotImplementedError

    def children(self) -> Iterable["ArithExpr"]:
        return ()

    def try_int(self) -> int | None:
        """Return the integer value if this is a constant, else ``None``."""
        return None

    # -- ordering key for canonical forms --------------------------------
    def sort_key(self) -> tuple:
        key = getattr(self, "_sort_key", None)
        if key is None:
            key = (type(self).__name__, str(self))
            self._sort_key = key
        return key

    # -- cached structural hash ------------------------------------------
    def __hash__(self) -> int:
        h = getattr(self, "_hash", None)
        if h is None:
            h = self._compute_hash()
            self._hash = h
        return h

    def _compute_hash(self) -> int:
        raise NotImplementedError

    # -- pickling ---------------------------------------------------------
    # ``_hash`` uses Python's per-process string hashing and must never
    # cross a pickle boundary (the tuning cache persists kernels whose
    # metadata embeds these nodes); ``_sort_key``/``__weakref__`` are
    # likewise process-local.
    def __getstate__(self):
        state = {}
        for klass in type(self).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                if slot in ("__weakref__", "_hash", "_sort_key"):
                    continue
                try:
                    state[slot] = getattr(self, slot)
                except AttributeError:
                    pass
        return (None, state)

    def __setstate__(self, state):
        for name, value in state[1].items():
            setattr(self, name, value)


class Cst(ArithExpr):
    """An integer constant."""

    __slots__ = ("value",)

    def __new__(cls, value: int):
        if not isinstance(value, int):
            raise TypeError(f"Cst requires an int, got {value!r}")
        if isinstance(value, bool):
            value = int(value)  # True == 1 would collide in the table
        key = ("c", value)
        inst = _INTERN.get(key)
        if inst is not None:
            return inst
        inst = super().__new__(cls)
        inst.value = value
        return _intern(key, inst)

    def __init__(self, value: int):  # fully constructed in __new__
        pass

    def __getnewargs__(self):
        return (self.value,)

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.value

    def try_int(self) -> int | None:
        return self.value

    def __eq__(self, other: object) -> bool:
        return other is self or (
            isinstance(other, Cst) and other.value == self.value
        )

    def _compute_hash(self) -> int:
        return hash(("Cst", self.value))

    __hash__ = ArithExpr.__hash__

    def __repr__(self) -> str:
        return str(self.value)

    __str__ = __repr__


class Var(ArithExpr):
    """A named variable with an optional value range.

    Two variables are equal iff their names are equal; the range is
    metadata attached by whoever introduced the variable (a map loop, a
    size parameter).  Use :meth:`fresh` for generated loop indices.
    The intern key *does* include the range (same-named variables with
    different ranges must stay distinct objects for the simplifier).
    """

    __slots__ = ("name", "range")

    def __new__(cls, name: str, range_: Range | None = None):
        r = range_ if range_ is not None else Range.natural()
        key = (
            "v", name, id(r.min), None if r.max is None else id(r.max)
        )
        inst = _INTERN.get(key)
        if inst is not None:
            return inst
        inst = super().__new__(cls)
        inst.name = name
        inst.range = r
        return _intern(key, inst)

    def __init__(self, name: str, range_: Range | None = None):
        pass

    def __getnewargs__(self):
        return (self.name, self.range)

    @staticmethod
    def fresh(prefix: str, range_: Range | None = None) -> "Var":
        return Var(f"{prefix}_{next(_var_counter)}", range_)

    def evaluate(self, env: Mapping[str, int]) -> int:
        try:
            return env[self.name]
        except KeyError:
            raise KeyError(f"no value for variable {self.name!r}") from None

    def __eq__(self, other: object) -> bool:
        return other is self or (
            isinstance(other, Var) and other.name == self.name
        )

    def _compute_hash(self) -> int:
        return hash(("Var", self.name))

    __hash__ = ArithExpr.__hash__

    def __repr__(self) -> str:
        return self.name

    __str__ = __repr__


class Sum(ArithExpr):
    """A sum of two or more terms."""

    __slots__ = ("terms",)

    def __new__(cls, terms: Iterable[ArithExpr]):
        terms = tuple(terms)
        if len(terms) < 2:
            raise ValueError("Sum requires at least two terms")
        key = ("s", *map(id, terms))
        inst = _INTERN.get(key)
        if inst is not None:
            return inst
        inst = super().__new__(cls)
        inst.terms = terms
        return _intern(key, inst)

    def __init__(self, terms: Iterable[ArithExpr]):
        pass

    def __getnewargs__(self):
        return (self.terms,)

    def evaluate(self, env: Mapping[str, int]) -> int:
        return sum(t.evaluate(env) for t in self.terms)

    def children(self) -> Iterable[ArithExpr]:
        return self.terms

    def __eq__(self, other: object) -> bool:
        return other is self or (
            isinstance(other, Sum) and other.terms == self.terms
        )

    def _compute_hash(self) -> int:
        return hash(("Sum", self.terms))

    __hash__ = ArithExpr.__hash__

    def __repr__(self) -> str:
        return "(" + " + ".join(map(str, self.terms)) + ")"

    __str__ = __repr__


class Prod(ArithExpr):
    """A product of two or more factors."""

    __slots__ = ("factors",)

    def __new__(cls, factors: Iterable[ArithExpr]):
        factors = tuple(factors)
        if len(factors) < 2:
            raise ValueError("Prod requires at least two factors")
        key = ("p", *map(id, factors))
        inst = _INTERN.get(key)
        if inst is not None:
            return inst
        inst = super().__new__(cls)
        inst.factors = factors
        return _intern(key, inst)

    def __init__(self, factors: Iterable[ArithExpr]):
        pass

    def __getnewargs__(self):
        return (self.factors,)

    def evaluate(self, env: Mapping[str, int]) -> int:
        result = 1
        for f in self.factors:
            result *= f.evaluate(env)
        return result

    def children(self) -> Iterable[ArithExpr]:
        return self.factors

    def __eq__(self, other: object) -> bool:
        return other is self or (
            isinstance(other, Prod) and other.factors == self.factors
        )

    def _compute_hash(self) -> int:
        return hash(("Prod", self.factors))

    __hash__ = ArithExpr.__hash__

    def __repr__(self) -> str:
        return "(" + " * ".join(map(str, self.factors)) + ")"

    __str__ = __repr__


class IntDiv(ArithExpr):
    """Integer (floor) division; the divisor is assumed positive."""

    __slots__ = ("numer", "denom")

    def __new__(cls, numer: ArithExpr, denom: ArithExpr):
        key = ("d", id(numer), id(denom))
        inst = _INTERN.get(key)
        if inst is not None:
            return inst
        inst = super().__new__(cls)
        inst.numer = numer
        inst.denom = denom
        return _intern(key, inst)

    def __init__(self, numer: ArithExpr, denom: ArithExpr):
        pass

    def __getnewargs__(self):
        return (self.numer, self.denom)

    def evaluate(self, env: Mapping[str, int]) -> int:
        d = self.denom.evaluate(env)
        if d == 0:
            raise ZeroDivisionError(f"division by zero in {self}")
        return self.numer.evaluate(env) // d

    def children(self) -> Iterable[ArithExpr]:
        return (self.numer, self.denom)

    def __eq__(self, other: object) -> bool:
        return other is self or (
            isinstance(other, IntDiv)
            and other.numer == self.numer
            and other.denom == self.denom
        )

    def _compute_hash(self) -> int:
        return hash(("IntDiv", self.numer, self.denom))

    __hash__ = ArithExpr.__hash__

    def __repr__(self) -> str:
        return f"({self.numer} / {self.denom})"

    __str__ = __repr__


class Mod(ArithExpr):
    """Modulo; the divisor is assumed positive."""

    __slots__ = ("numer", "denom")

    def __new__(cls, numer: ArithExpr, denom: ArithExpr):
        key = ("m", id(numer), id(denom))
        inst = _INTERN.get(key)
        if inst is not None:
            return inst
        inst = super().__new__(cls)
        inst.numer = numer
        inst.denom = denom
        return _intern(key, inst)

    def __init__(self, numer: ArithExpr, denom: ArithExpr):
        pass

    def __getnewargs__(self):
        return (self.numer, self.denom)

    def evaluate(self, env: Mapping[str, int]) -> int:
        d = self.denom.evaluate(env)
        if d == 0:
            raise ZeroDivisionError(f"modulo by zero in {self}")
        return self.numer.evaluate(env) % d

    def children(self) -> Iterable[ArithExpr]:
        return (self.numer, self.denom)

    def __eq__(self, other: object) -> bool:
        return other is self or (
            isinstance(other, Mod)
            and other.numer == self.numer
            and other.denom == self.denom
        )

    def _compute_hash(self) -> int:
        return hash(("Mod", self.numer, self.denom))

    __hash__ = ArithExpr.__hash__

    def __repr__(self) -> str:
        return f"({self.numer} % {self.denom})"

    __str__ = __repr__


class Pow(ArithExpr):
    """A power with integer exponent."""

    __slots__ = ("base", "exp")

    def __new__(cls, base: ArithExpr, exp: ArithExpr):
        key = ("pw", id(base), id(exp))
        inst = _INTERN.get(key)
        if inst is not None:
            return inst
        inst = super().__new__(cls)
        inst.base = base
        inst.exp = exp
        return _intern(key, inst)

    def __init__(self, base: ArithExpr, exp: ArithExpr):
        pass

    def __getnewargs__(self):
        return (self.base, self.exp)

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.base.evaluate(env) ** self.exp.evaluate(env)

    def children(self) -> Iterable[ArithExpr]:
        return (self.base, self.exp)

    def __eq__(self, other: object) -> bool:
        return other is self or (
            isinstance(other, Pow)
            and other.base == self.base
            and other.exp == self.exp
        )

    def _compute_hash(self) -> int:
        return hash(("Pow", self.base, self.exp))

    __hash__ = ArithExpr.__hash__

    def __repr__(self) -> str:
        return f"pow({self.base}, {self.exp})"

    __str__ = __repr__


class Log2(ArithExpr):
    """Base-2 logarithm (exact; the argument must be a power of two)."""

    __slots__ = ("arg",)

    def __new__(cls, arg: ArithExpr):
        key = ("l2", id(arg))
        inst = _INTERN.get(key)
        if inst is not None:
            return inst
        inst = super().__new__(cls)
        inst.arg = arg
        return _intern(key, inst)

    def __init__(self, arg: ArithExpr):
        pass

    def __getnewargs__(self):
        return (self.arg,)

    def evaluate(self, env: Mapping[str, int]) -> int:
        v = self.arg.evaluate(env)
        if v <= 0 or v & (v - 1):
            raise ValueError(f"log2 of non-power-of-two {v} in {self}")
        return v.bit_length() - 1

    def children(self) -> Iterable[ArithExpr]:
        return (self.arg,)

    def __eq__(self, other: object) -> bool:
        return other is self or (
            isinstance(other, Log2) and other.arg == self.arg
        )

    def _compute_hash(self) -> int:
        return hash(("Log2", self.arg))

    __hash__ = ArithExpr.__hash__

    def __repr__(self) -> str:
        return f"log2({self.arg})"

    __str__ = __repr__


class LoadIndex(ArithExpr):
    """A runtime-dependent index: the value loaded from an index buffer.

    Produced by the ``filter`` pattern (data-dependent gather, as used by
    the SHOC MD benchmark's neighbour lists).  The simplifier treats it
    as an opaque atom: it simplifies the inner index but can prove
    nothing about the loaded value.
    """

    __slots__ = ("memory_name", "index")

    def __new__(cls, memory_name: str, index: ArithExpr):
        key = ("li", memory_name, id(index))
        inst = _INTERN.get(key)
        if inst is not None:
            return inst
        inst = super().__new__(cls)
        inst.memory_name = memory_name
        inst.index = index
        return _intern(key, inst)

    def __init__(self, memory_name: str, index: ArithExpr):
        pass

    def __getnewargs__(self):
        return (self.memory_name, self.index)

    def evaluate(self, env: Mapping[str, int]) -> int:
        raise NotImplementedError(
            "LoadIndex depends on buffer contents; it only exists in "
            "generated code"
        )

    def children(self) -> Iterable[ArithExpr]:
        return (self.index,)

    def __eq__(self, other: object) -> bool:
        return other is self or (
            isinstance(other, LoadIndex)
            and other.memory_name == self.memory_name
            and other.index == self.index
        )

    def _compute_hash(self) -> int:
        return hash(("LoadIndex", self.memory_name, self.index))

    __hash__ = ArithExpr.__hash__

    def __repr__(self) -> str:
        return f"{self.memory_name}[{self.index}]"

    __str__ = __repr__


def to_expr(value: "ArithExpr | int") -> ArithExpr:
    """Coerce a plain integer to a constant node."""
    if isinstance(value, ArithExpr):
        return value
    if isinstance(value, int):
        return Cst(value)
    raise TypeError(f"cannot convert {value!r} to an arithmetic expression")


def free_vars(expr: ArithExpr) -> set[Var]:
    """Collect every variable occurring in ``expr`` (including in ranges
    is *not* done here; only the expression itself is walked)."""
    found: set[Var] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Var):
            found.add(node)
        else:
            stack.extend(node.children())
    return found


def substitute(expr: ArithExpr, mapping: Mapping[Var, ArithExpr]) -> ArithExpr:
    """Replace variables by expressions, re-simplifying along the way."""
    from repro.arith.simplify import int_div, log2, mod, pow_, prod_of, sum_of

    def go(node: ArithExpr) -> ArithExpr:
        if isinstance(node, Var):
            return mapping.get(node, node)
        if isinstance(node, Cst):
            return node
        if isinstance(node, Sum):
            return sum_of([go(t) for t in node.terms])
        if isinstance(node, Prod):
            return prod_of([go(f) for f in node.factors])
        if isinstance(node, IntDiv):
            return int_div(go(node.numer), go(node.denom))
        if isinstance(node, Mod):
            return mod(go(node.numer), go(node.denom))
        if isinstance(node, Pow):
            return pow_(go(node.base), go(node.exp))
        if isinstance(node, Log2):
            return log2(go(node.arg))
        if isinstance(node, LoadIndex):
            return LoadIndex(node.memory_name, go(node.index))
        raise TypeError(f"unknown arithmetic node {node!r}")

    return go(expr)


def walk(expr: ArithExpr) -> Iterator[ArithExpr]:
    """Yield every node of the expression tree (pre-order)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())


def rebuild(expr: ArithExpr, fn: Callable[[ArithExpr], ArithExpr]) -> ArithExpr:
    """Bottom-up rebuild applying ``fn`` at every node (raw constructors)."""
    if isinstance(expr, (Var, Cst)):
        return fn(expr)
    if isinstance(expr, Sum):
        return fn(Sum([rebuild(t, fn) for t in expr.terms]))
    if isinstance(expr, Prod):
        return fn(Prod([rebuild(f, fn) for f in expr.factors]))
    if isinstance(expr, IntDiv):
        return fn(IntDiv(rebuild(expr.numer, fn), rebuild(expr.denom, fn)))
    if isinstance(expr, Mod):
        return fn(Mod(rebuild(expr.numer, fn), rebuild(expr.denom, fn)))
    if isinstance(expr, Pow):
        return fn(Pow(rebuild(expr.base, fn), rebuild(expr.exp, fn)))
    if isinstance(expr, Log2):
        return fn(Log2(rebuild(expr.arg, fn)))
    if isinstance(expr, LoadIndex):
        return fn(LoadIndex(expr.memory_name, rebuild(expr.index, fn)))
    raise TypeError(f"unknown arithmetic node {expr!r}")
