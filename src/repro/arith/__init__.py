"""Symbolic arithmetic on natural numbers with range information.

This package implements the arithmetic expression language the Lift
compiler uses for array lengths and array indices (paper section 5.1 and
5.3).  Expressions are built from constants, named variables carrying
*range* information, sums, products, integer division, modulo, powers and
logarithms.  A symbolic simplifier implements the paper's algebraic rules
(1)-(6) plus the supporting canonicalizations needed to reproduce the
Figure 6 simplification trace.

Node constructors are *raw* (no rewriting happens in ``__init__``); the
Python operators (``+``, ``*``, ``//``, ``%``) and :func:`simplify` go
through the smart constructors in :mod:`repro.arith.simplify`.  This split
lets the compiler emit both un-simplified and simplified array indices,
which is the ablation knob of the paper's Figure 8.
"""

from repro.arith.expr import (
    ArithExpr,
    Cst,
    IntDiv,
    Log2,
    Mod,
    Pow,
    Prod,
    Sum,
    Var,
    free_vars,
    substitute,
)
from repro.arith.ranges import Range
from repro.arith.simplify import (
    add,
    bound_max,
    bound_min,
    int_div,
    mod,
    mul,
    pow_,
    prove_ge_zero,
    prove_lt,
    simplify,
    sub,
    sum_of,
    prod_of,
)

__all__ = [
    "ArithExpr",
    "Cst",
    "IntDiv",
    "Log2",
    "Mod",
    "Pow",
    "Prod",
    "Sum",
    "Var",
    "Range",
    "add",
    "bound_max",
    "bound_min",
    "free_vars",
    "int_div",
    "mod",
    "mul",
    "pow_",
    "prod_of",
    "prove_ge_zero",
    "prove_lt",
    "simplify",
    "sub",
    "substitute",
    "sum_of",
]
