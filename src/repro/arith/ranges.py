"""Value ranges for arithmetic variables.

The Lift type system infers range information for every variable (paper
section 5.3): a work-group id ``wg_id`` introduced by ``mapWrg`` over ``M``
chunks ranges over ``[0, M)``, a loop variable of a ``reduceSeq`` over a
chunk of two elements ranges over ``[0, 2)``, and a size variable such as
``N`` ranges over ``[1, inf)``.  These ranges are what allow the simplifier
to prove side conditions like ``x < y`` in rules (1) and (3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.arith.expr import ArithExpr


@dataclass(frozen=True)
class Range:
    """A half-open interval ``[min, max)`` of integer values.

    ``min`` is inclusive and ``max`` exclusive, matching the iteration
    ranges that introduce most variables.  Both bounds are arithmetic
    expressions themselves (a bound may be another variable such as ``M``);
    ``max`` may be ``None`` for "unbounded above".
    """

    min: "ArithExpr"
    max: Optional["ArithExpr"]

    @staticmethod
    def of(lo: int | "ArithExpr", hi: int | "ArithExpr" | None) -> "Range":
        """Build a range, coercing plain integers to constants."""
        from repro.arith.expr import to_expr

        lo_expr = to_expr(lo)
        hi_expr = to_expr(hi) if hi is not None else None
        return Range(lo_expr, hi_expr)

    @staticmethod
    def natural() -> "Range":
        """The range of a size variable: at least one, unbounded above."""
        from repro.arith.expr import Cst

        return Range(Cst(1), None)

    @staticmethod
    def non_negative() -> "Range":
        """``[0, inf)`` for indices with no further information."""
        from repro.arith.expr import Cst

        return Range(Cst(0), None)

    def __str__(self) -> str:
        hi = "inf" if self.max is None else str(self.max)
        return f"[{self.min}, {hi})"
