"""Tokenizer for the OpenCL-C subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


class LexError(Exception):
    pass


@dataclass(frozen=True)
class Token:
    kind: str  # "ident", "int", "float", "punct", "eof"
    text: str
    pos: int
    line: int


_PUNCT3 = ("<<=", ">>=")
_PUNCT2 = (
    "+=", "-=", "*=", "/=", "%=", "==", "!=", "<=", ">=", "&&", "||",
    "<<", ">>", "->",
)
_PUNCT1 = "+-*/%=<>!?:,;()[]{}.&|^~"


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i)
            if end < 0:
                raise LexError(f"unterminated comment at line {line}")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            tokens.append(Token("ident", source[i:j], i, line))
            i = j
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            while j < n and (source[j].isdigit()):
                j += 1
            if j < n and source[j] == ".":
                is_float = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                is_float = True
                j += 1
                if j < n and source[j] in "+-":
                    j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "fF":
                is_float = True
                j += 1
                tokens.append(Token("float", source[i:j - 1], i, line))
            elif j < n and source[j] in "uUlL":
                j += 1
                tokens.append(Token("int", source[i:j - 1], i, line))
            else:
                kind = "float" if is_float else "int"
                tokens.append(Token(kind, source[i:j], i, line))
            i = j
            continue
        matched = False
        for p in _PUNCT3 + _PUNCT2:
            if source.startswith(p, i):
                tokens.append(Token("punct", p, i, line))
                i += len(p)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT1:
            tokens.append(Token("punct", ch, i, line))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r} at line {line}")
    tokens.append(Token("eof", "", n, line))
    return tokens
