"""Recursive-descent parser for the OpenCL-C subset.

Produces the same AST node classes the Lift code generator emits
(:mod:`repro.compiler.cast`), which means the whole pipeline —
generator, printer, parser, interpreter — shares one representation and
hand-written reference kernels go through exactly the same execution
path as generated ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.compiler import cast as c
from repro.opencl.lexer import Token, tokenize


class ParseError(Exception):
    pass


_SCALAR_TYPES = {"float", "int", "uint", "double", "bool", "void", "long", "size_t", "char"}
_VECTOR_WIDTHS = ("2", "3", "4", "8", "16")
_VECTOR_TYPES = {
    f"{base}{w}" for base in ("float", "int", "uint", "double") for w in _VECTOR_WIDTHS
}
_QUALIFIERS = {"const", "global", "local", "private", "restrict", "__global", "__local",
               "__private", "__constant", "constant", "volatile", "unsigned"}


@dataclass
class StructDef:
    name: str
    members: list  # [(type_name, member_name)]


@dataclass
class ParsedProgram:
    functions: dict = field(default_factory=dict)   # name -> CFunctionDef
    structs: dict = field(default_factory=dict)     # name -> StructDef
    kernels: list = field(default_factory=list)     # kernel names in order


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.structs: dict[str, StructDef] = {}

    # -- token helpers ----------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def accept(self, text: str) -> bool:
        if self.peek().text == text:
            self.pos += 1
            return True
        return False

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise ParseError(
                f"line {tok.line}: expected {text!r}, found {tok.text!r}"
            )
        return tok

    def _is_type_name(self, text: str) -> bool:
        return (
            text in _SCALAR_TYPES
            or text in _VECTOR_TYPES
            or text in self.structs
        )

    # -- top level ---------------------------------------------------------
    def parse_program(self) -> ParsedProgram:
        prog = ParsedProgram()
        while self.peek().kind != "eof":
            if self.peek().text == "typedef":
                struct = self.parse_typedef()
                prog.structs[struct.name] = struct
                continue
            fn = self.parse_function()
            prog.functions[fn.name] = fn
            if fn.is_kernel:
                prog.kernels.append(fn.name)
        return prog

    def parse_typedef(self) -> StructDef:
        self.expect("typedef")
        self.expect("struct")
        self.expect("{")
        members = []
        while not self.accept("}"):
            type_name = self.next().text
            member = self.next().text
            self.expect(";")
            members.append((type_name, member))
        name = self.next().text
        self.expect(";")
        struct = StructDef(name, members)
        self.structs[name] = struct
        return struct

    def parse_function(self) -> c.CFunctionDef:
        is_kernel = False
        while self.peek().text in ("kernel", "__kernel", "static", "inline"):
            if self.next().text in ("kernel", "__kernel"):
                is_kernel = True
        ret_type = self.next().text
        name = self.next().text
        self.expect("(")
        params = []
        if not self.accept(")"):
            while True:
                params.append(self.parse_param())
                if not self.accept(","):
                    break
            self.expect(")")
        body = self.parse_block()
        return c.CFunctionDef(ret_type, name, params, body, is_kernel)

    def parse_param(self) -> c.CParam:
        quals = []
        while self.peek().text in _QUALIFIERS:
            quals.append(self.next().text.lstrip("_"))
        type_name = self.next().text
        is_pointer = self.accept("*")
        is_restrict = False
        while self.peek().text in _QUALIFIERS:
            if self.next().text == "restrict":
                is_restrict = True
        name = self.next().text
        return c.CParam(type_name, name, tuple(quals), is_pointer, is_restrict)

    # -- statements ----------------------------------------------------------
    def parse_block(self) -> c.CBlock:
        self.expect("{")
        block = c.CBlock()
        while not self.accept("}"):
            block.add(self.parse_stmt())
        return block

    def parse_stmt(self) -> c.CStmt:
        tok = self.peek()
        if tok.text == "{":
            return self.parse_block()
        if tok.text == "for":
            return self.parse_for()
        if tok.text == "if":
            return self.parse_if()
        if tok.text == "while":
            return self.parse_while()
        if tok.text == "return":
            self.next()
            if self.accept(";"):
                return c.CReturn(None)
            value = self.parse_expr()
            self.expect(";")
            return c.CReturn(value)
        if tok.text == "barrier":
            self.next()
            self.expect("(")
            fence = self.parse_expr()
            self.expect(")")
            self.expect(";")
            fence_name = fence.name if isinstance(fence, c.CIdent) else "CLK_LOCAL_MEM_FENCE"
            return c.CBarrier(fence_name)
        if self._starts_decl():
            return self.parse_decl()
        stmt = self.parse_expr_or_assign()
        self.expect(";")
        return stmt

    def _starts_decl(self) -> bool:
        i = 0
        while self.peek(i).text in _QUALIFIERS:
            i += 1
        return self.peek(i).kind == "ident" and self._is_type_name(self.peek(i).text)

    def parse_decl(self) -> c.CStmt:
        qualifier = ""
        while self.peek().text in _QUALIFIERS:
            q = self.next().text.lstrip("_")
            if q in ("global", "local", "private", "constant"):
                qualifier = q
        type_name = self.next().text
        decls = []
        while True:
            is_pointer = self.accept("*")
            name = self.next().text
            array_size: Optional[int] = None
            init: Optional[c.CExpr] = None
            if self.accept("["):
                size_tok = self.next()
                if size_tok.kind != "int":
                    raise ParseError(
                        f"line {size_tok.line}: array sizes must be integer "
                        f"literals, found {size_tok.text!r}"
                    )
                array_size = int(size_tok.text)
                self.expect("]")
            if self.accept("="):
                init = self.parse_expr()
            decls.append(
                c.CDecl(type_name, name, qualifier, array_size, init, is_pointer)
            )
            if not self.accept(","):
                break
        self.expect(";")
        if len(decls) == 1:
            return decls[0]
        return c.CBlock(decls)

    def parse_for(self) -> c.CFor:
        self.expect("for")
        self.expect("(")
        init: Optional[c.CStmt] = None
        if not self.accept(";"):
            if self._starts_decl():
                init = self.parse_decl()
            else:
                init = self.parse_expr_or_assign()
                self.expect(";")
        cond: Optional[c.CExpr] = None
        if not self.accept(";"):
            cond = self.parse_expr()
            self.expect(";")
        step: Optional[c.CStmt] = None
        if self.peek().text != ")":
            step = self.parse_expr_or_assign()
        self.expect(")")
        body = self.parse_stmt()
        if not isinstance(body, c.CBlock):
            body = c.CBlock([body])
        return c.CFor(init, cond, step, body)

    def parse_while(self) -> c.CFor:
        self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        body = self.parse_stmt()
        if not isinstance(body, c.CBlock):
            body = c.CBlock([body])
        return c.CFor(None, cond, None, body)

    def parse_if(self) -> c.CIf:
        self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = self.parse_stmt()
        if not isinstance(then, c.CBlock):
            then = c.CBlock([then])
        otherwise = None
        if self.accept("else"):
            other = self.parse_stmt()
            otherwise = other if isinstance(other, c.CBlock) else c.CBlock([other])
        return c.CIf(cond, then, otherwise)

    def parse_expr_or_assign(self) -> c.CStmt:
        target = self.parse_expr()
        tok = self.peek().text
        if tok in ("=", "+=", "-=", "*=", "/="):
            self.next()
            value = self.parse_expr()
            return c.CAssign(target, value, tok)
        return c.CExprStmt(target)

    # -- expressions --------------------------------------------------------
    def parse_expr(self) -> c.CExpr:
        return self.parse_ternary()

    def parse_ternary(self) -> c.CExpr:
        cond = self.parse_binary(1)
        if self.accept("?"):
            then = self.parse_expr()
            self.expect(":")
            otherwise = self.parse_ternary()
            return c.CTernary(cond, then, otherwise)
        return cond

    _BIN_LEVELS = [
        ("||",),
        ("&&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse_binary(self, level: int) -> c.CExpr:
        if level > len(self._BIN_LEVELS):
            return self.parse_unary()
        ops = self._BIN_LEVELS[level - 1]
        lhs = self.parse_binary(level + 1)
        while self.peek().text in ops:
            op = self.next().text
            rhs = self.parse_binary(level + 1)
            lhs = c.CBinOp(op, lhs, rhs)
        return lhs

    def parse_unary(self) -> c.CExpr:
        tok = self.peek()
        if tok.text in ("-", "!", "+"):
            self.next()
            operand = self.parse_unary()
            if tok.text == "+":
                return operand
            return c.CUnOp(tok.text, operand)
        if tok.text == "(" and self._is_cast():
            self.next()
            type_name = self.next().text
            self.expect(")")
            if self.peek().text == "(" and type_name in _VECTOR_TYPES:
                self.next()
                items = [self.parse_expr()]
                while self.accept(","):
                    items.append(self.parse_expr())
                self.expect(")")
                if len(items) == 1:
                    return c.CVectorLiteral(type_name, items)
                return c.CVectorLiteral(type_name, items)
            return c.CCast(type_name, self.parse_unary())
        return self.parse_postfix()

    def _is_cast(self) -> bool:
        return (
            self.peek().text == "("
            and self.peek(1).kind == "ident"
            and self._is_type_name(self.peek(1).text)
            and self.peek(2).text == ")"
        )

    def parse_postfix(self) -> c.CExpr:
        expr = self.parse_primary()
        while True:
            if self.accept("["):
                index = self.parse_expr()
                self.expect("]")
                expr = c.CIndex(expr, index)
            elif self.peek().text == "." and self.peek(1).kind == "ident":
                self.next()
                member = self.next().text
                expr = c.CMember(expr, member)
            elif self.peek().text == "(" and isinstance(expr, c.CIdent):
                self.next()
                args = []
                if self.peek().text != ")":
                    args.append(self.parse_expr())
                    while self.accept(","):
                        args.append(self.parse_expr())
                self.expect(")")
                expr = c.CCall(expr.name, args)
            else:
                return expr

    def parse_primary(self) -> c.CExpr:
        tok = self.next()
        if tok.kind == "int":
            return c.CInt(int(tok.text, 0))
        if tok.kind == "float":
            return c.CFloat(float(tok.text))
        if tok.kind == "ident":
            return c.CIdent(tok.text)
        if tok.text == "(":
            inner = self.parse_expr()
            self.expect(")")
            return inner
        raise ParseError(f"line {tok.line}: unexpected token {tok.text!r}")


def parse(source: str) -> ParsedProgram:
    return Parser(source).parse_program()
