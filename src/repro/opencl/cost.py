"""Cost model: performance counters to estimated cycles.

The paper measures wall-clock kernel time on an AMD Radeon R9 295X2 and
an NVIDIA GTX Titan Black.  The simulator instead counts dynamic events
(ALU operations, memory traffic per address space, barriers) and weights
them per device profile.  The *weights* are order-of-magnitude figures
from vendor optimization guides for the two architectures (GCN Hawaii
and Kepler GK110): global memory costs tens of cycles per access even
when amortized, local memory a few cycles, integer division and modulo
are expensive multi-instruction sequences on both (which is exactly why
the paper's array-access simplification matters), and barriers cost tens
of cycles.

Only *relative* numbers are meaningful — Figure 8 plots generated-kernel
performance relative to the hand-written reference, and both sides are
measured with the same model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.opencl.interp import Counters


@dataclass(frozen=True)
class DeviceProfile:
    """Cost weights (cycles per event) for one simulated GPU."""

    name: str
    flop: float
    iop: float
    idivmod: float
    idivmod_const: float
    cached_load: float
    global_access: float
    local_access: float
    private_access: float
    barrier: float
    call: float
    branch: float
    loop_overhead: float

    @staticmethod
    def nvidia_titan_black() -> "DeviceProfile":
        """Kepler GK110: strong FP throughput, costly int div/mod.

        Barriers are cheap: the benchmark work-groups fit in one or two
        warps, and intra-warp barriers are nearly free — which is why the
        paper found barrier elimination to have little performance effect
        (section 7.4).  Calls cost nothing: the driver compiler inlines
        every helper function (their body operations are still counted).
        """
        return DeviceProfile(
            name="NVIDIA GTX Titan Black",
            flop=1.0,
            iop=1.0,
            idivmod=24.0,
            idivmod_const=6.0,
            cached_load=1.0,
            global_access=28.0,
            local_access=4.0,
            private_access=1.0,
            barrier=6.0,
            call=0.0,
            branch=2.0,
            loop_overhead=1.0,
        )

    @staticmethod
    def amd_r9_295x2() -> "DeviceProfile":
        """GCN Hawaii: slightly cheaper LDS, more expensive int division,
        wavefront-level barriers (see the NVIDIA profile's notes)."""
        return DeviceProfile(
            name="AMD Radeon R9 295X2",
            flop=1.0,
            iop=1.0,
            idivmod=32.0,
            idivmod_const=7.0,
            cached_load=1.0,
            global_access=32.0,
            local_access=3.0,
            private_access=1.0,
            barrier=5.0,
            call=0.0,
            branch=2.5,
            loop_overhead=1.0,
        )


def estimate_cycles(counters: Counters, profile: DeviceProfile) -> float:
    """Weighted sum of dynamic events — the simulated kernel 'runtime'."""
    return (
        counters.flops * profile.flop
        + counters.iops * profile.iop
        + counters.idivmod * profile.idivmod
        + counters.idivmod_const * profile.idivmod_const
        + counters.cached_loads * profile.cached_load
        + (counters.global_loads + counters.global_stores) * profile.global_access
        + (counters.local_loads + counters.local_stores) * profile.local_access
        + (counters.private_loads + counters.private_stores) * profile.private_access
        + counters.barriers * profile.barrier
        + counters.calls * profile.call
        + counters.branches * profile.branch
        + counters.loop_iterations * profile.loop_overhead
    )


DEVICES = {
    "nvidia": DeviceProfile.nvidia_titan_black(),
    "amd": DeviceProfile.amd_r9_295x2(),
}


# ---------------------------------------------------------------------------
# static (pre-execution) cost estimate
# ---------------------------------------------------------------------------

def static_program_cost(fun, size_env, profile: DeviceProfile) -> float:
    """Estimate total dynamic work of a Lift IL program *without* running it.

    The rewrite-space explorer uses this to prune clearly-bloated
    candidates (extra materializations, redundant copies) before paying
    for compilation and simulation.  It is a deliberately rough model of
    what :func:`estimate_cycles` would report:

    * every user-function application costs its body's operator count in
      flops, one load per argument and one store into the current
      address space;
    * map/reduce trip counts multiply the cost of their bodies (array
      lengths are evaluated against ``size_env``);
    * data-layout patterns charge a small per-element index-arithmetic
      surcharge (``gather``/``scatter``/``transpose`` use the constant
      div/mod weight — their index functions divide);
    * every ``mapLcl`` nest charges one barrier.

    Only the *ordering* of candidates matters; absolute numbers are
    meaningless.  Raises (``LiftTypeError``/``KeyError``) when the
    program cannot be typed — callers treat that like a compile failure.
    """
    from repro.ir.nodes import Lambda
    from repro.ir.typecheck import infer_types
    from repro.ir.visit import clone_decl

    prog = clone_decl(fun)
    assert isinstance(prog, Lambda)
    infer_types(prog.body)
    return _StaticEstimator(dict(size_env), profile).expr(prog.body, 1.0, "global")


class _StaticEstimator:
    """Recursive walker behind :func:`static_program_cost`."""

    #: Fallback trip count when a length does not evaluate (fresh probe
    #: variables introduced by ``iterate`` type inference).
    DEFAULT_TRIP = 16.0

    def __init__(self, size_env, profile: DeviceProfile):
        self.size_env = size_env
        self.profile = profile

    # -- helpers ---------------------------------------------------------
    def _trip(self, expr) -> float:
        """Length of ``expr``'s (array-typed) value, as a float."""
        from repro.arith import simplify
        from repro.types import ArrayType

        t = expr.type
        if not isinstance(t, ArrayType):
            return 1.0
        try:
            return float(simplify(t.length).evaluate(self.size_env))
        except Exception:
            return self.DEFAULT_TRIP

    @staticmethod
    def _fun_flops(uf) -> float:
        """Operator count of a C user-function body (rough flop proxy)."""
        ops = sum(uf.body.count(ch) for ch in "+-*/")
        return float(max(1, ops))

    def _store_cost(self, space: str) -> float:
        return {
            "global": self.profile.global_access,
            "local": self.profile.local_access,
            "private": self.profile.private_access,
        }[space]

    # -- traversal -------------------------------------------------------
    def expr(self, e, mult: float, space: str) -> float:
        from repro.ir.nodes import FunCall, Lambda, UserFun
        from repro.ir import patterns as pat

        if not isinstance(e, FunCall):
            return 0.0

        f = e.f
        while isinstance(f, pat.AddressSpaceWrapper):
            space = str(f.space)
            f = f.f

        if isinstance(f, Lambda):
            total = sum(self.expr(a, mult, space) for a in e.args)
            return total + self.expr(f.body, mult, space)

        if isinstance(f, UserFun):
            total = sum(self.expr(a, mult, space) for a in e.args)
            per_call = (
                self._fun_flops(f) * self.profile.flop
                + f.arity * self.profile.cached_load
                + self._store_cost(space)
            )
            return total + mult * per_call

        if isinstance(f, pat.AbstractMap):
            arg_cost = self.expr(e.args[0], mult, space)
            trip = self._trip(e.args[0])
            body = self._decl_body_cost(f.f, mult * trip, space)
            barrier = (
                mult * self.profile.barrier if isinstance(f, pat.MapLcl) else 0.0
            )
            return arg_cost + body + mult * trip * self.profile.loop_overhead + barrier

        if isinstance(f, pat.ReduceSeq):  # covers Reduce
            init_cost = self.expr(e.args[0], mult, "private")
            arr_cost = self.expr(e.args[1], mult, space)
            trip = self._trip(e.args[1])
            body = self._decl_body_cost(f.f, mult * trip, "private")
            return init_cost + arr_cost + body + mult * trip * self.profile.loop_overhead

        if isinstance(f, pat.Iterate):
            from repro.arith import simplify

            try:
                n = float(simplify(f.n).evaluate(self.size_env))
            except Exception:
                n = self.DEFAULT_TRIP
            arg_cost = self.expr(e.args[0], mult, space)
            body = self._decl_body_cost(f.f, mult * n, space)
            return arg_cost + body

        # Data-layout patterns: children plus an index-arithmetic surcharge.
        child_cost = sum(self.expr(a, mult, space) for a in e.args)
        surcharge = self.profile.iop
        if isinstance(f, (pat.Gather, pat.Scatter, pat.Transpose)):
            surcharge = self.profile.idivmod_const
        elif isinstance(f, (pat.Zip, pat.Get, pat.MakeTuple, pat.Head)):
            surcharge = 0.0
        return child_cost + mult * self._trip(e) * surcharge * 0.25

    def _decl_body_cost(self, f, mult: float, space: str) -> float:
        from repro.ir.nodes import Lambda
        from repro.ir import patterns as pat

        while isinstance(f, pat.AddressSpaceWrapper):
            space = str(f.space)
            f = f.f
        if isinstance(f, Lambda):
            return self.expr(f.body, mult, space)
        from repro.ir.nodes import UserFun

        if isinstance(f, UserFun):
            per_call = (
                self._fun_flops(f) * self.profile.flop
                + f.arity * self.profile.cached_load
                + self._store_cost(space)
            )
            return mult * per_call
        return 0.0
