"""Cost model: performance counters to estimated cycles and runtime.

The paper measures wall-clock kernel time on an AMD Radeon R9 295X2 and
an NVIDIA GTX Titan Black.  The simulator instead counts dynamic events
(ALU operations, memory traffic per address space, barriers) and weights
them per device profile.  The *weights* are order-of-magnitude figures
from vendor optimization guides for the two architectures (GCN Hawaii
and Kepler GK110): global memory costs tens of cycles per access even
when amortized, local memory a few cycles, integer division and modulo
are expensive multi-instruction sequences on both (which is exactly why
the paper's array-access simplification matters), and barriers cost tens
of cycles.

Two quantities come out of the model:

* :func:`estimate_cycles` — the weighted sum of *total* dynamic work.
  Figure 8 plots generated-kernel performance relative to the
  hand-written reference at identical launch geometry, so total work is
  the right quantity there (both sides divide by the same parallelism).
* :func:`estimate_runtime` — total work divided by the *effective
  parallelism* of the launch (work-items, warp-padded and capped by the
  device's occupancy limit).  Schedule search must use this one: a 2-D
  tiled schedule does slightly *more* total work than a flat 1-D one
  (staging copies, index arithmetic) but spreads it over many more
  threads — ranking by total work alone can never prefer the wider
  schedule the paper's Table 1 rows 11-12 rely on.

Only *relative* numbers are meaningful in either quantity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.opencl.interp import Counters


@dataclass(frozen=True)
class DeviceProfile:
    """Cost weights (cycles per event) plus the parallel-capacity figures
    of one simulated GPU."""

    name: str
    flop: float
    iop: float
    idivmod: float
    idivmod_const: float
    cached_load: float
    global_access: float
    local_access: float
    private_access: float
    barrier: float
    call: float
    branch: float
    loop_overhead: float
    #: SIMD execution width: work-groups occupy hardware in units of
    #: this many lanes (warps / wavefronts), so a 10-thread group pays
    #: for a full warp.
    warp_width: int = 32
    #: Number of compute units (SMX / CU).
    compute_units: int = 16
    #: Maximum resident threads per compute unit (the occupancy limit).
    max_threads_per_cu: int = 2048
    #: Peak single-precision throughput (GFLOP/s) — the roofline's flat
    #: ceiling.  Vendor datasheet figures, like the cycle weights.
    peak_gflops: float = 1000.0
    #: Peak DRAM bandwidth (GB/s) — the roofline's sloped ceiling.
    peak_bandwidth_gbs: float = 100.0

    @staticmethod
    def nvidia_titan_black() -> "DeviceProfile":
        """Kepler GK110: strong FP throughput, costly int div/mod.

        Barriers are cheap: the benchmark work-groups fit in one or two
        warps, and intra-warp barriers are nearly free — which is why the
        paper found barrier elimination to have little performance effect
        (section 7.4).  Calls cost nothing: the driver compiler inlines
        every helper function (their body operations are still counted).
        15 SMX at 2048 resident threads each, 32-wide warps.
        """
        return DeviceProfile(
            name="NVIDIA GTX Titan Black",
            flop=1.0,
            iop=1.0,
            idivmod=24.0,
            idivmod_const=6.0,
            cached_load=1.0,
            global_access=28.0,
            local_access=4.0,
            private_access=1.0,
            barrier=6.0,
            call=0.0,
            branch=2.0,
            loop_overhead=1.0,
            warp_width=32,
            compute_units=15,
            max_threads_per_cu=2048,
            peak_gflops=5121.0,
            peak_bandwidth_gbs=336.0,
        )

    @staticmethod
    def amd_r9_295x2() -> "DeviceProfile":
        """GCN Hawaii: slightly cheaper LDS, more expensive int division,
        wavefront-level barriers (see the NVIDIA profile's notes).
        44 CUs at 40 resident wavefronts of 64 lanes each."""
        return DeviceProfile(
            name="AMD Radeon R9 295X2",
            flop=1.0,
            iop=1.0,
            idivmod=32.0,
            idivmod_const=7.0,
            cached_load=1.0,
            global_access=32.0,
            local_access=3.0,
            private_access=1.0,
            barrier=5.0,
            call=0.0,
            branch=2.5,
            loop_overhead=1.0,
            warp_width=64,
            compute_units=44,
            max_threads_per_cu=2560,
            peak_gflops=5632.0,
            peak_bandwidth_gbs=320.0,
        )

    def occupancy_limit(self) -> int:
        """Maximum concurrently resident threads on the whole device."""
        return self.compute_units * self.max_threads_per_cu

    def ridge_point(self) -> float:
        """Arithmetic intensity (flop/byte) where the roofline's memory
        slope meets the compute ceiling.  Kernels below it are
        bandwidth-bound; above it, compute-bound."""
        return self.peak_gflops / self.peak_bandwidth_gbs


def estimate_cycles(counters: Counters, profile: DeviceProfile) -> float:
    """Weighted sum of dynamic events — total simulated work."""
    return (
        counters.flops * profile.flop
        + counters.iops * profile.iop
        + counters.idivmod * profile.idivmod
        + counters.idivmod_const * profile.idivmod_const
        + counters.cached_loads * profile.cached_load
        + (counters.global_loads + counters.global_stores) * profile.global_access
        + (counters.local_loads + counters.local_stores) * profile.local_access
        + (counters.private_loads + counters.private_stores) * profile.private_access
        + counters.barriers * profile.barrier
        + counters.calls * profile.call
        + counters.branches * profile.branch
        + counters.loop_iterations * profile.loop_overhead
    )


def effective_parallelism(
    profile: DeviceProfile, global_size, local_size
) -> float:
    """How many work-items of this launch actually run concurrently.

    Work-groups occupy the hardware in whole warps, so a partially
    filled warp wastes lanes (the capacity shrinks by the utilization
    factor); the device can keep at most :meth:`DeviceProfile.
    occupancy_limit` threads resident.  The result is clamped to at
    least one."""
    items = 1
    for g in tuple(global_size):
        items *= max(1, int(g))
    wg = 1
    for l in tuple(local_size):
        wg *= max(1, int(l))
    padded_wg = profile.warp_width * math.ceil(wg / profile.warp_width)
    utilization = wg / padded_wg
    capacity = profile.occupancy_limit() * utilization
    return float(max(1.0, min(items, capacity)))


def runtime_from_cycles(
    cycles: float, profile: DeviceProfile, global_size, local_size
) -> float:
    """Divide already-weighted total work by the launch's effective
    parallelism (used when the weighted cycles come from a cache)."""
    return cycles / effective_parallelism(profile, global_size, local_size)


def estimate_runtime(
    counters: Counters, profile: DeviceProfile, global_size, local_size
) -> float:
    """Parallelism-aware runtime estimate: total weighted work divided by
    the launch's effective parallelism.  This is what schedule search
    ranks by — see the module docstring."""
    return runtime_from_cycles(
        estimate_cycles(counters, profile), profile, global_size, local_size
    )


DEVICES = {
    "nvidia": DeviceProfile.nvidia_titan_black(),
    "amd": DeviceProfile.amd_r9_295x2(),
}


# ---------------------------------------------------------------------------
# static (pre-execution) cost estimate
# ---------------------------------------------------------------------------

def static_program_cost(
    fun, size_env, profile: DeviceProfile, local_size=None, global_size=None
) -> float:
    """Estimate the *critical-path* cost of a Lift IL program without
    running it.

    The rewrite-space explorer uses this to prune clearly-bloated
    candidates and to rank schedules before paying for compilation and
    simulation.  Unlike its total-work predecessor the model is
    parallelism-aware:

    * trip counts of **sequential** patterns multiply the cost of their
      bodies, exactly as before;
    * trip counts of **parallel** patterns (``mapGlb``/``mapWrg``/
      ``mapLcl``) do *not* — their iterations run on distinct threads.
      Each parallel map only charges the serialization factor
      ``ceil(trip / width)`` where the width comes from the launch
      geometry (``local_size``/``global_size``, when given) — a
      ``mapLcl`` over 128 elements with 64 local threads costs two
      iterations per thread, not 128;
    * user-function argument loads are priced by the address space their
      data actually comes from, tracked through views and ``toLocal``/
      ``toPrivate`` copies — so staging a reused tile in local memory
      pays off statically, exactly like it does in measured counters;
    * every ``mapLcl`` nest charges one barrier, data-layout patterns a
      small per-element index-arithmetic surcharge, and launches larger
      than the device's occupancy limit serialize by the overflow
      factor.

    Only the *ordering* of candidates matters; absolute numbers are
    meaningless.  Raises (``LiftTypeError``/``KeyError``) when the
    program cannot be typed — callers treat that like a compile failure.
    """
    from repro.ir.nodes import Lambda
    from repro.ir.typecheck import infer_types
    from repro.ir.visit import clone_decl

    prog = clone_decl(fun)
    assert isinstance(prog, Lambda)
    infer_types(prog.body)
    estimator = _StaticEstimator(dict(size_env), profile, local_size, global_size)
    cost = estimator.expr(prog.body, 1.0, "global", {})
    if global_size is not None:
        items = 1
        for g in tuple(global_size):
            items *= max(1, int(g))
        overflow = items / profile.occupancy_limit()
        if overflow > 1.0:
            cost *= overflow
    return cost


class _StaticEstimator:
    """Recursive walker behind :func:`static_program_cost`.

    ``expr`` carries three pieces of context: ``mult`` — the serialized
    per-thread repetition count of the current position; ``space`` — the
    address space results are written to; ``env`` — a map from bound
    parameter ids to the address space their data comes from (how
    ``toLocal`` staging becomes visible to load pricing).
    """

    #: Fallback trip count when a length does not evaluate (fresh probe
    #: variables introduced by ``iterate`` type inference).
    DEFAULT_TRIP = 16.0
    #: Per-dimension width cap used when no launch geometry is given.
    DEFAULT_WIDTH = 64

    def __init__(self, size_env, profile: DeviceProfile,
                 local_size=None, global_size=None):
        self.size_env = size_env
        self.profile = profile
        self.local_size = tuple(local_size) if local_size is not None else None
        self.global_size = tuple(global_size) if global_size is not None else None

    # -- helpers ---------------------------------------------------------
    def _trip(self, expr) -> float:
        """Length of ``expr``'s (array-typed) value, as a float."""
        from repro.arith import simplify
        from repro.types import ArrayType

        t = expr.type
        if not isinstance(t, ArrayType):
            return 1.0
        try:
            return float(simplify(t.length).evaluate(self.size_env))
        except Exception:
            return self.DEFAULT_TRIP

    @staticmethod
    def _fun_flops(uf) -> float:
        """Operator count of a C user-function body (rough flop proxy)."""
        ops = sum(uf.body.count(ch) for ch in "+-*/")
        return float(max(1, ops))

    def _access_cost(self, space: str) -> float:
        return {
            "global": self.profile.global_access,
            "local": self.profile.local_access,
            "private": self.profile.private_access,
            "scalar": self.profile.cached_load,
        }[space]

    def _parallel_width(self, f) -> float:
        """Concurrent iterations the launch geometry grants this map."""
        from repro.ir import patterns as pat

        dim = f.dim
        if isinstance(f, pat.MapLcl):
            if self.local_size is not None:
                return float(max(1, self.local_size[dim]))
        elif isinstance(f, pat.MapWrg):
            if self.local_size is not None and self.global_size is not None:
                groups = self.global_size[dim] // max(1, self.local_size[dim])
                return float(max(1, groups))
        elif isinstance(f, pat.MapGlb):
            if self.global_size is not None:
                return float(max(1, self.global_size[dim]))
        return float(self.DEFAULT_WIDTH)

    def _source_space(self, e, env) -> str:
        """The address space ``e``'s data is read from, tracked through
        views, tuples and address-space copies."""
        from repro.ir.nodes import FunCall, Lambda, Literal, Param, UserFun
        from repro.ir import patterns as pat
        from repro.types import ArrayType

        if isinstance(e, Literal):
            return "scalar"
        if isinstance(e, Param):
            space = env.get(id(e))
            if space is not None:
                return space
            return "global" if isinstance(e.type, ArrayType) else "scalar"
        if isinstance(e, FunCall):
            f = e.f
            if isinstance(f, pat.AddressSpaceWrapper):
                return str(f.space)
            if isinstance(f, UserFun):
                return "private"
            if isinstance(f, pat.ReduceSeq):
                return "private"
            if isinstance(f, Lambda):
                return self._source_space(f.body, env)
            if e.args:
                return self._source_space(e.args[0], env)
        return "global"

    # -- traversal -------------------------------------------------------
    def expr(self, e, mult: float, space: str, env: dict) -> float:
        from repro.ir.nodes import FunCall, Lambda, UserFun
        from repro.ir import patterns as pat

        if not isinstance(e, FunCall):
            return 0.0

        f = e.f
        while isinstance(f, pat.AddressSpaceWrapper):
            space = str(f.space)
            f = f.f

        if isinstance(f, Lambda):
            total = sum(self.expr(a, mult, space, env) for a in e.args)
            inner = dict(env)
            for p, a in zip(f.params, e.args):
                inner[id(p)] = self._source_space(a, env)
            return total + self.expr(f.body, mult, space, inner)

        if isinstance(f, UserFun):
            total = sum(self.expr(a, mult, space, env) for a in e.args)
            loads = sum(
                self._access_cost(self._source_space(a, env)) for a in e.args
            )
            per_call = (
                self._fun_flops(f) * self.profile.flop
                + loads
                + self._access_cost(space)
            )
            return total + mult * per_call

        if isinstance(f, pat.AbstractMap):
            arg_cost = self.expr(e.args[0], mult, space, env)
            trip = self._trip(e.args[0])
            if isinstance(f, pat.ParallelMap):
                width = self._parallel_width(f)
                per_thread = max(1.0, math.ceil(trip / width))
            else:
                per_thread = trip
            body = self._decl_body_cost(
                f.f, mult * per_thread, space, env,
                arg_space=self._source_space(e.args[0], env),
            )
            barrier = (
                mult * self.profile.barrier if isinstance(f, pat.MapLcl) else 0.0
            )
            return (
                arg_cost
                + body
                + mult * per_thread * self.profile.loop_overhead
                + barrier
            )

        if isinstance(f, pat.ReduceSeq):  # covers Reduce
            init_cost = self.expr(e.args[0], mult, "private", env)
            arr_cost = self.expr(e.args[1], mult, space, env)
            trip = self._trip(e.args[1])
            body = self._decl_body_cost(
                f.f, mult * trip, "private", env,
                arg_space=self._source_space(e.args[1], env),
                acc_space="private",
            )
            return (
                init_cost + arr_cost + body
                + mult * trip * self.profile.loop_overhead
            )

        if isinstance(f, pat.Iterate):
            from repro.arith import simplify

            try:
                n = float(simplify(f.n).evaluate(self.size_env))
            except Exception:
                n = self.DEFAULT_TRIP
            arg_cost = self.expr(e.args[0], mult, space, env)
            body = self._decl_body_cost(
                f.f, mult * n, space, env,
                arg_space=self._source_space(e.args[0], env),
            )
            return arg_cost + body

        # Data-layout patterns: children plus an index-arithmetic surcharge.
        child_cost = sum(self.expr(a, mult, space, env) for a in e.args)
        surcharge = self.profile.iop
        if isinstance(f, (pat.Gather, pat.Scatter, pat.Transpose)):
            surcharge = self.profile.idivmod_const
        elif isinstance(f, (pat.Zip, pat.Get, pat.MakeTuple, pat.Head)):
            surcharge = 0.0
        return child_cost + mult * self._trip(e) * surcharge * 0.25

    def _decl_body_cost(
        self, f, mult: float, space: str, env: dict,
        arg_space: str = "global", acc_space: str = None,
    ) -> float:
        from repro.ir.nodes import Lambda, UserFun
        from repro.ir import patterns as pat

        while isinstance(f, pat.AddressSpaceWrapper):
            space = str(f.space)
            f = f.f
        if isinstance(f, Lambda):
            inner = dict(env)
            if acc_space is not None and len(f.params) == 2:
                inner[id(f.params[0])] = acc_space
                inner[id(f.params[1])] = arg_space
            elif f.params:
                inner[id(f.params[0])] = arg_space
            return self.expr(f.body, mult, space, inner)
        if isinstance(f, UserFun):
            per_call = (
                self._fun_flops(f) * self.profile.flop
                + f.arity * self._access_cost(arg_space)
                + self._access_cost(space)
            )
            return mult * per_call
        return 0.0
