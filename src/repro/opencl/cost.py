"""Cost model: performance counters to estimated cycles.

The paper measures wall-clock kernel time on an AMD Radeon R9 295X2 and
an NVIDIA GTX Titan Black.  The simulator instead counts dynamic events
(ALU operations, memory traffic per address space, barriers) and weights
them per device profile.  The *weights* are order-of-magnitude figures
from vendor optimization guides for the two architectures (GCN Hawaii
and Kepler GK110): global memory costs tens of cycles per access even
when amortized, local memory a few cycles, integer division and modulo
are expensive multi-instruction sequences on both (which is exactly why
the paper's array-access simplification matters), and barriers cost tens
of cycles.

Only *relative* numbers are meaningful — Figure 8 plots generated-kernel
performance relative to the hand-written reference, and both sides are
measured with the same model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.opencl.interp import Counters


@dataclass(frozen=True)
class DeviceProfile:
    """Cost weights (cycles per event) for one simulated GPU."""

    name: str
    flop: float
    iop: float
    idivmod: float
    idivmod_const: float
    cached_load: float
    global_access: float
    local_access: float
    private_access: float
    barrier: float
    call: float
    branch: float
    loop_overhead: float

    @staticmethod
    def nvidia_titan_black() -> "DeviceProfile":
        """Kepler GK110: strong FP throughput, costly int div/mod.

        Barriers are cheap: the benchmark work-groups fit in one or two
        warps, and intra-warp barriers are nearly free — which is why the
        paper found barrier elimination to have little performance effect
        (section 7.4).  Calls cost nothing: the driver compiler inlines
        every helper function (their body operations are still counted).
        """
        return DeviceProfile(
            name="NVIDIA GTX Titan Black",
            flop=1.0,
            iop=1.0,
            idivmod=24.0,
            idivmod_const=6.0,
            cached_load=1.0,
            global_access=28.0,
            local_access=4.0,
            private_access=1.0,
            barrier=6.0,
            call=0.0,
            branch=2.0,
            loop_overhead=1.0,
        )

    @staticmethod
    def amd_r9_295x2() -> "DeviceProfile":
        """GCN Hawaii: slightly cheaper LDS, more expensive int division,
        wavefront-level barriers (see the NVIDIA profile's notes)."""
        return DeviceProfile(
            name="AMD Radeon R9 295X2",
            flop=1.0,
            iop=1.0,
            idivmod=32.0,
            idivmod_const=7.0,
            cached_load=1.0,
            global_access=32.0,
            local_access=3.0,
            private_access=1.0,
            barrier=5.0,
            call=0.0,
            branch=2.5,
            loop_overhead=1.0,
        )


def estimate_cycles(counters: Counters, profile: DeviceProfile) -> float:
    """Weighted sum of dynamic events — the simulated kernel 'runtime'."""
    return (
        counters.flops * profile.flop
        + counters.iops * profile.iop
        + counters.idivmod * profile.idivmod
        + counters.idivmod_const * profile.idivmod_const
        + counters.cached_loads * profile.cached_load
        + (counters.global_loads + counters.global_stores) * profile.global_access
        + (counters.local_loads + counters.local_stores) * profile.local_access
        + (counters.private_loads + counters.private_stores) * profile.private_access
        + counters.barriers * profile.barrier
        + counters.calls * profile.call
        + counters.branches * profile.branch
        + counters.loop_iterations * profile.loop_overhead
    )


DEVICES = {
    "nvidia": DeviceProfile.nvidia_titan_black(),
    "amd": DeviceProfile.amd_r9_295x2(),
}
