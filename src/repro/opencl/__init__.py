"""A simulated OpenCL platform.

The paper evaluates generated kernels on two physical GPUs; this package
is the substitution substrate (see DESIGN.md): a lexer and parser for the
OpenCL-C subset the Lift compiler emits, an NDRange interpreter with
correct work-group/barrier semantics, hardware-style performance
counters, and a cost model with per-device profiles.
"""

from repro.opencl.runtime import Buffer, OpenCLProgram, launch
from repro.opencl.interp import Counters
from repro.opencl.cost import DeviceProfile, estimate_cycles

__all__ = [
    "Buffer",
    "Counters",
    "DeviceProfile",
    "OpenCLProgram",
    "estimate_cycles",
    "launch",
]
