"""A simulated OpenCL platform.

The paper evaluates generated kernels on two physical GPUs; this package
is the substitution substrate (see DESIGN.md): a lexer and parser for the
OpenCL-C subset the Lift compiler emits, an NDRange interpreter with
correct work-group/barrier semantics, hardware-style performance
counters, and a cost model with per-device profiles.
"""

from repro.opencl.runtime import Buffer, OpenCLProgram, launch
from repro.opencl.interp import Counters
from repro.opencl.cost import DeviceProfile, estimate_cycles
from repro.opencl.simt import VectorizationError, analyze_kernel

__all__ = [
    "Buffer",
    "Counters",
    "DeviceProfile",
    "OpenCLProgram",
    "VectorizationError",
    "analyze_kernel",
    "estimate_cycles",
    "launch",
]
