"""Closure compilation for the lane-batched SIMT engine.

The interpretive vector engine of :mod:`repro.opencl.simt` re-walks the
kernel AST for every block of work-groups: each statement pays a type
dispatch, each operator a string comparison, each builtin a table
lookup.  After the PR 1/PR 2 batching work those dispatch costs — not
the numpy arithmetic — dominate the simulator, because every block (and
every launch of the autotune/explore loops) repeats them unchanged.

This module pays the walk **once per kernel**: the AST is lowered into a
pipeline of Python closures over the lane-array runtime of
:class:`repro.opencl.simt._Block`.  Compilation resolves statically
everything the interpreter re-derives dynamically:

* statement and expression dispatch (one closure per node, built once);
* operator selection (``+`` compiles to ``operator.add``, comparisons to
  their ufunc, ``/`` to the int/float dispatch only);
* geometry builtins (``get_global_id(0)`` becomes an attribute read);
* ``vload``/``vstore`` widths, math-builtin implementations and flop
  costs, struct member templates, declaration dtypes;
* helper functions (compiled once, called with by-value argument
  copies and their own return-mask frame);
* group-uniform conditions: a loop or branch condition that evaluates to
  a Python scalar skips the mask-materialization entirely (the
  interpreter broadcasts it to a full lane mask and re-ands).

The compiled pipeline is segmented at top-level barriers — one closure
sequence per barrier-delimited region — mirroring how the scalar engine
schedules whole segments between synchronization points.  Barriers
nested in (group-uniform) loops stay inside their segment's loop
closure.

Closures run against a :class:`~repro.opencl.simt._Block` instance and
call the exact same memory, merge and counter helpers as the
interpretive walk, so compiled execution is bitwise-identical by
construction: same buffer contents, same :class:`Counters`.  Anything
the compiler cannot express raises :class:`CompileUnsupported` at
compile time and the launcher falls back to the interpretive vector
walk (and from there, dynamically, to the scalar reference
interpreter) — the three execution tiers behind ``engine="auto"``.

Pipelines are cached on the parsed program (which the runtime shares
per source through an LRU), alongside the vectorizability analysis, so
the thousands of launches an exploration run performs compile each
kernel exactly once.
"""

from __future__ import annotations

import operator
import threading
import time
from typing import Callable, Optional

import numpy as np

from repro.obs import profile as _obs_profile

from repro.compiler import cast as c
from repro.opencl.cparser import ParsedProgram
from repro.opencl.interp import ExecError
from repro.opencl.simt import (
    RowPtr,
    VPtr,
    VectorUnsupported,
    _Block,
    _Frame,
    _VMATH,
    _is_floatish,
    _is_int_like,
    _is_uniform,
    _is_vload,
    _is_vstore,
    _vec_width,
    analyze_kernel,
)
from repro.opencl.simt import _VEC_MEMBERS, _UNSUPPORTED_BUILTINS

_align = _Block._align


class CompileUnsupported(Exception):
    """Static refusal: run the interpretive vector walk instead."""


# Expression closures take ``(block, mask, active_count)`` and return a
# value; statement closures additionally take the function's return
# frame: ``(block, mask, active_count, frame)``.
ExprFn = Callable
StmtFn = Callable


_GEOMETRY_FIELDS = {
    "get_global_id": "gid",
    "get_local_id": "lid",
    "get_group_id": "group_ids",
    "get_local_size": "local_size",
    "get_global_size": "global_size",
    "get_num_groups": "num_groups",
}

_CMP_UFUNC = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    ">": operator.gt,
    "<=": operator.le,
    ">=": operator.ge,
}

_ARITH_OP = {"+": operator.add, "-": operator.sub, "*": operator.mul}


class _Ctx:
    """Per-pipeline compilation state (helper memoization)."""

    def __init__(self, parsed: ParsedProgram):
        self.parsed = parsed
        self.helpers: dict = {}
        self.in_progress: set = set()


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

def _compile_expr(e, ctx: _Ctx) -> ExprFn:
    t = type(e)
    if t is c.CInt:
        value = e.value
        return lambda b, m, n: value
    if t is c.CFloat:
        value = e.value
        return lambda b, m, n: value
    if t is c.CIdent:
        name = e.name

        def load_ident(b, m, n):
            try:
                return b.env[name]
            except KeyError:
                raise ExecError(f"undefined identifier {name!r}") from None

        return load_ident
    if t is c.CBinOp:
        return _compile_binop(e, ctx)
    if t is c.CUnOp:
        operand = _compile_expr(e.operand, ctx)
        if e.op == "-":
            return lambda b, m, n: -operand(b, m, n)
        if e.op == "!":
            return lambda b, m, n: ~b._as_bool(operand(b, m, n), m)
        raise CompileUnsupported(f"unknown unary operator {e.op}")
    if t is c.CTernary:
        return _compile_ternary(e, ctx)
    if t is c.CIndex:
        return _compile_index(e, ctx)
    if t is c.CMember:
        return _compile_member(e, ctx)
    if t is c.CCall:
        return _compile_call(e, ctx)
    if t is c.CCast:
        return _compile_cast(e, ctx)
    if t is c.CVectorLiteral:
        return _compile_vector_literal(e, ctx)
    raise CompileUnsupported(f"cannot compile expression {e!r}")


def _compile_binop(e: c.CBinOp, ctx: _Ctx) -> ExprFn:
    op = e.op
    lhs = _compile_expr(e.lhs, ctx)
    rhs = _compile_expr(e.rhs, ctx)

    if op == "&&" or op == "||":
        is_and = op == "&&"

        def short_circuit(b, m, n):
            lb = b._as_bool(lhs(b, m, n), m)
            m2 = (m & lb) if is_and else (m & ~lb)
            n2 = int(np.count_nonzero(m2))
            if n2:
                rb = b._as_bool(rhs(b, m2, n2), m2)
            else:
                rb = np.zeros(b.L, dtype=bool)
            return (lb & rb) if is_and else (lb | rb)

        return short_circuit

    cmp = _CMP_UFUNC.get(op)
    if cmp is not None:

        def compare(b, m, n):
            l = lhs(b, m, n)
            r = rhs(b, m, n)
            b.counters.iops += n
            l, r = _align(l, r)
            return cmp(l, r)

        return compare

    value_of, count = _binop_parts(op, type(e.rhs) is c.CInt)

    def arith(b, m, n):
        l = lhs(b, m, n)
        r = rhs(b, m, n)
        count(b, l, r, n)
        return value_of(b, l, r, m)

    return arith


def _binop_parts(op: str, const_rhs: bool):
    """(value_of(b, l, r, m), count(b, l, r, n)) for one operator.

    Mirrors ``_Block._binop_value`` / ``_Block._count_binop`` with the
    operator dispatch resolved at compile time.
    """
    simple = _ARITH_OP.get(op)
    if simple is not None:
        is_add_sub = op in ("+", "-")

        def value_of(b, l, r, m):
            if isinstance(l, (VPtr, RowPtr)):
                if not is_add_sub:
                    raise ExecError(f"unsupported pointer operation {op}")
                return l.plus(r) if op == "+" else l.plus(-r)
            l, r = _align(l, r)
            return simple(l, r)

        def count(b, l, r, n):
            if _is_floatish(l) or _is_floatish(r):
                b.counters.flops += max(_vec_width(l), _vec_width(r)) * n
            else:
                b.counters.iops += n

        return value_of, count

    if op == "/" or op == "%":
        is_div = op == "/"

        def value_of(b, l, r, m):
            if isinstance(l, (VPtr, RowPtr)):
                raise ExecError(f"unsupported pointer operation {op}")
            if _is_int_like(l) and _is_int_like(r):
                return b._int_div(l, r, m) if is_div else b._int_mod(l, r, m)
            l, r = _align(l, r)
            return l / r if is_div else np.fmod(l, r)

        def count(b, l, r, n):
            counters = b.counters
            if _is_floatish(l) or _is_floatish(r):
                counters.flops += max(_vec_width(l), _vec_width(r)) * n
            elif (
                const_rhs
                and _is_int_like(r)
                and _is_uniform(r)
                and int(r) > 0
                and (int(r) & (int(r) - 1)) == 0
            ):
                counters.iops += n
            elif const_rhs:
                counters.idivmod_const += n
            else:
                counters.idivmod += n

        return value_of, count

    raise CompileUnsupported(f"unknown operator {op}")


def _compile_ternary(e: c.CTernary, ctx: _Ctx) -> ExprFn:
    cond = _compile_expr(e.cond, ctx)
    then = _compile_expr(e.then, ctx)
    other = _compile_expr(e.otherwise, ctx)

    def ternary(b, m, n):
        b.counters.branches += n
        cv = b._as_bool(cond(b, m, n), m)
        mt = m & cv
        nt = int(np.count_nonzero(mt))
        nf = n - nt
        if nf == 0:
            return then(b, mt, nt)
        mf = m & ~cv
        if nt == 0:
            return other(b, mf, nf)
        tv = then(b, mt, nt)
        fv = other(b, mf, nf)
        return b._merge(fv, tv, cv)

    return ternary


def _compile_index(e: c.CIndex, ctx: _Ctx) -> ExprFn:
    base = _compile_expr(e.base, ctx)
    index = _compile_expr(e.index, ctx)

    def gather(b, m, n):
        bv = base(b, m, n)
        iv = index(b, m, n)
        if isinstance(bv, (VPtr, RowPtr)):
            return b._gather(bv, iv, m, n)
        if isinstance(bv, np.ndarray) and bv.ndim == 2:
            if _is_uniform(iv):
                return bv[:, int(iv)]
            idx = np.where(m, iv, 0)
            return np.take_along_axis(bv, idx[:, None], 1)[:, 0]
        raise ExecError(f"cannot index {bv!r}")

    return gather


def _compile_member(e: c.CMember, ctx: _Ctx) -> ExprFn:
    base = _compile_expr(e.base, ctx)
    member = e.member
    vec_col = _VEC_MEMBERS.get(member)
    # Struct members may also start with "s" (e.g. ``p.scale``); only a
    # valid hex suffix is a vector swizzle, and the column only applies
    # when the runtime container actually is a vector.
    hex_col = None
    if member.startswith("s") and member[1:]:
        try:
            hex_col = int(member[1:], 16)
        except ValueError:
            hex_col = None

    def get_member(b, m, n):
        container = base(b, m, n)
        if isinstance(container, dict):
            return container[member]
        if isinstance(container, np.ndarray) and container.ndim == 2:
            if vec_col is not None:
                return container[:, vec_col]
            if hex_col is not None:
                return container[:, hex_col]
            if member == "lo":
                return container[:, : container.shape[1] // 2].copy()
            if member == "hi":
                return container[:, container.shape[1] // 2 :].copy()
        raise ExecError(f"cannot take member {member} of {container!r}")

    return get_member


def _compile_cast(e: c.CCast, ctx: _Ctx) -> ExprFn:
    operand = _compile_expr(e.operand, ctx)
    if e.type_name in ("int", "uint", "long"):

        def to_int(b, m, n):
            v = operand(b, m, n)
            if isinstance(v, np.ndarray):
                return v.astype(np.int64)  # truncates toward zero, like C
            return int(v)

        return to_int
    if e.type_name in ("float", "double"):

        def to_float(b, m, n):
            v = operand(b, m, n)
            if isinstance(v, np.ndarray):
                return v.astype(np.float64)
            return float(v)

        return to_float
    return operand


def _compile_vector_literal(e: c.CVectorLiteral, ctx: _Ctx) -> ExprFn:
    width = int("".join(ch for ch in e.type_name if ch.isdigit()))
    items = [_compile_expr(i, ctx) for i in e.items]

    if len(items) == 1:
        single = items[0]

        def splat(b, m, n):
            value = single(b, m, n)
            out = np.empty((b.L, width), dtype=np.float64)
            for col in range(width):
                out[:, col] = value
            return out

        return splat

    if len(items) != width:
        raise CompileUnsupported(
            f"vector literal {e.type_name} with {len(items)} items"
        )

    def build(b, m, n):
        out = np.empty((b.L, width), dtype=np.float64)
        for col, item in enumerate(items):
            out[:, col] = item(b, m, n)
        return out

    return build


# -- calls ------------------------------------------------------------------

def _compile_call(e: c.CCall, ctx: _Ctx) -> ExprFn:
    name = e.func

    if name.startswith("get_"):
        field = _GEOMETRY_FIELDS.get(name)
        if field is None:
            raise CompileUnsupported(f"unknown geometry builtin {name!r}")
        if not e.args:
            return lambda b, m, n: getattr(b, field)[0]
        if type(e.args[0]) is c.CInt:
            dim = e.args[0].value
            return lambda b, m, n: getattr(b, field)[dim]
        dim_c = _compile_expr(e.args[0], ctx)

        def dynamic_dim(b, m, n):
            dim = dim_c(b, m, n)
            if not _is_uniform(dim):
                raise VectorUnsupported("lane-varying geometry dimension")
            return getattr(b, field)[int(dim)]

        return dynamic_dim

    if _is_vload(name):
        width = int(name[5:])
        offset = _compile_expr(e.args[0], ctx)
        pointer = _compile_expr(e.args[1], ctx)

        def vload(b, m, n):
            off = offset(b, m, n)
            ptr = pointer(b, m, n)
            assert isinstance(ptr, (VPtr, RowPtr))
            return b._vload(ptr, off, width, m, n)

        return vload

    if _is_vstore(name):
        width = int(name[6:])
        value = _compile_expr(e.args[0], ctx)
        offset = _compile_expr(e.args[1], ctx)
        pointer = _compile_expr(e.args[2], ctx)

        def vstore(b, m, n):
            v = value(b, m, n)
            off = offset(b, m, n)
            ptr = pointer(b, m, n)
            assert isinstance(ptr, (VPtr, RowPtr))
            b._vstore(ptr, off, width, v, m, n)
            return None

        return vstore

    if name in _UNSUPPORTED_BUILTINS:
        raise CompileUnsupported(f"builtin {name!r}")

    builtin = _VMATH.get(name)
    if builtin is not None:
        cost, fn = builtin
        arg_cs = [_compile_expr(a, ctx) for a in e.args]
        if len(arg_cs) == 1:
            a0c = arg_cs[0]

            def call1(b, m, n):
                a0 = a0c(b, m, n)
                width = (
                    a0.shape[1]
                    if isinstance(a0, np.ndarray) and a0.ndim == 2
                    else 1
                )
                b.counters.flops += cost * width * n
                return fn(a0)

            return call1
        if len(arg_cs) == 2:
            a0c, a1c = arg_cs

            def call2(b, m, n):
                a0 = a0c(b, m, n)
                a1 = a1c(b, m, n)
                width = 1
                for a in (a0, a1):
                    if isinstance(a, np.ndarray) and a.ndim == 2:
                        width = a.shape[1]
                        break
                b.counters.flops += cost * width * n
                return fn(a0, a1)

            return call2

        def calln(b, m, n):
            args = [ac(b, m, n) for ac in arg_cs]
            width = 1
            for a in args:
                if isinstance(a, np.ndarray) and a.ndim == 2:
                    width = a.shape[1]
                    break
            b.counters.flops += cost * width * n
            return fn(*args)

        return calln

    fn_def = ctx.parsed.functions.get(name)
    if fn_def is None:
        raise CompileUnsupported(f"call to unknown function {name!r}")
    return _compile_helper_call(e, fn_def, ctx)


def _compile_helper_call(e: c.CCall, fn: c.CFunctionDef, ctx: _Ctx) -> ExprFn:
    if fn.name in ctx.in_progress:
        raise CompileUnsupported(f"recursive helper function {fn.name!r}")
    body = ctx.helpers.get(fn.name)
    if body is None:
        ctx.in_progress.add(fn.name)
        try:
            body = _compile_stmt(fn.body, ctx, has_returns=True)
        finally:
            ctx.in_progress.discard(fn.name)
        ctx.helpers[fn.name] = body
    param_names = tuple(p.name for p in fn.params)
    arg_cs = [_compile_expr(a, ctx) for a in e.args]
    helper_name = fn.name

    def call_helper(b, m, n):
        # C passes structs and vectors by value.
        env = {}
        for pname, ac in zip(param_names, arg_cs):
            a = ac(b, m, n)
            if isinstance(a, dict):
                a = dict(a)
            elif isinstance(a, np.ndarray):
                a = a.copy()
            env[pname] = a
        b.counters.calls += n
        saved = b.env
        b.env = env
        frame = _Frame(b.L)
        try:
            body(b, m, n, frame)
        finally:
            b.env = saved
        if not frame.has_value:
            return None
        if bool((m & ~frame.ret_mask).any()):
            raise VectorUnsupported(
                f"helper {helper_name!r} returns a value on only some lanes"
            )
        return frame.ret_val

    return call_helper


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

def _compile_stmt(s, ctx: _Ctx, has_returns: bool) -> StmtFn:
    t = type(s)
    if t is c.CBlock:
        return _compile_block(s.stmts, ctx, has_returns)
    if t is c.CAssign:
        return _compile_assign(s, ctx)
    if t is c.CDecl:
        return _compile_decl(s, ctx)
    if t is c.CFor:
        return _compile_for(s, ctx, has_returns)
    if t is c.CIf:
        return _compile_if(s, ctx, has_returns)
    if t is c.CExprStmt:
        expr = _compile_expr(s.expr, ctx)
        return lambda b, m, n, frame: expr(b, m, n)
    if t is c.CReturn:
        if s.value is None:
            return lambda b, m, n, frame: b._set_return(frame, m, None)
        value = _compile_expr(s.value, ctx)
        return lambda b, m, n, frame: b._set_return(frame, m, value(b, m, n))
    if t is c.CBarrier:
        # The static analysis guarantees the mask is all-or-nothing per
        # work-group here (see ``_Block.exec_stmt``).
        def barrier(b, m, n, frame):
            b.counters.barriers += n
            b._segment += 1

        return barrier
    if t is c.CComment:
        return None  # dropped from the statement list
    raise CompileUnsupported(f"cannot compile statement {s!r}")


def _compile_block(stmts, ctx: _Ctx, has_returns: bool) -> StmtFn:
    fns = []
    for s in stmts:
        fn = _compile_stmt(s, ctx, has_returns)
        if fn is not None:
            fns.append(fn)

    if not has_returns:
        if len(fns) == 1:
            return fns[0]

        def run_simple(b, m, n, frame):
            for fn in fns:
                fn(b, m, n, frame)

        return run_simple

    def run(b, m, n, frame):
        for fn in fns:
            if frame.returned_any:
                m = m & ~frame.ret_mask
                n = int(np.count_nonzero(m))
                if n == 0:
                    return
            fn(b, m, n, frame)

    return run


def _compile_assign(s: c.CAssign, ctx: _Ctx) -> StmtFn:
    value_c = _compile_expr(s.value, ctx)

    if s.op != "=":
        op = s.op[0]
        current_c = _compile_expr(s.target, ctx)
        value_of, count = _binop_parts(op, False)
        plain_value_c = value_c

        def value_c(b, m, n):  # noqa: F811 - compound RHS
            v = plain_value_c(b, m, n)
            cur = current_c(b, m, n)
            v = value_of(b, cur, v, m)
            count(b, cur, v, n)
            return v

    target = s.target
    if isinstance(target, c.CIdent):
        name = target.name

        def assign_ident(b, m, n, frame):
            b._bind(name, value_c(b, m, n), m, n)

        return assign_ident

    if isinstance(target, c.CIndex):
        base_c = _compile_expr(target.base, ctx)
        index_c = _compile_expr(target.index, ctx)

        def assign_index(b, m, n, frame):
            v = value_c(b, m, n)
            base = base_c(b, m, n)
            index = index_c(b, m, n)
            if not isinstance(base, (VPtr, RowPtr)):
                raise ExecError(f"indexed store into non-pointer {base!r}")
            b._scatter(base, index, v, m, n)

        return assign_index

    if isinstance(target, c.CMember):
        base_c = _compile_expr(target.base, ctx)
        member = target.member
        vec_col = _VEC_MEMBERS.get(member)

        def assign_member(b, m, n, frame):
            v = value_c(b, m, n)
            container = base_c(b, m, n)
            if isinstance(container, dict):
                if n == b.L:
                    container[member] = v
                else:
                    old = container.get(member, 0.0)
                    container[member] = b._merge(old, v, m)
            elif isinstance(container, np.ndarray) and container.ndim == 2:
                if vec_col is None:
                    # Same KeyError the other engines' _VEC_MEMBERS
                    # lookup raises for non-xyzw stores.
                    raise KeyError(member)
                if n == b.L:
                    container[:, vec_col] = v
                else:
                    container[m, vec_col] = b._lanes(v)[m]
            else:
                raise ExecError(f"member store into {container!r}")

        return assign_member

    raise CompileUnsupported(f"cannot assign to {target!r}")


def _compile_decl(decl: c.CDecl, ctx: _Ctx) -> StmtFn:
    name = decl.name
    if decl.qualifier == "local" and decl.array_size is not None:

        def check_local(b, m, n, frame):
            if name not in b.env:
                raise ExecError(f"local buffer {name} was not pre-allocated")

        return check_local

    if decl.array_size is not None:
        dtype = (
            np.int64 if decl.type_name in ("int", "uint", "long") else np.float64
        )
        size = decl.array_size

        def alloc_private(b, m, n, frame):
            b.env[name] = RowPtr(
                np.zeros((b.L, size), dtype=dtype), b._lane_ids, 0, "private"
            )

        return alloc_private

    if decl.init is not None:
        init_c = _compile_expr(decl.init, ctx)

        def declare_init(b, m, n, frame):
            b._bind(name, init_c(b, m, n), m, n, declaring=True)

        return declare_init

    struct = ctx.parsed.structs.get(decl.type_name)
    if struct is not None:
        members = tuple(member for _, member in struct.members)

        def declare_struct(b, m, n, frame):
            b._bind(
                name, {member: 0.0 for member in members}, m, n, declaring=True
            )

        return declare_struct

    if decl.type_name.rstrip("1234568") in ("float", "int", "uint", "double"):
        width = decl.type_name.lstrip("floatinudbe")
        if width and width in ("2", "3", "4", "8", "16"):
            w = int(width)

            def declare_vector(b, m, n, frame):
                b._bind(name, np.zeros((b.L, w)), m, n, declaring=True)

            return declare_vector

    def declare_zero(b, m, n, frame):
        b._bind(name, 0, m, n, declaring=True)

    return declare_zero


def _compile_for(s: c.CFor, ctx: _Ctx, has_returns: bool) -> StmtFn:
    init_c = _compile_stmt(s.init, ctx, has_returns) if s.init is not None else None
    cond_c = _compile_expr(s.cond, ctx) if s.cond is not None else None
    step_c = _compile_stmt(s.step, ctx, has_returns) if s.step is not None else None
    body_c = _compile_stmt(s.body, ctx, has_returns)

    def run_for(b, m, n, frame):
        if init_c is not None:
            init_c(b, m, n, frame)
        if frame.returned_any:
            active = m & ~frame.ret_mask
            na = int(np.count_nonzero(active))
        else:
            active = m
            na = n
        counters = b.counters
        while na:
            if cond_c is not None:
                cv = cond_c(b, active, na)
                if isinstance(cv, np.ndarray):
                    if cv.ndim != 1:
                        raise VectorUnsupported(
                            "vector used in a scalar condition"
                        )
                    if cv.dtype.kind != "b":
                        cv = cv != 0
                    active = active & cv
                    na = int(np.count_nonzero(active))
                    if na == 0:
                        break
                elif _is_uniform(cv):
                    # Group-uniform trip counts skip the lane-mask
                    # re-materialization entirely.
                    if not cv:
                        break
                else:
                    raise VectorUnsupported(f"cannot use {cv!r} as a condition")
            counters.loop_iterations += na
            body_c(b, active, na, frame)
            if frame.returned_any:
                active = active & ~frame.ret_mask
                na = int(np.count_nonzero(active))
                if na == 0:
                    break
            if step_c is not None:
                step_c(b, active, na, frame)

    return run_for


def _compile_if(s: c.CIf, ctx: _Ctx, has_returns: bool) -> StmtFn:
    cond_c = _compile_expr(s.cond, ctx)
    then_c = _compile_stmt(s.then, ctx, has_returns)
    else_c = (
        _compile_stmt(s.otherwise, ctx, has_returns)
        if s.otherwise is not None
        else None
    )

    def run_if(b, m, n, frame):
        b.counters.branches += n
        cv = cond_c(b, m, n)
        if isinstance(cv, np.ndarray):
            if cv.ndim != 1:
                raise VectorUnsupported("vector used in a scalar condition")
            if cv.dtype.kind != "b":
                cv = cv != 0
            mt = m & cv
            nt = int(np.count_nonzero(mt))
            if nt:
                then_c(b, mt, nt, frame)
            if else_c is not None and nt < n:
                mf = m & ~cv
                else_c(b, mf, n - nt, frame)
        elif _is_uniform(cv):
            if cv:
                then_c(b, m, n, frame)
            elif else_c is not None:
                else_c(b, m, n, frame)
        else:
            raise VectorUnsupported(f"cannot use {cv!r} as a condition")

    return run_if


# ---------------------------------------------------------------------------
# pipeline assembly
# ---------------------------------------------------------------------------

class Pipeline:
    """A kernel compiled to barrier-delimited closure segments."""

    __slots__ = ("kernel_name", "segments", "has_returns")

    def __init__(self, kernel_name: str, segments: list, has_returns: bool):
        self.kernel_name = kernel_name
        #: One compiled closure per barrier-delimited top-level region
        #: (barriers inside group-uniform loops stay within their
        #: segment's loop closure).
        self.segments = segments
        self.has_returns = has_returns

    @property
    def segment_count(self) -> int:
        return len(self.segments)

    def run(self, block: _Block) -> None:
        """Execute one block of work-groups through the pipeline."""
        if _obs_profile.ACTIVE is not None:
            return self._run_profiled(block, _obs_profile.ACTIVE)
        frame = _Frame(block.L)
        m = block._full
        n = block.L
        if not self.has_returns:
            for segment in self.segments:
                segment(block, m, n, frame)
            return
        for segment in self.segments:
            if frame.returned_any:
                m = m & ~frame.ret_mask
                n = int(np.count_nonzero(m))
                if n == 0:
                    return
            segment(block, m, n, frame)

    def _run_profiled(self, block: _Block, prof) -> None:
        """:meth:`run` with a clock read around every segment.

        A separate method so the unprofiled path pays exactly one
        module-attribute check per block; execution itself is identical
        (same closures, same frame/mask handling)."""
        frame = _Frame(block.L)
        m = block._full
        n = block.L
        for index, segment in enumerate(self.segments):
            if self.has_returns and frame.returned_any:
                m = m & ~frame.ret_mask
                n = int(np.count_nonzero(m))
                if n == 0:
                    return
            before = dict(vars(block.counters))
            loads0 = block._obs_load_events()
            t0 = time.perf_counter()
            segment(block, m, n, frame)
            prof.record_segment(index, "compiled", time.perf_counter() - t0)
            after = vars(block.counters)
            deltas = {
                k: after[k] - v for k, v in before.items() if after[k] != v
            }
            load_events = block._obs_load_events() - loads0
            if load_events:
                deltas["load_events"] = load_events
            prof.record_segment_counters(index, "compiled", deltas)


def compile_kernel_pipeline(
    parsed: ParsedProgram, kernel: c.CFunctionDef
) -> Pipeline:
    """Lower a kernel AST into a compiled closure pipeline.

    Raises :class:`CompileUnsupported` when some construct has no
    closure lowering; the caller then uses the interpretive walk.
    """
    ctx = _Ctx(parsed)
    has_returns = _contains_return(kernel.body)

    segments: list = []
    current: list = []
    for stmt in kernel.body.stmts:
        if type(stmt) is c.CBarrier:
            barrier = _compile_stmt(stmt, ctx, has_returns)
            if current:
                segments.append(
                    _compile_block_list(current, ctx, has_returns)
                )
                current = []
            segments.append(barrier)
        else:
            current.append(stmt)
    if current or not segments:
        segments.append(_compile_block_list(current, ctx, has_returns))
    return Pipeline(kernel.name, segments, has_returns)


def _compile_block_list(stmts, ctx: _Ctx, has_returns: bool) -> StmtFn:
    block = c.CBlock(list(stmts))
    fn = _compile_stmt(block, ctx, has_returns)
    if fn is None:  # a segment of only comments
        return lambda b, m, n, frame: None
    return fn


def _contains_return(stmt) -> bool:
    if isinstance(stmt, c.CReturn):
        return True
    if isinstance(stmt, c.CBlock):
        return any(_contains_return(s) for s in stmt.stmts)
    if isinstance(stmt, c.CFor):
        return any(
            part is not None and _contains_return(part)
            for part in (stmt.init, stmt.body, stmt.step)
        )
    if isinstance(stmt, c.CIf):
        if _contains_return(stmt.then):
            return True
        return stmt.otherwise is not None and _contains_return(stmt.otherwise)
    return False


# ---------------------------------------------------------------------------
# pipeline cache
# ---------------------------------------------------------------------------

_compile_lock = threading.Lock()
_compile_counter = 0


def compile_count() -> int:
    """Pipelines compiled so far in this process.

    The autotune/explore loops launch each candidate kernel many times;
    this counter is how their stats demonstrate that every distinct
    kernel is closure-compiled exactly once (reuse flows through the
    source-keyed parse LRU the pipelines attach to).
    """
    return _compile_counter


def get_pipeline(
    parsed: ParsedProgram, kernel: c.CFunctionDef
) -> Optional[Pipeline]:
    """The compiled pipeline for a kernel, or ``None`` when the static
    analysis refuses it or closure compilation is unsupported.

    Cached on the parsed program object; the runtime shares parse
    results per source through an LRU, so each distinct kernel compiles
    once per process (under a lock — the explorer launches from a
    thread pool).
    """
    cache = getattr(parsed, "_simt_pipelines", None)
    if cache is not None:
        entry = cache.get(kernel.name, _MISSING)
        if entry is not _MISSING:
            return entry
    with _compile_lock:
        cache = getattr(parsed, "_simt_pipelines", None)
        if cache is None:
            cache = {}
            parsed._simt_pipelines = cache
        entry = cache.get(kernel.name, _MISSING)
        if entry is not _MISSING:
            return entry
        if analyze_kernel(parsed, kernel) is not None:
            pipeline: Optional[Pipeline] = None
        else:
            from repro.obs import span

            try:
                with span("simt_compile", kernel=kernel.name):
                    pipeline = compile_kernel_pipeline(parsed, kernel)
                global _compile_counter
                _compile_counter += 1
            except CompileUnsupported:
                pipeline = None
        cache[kernel.name] = pipeline
        return pipeline


_MISSING = object()
