"""NDRange interpreter for the OpenCL-C subset.

Work-items of a work-group execute in lock-step between barriers: each
work-item is a Python generator that yields at every ``barrier`` call;
the scheduler advances all items of a group to the next barrier (or to
completion) and checks that they synchronized uniformly, which is exactly
the OpenCL contract.  Statements that provably contain no barrier run on
a fast non-generator path.

The interpreter maintains hardware-style performance counters
(:class:`Counters`); the cost model in :mod:`repro.opencl.cost` converts
them into estimated cycles per device profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.compiler import cast as c
from repro.opencl.cparser import ParsedProgram, StructDef


class ExecError(Exception):
    pass


class BarrierDivergence(ExecError):
    """Work-items of one group hit different numbers of barriers."""


class _Return(Exception):
    def __init__(self, value: Any):
        self.value = value


@dataclass
class Counters:
    """Dynamic execution counts summed over all work-items."""

    flops: int = 0
    iops: int = 0
    idivmod: int = 0
    idivmod_const: int = 0
    cached_loads: int = 0
    global_loads: int = 0
    global_stores: int = 0
    local_loads: int = 0
    local_stores: int = 0
    private_loads: int = 0
    private_stores: int = 0
    barriers: int = 0
    calls: int = 0
    branches: int = 0
    loop_iterations: int = 0
    work_items: int = 0

    def total_memory_ops(self) -> int:
        return (
            self.global_loads + self.global_stores
            + self.local_loads + self.local_stores
            + self.private_loads + self.private_stores
        )

    def as_dict(self) -> dict:
        """Plain-dict view for the metrics registry (repro.obs)."""
        return dict(self.__dict__)

    def merged_with(self, other: "Counters") -> "Counters":
        merged = Counters()
        merged.merge_in(self)
        merged.merge_in(other)
        return merged

    def merge_in(self, other: "Counters") -> None:
        """Accumulate ``other`` into this instance (all engines stage
        their counts and merge on success; keep this the single place
        that knows how)."""
        acc = self.__dict__
        for name, value in other.__dict__.items():
            acc[name] = acc[name] + value


class Pointer:
    """A typed pointer into a buffer (global/local/private)."""

    __slots__ = ("array", "offset", "space")

    def __init__(self, array: np.ndarray, offset: int, space: str):
        self.array = array
        self.offset = offset
        self.space = space

    def plus(self, delta: int) -> "Pointer":
        return Pointer(self.array, self.offset + int(delta), self.space)

    def load(self, index: int) -> Any:
        return self.array[self.offset + int(index)]

    def store(self, index: int, value: Any) -> None:
        self.array[self.offset + int(index)] = value


_VEC_MEMBERS = {"x": 0, "y": 1, "z": 2, "w": 3}


def _c_int_div(a: int, b: int) -> int:
    """C semantics: truncation toward zero."""
    if b == 0:
        raise ExecError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_int_mod(a: int, b: int) -> int:
    if b == 0:
        raise ExecError("integer modulo by zero")
    return a - _c_int_div(a, b) * b


class LaunchContext:
    """Per-launch state: counters, geometry, struct definitions."""

    def __init__(
        self,
        program: ParsedProgram,
        global_size: tuple,
        local_size: tuple,
        counters: Counters,
    ):
        self.program = program
        self.global_size = global_size
        self.local_size = local_size
        self.num_groups = tuple(g // l for g, l in zip(global_size, local_size))
        self.counters = counters
        self._barrier_cache: dict[int, bool] = {}

    # -- static barrier analysis -----------------------------------------
    def contains_barrier(self, stmt: c.CStmt) -> bool:
        key = id(stmt)
        cached = self._barrier_cache.get(key)
        if cached is not None:
            return cached
        result = self._scan_barrier(stmt)
        self._barrier_cache[key] = result
        return result

    def _scan_barrier(self, stmt: c.CStmt) -> bool:
        if isinstance(stmt, c.CBarrier):
            return True
        if isinstance(stmt, c.CBlock):
            return any(self._scan_barrier(s) for s in stmt.stmts)
        if isinstance(stmt, c.CFor):
            return self._scan_barrier(stmt.body)
        if isinstance(stmt, c.CIf):
            if self._scan_barrier(stmt.then):
                return True
            return stmt.otherwise is not None and self._scan_barrier(stmt.otherwise)
        return False


class WorkItem:
    """One OpenCL work-item executing a kernel body."""

    def __init__(self, ctx: LaunchContext, env: dict, gid: tuple, lid: tuple,
                 group: tuple):
        self.ctx = ctx
        self.env = env
        self.gid = gid
        self.lid = lid
        self.group = group
        # Addresses this work-item has already read or written.  A repeat
        # access hits the register file / L1 on real hardware (compilers
        # promote loop-invariant loads to registers); the cost model
        # charges it as a cached load instead of memory traffic.
        self._touched: set = set()

    # ------------------------------------------------------------------
    # statement execution
    # ------------------------------------------------------------------
    def run_gen(self, stmt: c.CStmt):
        """Generator path for statements that may contain barriers."""
        if not self.ctx.contains_barrier(stmt):
            self.run_fast(stmt)
            return
        if isinstance(stmt, c.CBlock):
            for s in stmt.stmts:
                yield from self.run_gen(s)
            return
        if isinstance(stmt, c.CBarrier):
            self.ctx.counters.barriers += 1
            yield "barrier"
            return
        if isinstance(stmt, c.CFor):
            if stmt.init is not None:
                self.run_fast(stmt.init)
            while stmt.cond is None or self._truthy(self.eval(stmt.cond)):
                self.ctx.counters.loop_iterations += 1
                yield from self.run_gen(stmt.body)
                if stmt.step is not None:
                    self.run_fast(stmt.step)
            return
        if isinstance(stmt, c.CIf):
            self.ctx.counters.branches += 1
            if self._truthy(self.eval(stmt.cond)):
                yield from self.run_gen(stmt.then)
            elif stmt.otherwise is not None:
                yield from self.run_gen(stmt.otherwise)
            return
        self.run_fast(stmt)

    def run_fast(self, stmt: c.CStmt) -> None:
        """Non-generator path for barrier-free statements."""
        if isinstance(stmt, c.CBlock):
            for s in stmt.stmts:
                self.run_fast(s)
        elif isinstance(stmt, c.CAssign):
            self._assign(stmt)
        elif isinstance(stmt, c.CDecl):
            self._declare(stmt)
        elif isinstance(stmt, c.CFor):
            if stmt.init is not None:
                self.run_fast(stmt.init)
            while stmt.cond is None or self._truthy(self.eval(stmt.cond)):
                self.ctx.counters.loop_iterations += 1
                self.run_fast(stmt.body)
                if stmt.step is not None:
                    self.run_fast(stmt.step)
        elif isinstance(stmt, c.CIf):
            self.ctx.counters.branches += 1
            if self._truthy(self.eval(stmt.cond)):
                self.run_fast(stmt.then)
            elif stmt.otherwise is not None:
                self.run_fast(stmt.otherwise)
        elif isinstance(stmt, c.CExprStmt):
            self.eval(stmt.expr)
        elif isinstance(stmt, c.CReturn):
            value = self.eval(stmt.value) if stmt.value is not None else None
            raise _Return(value)
        elif isinstance(stmt, c.CComment):
            pass
        elif isinstance(stmt, c.CBarrier):
            raise ExecError("barrier reached on the barrier-free path")
        else:
            raise ExecError(f"cannot execute {stmt!r}")

    def _declare(self, decl: c.CDecl) -> None:
        name = decl.name
        if decl.qualifier == "local" and decl.array_size is not None:
            # Bound to the group-shared buffer allocated by the scheduler.
            if name not in self.env:
                raise ExecError(f"local buffer {name} was not pre-allocated")
            return
        if decl.array_size is not None:
            dtype = np.int64 if decl.type_name in ("int", "uint", "long") else np.float64
            self.env[name] = Pointer(
                np.zeros(decl.array_size, dtype=dtype), 0, "private"
            )
            return
        if decl.init is not None:
            self.env[name] = self.eval(decl.init)
            return
        struct = self.ctx.program.structs.get(decl.type_name)
        if struct is not None:
            self.env[name] = {m: 0.0 for _, m in struct.members}
        elif decl.type_name.rstrip("1234568") in ("float", "int", "uint", "double"):
            width = decl.type_name.lstrip("floatinudbe")
            if width and width in ("2", "3", "4", "8", "16"):
                self.env[name] = np.zeros(int(width), dtype=np.float64)
            else:
                self.env[name] = 0
        else:
            self.env[name] = 0

    def _assign(self, stmt: c.CAssign) -> None:
        value = self.eval(stmt.value)
        if stmt.op != "=":
            current = self.eval(stmt.target)
            op = stmt.op[0]
            value = self._binop_value(op, current, value)
            self._count_binop(op, current, value)
        target = stmt.target
        if isinstance(target, c.CIdent):
            self.env[target.name] = value
        elif isinstance(target, c.CIndex):
            base = self.eval(target.base)
            index = self.eval(target.index)
            if not isinstance(base, Pointer):
                raise ExecError(f"indexed store into non-pointer {target.base!r}")
            base.store(index, value)
            self._count_store(base.space, 1)
        elif isinstance(target, c.CMember):
            container = self.eval(target.base)
            if isinstance(container, dict):
                container[target.member] = value
            elif isinstance(container, np.ndarray):
                container[_VEC_MEMBERS[target.member]] = value
            else:
                raise ExecError(f"member store into {container!r}")
        else:
            raise ExecError(f"cannot assign to {target!r}")

    # ------------------------------------------------------------------
    # expression evaluation
    # ------------------------------------------------------------------
    def eval(self, e: c.CExpr) -> Any:
        if isinstance(e, c.CInt):
            return e.value
        if isinstance(e, c.CFloat):
            return e.value
        if isinstance(e, c.CIdent):
            try:
                return self.env[e.name]
            except KeyError:
                raise ExecError(f"undefined identifier {e.name!r}") from None
        if isinstance(e, c.CBinOp):
            if e.op == "&&":
                return self._truthy(self.eval(e.lhs)) and self._truthy(self.eval(e.rhs))
            if e.op == "||":
                return self._truthy(self.eval(e.lhs)) or self._truthy(self.eval(e.rhs))
            lhs = self.eval(e.lhs)
            rhs = self.eval(e.rhs)
            self._count_binop(e.op, lhs, rhs, const_rhs=isinstance(e.rhs, c.CInt))
            return self._binop_value(e.op, lhs, rhs)
        if isinstance(e, c.CUnOp):
            v = self.eval(e.operand)
            if e.op == "-":
                return -v
            if e.op == "!":
                return not self._truthy(v)
            raise ExecError(f"unknown unary operator {e.op}")
        if isinstance(e, c.CTernary):
            self.ctx.counters.branches += 1
            if self._truthy(self.eval(e.cond)):
                return self.eval(e.then)
            return self.eval(e.otherwise)
        if isinstance(e, c.CIndex):
            base = self.eval(e.base)
            index = self.eval(e.index)
            if isinstance(base, Pointer):
                self._count_load(
                    base.space, 1, (id(base.array), base.offset + int(index))
                )
                return base.load(index)
            if isinstance(base, np.ndarray):
                return base[int(index)]
            raise ExecError(f"cannot index {base!r}")
        if isinstance(e, c.CMember):
            container = self.eval(e.base)
            if isinstance(container, dict):
                return container[e.member]
            if isinstance(container, np.ndarray):
                member = e.member
                if member in _VEC_MEMBERS:
                    return container[_VEC_MEMBERS[member]]
                if member.startswith("s"):
                    return container[int(member[1:], 16)]
                if member == "lo":
                    return container[: len(container) // 2].copy()
                if member == "hi":
                    return container[len(container) // 2 :].copy()
            raise ExecError(f"cannot take member {e.member} of {container!r}")
        if isinstance(e, c.CCall):
            return self._call(e)
        if isinstance(e, c.CCast):
            v = self.eval(e.operand)
            if e.type_name in ("int", "uint", "long"):
                return int(v)
            if e.type_name in ("float", "double"):
                return float(v)
            return v
        if isinstance(e, c.CVectorLiteral):
            items = [self.eval(i) for i in e.items]
            width = int("".join(ch for ch in e.type_name if ch.isdigit()))
            if len(items) == 1:
                items = items * width
            return np.array(items, dtype=np.float64)
        raise ExecError(f"cannot evaluate {e!r}")

    # ------------------------------------------------------------------
    # calls and built-ins
    # ------------------------------------------------------------------
    def _call(self, e: c.CCall) -> Any:
        name = e.func
        if name.startswith("get_"):
            dim = int(self.eval(e.args[0])) if e.args else 0
            return self._geometry(name, dim)
        if name.startswith("vload"):
            width = int(name[5:])
            offset = int(self.eval(e.args[0]))
            ptr = self.eval(e.args[1])
            assert isinstance(ptr, Pointer)
            start = ptr.offset + offset * width
            self._count_load(ptr.space, width, (id(ptr.array), start, width))
            return ptr.array[start : start + width].astype(np.float64)
        if name.startswith("vstore"):
            width = int(name[6:])
            value = self.eval(e.args[0])
            offset = int(self.eval(e.args[1]))
            ptr = self.eval(e.args[2])
            assert isinstance(ptr, Pointer)
            start = ptr.offset + offset * width
            ptr.array[start : start + width] = value
            self._count_store(ptr.space, width)
            return None

        args = [self.eval(a) for a in e.args]
        builtin = _MATH_BUILTINS.get(name)
        if builtin is not None:
            cost, fn = builtin
            self.ctx.counters.flops += cost * _width_of(args)
            return fn(*args)

        fn_def = self.ctx.program.functions.get(name)
        if fn_def is None:
            raise ExecError(f"call to unknown function {name!r}")
        self.ctx.counters.calls += 1
        return self._call_helper(fn_def, args)

    def _call_helper(self, fn: c.CFunctionDef, args: list) -> Any:
        saved = self.env
        # C passes structs and vectors by value.
        by_value = [
            dict(a) if isinstance(a, dict)
            else a.copy() if isinstance(a, np.ndarray)
            else a
            for a in args
        ]
        self.env = dict(
            (p.name, a) for p, a in zip(fn.params, by_value)
        )
        # Helpers share geometry builtins but not local variables.
        try:
            self.run_fast(fn.body)
            result = None
        except _Return as r:
            result = r.value
        finally:
            self.env = saved
        return result

    def _geometry(self, name: str, dim: int) -> int:
        ctx = self.ctx
        if name == "get_global_id":
            return self.gid[dim]
        if name == "get_local_id":
            return self.lid[dim]
        if name == "get_group_id":
            return self.group[dim]
        if name == "get_local_size":
            return ctx.local_size[dim]
        if name == "get_global_size":
            return ctx.global_size[dim]
        if name == "get_num_groups":
            return ctx.num_groups[dim]
        raise ExecError(f"unknown geometry builtin {name}")

    # ------------------------------------------------------------------
    # counting helpers
    # ------------------------------------------------------------------
    def _count_binop(
        self, op: str, lhs: Any, rhs: Any, const_rhs: bool = False
    ) -> None:
        counters = self.ctx.counters
        if op in ("==", "!=", "<", ">", "<=", ">="):
            counters.iops += 1
            return
        is_float = (
            isinstance(lhs, (float, np.floating, np.ndarray))
            or isinstance(rhs, (float, np.floating, np.ndarray))
        )
        if is_float:
            counters.flops += max(_width_of([lhs]), _width_of([rhs]))
        elif op in ("/", "%"):
            # Real driver compilers strength-reduce division by literal
            # constants: a power of two becomes a shift/mask (one ALU op),
            # any other literal a multiply-by-reciprocal sequence; only a
            # dynamic divisor pays the full multi-instruction cost.
            if const_rhs and _is_int(rhs) and int(rhs) > 0 and (int(rhs) & (int(rhs) - 1)) == 0:
                counters.iops += 1
            elif const_rhs:
                counters.idivmod_const += 1
            else:
                counters.idivmod += 1
        else:
            counters.iops += 1

    @staticmethod
    def _binop_value(op: str, lhs: Any, rhs: Any) -> Any:
        if isinstance(lhs, Pointer):
            if op == "+":
                return lhs.plus(int(rhs))
            if op == "-":
                return lhs.plus(-int(rhs))
            raise ExecError(f"unsupported pointer operation {op}")
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            if _is_int(lhs) and _is_int(rhs):
                return _c_int_div(int(lhs), int(rhs))
            return lhs / rhs
        if op == "%":
            if _is_int(lhs) and _is_int(rhs):
                return _c_int_mod(int(lhs), int(rhs))
            return math.fmod(lhs, rhs)
        if op == "==":
            return lhs == rhs
        if op == "!=":
            return lhs != rhs
        if op == "<":
            return lhs < rhs
        if op == ">":
            return lhs > rhs
        if op == "<=":
            return lhs <= rhs
        if op == ">=":
            return lhs >= rhs
        raise ExecError(f"unknown operator {op}")

    def _count_load(self, space: str, width: int, address=None) -> None:
        counters = self.ctx.counters
        if address is not None and space in ("global", "local"):
            if address in self._touched:
                counters.cached_loads += width
                return
            self._touched.add(address)
        if space == "global":
            counters.global_loads += width
        elif space == "local":
            counters.local_loads += width
        else:
            counters.private_loads += width

    def _count_store(self, space: str, width: int) -> None:
        counters = self.ctx.counters
        if space == "global":
            counters.global_stores += width
        elif space == "local":
            counters.local_stores += width
        else:
            counters.private_stores += width

    @staticmethod
    def _truthy(v: Any) -> bool:
        if isinstance(v, np.ndarray):
            raise ExecError("vector used in a scalar condition")
        return bool(v)


def _is_int(v: Any) -> bool:
    return isinstance(v, (int, np.integer)) and not isinstance(v, bool)


def _width_of(args: list) -> int:
    for a in args:
        if isinstance(a, np.ndarray):
            return len(a)
    return 1


def _ordered_dot(a, b):
    """Component-wise dot with explicit left-to-right summation.

    Deliberately *not* ``np.dot``: BLAS is free to reorder the reduction,
    while this fixed order is reproduced exactly by the lane-batched SIMT
    engine (one elementwise multiply-add chain over lane arrays), keeping
    the two engines bitwise-identical.
    """
    if not isinstance(a, np.ndarray):
        return float(a * b)
    acc = a[0] * b[0]
    for i in range(1, len(a)):
        acc = acc + a[i] * b[i]
    return float(acc)


_MATH_BUILTINS = {
    # name: (flop cost, implementation)
    "sqrt": (4, np.sqrt),
    "native_sqrt": (2, np.sqrt),
    "rsqrt": (4, lambda x: 1.0 / np.sqrt(x)),
    "native_rsqrt": (2, lambda x: 1.0 / np.sqrt(x)),
    "fabs": (1, np.abs),
    "exp": (8, np.exp),
    "log": (8, np.log),
    "sin": (8, np.sin),
    "cos": (8, np.cos),
    "tan": (10, np.tan),
    "pow": (10, np.power),
    "floor": (1, np.floor),
    "ceil": (1, np.ceil),
    "fmin": (1, np.minimum),
    "fmax": (1, np.maximum),
    "min": (1, lambda a, b: min(a, b)),
    "max": (1, lambda a, b: max(a, b)),
    "mad": (1, lambda a, b, x: a * b + x),
    "fma": (1, lambda a, b, x: a * b + x),
    "clamp": (2, lambda x, lo, hi: min(max(x, lo), hi)),
    "dot": (7, _ordered_dot),
    "length": (11, lambda a: float(np.sqrt(_ordered_dot(a, a)))),
}
