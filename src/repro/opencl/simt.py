"""Lane-batched SIMT execution engine for the OpenCL simulator.

The scalar interpreter in :mod:`repro.opencl.interp` walks the kernel AST
once per work-item, which makes the Figure 8 runs and the autotuner's
execute-and-rank loop interpreter-bound.  This module executes the kernel
body *once per block of work-groups*, holding every scalar variable as a
numpy array over lanes (one lane per work-item) and turning control flow
into boolean lane masks:

* ``if``      — both branches execute under complementary sub-masks; a
  branch with no active lane is skipped entirely.
* ``for`` / ``while`` — iterate while any lane is still active; a lane
  whose condition fails (or that hit ``return``) drops out of the mask.
* ``barrier`` — trivially satisfied: lanes execute in lock-step.  A
  static analysis (:func:`analyze_kernel`) only admits kernels whose
  barriers sit under *group-uniform* control flow, so within each
  work-group the mask at a barrier is all-or-nothing, which is exactly
  the OpenCL contract.
* loads/stores — gathers and scatters (`numpy` fancy indexing); scatter
  writes resolve duplicate addresses in ascending lane order, which is a
  conforming behaviour for data-race-free kernels (the only ones whose
  result OpenCL defines).

The engine is an exact stand-in for the scalar path: it produces
bitwise-identical buffer contents *and* identical :class:`Counters`
(memory ops per address space, flops, barriers, branches, cached loads)
for every supported kernel.  Cached-load accounting mirrors the
per-work-item ``_touched`` set of the scalar interpreter with an
order-independent log: per buffer, the cached total equals load events
minus distinct ``(lane, address)`` pairs, settled with one ``np.unique``
per block (see :class:`_LoadLog`).

Fallback rules
--------------
A kernel falls back to the scalar interpreter (per launch) when the
static analysis finds a construct whose lane-batched execution could
diverge from scalar semantics:

* a barrier under lane-divergent control flow (this is also how
  ``BarrierDivergence`` keeps being raised: the scalar path detects it),
* a barrier combined with an early ``return``, or inside a helper,
* recursive helper functions, calls to unknown functions.

The ``dot`` / ``length`` builtins used to force the scalar fallback
(their scalar implementation reduced with BLAS, whose summation order is
shape-dependent); both engines now share an explicitly-ordered
multiply-add chain (:func:`_lane_dot`), so vector-geometry kernels stay
on the lane-batched path with bitwise-identical results.

A handful of *dynamic* situations raise :class:`VectorUnsupported`; the
launcher then restores the global buffers from a snapshot and re-runs
the whole launch on the scalar path, so ``launch()`` keeps its exact
API and semantics.  The two big ones: a cross-lane data race (a store
whose value another work-item could observe order-dependently — see
:class:`_Hazard`), and a masked assignment that would mix integer and
floating-point lanes in one variable (which the scalar interpreter's
per-item dynamic typing allows).

Known (documented) divergence, outside defined OpenCL behaviour:
reading a variable that only a *different* lane's control path declared
yields a zero filler instead of the scalar path's "undefined
identifier" error.
"""

from __future__ import annotations

import threading as _threading
from collections import OrderedDict
from typing import Any, Optional

import numpy as np

from repro.compiler import cast as c
from repro.obs import profile as _obs_profile
from repro.opencl.cparser import ParsedProgram
from repro.opencl.interp import (
    Counters,
    ExecError,
    Pointer,
    _MATH_BUILTINS,
    _c_int_div,
    _c_int_mod,
)

#: Lanes batched together (across whole work-groups) per executor block.
MAX_LANES = 4096


class VectorUnsupported(Exception):
    """Dynamic bail-out: re-run the launch on the scalar path."""


class VectorizationError(ExecError):
    """Raised when ``engine="vector"`` is forced on an unsupported kernel."""


_VEC_MEMBERS = {"x": 0, "y": 1, "z": 2, "w": 3}

_GEOM_UNIFORM = {
    "get_group_id",
    "get_num_groups",
    "get_local_size",
    "get_global_size",
}
_GEOM_LANE = {"get_local_id", "get_global_id"}
_GEOMETRY = _GEOM_UNIFORM | _GEOM_LANE

#: Builtins with no lane-batched implementation.  ``dot``/``length`` used
#: to live here while their scalar implementation reduced with BLAS
#: (``np.dot``); both engines now share an explicitly-ordered reduction
#: (see :func:`_lane_dot`), so the set is currently empty.
_UNSUPPORTED_BUILTINS: set = set()

_CMP_OPS = ("==", "!=", "<", ">", "<=", ">=")


def _is_vload(name: str) -> bool:
    return name.startswith("vload") and name[5:].isdigit()


def _is_vstore(name: str) -> bool:
    return name.startswith("vstore") and name[6:].isdigit()


# ---------------------------------------------------------------------------
# static vectorizability analysis
# ---------------------------------------------------------------------------

def analyze_kernel(parsed: ParsedProgram, kernel: c.CFunctionDef) -> Optional[str]:
    """``None`` when the kernel is vectorizable, else the fallback reason.

    Results are cached on the parsed program (which the runtime also
    caches per source), so the analysis runs once per distinct kernel.
    """
    cache = getattr(parsed, "_simt_analysis", None)
    if cache is None:
        cache = {}
        parsed._simt_analysis = cache
    if kernel.name in cache:
        return cache[kernel.name]
    reason = _analyze(parsed, kernel)
    cache[kernel.name] = reason
    return reason


def _analyze(parsed: ParsedProgram, kernel: c.CFunctionDef) -> Optional[str]:
    reason = _check_function(parsed, kernel, frozenset(), is_kernel=True)
    if reason is not None:
        return reason
    if _contains(kernel.body, c.CBarrier):
        if _contains(kernel.body, c.CReturn):
            return "barrier combined with early return"
        if not _barriers_group_uniform(kernel):
            return "barrier under lane-divergent control flow"
    return None


def _check_function(
    parsed: ParsedProgram, fn: c.CFunctionDef, stack: frozenset, is_kernel: bool
) -> Optional[str]:
    if fn.name in stack:
        return f"recursive helper function {fn.name!r}"
    stack = stack | {fn.name}
    return _check_stmt(parsed, fn.body, stack, is_kernel)


def _check_stmt(parsed, s, stack, is_kernel) -> Optional[str]:
    if isinstance(s, c.CBlock):
        for sub in s.stmts:
            r = _check_stmt(parsed, sub, stack, is_kernel)
            if r:
                return r
        return None
    if isinstance(s, c.CBarrier):
        return None if is_kernel else "barrier inside helper function"
    if isinstance(s, c.CDecl):
        return _check_expr(parsed, s.init, stack, is_kernel) if s.init else None
    if isinstance(s, c.CAssign):
        return (
            _check_expr(parsed, s.target, stack, is_kernel)
            or _check_expr(parsed, s.value, stack, is_kernel)
        )
    if isinstance(s, c.CFor):
        for part in (s.init, s.step, s.body):
            if part is not None:
                r = _check_stmt(parsed, part, stack, is_kernel)
                if r:
                    return r
        return _check_expr(parsed, s.cond, stack, is_kernel) if s.cond else None
    if isinstance(s, c.CIf):
        r = _check_expr(parsed, s.cond, stack, is_kernel)
        if not r:
            r = _check_stmt(parsed, s.then, stack, is_kernel)
        if not r and s.otherwise is not None:
            r = _check_stmt(parsed, s.otherwise, stack, is_kernel)
        return r
    if isinstance(s, c.CExprStmt):
        return _check_expr(parsed, s.expr, stack, is_kernel)
    if isinstance(s, c.CReturn):
        return _check_expr(parsed, s.value, stack, is_kernel) if s.value else None
    if isinstance(s, c.CComment):
        return None
    return f"unsupported statement {type(s).__name__}"


def _check_expr(parsed, e, stack, is_kernel) -> Optional[str]:
    if isinstance(e, (c.CInt, c.CFloat, c.CIdent)):
        return None
    if isinstance(e, c.CBinOp):
        return (
            _check_expr(parsed, e.lhs, stack, is_kernel)
            or _check_expr(parsed, e.rhs, stack, is_kernel)
        )
    if isinstance(e, c.CUnOp):
        return _check_expr(parsed, e.operand, stack, is_kernel)
    if isinstance(e, c.CTernary):
        return (
            _check_expr(parsed, e.cond, stack, is_kernel)
            or _check_expr(parsed, e.then, stack, is_kernel)
            or _check_expr(parsed, e.otherwise, stack, is_kernel)
        )
    if isinstance(e, (c.CIndex,)):
        return (
            _check_expr(parsed, e.base, stack, is_kernel)
            or _check_expr(parsed, e.index, stack, is_kernel)
        )
    if isinstance(e, c.CMember):
        return _check_expr(parsed, e.base, stack, is_kernel)
    if isinstance(e, c.CCast):
        return _check_expr(parsed, e.operand, stack, is_kernel)
    if isinstance(e, c.CVectorLiteral):
        for item in e.items:
            r = _check_expr(parsed, item, stack, is_kernel)
            if r:
                return r
        return None
    if isinstance(e, c.CCall):
        for a in e.args:
            r = _check_expr(parsed, a, stack, is_kernel)
            if r:
                return r
        name = e.func
        if name.startswith("get_"):
            return None if name in _GEOMETRY else f"unknown geometry builtin {name!r}"
        if _is_vload(name) or _is_vstore(name):
            return None
        if name in _UNSUPPORTED_BUILTINS:
            return f"builtin {name!r} is not bitwise-stable under lane batching"
        if name in _MATH_BUILTINS:
            return None
        fn = parsed.functions.get(name)
        if fn is None:
            return f"call to unknown function {name!r}"
        return _check_function(parsed, fn, stack, is_kernel=False)
    return f"unsupported expression {type(e).__name__}"


def _contains(stmt, node_type) -> bool:
    if isinstance(stmt, node_type):
        return True
    if isinstance(stmt, c.CBlock):
        return any(_contains(s, node_type) for s in stmt.stmts)
    if isinstance(stmt, c.CFor):
        return any(
            part is not None and _contains(part, node_type)
            for part in (stmt.init, stmt.body, stmt.step)
        )
    if isinstance(stmt, c.CIf):
        if _contains(stmt.then, node_type):
            return True
        return stmt.otherwise is not None and _contains(stmt.otherwise, node_type)
    return False


# -- group-uniformity analysis for barrier placement ------------------------

def _barriers_group_uniform(kernel: c.CFunctionDef) -> bool:
    """True when every barrier sits only under group-uniform conditions.

    A value is *group-uniform* when all work-items of one group agree on
    it: literals, scalar kernel arguments, ``get_group_id`` and the size
    getters, and variables only ever assigned group-uniform values under
    group-uniform control.  ``get_local_id`` / ``get_global_id`` and any
    memory load are lane-varying.  Computed by demotion to a fixpoint.
    """
    uniform = {p.name for p in kernel.params}
    _collect_assigned(kernel.body, uniform)
    while True:
        demoted: list = []
        _walk_uniform(kernel.body, True, uniform, demoted)
        shrunk = uniform.intersection(demoted)
        if not shrunk:
            break
        uniform.difference_update(shrunk)
    return _barrier_ctrl_ok(kernel.body, True, uniform)


def _collect_assigned(s, names: set) -> None:
    if isinstance(s, c.CBlock):
        for sub in s.stmts:
            _collect_assigned(sub, names)
    elif isinstance(s, c.CDecl):
        names.add(s.name)
    elif isinstance(s, c.CAssign) and isinstance(s.target, c.CIdent):
        names.add(s.target.name)
    elif isinstance(s, c.CFor):
        for part in (s.init, s.body, s.step):
            if part is not None:
                _collect_assigned(part, names)
    elif isinstance(s, c.CIf):
        _collect_assigned(s.then, names)
        if s.otherwise is not None:
            _collect_assigned(s.otherwise, names)


def _expr_uniform(e, uniform: set) -> bool:
    if isinstance(e, (c.CInt, c.CFloat)):
        return True
    if isinstance(e, c.CIdent):
        return e.name in uniform
    if isinstance(e, c.CBinOp):
        return _expr_uniform(e.lhs, uniform) and _expr_uniform(e.rhs, uniform)
    if isinstance(e, c.CUnOp):
        return _expr_uniform(e.operand, uniform)
    if isinstance(e, c.CTernary):
        return all(
            _expr_uniform(x, uniform) for x in (e.cond, e.then, e.otherwise)
        )
    if isinstance(e, c.CCast):
        return _expr_uniform(e.operand, uniform)
    if isinstance(e, c.CCall):
        if e.func in _GEOM_UNIFORM:
            return all(_expr_uniform(a, uniform) for a in e.args)
        if e.func in _MATH_BUILTINS and e.func not in _UNSUPPORTED_BUILTINS:
            return all(_expr_uniform(a, uniform) for a in e.args)
        return False  # lane getters, loads via vload, helper calls
    # CIndex (memory load), CMember, CVectorLiteral: conservative.
    return False


def _walk_uniform(s, ctrl: bool, uniform: set, demoted: list) -> None:
    if isinstance(s, c.CBlock):
        for sub in s.stmts:
            _walk_uniform(sub, ctrl, uniform, demoted)
    elif isinstance(s, c.CDecl):
        if s.array_size is not None:
            value_uniform = True  # the pointer itself is uniform
        else:
            value_uniform = s.init is None or _expr_uniform(s.init, uniform)
        if not (ctrl and value_uniform):
            demoted.append(s.name)
    elif isinstance(s, c.CAssign):
        if isinstance(s.target, c.CIdent):
            value_uniform = _expr_uniform(s.value, uniform)
            if s.op != "=":
                value_uniform = value_uniform and s.target.name in uniform
            if not (ctrl and value_uniform):
                demoted.append(s.target.name)
        elif isinstance(s.target, c.CMember) and isinstance(s.target.base, c.CIdent):
            demoted.append(s.target.base.name)
    elif isinstance(s, c.CFor):
        if s.init is not None:
            _walk_uniform(s.init, ctrl, uniform, demoted)
        inner = ctrl and (s.cond is None or _expr_uniform(s.cond, uniform))
        _walk_uniform(s.body, inner, uniform, demoted)
        if s.step is not None:
            _walk_uniform(s.step, inner, uniform, demoted)
    elif isinstance(s, c.CIf):
        inner = ctrl and _expr_uniform(s.cond, uniform)
        _walk_uniform(s.then, inner, uniform, demoted)
        if s.otherwise is not None:
            _walk_uniform(s.otherwise, inner, uniform, demoted)


def _barrier_ctrl_ok(s, ctrl: bool, uniform: set) -> bool:
    if isinstance(s, c.CBarrier):
        return ctrl
    if isinstance(s, c.CBlock):
        return all(_barrier_ctrl_ok(sub, ctrl, uniform) for sub in s.stmts)
    if isinstance(s, c.CFor):
        inner = ctrl and (s.cond is None or _expr_uniform(s.cond, uniform))
        return _barrier_ctrl_ok(s.body, inner, uniform)
    if isinstance(s, c.CIf):
        inner = ctrl and _expr_uniform(s.cond, uniform)
        if not _barrier_ctrl_ok(s.then, inner, uniform):
            return False
        return s.otherwise is None or _barrier_ctrl_ok(s.otherwise, inner, uniform)
    return True


# -- written-pointer analysis ------------------------------------------------
#
# The race detector only matters for buffers some work-item can *write*:
# a buffer that is never stored through cannot produce an order-dependent
# result, so loads from it skip the (comparatively expensive) hazard
# bookkeeping entirely.  This conservative data-flow pass computes the
# set of identifier names whose value may reach a store; the launcher
# intersects it with the actual argument arrays (so aliased buffers —
# one array passed under two names — stay tracked).

def written_pointer_roots(parsed: ParsedProgram, kernel: c.CFunctionDef) -> frozenset:
    """Names (params, locals) whose value may flow into a stored-through
    pointer anywhere in the kernel or its helpers.  Conservative: unknown
    constructs mark every involved identifier."""
    cache = getattr(parsed, "_simt_written", None)
    if cache is None:
        cache = {}
        parsed._simt_written = cache
    if kernel.name in cache:
        return cache[kernel.name]
    roots = frozenset(_roots_of_function(parsed, kernel, frozenset(), {}))
    cache[kernel.name] = roots
    return roots


def _expr_idents(e, out: set) -> None:
    if isinstance(e, c.CIdent):
        out.add(e.name)
    elif isinstance(e, c.CBinOp):
        _expr_idents(e.lhs, out)
        _expr_idents(e.rhs, out)
    elif isinstance(e, c.CUnOp):
        _expr_idents(e.operand, out)
    elif isinstance(e, c.CTernary):
        _expr_idents(e.cond, out)
        _expr_idents(e.then, out)
        _expr_idents(e.otherwise, out)
    elif isinstance(e, c.CIndex):
        _expr_idents(e.base, out)
        _expr_idents(e.index, out)
    elif isinstance(e, c.CMember):
        _expr_idents(e.base, out)
    elif isinstance(e, c.CCast):
        _expr_idents(e.operand, out)
    elif isinstance(e, (c.CVectorLiteral, c.CCall)):
        for item in (e.items if isinstance(e, c.CVectorLiteral) else e.args):
            _expr_idents(item, out)


def _roots_of_function(
    parsed, fn: c.CFunctionDef, stack: frozenset, memo: dict
) -> set:
    """Fixpoint written-roots computation for one function body.

    ``memo`` caches helper results by name for one analysis run (they
    are caller-independent), so a kernel calling the same helper from
    many sites — or through nested helper chains — scans each body
    once instead of once per call expression.
    """
    written: set = set()
    flows: list = []  # (target name, identifier names of the value)

    def scan_expr(e) -> None:
        if isinstance(e, c.CCall):
            for a in e.args:
                scan_expr(a)
            name = e.func
            if _is_vstore(name):
                _expr_idents(e.args[2], written)
            elif (
                name.startswith("get_")
                or _is_vload(name)
                or name in _MATH_BUILTINS
            ):
                pass
            elif name in parsed.functions:
                callee = parsed.functions[name]
                if name in stack:
                    # Recursive helpers never vectorize; stay sound.
                    for a in e.args:
                        _expr_idents(a, written)
                else:
                    callee_written = memo.get(name)
                    if callee_written is None:
                        callee_written = _roots_of_function(
                            parsed, callee, stack | {fn.name}, memo
                        )
                        memo[name] = callee_written
                    for p, a in zip(callee.params, e.args):
                        if p.name in callee_written:
                            _expr_idents(a, written)
            else:
                # Unknown function: assume it may write through any arg.
                for a in e.args:
                    _expr_idents(a, written)
        elif isinstance(e, c.CBinOp):
            scan_expr(e.lhs)
            scan_expr(e.rhs)
        elif isinstance(e, c.CUnOp):
            scan_expr(e.operand)
        elif isinstance(e, c.CTernary):
            scan_expr(e.cond)
            scan_expr(e.then)
            scan_expr(e.otherwise)
        elif isinstance(e, c.CIndex):
            scan_expr(e.base)
            scan_expr(e.index)
        elif isinstance(e, c.CMember):
            scan_expr(e.base)
        elif isinstance(e, c.CCast):
            scan_expr(e.operand)
        elif isinstance(e, c.CVectorLiteral):
            for item in e.items:
                scan_expr(item)

    def scan_stmt(s) -> None:
        if isinstance(s, c.CBlock):
            for sub in s.stmts:
                scan_stmt(sub)
        elif isinstance(s, c.CDecl):
            if s.init is not None:
                scan_expr(s.init)
                ids: set = set()
                _expr_idents(s.init, ids)
                flows.append((s.name, ids))
        elif isinstance(s, c.CAssign):
            scan_expr(s.value)
            if isinstance(s.target, c.CIdent):
                ids = set()
                _expr_idents(s.value, ids)
                flows.append((s.target.name, ids))
            elif isinstance(s.target, c.CIndex):
                _expr_idents(s.target.base, written)
                scan_expr(s.target.index)
            elif isinstance(s.target, c.CMember):
                # Member stores hit struct registers / vector variables,
                # not shared buffers — but a pointer stored *into* a
                # member must still flow to the container's name.
                scan_expr(s.target.base)
                base = s.target.base
                while isinstance(base, c.CMember):
                    base = base.base
                if isinstance(base, c.CIdent):
                    ids = set()
                    _expr_idents(s.value, ids)
                    flows.append((base.name, ids))
        elif isinstance(s, c.CFor):
            for part in (s.init, s.step, s.body):
                if part is not None:
                    scan_stmt(part)
            if s.cond is not None:
                scan_expr(s.cond)
        elif isinstance(s, c.CIf):
            scan_expr(s.cond)
            scan_stmt(s.then)
            if s.otherwise is not None:
                scan_stmt(s.otherwise)
        elif isinstance(s, c.CExprStmt):
            scan_expr(s.expr)
        elif isinstance(s, c.CReturn):
            if s.value is not None:
                scan_expr(s.value)

    scan_stmt(fn.body)
    changed = True
    while changed:
        changed = False
        for target, ids in flows:
            if target in written and not ids <= written:
                written |= ids
                changed = True
    return written


# ---------------------------------------------------------------------------
# lane-batched values
# ---------------------------------------------------------------------------

class VPtr:
    """Pointer into a shared 1-D buffer (global memory, flat local)."""

    __slots__ = ("array", "offset", "space")

    def __init__(self, array: np.ndarray, offset, space: str):
        self.array = array
        self.offset = offset  # python int or (L,) int64 lane array
        self.space = space

    def plus(self, delta) -> "VPtr":
        return VPtr(self.array, self.offset + delta, self.space)


class RowPtr:
    """Pointer into a 2-D row-partitioned buffer.

    ``rows`` maps each lane to its row: the lane index for private
    arrays (one row per work-item), the in-block group ordinal for local
    buffers (one row per work-group).
    """

    __slots__ = ("array", "rows", "offset", "space")

    def __init__(self, array: np.ndarray, rows: np.ndarray, offset, space: str):
        self.array = array
        self.rows = rows
        self.offset = offset
        self.space = space

    def plus(self, delta) -> "RowPtr":
        return RowPtr(self.array, self.rows, self.offset + delta, self.space)


class _Frame:
    """Per-function-body return state (lanes that hit ``return``)."""

    __slots__ = ("ret_mask", "ret_val", "returned_any", "has_value")

    def __init__(self, lanes: int):
        self.ret_mask = np.zeros(lanes, dtype=bool)
        self.ret_val: Any = None
        self.returned_any = False
        self.has_value = False


_UNIFORM_TYPES = (int, float, bool, np.integer, np.floating, np.bool_)


def _is_uniform(v) -> bool:
    return isinstance(v, _UNIFORM_TYPES)


def _kind(v) -> str:
    if isinstance(v, np.ndarray):
        if v.ndim == 2:
            return "vec"
        return "f" if v.dtype.kind == "f" else "i"
    if isinstance(v, (bool, np.bool_, np.integer, int)):
        return "i"
    if isinstance(v, (float, np.floating)):
        return "f"
    if isinstance(v, (VPtr, RowPtr)):
        return "ptr"
    if isinstance(v, dict):
        return "struct"
    return "other"


def _vec_width(v) -> int:
    """Width the scalar interpreter's ``_width_of`` would report."""
    if isinstance(v, np.ndarray) and v.ndim == 2:
        return v.shape[1]
    return 1


def _is_floatish(v) -> bool:
    if isinstance(v, np.ndarray):
        return v.dtype.kind == "f"
    return isinstance(v, (float, np.floating))


def _is_int_like(v) -> bool:
    """Mirror of the scalar ``_is_int`` (bools are *not* C integers)."""
    if isinstance(v, np.ndarray):
        return v.ndim == 1 and v.dtype.kind in "iu"
    return isinstance(v, (int, np.integer)) and not isinstance(
        v, (bool, np.bool_)
    )


# ---------------------------------------------------------------------------
# block executor
# ---------------------------------------------------------------------------

class _Block:
    """Executes one block of whole work-groups in lock-step."""

    def __init__(
        self,
        parsed: ParsedProgram,
        counters: Counters,
        lanes: int,
        group_row: np.ndarray,
        lid: tuple,
        gid: tuple,
        group_ids: tuple,
        global_size: tuple,
        local_size: tuple,
        num_groups: tuple,
        seg_start: int = 0,
        tracked: Optional[set] = None,
        lane_ids: Optional[np.ndarray] = None,
        full: Optional[np.ndarray] = None,
    ):
        self.parsed = parsed
        self.counters = counters
        self.L = lanes
        self.group_row = group_row
        self.lid = lid
        self.gid = gid
        self.group_ids = group_ids
        self.global_size = global_size
        self.local_size = local_size
        self.num_groups = num_groups
        self.env: dict = {}
        self._lane_ids = lane_ids if lane_ids is not None else np.arange(lanes)
        self._load_log: dict = {}  # (id(buffer), width) -> _LoadLog
        # Race detectors live for one block (blocks run in the scalar
        # engine's group order, so cross-block conflicts agree by
        # construction); the backing arrays are pooled across blocks and
        # launches, kept valid by the monotonic segment epoch.
        self._hazards: dict = {}
        # ``None`` tracks every shared buffer; a set restricts hazard
        # bookkeeping to the arrays some lane may write (see
        # :func:`written_pointer_roots`).
        self._tracked = tracked
        self._seg_base = seg_start
        self._segment = seg_start
        self._lanes_per_group = local_size[0] * local_size[1] * local_size[2]
        self._full = full if full is not None else np.ones(lanes, dtype=bool)

    # -- top level -------------------------------------------------------
    def run(self, kernel: c.CFunctionDef) -> None:
        frame = _Frame(self.L)
        self.exec_stmt(kernel.body, self._full, self.L, frame)
        self._flush_load_log()

    # -- statements ------------------------------------------------------
    def exec_stmt(self, s, m, n, frame) -> None:
        t = type(s)
        if t is c.CBlock:
            for sub in s.stmts:
                if frame.returned_any:
                    m = m & ~frame.ret_mask
                    n = int(np.count_nonzero(m))
                    if n == 0:
                        return
                self.exec_stmt(sub, m, n, frame)
        elif t is c.CAssign:
            self._assign(s, m, n)
        elif t is c.CDecl:
            self._declare(s, m, n)
        elif t is c.CFor:
            if s.init is not None:
                self.exec_stmt(s.init, m, n, frame)
            active = m & ~frame.ret_mask if frame.returned_any else m
            while True:
                na = int(np.count_nonzero(active))
                if na == 0:
                    break
                if s.cond is not None:
                    cv = self._as_bool(self.eval(s.cond, active, na), active)
                    active = active & cv
                    na = int(np.count_nonzero(active))
                    if na == 0:
                        break
                self.counters.loop_iterations += na
                self.exec_stmt(s.body, active, na, frame)
                if frame.returned_any:
                    active = active & ~frame.ret_mask
                    na = int(np.count_nonzero(active))
                    if na == 0:
                        break
                if s.step is not None:
                    self.exec_stmt(s.step, active, na, frame)
        elif t is c.CIf:
            self.counters.branches += n
            cv = self._as_bool(self.eval(s.cond, m, n), m)
            mt = m & cv
            nt = int(np.count_nonzero(mt))
            if nt:
                self.exec_stmt(s.then, mt, nt, frame)
            if s.otherwise is not None and nt < n:
                mf = m & ~cv
                self.exec_stmt(s.otherwise, mf, n - nt, frame)
        elif t is c.CExprStmt:
            self.eval(s.expr, m, n)
        elif t is c.CReturn:
            value = self.eval(s.value, m, n) if s.value is not None else None
            self._set_return(frame, m, value)
        elif t is c.CComment:
            pass
        elif t is c.CBarrier:
            # The static analysis guarantees the mask is all-or-nothing
            # per work-group here, so lock-step execution satisfies the
            # barrier and each active item counts one, as in the scalar
            # generator path.
            self.counters.barriers += n
            self._segment += 1
        else:
            raise VectorUnsupported(f"cannot execute {s!r}")

    def _set_return(self, frame, m, value) -> None:
        if value is None:
            if frame.has_value:
                raise VectorUnsupported("mixed void and value returns")
        elif not frame.returned_any:
            frame.ret_val = value
            frame.has_value = True
        elif not frame.has_value:
            raise VectorUnsupported("mixed void and value returns")
        else:
            frame.ret_val = self._merge(frame.ret_val, value, m)
        frame.ret_mask |= m
        frame.returned_any = True

    # -- declarations ----------------------------------------------------
    def _declare(self, decl: c.CDecl, m, n) -> None:
        name = decl.name
        if decl.qualifier == "local" and decl.array_size is not None:
            if name not in self.env:
                raise ExecError(f"local buffer {name} was not pre-allocated")
            return
        if decl.array_size is not None:
            dtype = (
                np.int64 if decl.type_name in ("int", "uint", "long") else np.float64
            )
            self.env[name] = RowPtr(
                np.zeros((self.L, decl.array_size), dtype=dtype),
                self._lane_ids,
                0,
                "private",
            )
            return
        if decl.init is not None:
            self._bind(name, self.eval(decl.init, m, n), m, n, declaring=True)
            return
        struct = self.parsed.structs.get(decl.type_name)
        if struct is not None:
            self._bind(
                name, {member: 0.0 for _, member in struct.members}, m, n,
                declaring=True,
            )
        elif decl.type_name.rstrip("1234568") in ("float", "int", "uint", "double"):
            width = decl.type_name.lstrip("floatinudbe")
            if width and width in ("2", "3", "4", "8", "16"):
                self._bind(
                    name, np.zeros((self.L, int(width))), m, n, declaring=True
                )
            else:
                self._bind(name, 0, m, n, declaring=True)
        else:
            self._bind(name, 0, m, n, declaring=True)

    # -- assignment ------------------------------------------------------
    def _assign(self, s: c.CAssign, m, n) -> None:
        value = self.eval(s.value, m, n)
        if s.op != "=":
            current = self.eval(s.target, m, n)
            op = s.op[0]
            value = self._binop_value(op, current, value, m, n)
            self._count_binop(op, current, value, n)
        target = s.target
        if isinstance(target, c.CIdent):
            self._bind(target.name, value, m, n)
        elif isinstance(target, c.CIndex):
            base = self.eval(target.base, m, n)
            index = self.eval(target.index, m, n)
            if not isinstance(base, (VPtr, RowPtr)):
                raise ExecError(f"indexed store into non-pointer {target.base!r}")
            self._scatter(base, index, value, m, n)
        elif isinstance(target, c.CMember):
            container = self.eval(target.base, m, n)
            if isinstance(container, dict):
                if n == self.L:
                    container[target.member] = value
                else:
                    old = container.get(target.member, 0.0)
                    container[target.member] = self._merge(old, value, m)
            elif isinstance(container, np.ndarray) and container.ndim == 2:
                col = _VEC_MEMBERS[target.member]
                if n == self.L:
                    container[:, col] = value
                else:
                    container[m, col] = self._lanes(value)[m]
            else:
                raise ExecError(f"member store into {container!r}")
        else:
            raise ExecError(f"cannot assign to {target!r}")

    def _bind(self, name, value, m, n, declaring: bool = False) -> None:
        if n == self.L:
            self.env[name] = value
            return
        old = self.env.get(name, _MISSING)
        if old is _MISSING:
            if not declaring:
                raise VectorUnsupported(
                    f"first assignment to {name!r} under a partial mask"
                )
            # A declaration dominates every read of the variable in
            # well-scoped C, so inactive lanes can hold a zero filler.
            self.env[name] = self._merge(self._zero_like(value), value, m)
            return
        self.env[name] = self._merge(old, value, m)

    def _zero_like(self, value):
        k = _kind(value)
        if k == "i":
            return 0
        if k == "f":
            return 0.0
        if k == "vec":
            return np.zeros_like(value)
        if k == "struct":
            return {key: 0.0 for key in value}
        if k == "ptr":
            return value  # pointer target is uniform; offset merged below
        raise VectorUnsupported(f"cannot default-fill a {k} value")

    # -- merging ---------------------------------------------------------
    def _merge(self, old, new, m):
        if old is new:
            return old
        ko, kn = _kind(old), _kind(new)
        if ko in ("i", "f") and kn in ("i", "f"):
            if ko != kn:
                raise VectorUnsupported(
                    "masked assignment mixes integer and float lanes"
                )
            if _is_uniform(old) and _is_uniform(new) and old == new:
                return old
            return np.where(m, new, old)
        if ko == "vec" and kn == "vec":
            if old.shape[1] != new.shape[1]:
                raise VectorUnsupported("masked assignment mixes vector widths")
            return np.where(m[:, None], new, old)
        if ko == "struct" and kn == "struct":
            if set(old) != set(new):
                raise VectorUnsupported("masked assignment mixes struct types")
            return {key: self._merge(old[key], new[key], m) for key in old}
        if ko == "ptr" and kn == "ptr":
            same = (
                type(old) is type(new)
                and old.array is new.array
                and old.space == new.space
                and (not isinstance(old, RowPtr) or old.rows is new.rows)
            )
            if not same:
                raise VectorUnsupported("masked assignment mixes pointers")
            offset = self._merge_offsets(old.offset, new.offset, m)
            if isinstance(old, RowPtr):
                return RowPtr(old.array, old.rows, offset, old.space)
            return VPtr(old.array, offset, old.space)
        raise VectorUnsupported(f"cannot merge {ko} with {kn}")

    def _merge_offsets(self, old, new, m):
        if _is_uniform(old) and _is_uniform(new) and old == new:
            return old
        return np.where(m, new, old)

    # -- expressions -----------------------------------------------------
    def eval(self, e, m, n):
        t = type(e)
        if t is c.CInt:
            return e.value
        if t is c.CFloat:
            return e.value
        if t is c.CIdent:
            try:
                return self.env[e.name]
            except KeyError:
                raise ExecError(f"undefined identifier {e.name!r}") from None
        if t is c.CBinOp:
            op = e.op
            if op == "&&" or op == "||":
                lb = self._as_bool(self.eval(e.lhs, m, n), m)
                m2 = (m & lb) if op == "&&" else (m & ~lb)
                n2 = int(np.count_nonzero(m2))
                if n2:
                    rb = self._as_bool(self.eval(e.rhs, m2, n2), m2)
                else:
                    rb = np.zeros(self.L, dtype=bool)
                return (lb & rb) if op == "&&" else (lb | rb)
            lhs = self.eval(e.lhs, m, n)
            rhs = self.eval(e.rhs, m, n)
            self._count_binop(op, lhs, rhs, n, const_rhs=type(e.rhs) is c.CInt)
            return self._binop_value(op, lhs, rhs, m, n)
        if t is c.CUnOp:
            v = self.eval(e.operand, m, n)
            if e.op == "-":
                return -v
            if e.op == "!":
                return ~self._as_bool(v, m)
            raise ExecError(f"unknown unary operator {e.op}")
        if t is c.CTernary:
            self.counters.branches += n
            cv = self._as_bool(self.eval(e.cond, m, n), m)
            mt = m & cv
            nt = int(np.count_nonzero(mt))
            nf = n - nt
            if nf == 0:
                return self.eval(e.then, mt, nt)
            mf = m & ~cv
            if nt == 0:
                return self.eval(e.otherwise, mf, nf)
            tv = self.eval(e.then, mt, nt)
            fv = self.eval(e.otherwise, mf, nf)
            return self._merge(fv, tv, cv)
        if t is c.CIndex:
            base = self.eval(e.base, m, n)
            index = self.eval(e.index, m, n)
            if isinstance(base, (VPtr, RowPtr)):
                return self._gather(base, index, m, n)
            if isinstance(base, np.ndarray) and base.ndim == 2:
                if _is_uniform(index):
                    return base[:, int(index)]
                idx = np.where(m, index, 0)
                return np.take_along_axis(base, idx[:, None], 1)[:, 0]
            raise ExecError(f"cannot index {base!r}")
        if t is c.CMember:
            container = self.eval(e.base, m, n)
            if isinstance(container, dict):
                return container[e.member]
            if isinstance(container, np.ndarray) and container.ndim == 2:
                member = e.member
                if member in _VEC_MEMBERS:
                    return container[:, _VEC_MEMBERS[member]]
                if member.startswith("s"):
                    return container[:, int(member[1:], 16)]
                if member == "lo":
                    return container[:, : container.shape[1] // 2].copy()
                if member == "hi":
                    return container[:, container.shape[1] // 2 :].copy()
            raise ExecError(f"cannot take member {e.member} of {container!r}")
        if t is c.CCall:
            return self._call(e, m, n)
        if t is c.CCast:
            v = self.eval(e.operand, m, n)
            if e.type_name in ("int", "uint", "long"):
                if isinstance(v, np.ndarray):
                    return v.astype(np.int64)  # truncates toward zero, like C
                return int(v)
            if e.type_name in ("float", "double"):
                if isinstance(v, np.ndarray):
                    return v.astype(np.float64)
                return float(v)
            return v
        if t is c.CVectorLiteral:
            items = [self.eval(i, m, n) for i in e.items]
            width = int("".join(ch for ch in e.type_name if ch.isdigit()))
            if len(items) == 1:
                items = items * width
            out = np.empty((self.L, width), dtype=np.float64)
            for col, item in enumerate(items):
                out[:, col] = item
            return out
        raise VectorUnsupported(f"cannot evaluate {e!r}")

    # -- calls and built-ins ---------------------------------------------
    def _call(self, e: c.CCall, m, n):
        name = e.func
        if name.startswith("get_"):
            if e.args:
                dim = self.eval(e.args[0], m, n)
                if not _is_uniform(dim):
                    raise VectorUnsupported("lane-varying geometry dimension")
                dim = int(dim)
            else:
                dim = 0
            return self._geometry(name, dim)
        if _is_vload(name):
            width = int(name[5:])
            offset = self.eval(e.args[0], m, n)
            ptr = self.eval(e.args[1], m, n)
            assert isinstance(ptr, (VPtr, RowPtr))
            return self._vload(ptr, offset, width, m, n)
        if _is_vstore(name):
            width = int(name[6:])
            value = self.eval(e.args[0], m, n)
            offset = self.eval(e.args[1], m, n)
            ptr = self.eval(e.args[2], m, n)
            assert isinstance(ptr, (VPtr, RowPtr))
            self._vstore(ptr, offset, width, value, m, n)
            return None

        args = [self.eval(a, m, n) for a in e.args]
        builtin = _VMATH.get(name)
        if builtin is not None:
            cost, fn = builtin
            width = 1
            for a in args:
                if isinstance(a, np.ndarray) and a.ndim == 2:
                    width = a.shape[1]
                    break
            self.counters.flops += cost * width * n
            return fn(*args)
        if name in _UNSUPPORTED_BUILTINS:
            raise VectorUnsupported(f"builtin {name!r}")

        fn_def = self.parsed.functions.get(name)
        if fn_def is None:
            raise ExecError(f"call to unknown function {name!r}")
        self.counters.calls += n
        return self._call_helper(fn_def, args, m, n)

    def _call_helper(self, fn: c.CFunctionDef, args, m, n):
        saved = self.env
        # C passes structs and vectors by value.
        by_value = [
            dict(a) if isinstance(a, dict)
            else a.copy() if isinstance(a, np.ndarray)
            else a
            for a in args
        ]
        self.env = dict((p.name, a) for p, a in zip(fn.params, by_value))
        frame = _Frame(self.L)
        try:
            self.exec_stmt(fn.body, m, n, frame)
        finally:
            self.env = saved
        if not frame.has_value:
            return None
        if bool((m & ~frame.ret_mask).any()):
            raise VectorUnsupported(
                f"helper {fn.name!r} returns a value on only some lanes"
            )
        return frame.ret_val

    def _geometry(self, name: str, dim: int):
        if name == "get_global_id":
            return self.gid[dim]
        if name == "get_local_id":
            return self.lid[dim]
        if name == "get_group_id":
            return self.group_ids[dim]
        if name == "get_local_size":
            return self.local_size[dim]
        if name == "get_global_size":
            return self.global_size[dim]
        if name == "get_num_groups":
            return self.num_groups[dim]
        raise ExecError(f"unknown geometry builtin {name}")

    # -- memory ----------------------------------------------------------
    def _lanes(self, v) -> np.ndarray:
        """Materialize a lane view of ``v`` (read-only broadcast)."""
        if isinstance(v, np.ndarray) and v.ndim == 1:
            return v
        return np.broadcast_to(np.asarray(v), (self.L,))

    def _log_load(self, ptr, aa, lanes, width, n) -> None:
        """Record a global/local load for deferred cached-load accounting.

        The scalar interpreter charges a load as *cached* when the same
        work-item already loaded the same address; the totals therefore
        equal ``events - distinct (lane, address) pairs`` — an
        order-independent quantity settled once per buffer at block end
        (see :class:`_LoadLog`), instead of a per-event bitmap.

        ``aa``/``lanes`` are the flattened active addresses from
        :meth:`_flat_addr` — shared with the race detector, and
        equivalent for counting distinct pairs because each lane's
        row is a function of the lane.
        """
        key = (id(ptr.array), width)
        log = self._load_log.get(key)
        if log is None:
            log = _LoadLog(ptr.array, ptr.space, width, self.L)
            self._load_log[key] = log
        log.add(aa, lanes, n)

    def _flush_load_log(self) -> None:
        counters = self.counters
        prof = _obs_profile.ACTIVE
        for log in self._load_log.values():
            events, distinct = log.totals()
            cached = (events - distinct) * log.width_units
            counters.cached_loads += cached
            fresh = distinct * log.width_units
            if log.space == "global":
                counters.global_loads += fresh
            else:
                counters.local_loads += fresh
            if prof is not None:
                prof.record_loads(log.array, log.space, fresh, cached)
        self._load_log.clear()

    def _obs_load_events(self) -> int:
        """Out-of-band running total of logged load events.

        Loads enter ``Counters`` only at block end (:meth:`
        _flush_load_log` settles the cached/fresh split), so the
        profiler's per-segment attribution reads this cheap running
        count instead.  Events include would-be cache hits, making the
        per-segment figure total load *traffic*, not distinct
        addresses.  Profiler-only: never feeds back into Counters."""
        return sum(
            log.events * log.width_units
            for log in self._load_log.values()
        )

    def _count_stores(self, ptr, space, count) -> None:
        """Count ``count`` store units against ``space``.

        ``ptr`` identifies the written buffer for the kernel profiler
        (``None`` for register traffic); the in-band counters use only
        ``space``/``count``, so profiling cannot change them."""
        counters = self.counters
        if space == "global":
            counters.global_stores += count
        elif space == "local":
            counters.local_stores += count
        else:
            counters.private_stores += count
        if _obs_profile.ACTIVE is not None and ptr is not None:
            _obs_profile.ACTIVE.record_stores(ptr.array, space, count)

    def _hazard(self, ptr):
        key = id(ptr.array)
        entry = self._hazards.get(key)
        if entry is None:
            # The packed local detector encodes lane ids below
            # SEG_SCALE; oversized work-groups (possible, since a block
            # always holds at least one whole group) use the general
            # detector, which is sound for any buffer.
            cls = (
                _HazardLocal
                if ptr.space == "local" and self.L <= _HazardLocal.SEG_SCALE
                else _Hazard
            )
            entry = _acquire_hazard(ptr.array.size, cls).retarget(
                ptr.array, self._lanes_per_group
            )
            self._hazards[key] = entry
        return entry

    def _needs_hazard(self, ptr) -> bool:
        tracked = self._tracked
        if tracked is None:
            return True
        if id(ptr.array) in tracked:
            return True
        return False

    def _flat_addr(self, ptr, addr, m, n):
        """(flat addresses, lanes) for the active lanes of an access."""
        if n == self.L:
            lanes = self._lane_ids
            aa = self._lanes(addr)
            rows = ptr.rows if isinstance(ptr, RowPtr) else None
        else:
            lanes = self._lane_ids[m]
            aa = self._lanes(addr)[m]
            rows = ptr.rows[m] if isinstance(ptr, RowPtr) else None
        if rows is not None:
            aa = rows * ptr.array.shape[1] + aa
        return aa, lanes

    def _gather(self, ptr, index, m, n):
        off = ptr.offset
        addr = index if type(off) is int and off == 0 else off + index
        arr = ptr.array
        is_row = type(ptr) is RowPtr
        if ptr.space == "private":
            self.counters.private_loads += n
            if _is_uniform(addr):
                return arr[ptr.rows, int(addr)] if is_row else arr[int(addr)]
            safe = addr if n == self.L else np.where(m, addr, 0)
            return arr[ptr.rows, safe] if is_row else arr[safe]
        # Shared buffer: the flattened per-lane addresses are computed
        # once and shared between the load log, the race detector and
        # the gather itself.
        if is_row:
            flat = ptr.rows * arr.shape[1] + addr  # broadcasts uniform addr
        elif isinstance(addr, np.ndarray):
            flat = addr
        else:
            flat = None  # uniform address into a flat buffer
        if n == self.L:
            lanes = self._lane_ids
            aa = flat if flat is not None else (
                np.broadcast_to(np.asarray(addr), (n,))
            )
        else:
            lanes = self._lane_ids[m]
            aa = flat[m] if flat is not None else (
                np.broadcast_to(np.asarray(addr), (n,))
            )
        self._log_load(ptr, aa, lanes, 0, n)
        if self._needs_hazard(ptr):
            self._hazard(ptr).note_read(aa, lanes, self._segment, self._seg_base)
        if _is_uniform(addr):
            return arr[ptr.rows, int(addr)] if is_row else arr[int(addr)]
        # Inactive lanes read a safe dummy address; with a full mask the
        # addresses are already all valid.
        if is_row:
            safe = flat if n == self.L else np.where(m, flat, 0)
            return arr.reshape(-1)[safe]
        safe = addr if n == self.L else np.where(m, addr, 0)
        return arr[safe]

    def _scatter(self, ptr, index, value, m, n) -> None:
        off = ptr.offset
        addr = self._lanes(
            index if type(off) is int and off == 0 else off + index
        )
        values = self._lanes(value)
        arr = ptr.array
        is_row = type(ptr) is RowPtr
        if ptr.space != "private":
            if not self._needs_hazard(ptr):
                # The static analysis said this buffer is never written;
                # a store through it means the analysis was wrong —
                # bail to the (always correct) scalar path.
                raise VectorUnsupported(
                    "store through a buffer the write analysis missed"
                )
            flat = ptr.rows * arr.shape[1] + addr if is_row else addr
            if n == self.L:
                aa = flat
                lanes = self._lane_ids
            else:
                aa = flat[m]
                lanes = self._lane_ids[m]
            self._hazard(ptr).note_write(aa, lanes, self._segment, self._seg_base)
            # Duplicate addresses resolve in ascending lane order in a
            # flat fancy-store, exactly like the 2-D form.
            if n == self.L:
                arr.reshape(-1)[aa] = values
            else:
                arr.reshape(-1)[aa] = values[m]
            self._count_stores(ptr, ptr.space, n)
            return
        if is_row:
            if n == self.L:
                arr[ptr.rows, addr] = values
            else:
                arr[ptr.rows[m], addr[m]] = values[m]
        else:
            if n == self.L:
                arr[addr] = values
            else:
                arr[addr[m]] = values[m]
        self._count_stores(ptr, ptr.space, n)

    def _vload(self, ptr, offset, width, m, n):
        start = ptr.offset + offset * width
        cols = np.arange(width)
        if ptr.space == "private":
            self.counters.private_loads += n * width
        else:
            aa, lanes = self._flat_addr(ptr, start, m, n)
            self._log_load(ptr, aa, lanes, width, n)
            if self._needs_hazard(ptr):
                # 2-D (lane, slot) block: the detector broadcasts the
                # lane ids itself — no per-access repeat/ravel copies.
                self._hazard(ptr).note_read(
                    aa[:, None] + cols, lanes, self._segment, self._seg_base
                )
        if _is_uniform(start):
            start = int(start)
            if isinstance(ptr, VPtr):
                row = ptr.array[start : start + width].astype(np.float64)
                return np.tile(row, (self.L, 1))
            return ptr.array[ptr.rows, start : start + width].astype(np.float64)
        safe = np.where(m, start, 0)
        idx2 = safe[:, None] + cols
        if isinstance(ptr, VPtr):
            return ptr.array[idx2].astype(np.float64)
        return ptr.array[ptr.rows[:, None], idx2].astype(np.float64)

    def _vstore(self, ptr, offset, width, value, m, n) -> None:
        start = self._lanes(ptr.offset + offset * width)
        if not (isinstance(value, np.ndarray) and value.ndim == 2):
            raise VectorUnsupported("vstore of a non-vector value")
        cols = np.arange(width)
        if ptr.space != "private":
            if not self._needs_hazard(ptr):
                raise VectorUnsupported(
                    "store through a buffer the write analysis missed"
                )
            aa, lanes = self._flat_addr(ptr, start, m, n)
            self._hazard(ptr).note_write(
                aa[:, None] + cols, lanes, self._segment, self._seg_base
            )
        if n == self.L:
            idx2 = start[:, None] + cols
            vals = value
            rows = ptr.rows if isinstance(ptr, RowPtr) else None
        else:
            idx2 = start[m][:, None] + cols
            vals = value[m]
            rows = ptr.rows[m] if isinstance(ptr, RowPtr) else None
        if rows is None:
            ptr.array[idx2.ravel()] = vals.ravel()
        else:
            # 2-D fancy store broadcasts the row per vector slot; flat
            # iteration order (and therefore duplicate-address
            # resolution) matches the old repeat/ravel form.
            ptr.array[rows[:, None], idx2] = vals
        self._count_stores(ptr, ptr.space, n * width)

    # -- operators -------------------------------------------------------
    def _as_bool(self, v, m) -> np.ndarray:
        if isinstance(v, np.ndarray):
            if v.ndim != 1:
                raise VectorUnsupported("vector used in a scalar condition")
            if v.dtype.kind == "b":
                return v
            return v != 0
        if _is_uniform(v):
            return self._full if v else np.zeros(self.L, dtype=bool)
        raise VectorUnsupported(f"cannot use {v!r} as a condition")

    @staticmethod
    def _align(lhs, rhs):
        if isinstance(lhs, np.ndarray) and lhs.ndim == 2:
            if isinstance(rhs, np.ndarray) and rhs.ndim == 1:
                rhs = rhs[:, None]
        elif isinstance(rhs, np.ndarray) and rhs.ndim == 2:
            if isinstance(lhs, np.ndarray) and lhs.ndim == 1:
                lhs = lhs[:, None]
        return lhs, rhs

    def _binop_value(self, op, lhs, rhs, m, n):
        if isinstance(lhs, (VPtr, RowPtr)):
            if op == "+":
                return lhs.plus(rhs)
            if op == "-":
                return lhs.plus(-rhs)
            raise ExecError(f"unsupported pointer operation {op}")
        lhs, rhs = self._align(lhs, rhs)
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            if _is_int_like(lhs) and _is_int_like(rhs):
                return self._int_div(lhs, rhs, m)
            return lhs / rhs
        if op == "%":
            if _is_int_like(lhs) and _is_int_like(rhs):
                return self._int_mod(lhs, rhs, m)
            return np.fmod(lhs, rhs)  # C fmod semantics, like math.fmod
        if op == "==":
            return lhs == rhs
        if op == "!=":
            return lhs != rhs
        if op == "<":
            return lhs < rhs
        if op == ">":
            return lhs > rhs
        if op == "<=":
            return lhs <= rhs
        if op == ">=":
            return lhs >= rhs
        raise ExecError(f"unknown operator {op}")

    def _int_div(self, a, b, m):
        if _is_uniform(a) and _is_uniform(b):
            return _c_int_div(int(a), int(b))
        zero = np.equal(b, 0)
        if bool(np.any(zero & m)):
            raise ExecError("integer division by zero")
        safe = np.where(zero, 1, b)
        q = np.abs(a) // np.abs(safe)
        return np.where(np.greater_equal(a, 0) == np.greater_equal(safe, 0), q, -q)

    def _int_mod(self, a, b, m):
        if _is_uniform(a) and _is_uniform(b):
            return _c_int_mod(int(a), int(b))
        q = self._int_div(a, b, m)
        safe = np.where(np.equal(b, 0), 1, b)
        return a - q * safe

    def _count_binop(self, op, lhs, rhs, n, const_rhs: bool = False) -> None:
        counters = self.counters
        if op in _CMP_OPS:
            counters.iops += n
            return
        if _is_floatish(lhs) or _is_floatish(rhs):
            counters.flops += max(_vec_width(lhs), _vec_width(rhs)) * n
        elif op in ("/", "%"):
            if (
                const_rhs
                and _is_int_like(rhs)
                and _is_uniform(rhs)
                and int(rhs) > 0
                and (int(rhs) & (int(rhs) - 1)) == 0
            ):
                counters.iops += n
            elif const_rhs:
                counters.idivmod_const += n
            else:
                counters.idivmod += n
        else:
            counters.iops += n


_MISSING = object()


def _rev(a: np.ndarray) -> np.ndarray:
    """Reverse the flat (row-major) iteration order of a scatter index —
    for 2-D blocks that means reversing both axes."""
    return a[::-1] if a.ndim == 1 else a[::-1, ::-1]


class _Hazard:
    """Cross-lane data-race detector for one shared buffer.

    The scalar interpreter runs the work-items of a barrier-free segment
    sequentially to completion, so a later item can observe an earlier
    item's writes; the lane-batched engine runs statement-by-statement
    across all lanes.  The two orders agree exactly for race-free
    kernels.  This detector flags the conflicts that could differ, and
    the launcher then falls back to the scalar path, preserving its
    semantics bit for bit:

    * same-address accesses from *different lanes of one work-group*
      with at least one write, within one barrier segment (a barrier
      orders them in both engines);
    * same-address accesses from *different work-groups* with at least
      one write, in **any** segment of the current block — barriers do
      not order work-groups, the scalar engine runs them sequentially,
      so any cross-group conflict is order-dependent.  (Blocks run in
      the scalar engine's group order, so cross-*block* conflicts agree
      by construction.)

    Bookkeeping is fully vectorized: per address, the writing lane and
    the min/max reading lanes, each epoch-stamped with the barrier
    segment.  Segments increase monotonically across blocks *and across
    launches* (``_pool_tls.epoch``), so the stamp arrays never
    need re-initialization: entries stamped before the current block's
    first segment are simply stale — nothing is ever cleared, which is
    what lets :func:`_acquire_hazard` pool the five bookkeeping arrays
    across blocks and launches instead of re-allocating ~5x the buffer
    size per launch.  Within a single statement all lanes are
    simultaneous in both engines, so intra-statement duplicates are not
    conflicts; checks run against the pre-statement state only.

    Local (row-partitioned) buffers use :class:`_HazardLocal` instead:
    their flat addresses embed the work-group ordinal, so two accesses
    to one address are always same-group, the cross-group terms vanish,
    and only same-*segment* conflicts remain — which admits a packed
    ``segment * SEG_SCALE + lane`` representation with one array per
    access kind.
    """

    __slots__ = (
        "array", "lanes_per_group",
        "w_stamp", "writer", "r_stamp", "r_min", "r_max",
    )

    def __init__(self, size: int):
        self.array: Optional[np.ndarray] = None
        self.lanes_per_group = 1
        self.w_stamp = np.full(size, -1, dtype=np.int64)
        self.writer = np.zeros(size, dtype=np.int64)
        self.r_stamp = np.full(size, -1, dtype=np.int64)
        self.r_min = np.zeros(size, dtype=np.int64)
        self.r_max = np.zeros(size, dtype=np.int64)

    def retarget(self, array: np.ndarray, lanes_per_group: int) -> "_Hazard":
        """Bind a pooled detector to a buffer.  Old stamps are stale by
        the epoch argument callers pass (always past stamps), so the
        arrays keep whatever they contained."""
        self.array = array
        self.lanes_per_group = lanes_per_group
        return self

    def note_read(
        self, addrs: np.ndarray, lanes: np.ndarray, seg: int, base: int
    ) -> None:
        """``addrs`` may be 1-D (one address per active lane) or 2-D
        ``(lane, vector-slot)`` for whole ``vloadN`` accesses; the 2-D
        form broadcasts the per-lane ids instead of ``np.repeat``-ing
        them per access (row-major flattening preserves the ascending
        lane order the duplicate-address scatters rely on)."""
        if addrs.ndim == 2:
            lanes = lanes[:, None]
        stamp = self.w_stamp[addrs]
        writer = self.writer[addrs]
        l0 = self.lanes_per_group
        conflict = (
            (stamp >= base)
            & (writer != lanes)
            & ((stamp == seg) | (writer // l0 != lanes // l0))
        )
        if conflict.any():
            raise VectorUnsupported(
                "cross-lane read of an address written by another "
                "work-item (order-dependent result)"
            )
        # Reader min/max accumulate across the whole block (a later
        # same-group reader must not mask an earlier cross-group one);
        # ``r_stamp`` keeps the *latest* read segment for the same-segment
        # write check and for staleness across blocks.
        valid = self.r_stamp[addrs] >= base
        new_min = np.where(valid, np.minimum(self.r_min[addrs], lanes), lanes)
        new_max = np.where(valid, np.maximum(self.r_max[addrs], lanes), lanes)
        # Lanes ascend, so a forward scatter keeps the max for duplicate
        # addresses and a reversed scatter keeps the min.
        self.r_min[_rev(addrs)] = _rev(new_min)
        self.r_max[addrs] = new_max
        self.r_stamp[addrs] = seg

    def note_write(
        self, addrs: np.ndarray, lanes: np.ndarray, seg: int, base: int
    ) -> None:
        """Accepts the same 1-D / 2-D address forms as :meth:`note_read`."""
        if addrs.ndim == 2:
            lanes = lanes[:, None]
        w_stamp = self.w_stamp[addrs]
        writer = self.writer[addrs]
        r_stamp = self.r_stamp[addrs]
        r_min = self.r_min[addrs]
        r_max = self.r_max[addrs]
        l0 = self.lanes_per_group
        groups = lanes // l0
        conflict = (
            (w_stamp >= base)
            & (writer != lanes)
            & ((w_stamp == seg) | (writer // l0 != groups))
        )
        conflict |= (
            (r_stamp >= base)
            & ((r_min != lanes) | (r_max != lanes))
            & (
                (r_stamp == seg)
                | (r_min // l0 != groups)
                | (r_max // l0 != groups)
            )
        )
        if conflict.any():
            raise VectorUnsupported(
                "cross-lane write/read conflict (order-dependent result)"
            )
        self.writer[addrs] = lanes
        self.w_stamp[addrs] = seg


class _HazardLocal:
    """Race detector for row-partitioned local buffers.

    Cross-group conflicts are structurally impossible (the flat address
    embeds the group row), and same-group accesses in different barrier
    segments are ordered by the barrier in both engines — so only
    *same-segment* conflicts remain.  That admits packing each entry as
    ``segment * SEG_SCALE + lane``: the monotonically increasing
    segment makes ``np.maximum`` both the update rule and the staleness
    filter (older segments always lose), and a single comparison against
    ``segment * SEG_SCALE`` tests "touched in this segment".

    ``r_hi`` keeps the packed *largest* reader lane of the latest
    segment; ``r_lo`` the smallest, stored lane-inverted
    (``SEG_SCALE-1 - lane``) so the same max-update applies.  Compared
    to the block-accumulating min/max of :class:`_Hazard` this is
    *more* precise for the write check (an earlier-segment reader is
    barrier-ordered and no longer triggers a conservative fallback) and
    equally sound: any same-segment foreign-lane access survives the
    max against older entries.
    """

    #: Must exceed the largest lane index of a block (``MAX_LANES``).
    SEG_SCALE = 1 << 13

    __slots__ = ("array", "w_pack", "r_hi", "r_lo", "w_seg", "r_seg")

    def __init__(self, size: int):
        self.array: Optional[np.ndarray] = None
        self.w_pack = np.full(size, -1, dtype=np.int64)
        self.r_hi = np.full(size, -1, dtype=np.int64)
        self.r_lo = np.full(size, -1, dtype=np.int64)
        # Last segment with any write/read of this buffer.  Segments are
        # globally unique (monotonic epochs), so a plain int comparison
        # tells "was this buffer touched earlier in this segment" —
        # which gates the per-address conflict scans below.
        self.w_seg = -1
        self.r_seg = -1

    def retarget(self, array: np.ndarray, lanes_per_group: int) -> "_HazardLocal":
        self.array = array
        return self

    def note_read(
        self, addrs: np.ndarray, lanes: np.ndarray, seg: int, base: int
    ) -> None:
        """1-D or 2-D ``addrs``; see :meth:`_Hazard.note_read`."""
        if addrs.ndim == 2:
            lanes = lanes[:, None]
        scale = self.SEG_SCALE
        thr = seg * scale
        t_hi = lanes + thr
        if self.w_seg == seg:
            # Only a write earlier in this very segment can conflict
            # with a read; otherwise skip the scan entirely.
            packed = self.w_pack[addrs]
            conflict = (packed >= thr) & (packed != t_hi)
            if conflict.any():
                raise VectorUnsupported(
                    "cross-lane read of an address written by another "
                    "work-item (order-dependent result)"
                )
        # Duplicate addresses within one call: lanes ascend, so the
        # forward scatter keeps the largest packed hi and the reversed
        # scatter the largest packed lo (= smallest lane).
        self.r_hi[addrs] = np.maximum(self.r_hi[addrs], t_hi)
        t_lo = (thr + scale - 1) - lanes
        lo = np.maximum(self.r_lo[addrs], t_lo)
        self.r_lo[_rev(addrs)] = _rev(lo)
        self.r_seg = seg

    def note_write(
        self, addrs: np.ndarray, lanes: np.ndarray, seg: int, base: int
    ) -> None:
        """1-D or 2-D ``addrs``; see :meth:`_Hazard.note_read`."""
        if addrs.ndim == 2:
            lanes = lanes[:, None]
        scale = self.SEG_SCALE
        thr = seg * scale
        t_hi = lanes + thr
        conflict = None
        if self.w_seg == seg:
            packed = self.w_pack[addrs]
            conflict = (packed >= thr) & (packed != t_hi)
        if self.r_seg == seg:
            t_lo = (thr + scale - 1) - lanes
            r_hi = self.r_hi[addrs]
            r_conflict = (r_hi >= thr) & (
                (r_hi != t_hi) | (self.r_lo[addrs] != t_lo)
            )
            conflict = r_conflict if conflict is None else conflict | r_conflict
        if conflict is not None and conflict.any():
            raise VectorUnsupported(
                "cross-lane write/read conflict (order-dependent result)"
            )
        self.w_pack[addrs] = t_hi
        self.w_seg = seg


# -- pooled per-thread runtime state ----------------------------------------
#
# The autotune and explore loops re-launch the same kernel hundreds of
# times; allocating fresh hazard arrays, geometry arrays and lane masks
# per launch dominates small launches.  All pools are thread-local (the
# explorer evaluates candidates on a thread pool) and bounded.

_pool_tls = _threading.local()

#: Hazard detectors above this buffer size are not pooled (their arrays
#: would pin too much memory between launches).
_HAZARD_POOL_MAX_SIZE = 1 << 20
_HAZARD_POOL_PER_SIZE = 8
#: Total bookkeeping bytes one thread's pool may pin between launches.
_HAZARD_POOL_MAX_BYTES = 64 << 20

#: Launch geometries with more work-items than this are recomputed per
#: launch instead of cached.
_GEOMETRY_CACHE_MAX_ITEMS = 1 << 16
_GEOMETRY_CACHE_ENTRIES = 8


def _hazard_bytes(hz) -> int:
    if type(hz) is _HazardLocal:
        return 3 * 8 * hz.w_pack.size
    return 5 * 8 * hz.w_stamp.size


def _acquire_hazard(size: int, cls) -> "_Hazard | _HazardLocal":
    if size > _HAZARD_POOL_MAX_SIZE:
        return cls(size)
    pool = getattr(_pool_tls, "hazards", None)
    if pool is None:
        pool = {}
        _pool_tls.hazards = pool
    stack = pool.get((size, cls))
    if stack:
        hz = stack.pop()
        _pool_tls.hazard_bytes = (
            getattr(_pool_tls, "hazard_bytes", 0) - _hazard_bytes(hz)
        )
        return hz
    return cls(size)


def _release_hazards(hazards: dict) -> None:
    pool = getattr(_pool_tls, "hazards", None)
    if pool is None:
        pool = {}
        _pool_tls.hazards = pool
    pooled_bytes = getattr(_pool_tls, "hazard_bytes", 0)
    for hz in hazards.values():
        array = hz.array
        if array is None:
            continue
        size = array.size
        hz.array = None  # do not pin the buffer
        if size > _HAZARD_POOL_MAX_SIZE:
            continue
        cost = _hazard_bytes(hz)
        if pooled_bytes + cost > _HAZARD_POOL_MAX_BYTES:
            continue
        stack = pool.setdefault((size, type(hz)), [])
        if len(stack) < _HAZARD_POOL_PER_SIZE:
            stack.append(hz)
            pooled_bytes += cost
    _pool_tls.hazard_bytes = pooled_bytes
    hazards.clear()


class _LoadLog:
    """Deferred per-buffer load accounting (see ``_Block._log_load``).

    Chunks are stored as raw ``(addresses, lanes)`` pairs; the
    ``addr * L + lane`` encoding is deferred to :meth:`totals` so a
    whole block's worth of events is encoded with one batched
    multiply-add instead of two small array ops per load site.
    """

    __slots__ = (
        "array", "space", "width_units", "lane_count",
        "chunks", "events", "_pending",
    )

    #: Compact (deduplicate) the pending chunks past this many entries.
    COMPACT_AT = 1 << 22

    def __init__(self, array: np.ndarray, space: str, width: int, lane_count: int):
        self.array = array  # keep the buffer alive while its id is a key
        self.space = space
        self.width_units = width if width else 1
        self.lane_count = lane_count
        self.chunks: list = []  # (addresses, lanes) or (encoded, None)
        self.events = 0
        self._pending = 0

    def add(self, aa: np.ndarray, lanes: np.ndarray, n: int) -> None:
        self.chunks.append((aa, lanes))
        self.events += n
        self._pending += n
        if self._pending > self.COMPACT_AT:
            self.chunks = [(_distinct_sorted(self._encode_all()), None)]
            self._pending = int(self.chunks[0][0].size)

    def _encode_all(self) -> np.ndarray:
        L = self.lane_count
        parts: list = []
        raw_aa: list = []
        raw_lanes: list = []
        for aa, lanes in self.chunks:
            if lanes is None:
                parts.append(aa)
            else:
                raw_aa.append(aa)
                raw_lanes.append(lanes)
        if raw_aa:
            if len(raw_aa) == 1:
                parts.append(raw_aa[0] * L + raw_lanes[0])
            else:
                parts.append(
                    np.concatenate(raw_aa) * L + np.concatenate(raw_lanes)
                )
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def totals(self) -> tuple:
        if not self.chunks:
            return 0, 0
        if len(self.chunks) == 1:
            # One chunk means one execution of one load site: the
            # ``addr * L + lane`` encoding is injective over the
            # distinct active lanes, so every entry is already unique.
            return self.events, int(self.chunks[0][0].size)
        cat = np.sort(self._encode_all())
        distinct = 1 + int(np.count_nonzero(cat[1:] != cat[:-1]))
        return self.events, distinct


def _distinct_sorted(values: np.ndarray) -> np.ndarray:
    """Sorted unique values (plain sort beats hash-based ``np.unique``
    for the int64 address codes the load log stores)."""
    if values.size == 0:
        return values
    values = np.sort(values)
    keep = np.empty(values.size, dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


def _vclamp(x, lo, hi):
    return np.minimum(np.maximum(x, lo), hi)


def _lane_dot(a, b):
    """Lane-batched ``dot``: per-lane multiply-add chain over the vector
    components, in the same left-to-right order as the scalar
    interpreter's ``_ordered_dot`` — elementwise IEEE operations over a
    lane axis are bitwise-identical to the scalar sequence, which is
    what makes this reduction lane-stable.
    """
    if not (isinstance(a, np.ndarray) and a.ndim == 2):
        return a * b  # scalar dot degenerates to a multiply
    acc = a[:, 0] * b[:, 0]
    for i in range(1, a.shape[1]):
        acc = acc + a[:, i] * b[:, i]
    return acc


def _lane_length(a):
    return np.sqrt(_lane_dot(a, a))


#: Lane-safe builtin table: same names and flop costs as the scalar
#: interpreter, with implementations that work element-wise over lanes.
_VMATH = {
    name: (cost, fn) for name, (cost, fn) in _MATH_BUILTINS.items()
}
_VMATH.update(
    {
        "min": (1, np.minimum),
        "max": (1, np.maximum),
        "clamp": (2, _vclamp),
        "dot": (7, _lane_dot),
        "length": (11, _lane_length),
    }
)


# ---------------------------------------------------------------------------
# launcher
# ---------------------------------------------------------------------------

def try_launch(
    parsed: ParsedProgram,
    kernel: c.CFunctionDef,
    gsize: tuple,
    lsize: tuple,
    base_env: dict,
    local_decls: list,
    counters: Counters,
    strict: bool = False,
    pipeline=None,
) -> bool:
    """Run the launch on the vector engine.

    Returns ``True`` on success (counters merged, buffers written).  On a
    dynamic :class:`VectorUnsupported` the global buffers are restored
    from a snapshot and ``False`` is returned so the caller can re-run
    the scalar path — unless ``strict`` (``engine="vector"``), which
    re-raises as :class:`VectorizationError`.

    ``pipeline`` is an optional compiled closure pipeline from
    :mod:`repro.opencl.simt_compile`; without one each block interprets
    the kernel AST.
    """
    snapshot = [
        (v.array, v.array.copy())
        for v in base_env.values()
        if isinstance(v, Pointer)
    ]
    staged = Counters()
    try:
        with np.errstate(all="ignore"):
            _run_blocks(
                parsed, kernel, gsize, lsize, base_env, local_decls, staged,
                pipeline,
            )
    except VectorUnsupported as exc:
        if strict:
            raise VectorizationError(str(exc)) from exc
        for array, saved in snapshot:
            array[:] = saved
        return False
    counters.merge_in(staged)
    return True


def _block_geometry(gsize: tuple, lsize: tuple, whole_grid: bool = False) -> dict:
    """Per-block lane geometry, cached per launch shape.

    The returned arrays are shared (and marked read-only): the engine
    only ever derives new arrays from them.  The autotune/explore loops
    re-launch identical geometries hundreds of times, which makes the
    ``tile``/``repeat`` setup a measurable share of small launches.

    ``whole_grid`` ignores :data:`MAX_LANES` and lays the entire launch
    out as a single block — the layout of the fused backend
    (:mod:`repro.backend.fused`), which executes the whole NDRange at
    once.
    """
    key = (gsize, lsize, whole_grid)
    cache: "OrderedDict[tuple, dict]" = getattr(_pool_tls, "geometry", None)
    if cache is None:
        cache = OrderedDict()
        _pool_tls.geometry = cache
    hit = cache.get(key)
    if hit is not None:
        cache.move_to_end(key)
        return hit

    num_groups = tuple(g // l for g, l in zip(gsize, lsize))
    total_groups = num_groups[0] * num_groups[1] * num_groups[2]
    lanes_per_group = lsize[0] * lsize[1] * lsize[2]
    if whole_grid:
        block_groups = total_groups
    else:
        block_groups = max(
            1, min(total_groups, MAX_LANES // max(1, lanes_per_group))
        )

    # Lane order within a group matches the scalar scheduler: z-outer,
    # y-middle, x-inner.
    l0 = np.arange(lanes_per_group)
    lid_group = (
        l0 % lsize[0],
        (l0 // lsize[0]) % lsize[1],
        l0 // (lsize[0] * lsize[1]),
    )

    blocks = []
    for start in range(0, total_groups, block_groups):
        ords = np.arange(start, min(start + block_groups, total_groups))
        n_groups = len(ords)
        lanes = n_groups * lanes_per_group
        group_dims = (
            ords % num_groups[0],
            (ords // num_groups[0]) % num_groups[1],
            ords // (num_groups[0] * num_groups[1]),
        )
        group_row = np.repeat(np.arange(n_groups), lanes_per_group)
        lid = tuple(np.tile(lid_group[d], n_groups) for d in range(3))
        group_ids = tuple(group_dims[d][group_row] for d in range(3))
        gid = tuple(group_ids[d] * lsize[d] + lid[d] for d in range(3))
        lane_ids = np.arange(lanes)
        full = np.ones(lanes, dtype=bool)
        for arr in (group_row, lane_ids, full, *lid, *group_ids, *gid):
            arr.setflags(write=False)
        blocks.append(
            {
                "n_groups": n_groups,
                "lanes": lanes,
                "group_row": group_row,
                "lid": lid,
                "gid": gid,
                "group_ids": group_ids,
                "lane_ids": lane_ids,
                "full": full,
            }
        )

    geometry = {
        "num_groups": num_groups,
        "total_groups": total_groups,
        "lanes_per_group": lanes_per_group,
        "blocks": blocks,
    }
    if total_groups * lanes_per_group <= _GEOMETRY_CACHE_MAX_ITEMS:
        cache[key] = geometry
        while len(cache) > _GEOMETRY_CACHE_ENTRIES:
            cache.popitem(last=False)
    return geometry


def _run_blocks(
    parsed, kernel, gsize, lsize, base_env, local_decls, counters,
    pipeline=None,
):
    geometry = _block_geometry(gsize, lsize)
    num_groups = geometry["num_groups"]

    written = written_pointer_roots(parsed, kernel)
    tracked = {
        id(v.array)
        for name, v in base_env.items()
        if isinstance(v, Pointer) and name in written
    }

    vptr_env = dict(base_env)
    for name, value in vptr_env.items():
        if isinstance(value, Pointer):
            vptr_env[name] = VPtr(value.array, value.offset, value.space)

    prof = _obs_profile.ACTIVE
    if prof is not None:
        prof.begin_launch(kernel.name)
        for name, value in vptr_env.items():
            if isinstance(value, VPtr):
                prof.map_buffer(value.array, name)

    for geo in geometry["blocks"]:
        n_groups = geo["n_groups"]
        group_row = geo["group_row"]
        block_tracked = tracked
        env = dict(vptr_env)
        for decl in local_decls:
            dtype = (
                np.int64 if decl.type_name in ("int", "uint", "long") else np.float64
            )
            local_array = np.zeros((n_groups, decl.array_size), dtype=dtype)
            env[decl.name] = RowPtr(local_array, group_row, 0, "local")
            if prof is not None:
                prof.map_buffer(local_array, decl.name)
            if decl.name in written:
                if block_tracked is tracked:
                    block_tracked = set(tracked)
                block_tracked.add(id(local_array))

        block = _Block(
            parsed, counters, geo["lanes"], group_row, geo["lid"],
            geo["gid"], geo["group_ids"], gsize, lsize, num_groups,
            seg_start=getattr(_pool_tls, "epoch", 0),
            tracked=block_tracked,
            lane_ids=geo["lane_ids"],
            full=geo["full"],
        )
        block.env = env
        try:
            if pipeline is not None:
                pipeline.run(block)
                block._flush_load_log()
            else:
                block.run(kernel)
        finally:
            _pool_tls.epoch = block._segment + 1
            _release_hazards(block._hazards)
    counters.work_items += (
        geometry["total_groups"] * geometry["lanes_per_group"]
    )
