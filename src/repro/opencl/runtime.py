"""Kernel launching: the simulated ``clEnqueueNDRangeKernel``.

Work-groups execute sequentially (their relative order is unspecified in
OpenCL, so any order is conforming); work-items within a group run in
lock-step between barriers via the generator mechanism of
:mod:`repro.opencl.interp`.

Three execution tiers back :func:`launch` (see ``ENGINES.md`` in this
package):

* ``"compiled"`` — the lane-batched SIMT engine driven by the closure
  pipeline of :mod:`repro.opencl.simt_compile` (kernel AST lowered once
  per program);
* ``"interp"`` — the same lane-batched engine interpreting the AST per
  block (:mod:`repro.opencl.simt`);
* ``"scalar"`` — the per-work-item reference interpreter.

``"vector"`` selects the lane-batched engine, compiled when possible,
interpretive otherwise; the default ``"auto"`` additionally falls back
to the scalar path for non-vectorizable kernels (including mid-launch,
with buffer rollback).  ``REPRO_SIM_ENGINE`` overrides the default.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.compiler import cast as c
from repro.opencl.cparser import ParsedProgram, parse
from repro.opencl import simt, simt_compile
from repro.opencl.interp import (
    BarrierDivergence,
    Counters,
    ExecError,
    LaunchContext,
    Pointer,
    WorkItem,
    _Return,
)


@dataclass
class Buffer:
    """A global-memory buffer (host-visible numpy array)."""

    data: np.ndarray

    @staticmethod
    def zeros(count: int, dtype: str = "float") -> "Buffer":
        np_dtype = np.int64 if dtype in ("int", "uint", "long") else np.float64
        return Buffer(np.zeros(count, dtype=np_dtype))

    @staticmethod
    def from_array(values) -> "Buffer":
        arr = np.asarray(values)
        if arr.dtype.kind == "i":
            return Buffer(arr.astype(np.int64).ravel())
        return Buffer(arr.astype(np.float64).ravel())


# Source-keyed LRU of parsed programs.  The autotuner and benchmark
# harnesses construct :class:`OpenCLProgram` repeatedly for identical
# kernels; the AST is immutable during execution, so sharing is safe
# (and lets the vectorizability analysis cache per parse, too).
_parse_cached = functools.lru_cache(maxsize=128)(parse)


class OpenCLProgram:
    """A parsed OpenCL program with one or more kernels."""

    def __init__(self, source: str):
        self.source = source
        self.parsed: ParsedProgram = _parse_cached(source)
        if not self.parsed.kernels:
            raise ValueError("program contains no kernel")

    def kernel(self, name: Optional[str] = None) -> c.CFunctionDef:
        if name is None:
            name = self.parsed.kernels[0]
        fn = self.parsed.functions.get(name)
        if fn is None or not fn.is_kernel:
            raise KeyError(f"no kernel named {name!r}")
        return fn


def _normalize_size(size) -> tuple:
    if isinstance(size, int):
        size = (size,)
    size = tuple(size)
    return size + (1,) * (3 - len(size))


def _collect_local_decls(stmt: c.CStmt, out: list) -> None:
    if isinstance(stmt, c.CDecl):
        if stmt.qualifier == "local" and stmt.array_size is not None:
            out.append(stmt)
    elif isinstance(stmt, c.CBlock):
        for s in stmt.stmts:
            _collect_local_decls(s, out)
    elif isinstance(stmt, c.CFor):
        _collect_local_decls(stmt.body, out)
    elif isinstance(stmt, c.CIf):
        _collect_local_decls(stmt.then, out)
        if stmt.otherwise is not None:
            _collect_local_decls(stmt.otherwise, out)


def _local_decls_of(parsed: ParsedProgram, kernel: c.CFunctionDef) -> list:
    """Local-buffer declarations, memoized per kernel on the parsed
    program (the AST is immutable during execution)."""
    cache = getattr(parsed, "_local_decls", None)
    if cache is None:
        cache = {}
        parsed._local_decls = cache
    decls = cache.get(kernel.name)
    if decls is None:
        decls = []
        _collect_local_decls(kernel.body, decls)
        cache[kernel.name] = decls
    return decls


#: Engine names accepted by :func:`launch` / ``REPRO_SIM_ENGINE``:
#: ``auto`` (compiled -> interpretive vector -> scalar), ``vector``
#: (lane-batched, compiled when possible, strict), ``compiled`` (closure
#: pipeline only, strict), ``interp`` (interpretive vector walk,
#: strict), ``scalar`` (reference interpreter).
_ENGINE_NAMES = ("auto", "vector", "compiled", "interp", "scalar")


def _resolve_engine(engine: Optional[str]) -> str:
    engine = engine or os.environ.get("REPRO_SIM_ENGINE") or "auto"
    if engine not in _ENGINE_NAMES:
        raise ValueError(f"unknown execution engine {engine!r}")
    return engine


def launch(
    program: OpenCLProgram,
    global_size,
    local_size,
    args: Mapping[str, Any],
    kernel_name: Optional[str] = None,
    counters: Optional[Counters] = None,
    engine: Optional[str] = None,
) -> Counters:
    """Execute a kernel over the NDRange; returns the counters."""
    kernel = program.kernel(kernel_name)
    gsize = _normalize_size(global_size)
    lsize = _normalize_size(local_size)
    for g, l in zip(gsize, lsize):
        if l <= 0 or g % l:
            raise ValueError(
                f"global size {gsize} not divisible by local size {lsize}"
            )

    counters = counters if counters is not None else Counters()
    ctx = LaunchContext(program.parsed, gsize, lsize, counters)

    base_env: dict[str, Any] = {}
    for p in kernel.params:
        if p.name not in args:
            raise KeyError(f"missing kernel argument {p.name!r}")
        value = args[p.name]
        if p.is_pointer:
            if isinstance(value, Buffer):
                base_env[p.name] = Pointer(value.data, 0, "global")
            elif isinstance(value, np.ndarray):
                base_env[p.name] = Pointer(value, 0, "global")
            else:
                raise TypeError(f"buffer expected for parameter {p.name}")
        else:
            base_env[p.name] = value

    local_decls = _local_decls_of(program.parsed, kernel)

    resolved = _resolve_engine(engine)
    if resolved != "scalar":
        reason = simt.analyze_kernel(program.parsed, kernel)
        if reason is None:
            pipeline = None
            if resolved != "interp":
                pipeline = simt_compile.get_pipeline(program.parsed, kernel)
            if resolved == "compiled" and pipeline is None:
                raise simt.VectorizationError(
                    f"kernel {kernel.name!r} has no closure pipeline"
                )
            done = simt.try_launch(
                program.parsed, kernel, gsize, lsize, base_env, local_decls,
                counters,
                strict=(resolved in ("vector", "compiled", "interp")),
                pipeline=pipeline,
            )
            if done:
                return counters
        elif resolved != "auto":
            raise simt.VectorizationError(
                f"kernel {kernel.name!r} is not vectorizable: {reason}"
            )

    num_groups = tuple(g // l for g, l in zip(gsize, lsize))
    items_per_group = lsize[0] * lsize[1] * lsize[2]

    for gz in range(num_groups[2]):
        for gy in range(num_groups[1]):
            for gx in range(num_groups[0]):
                group = (gx, gy, gz)
                group_env = dict(base_env)
                for decl in local_decls:
                    dtype = (
                        np.int64
                        if decl.type_name in ("int", "uint", "long")
                        else np.float64
                    )
                    group_env[decl.name] = Pointer(
                        np.zeros(decl.array_size, dtype=dtype), 0, "local"
                    )
                _run_group(ctx, kernel, group_env, group, lsize)
                counters.work_items += items_per_group
    return counters


def _run_group(
    ctx: LaunchContext,
    kernel: c.CFunctionDef,
    group_env: dict,
    group: tuple,
    lsize: tuple,
) -> None:
    generators = []
    for lz in range(lsize[2]):
        for ly in range(lsize[1]):
            for lx in range(lsize[0]):
                lid = (lx, ly, lz)
                gid = tuple(
                    group[d] * lsize[d] + lid[d] for d in range(3)
                )
                item = WorkItem(ctx, dict(group_env), gid, lid, group)
                generators.append(_item_driver(item, kernel.body))

    alive = list(generators)
    while alive:
        statuses = []
        still_alive = []
        for gen in alive:
            try:
                status = next(gen)
                statuses.append(status)
                still_alive.append(gen)
            except StopIteration:
                statuses.append("done")
        if still_alive and any(s == "done" for s in statuses):
            raise BarrierDivergence(
                "some work-items finished while others wait at a barrier"
            )
        alive = still_alive


def _item_driver(item: WorkItem, body: c.CBlock):
    try:
        yield from item.run_gen(body)
    except _Return:
        pass
