"""Kernel launching: the simulated ``clEnqueueNDRangeKernel``.

Work-groups execute sequentially (their relative order is unspecified in
OpenCL, so any order is conforming); work-items within a group run in
lock-step between barriers via the generator mechanism of
:mod:`repro.opencl.interp`.

Execution is delegated to the pluggable backend subsystem of
:mod:`repro.backend` (see ``ENGINES.md`` in this package).  Four
backends are registered out of the box:

* ``"fused"`` — whole-grid fused numpy array programs
  (:mod:`repro.backend.fused`);
* ``"compiled"`` — the lane-batched SIMT engine driven by the closure
  pipeline of :mod:`repro.opencl.simt_compile` (kernel AST lowered once
  per program);
* ``"interp"`` — the same lane-batched engine interpreting the AST per
  block (:mod:`repro.opencl.simt`);
* ``"scalar"`` — the per-work-item reference interpreter.

Engine names resolve through :mod:`repro.backend.registry` to fallback
chains: ``"auto"`` (the default) runs compiled -> interp -> scalar,
``"fused"`` prepends the whole-grid backend to that chain, and
``"vector"`` keeps its historical strict lane-batched meaning.
``REPRO_SIM_ENGINE`` overrides the default with a *preference* — a
strict name set through the environment still falls back gracefully so
unsupported kernels keep running on the reference path.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass
from typing import Any, Mapping, Optional

import numpy as np

from repro.compiler import cast as c
from repro.opencl.cparser import ParsedProgram, parse
from repro.opencl.interp import Counters, Pointer


@dataclass
class Buffer:
    """A global-memory buffer (host-visible numpy array)."""

    data: np.ndarray

    @staticmethod
    def zeros(count: int, dtype: str = "float") -> "Buffer":
        np_dtype = np.int64 if dtype in ("int", "uint", "long") else np.float64
        return Buffer(np.zeros(count, dtype=np_dtype))

    @staticmethod
    def from_array(values) -> "Buffer":
        arr = np.asarray(values)
        if arr.dtype.kind == "i":
            return Buffer(arr.astype(np.int64).ravel())
        return Buffer(arr.astype(np.float64).ravel())


# Source-keyed LRU of parsed programs.  The autotuner and benchmark
# harnesses construct :class:`OpenCLProgram` repeatedly for identical
# kernels; the AST is immutable during execution, so sharing is safe
# (and lets the vectorizability analysis cache per parse, too).
# Tracing sits inside the LRU so only genuine parses show as spans.
def _parse_traced(source: str) -> ParsedProgram:
    from repro.obs import span

    with span("parse", chars=len(source)):
        return parse(source)


_parse_cached = functools.lru_cache(maxsize=128)(_parse_traced)


class OpenCLProgram:
    """A parsed OpenCL program with one or more kernels."""

    def __init__(self, source: str):
        self.source = source
        self.parsed: ParsedProgram = _parse_cached(source)
        if not self.parsed.kernels:
            raise ValueError("program contains no kernel")

    def kernel(self, name: Optional[str] = None) -> c.CFunctionDef:
        if name is None:
            name = self.parsed.kernels[0]
        fn = self.parsed.functions.get(name)
        if fn is None or not fn.is_kernel:
            raise KeyError(f"no kernel named {name!r}")
        return fn


def _normalize_size(size) -> tuple:
    if isinstance(size, int):
        size = (size,)
    size = tuple(size)
    return size + (1,) * (3 - len(size))


def _collect_local_decls(stmt: c.CStmt, out: list) -> None:
    if isinstance(stmt, c.CDecl):
        if stmt.qualifier == "local" and stmt.array_size is not None:
            out.append(stmt)
    elif isinstance(stmt, c.CBlock):
        for s in stmt.stmts:
            _collect_local_decls(s, out)
    elif isinstance(stmt, c.CFor):
        _collect_local_decls(stmt.body, out)
    elif isinstance(stmt, c.CIf):
        _collect_local_decls(stmt.then, out)
        if stmt.otherwise is not None:
            _collect_local_decls(stmt.otherwise, out)


def _local_decls_of(parsed: ParsedProgram, kernel: c.CFunctionDef) -> list:
    """Local-buffer declarations, memoized per kernel on the parsed
    program (the AST is immutable during execution)."""
    cache = getattr(parsed, "_local_decls", None)
    if cache is None:
        cache = {}
        parsed._local_decls = cache
    decls = cache.get(kernel.name)
    if decls is None:
        decls = []
        _collect_local_decls(kernel.body, decls)
        cache[kernel.name] = decls
    return decls


def _resolve_engine(engine: Optional[str]):
    """Resolve an engine request to a backend chain.

    An explicit ``engine=`` argument keeps its exact (possibly strict)
    registry semantics; a name from ``REPRO_SIM_ENGINE`` is treated as
    a preference and falls back gracefully.  Unknown names report the
    valid ones from the registry.
    """
    from repro.backend import registry

    if engine is not None:
        return registry.resolve(engine)
    env = os.environ.get("REPRO_SIM_ENGINE")
    if env:
        return registry.resolve(env, prefer=True)
    return registry.resolve("auto")


def launch(
    program: OpenCLProgram,
    global_size,
    local_size,
    args: Mapping[str, Any],
    kernel_name: Optional[str] = None,
    counters: Optional[Counters] = None,
    engine: Optional[str] = None,
) -> Counters:
    """Execute a kernel over the NDRange; returns the counters.

    The ``simulate`` fault-injection site sits here, before any buffer
    is wrapped or touched: an injected fault is absorbed by bounded
    in-place retries (:func:`repro.faultinject.survive`), so a chaos
    run recovers to bit-identical results.
    """
    from repro import faultinject
    from repro.backend.base import ExecutionRequest

    faultinject.survive("simulate")
    kernel = program.kernel(kernel_name)
    gsize = _normalize_size(global_size)
    lsize = _normalize_size(local_size)
    for g, l in zip(gsize, lsize):
        if l <= 0 or g % l:
            raise ValueError(
                f"global size {gsize} not divisible by local size {lsize}"
            )

    counters = counters if counters is not None else Counters()

    base_env: dict[str, Any] = {}
    for p in kernel.params:
        if p.name not in args:
            raise KeyError(f"missing kernel argument {p.name!r}")
        value = args[p.name]
        if p.is_pointer:
            if isinstance(value, Buffer):
                base_env[p.name] = Pointer(value.data, 0, "global")
            elif isinstance(value, np.ndarray):
                base_env[p.name] = Pointer(value, 0, "global")
            else:
                raise TypeError(f"buffer expected for parameter {p.name}")
        else:
            base_env[p.name] = value

    from repro.obs import span

    chain = _resolve_engine(engine)
    with span(
        "launch", kernel=kernel.name, engine=chain.name,
        gsize=gsize, lsize=lsize,
    ):
        chain.execute(
            ExecutionRequest(
                parsed=program.parsed,
                kernel=kernel,
                gsize=gsize,
                lsize=lsize,
                base_env=base_env,
                local_decls=_local_decls_of(program.parsed, kernel),
                counters=counters,
            )
        )
    return counters
