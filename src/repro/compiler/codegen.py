"""OpenCL code generation from the Lift IR (paper section 5.5).

The generator traverses the IR graph following the data flow and emits a
matching OpenCL snippet for every pattern:

* no code for data-layout patterns — their effect lives in the views;
* ``for`` loops for the map variants (parallel ones strided by
  ``get_local_size``/``get_global_size``/``get_num_groups``);
* an accumulation loop for ``reduceSeq``;
* a double-buffered loop with a runtime ``size`` variable for ``iterate``
  (Figure 7 lines 17-29);
* barriers after ``mapLcl`` unless eliminated (section 5.4);
* control-flow simplification turns a map loop into a plain statement
  when the trip count provably equals the thread count and into an ``if``
  when provably smaller (Figure 7 lines 9, 20 and 30).

Array accesses are produced by consuming views (section 5.3); the
resulting index expressions are passed through the arithmetic simplifier
only when array-access simplification is enabled.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.arith import ArithExpr, Cst, Range, Var, simplify
from repro.arith.expr import IntDiv, Log2, Mod, Pow, Prod, Sum, free_vars
from repro.arith.expr import LoadIndex as LoadIndexNode
from repro.arith.simplify import prove_lt
from repro.types import (
    ArrayType,
    DataType,
    ScalarType,
    TupleType,
    VectorType,
)
from repro.ir.nodes import (
    AddressSpace,
    Expr,
    FunCall,
    FunDecl,
    Lambda,
    Literal,
    Param,
    UserFun,
)
from repro.ir import patterns as pat
from repro.ir.typecheck import infer_fun_type, infer_types
from repro.compiler import cast as c
from repro.compiler.address_space import infer_address_spaces
from repro.compiler.barriers import find_removable_barriers
from repro.compiler.memory import Memory, MemoryAllocator
from repro.compiler.options import CompilerOptions
from repro.compiler.views import (
    Access,
    ArrayAccessView,
    AsScalarView,
    AsVectorView,
    GatherView,
    JoinView,
    MemView,
    ScatterView,
    SlideView,
    SplitView,
    TransposeView,
    TupleAccessView,
    View,
    ViewConsumptionError,
    ZipView,
    consume,
)


class CodeGenError(Exception):
    """The program cannot be compiled to OpenCL."""


@dataclass
class WriteDest:
    """Where the value currently being generated must be stored."""

    memory: Memory
    view: View


@dataclass
class GenResult:
    """What a recursive generation step produced."""

    view: View
    wrote: bool


@dataclass
class KernelParamInfo:
    name: str
    kind: str  # "in_buffer" | "out_buffer" | "scalar" | "size"
    scalar_type: str
    count: Optional[ArithExpr] = None


@dataclass
class CompiledKernel:
    """A generated kernel plus the metadata the runtime harness needs."""

    name: str
    source: str
    params: list
    out_type: DataType
    out_count: ArithExpr
    size_var_names: list
    options: CompilerOptions

    def scalar_out_type(self) -> str:
        t = self.out_type
        while isinstance(t, ArrayType):
            t = t.elem
        if isinstance(t, VectorType):
            return t.elem.name
        if isinstance(t, ScalarType):
            return t.name
        raise CodeGenError(f"unsupported output element type {t}")


_PARALLEL_MAPS = (pat.MapGlb, pat.MapWrg, pat.MapLcl)

_LAYOUT_PATTERNS = (
    pat.Split,
    pat.Join,
    pat.Gather,
    pat.Scatter,
    pat.Transpose,
    pat.Slide,
    pat.Zip,
    pat.Get,
    pat.MakeTuple,
    pat.AsVector,
    pat.AsScalar,
    pat.Filter,
    pat.Head,
)


def _layout_only(f: FunDecl) -> bool:
    """True when the function only rearranges data (compiles to views)."""
    lam = f
    if isinstance(lam, pat.AddressSpaceWrapper):
        return False  # an address-space request implies materialization
    if not isinstance(lam, Lambda):
        return False

    def scan(e: Expr) -> bool:
        if isinstance(e, Param):
            return True
        if isinstance(e, FunCall):
            g = e.f
            if isinstance(g, Lambda):
                return scan(g.body) and all(scan(a) for a in e.args)
            if isinstance(g, _LAYOUT_PATTERNS):
                return all(scan(a) for a in e.args)
            if isinstance(g, pat.AbstractMap):
                return _layout_only(g.f) and scan(e.args[0])
            return False
        return False

    return scan(lam.body)


def _unwrap_wrappers(f: FunDecl) -> FunDecl:
    while isinstance(f, pat.AddressSpaceWrapper):
        f = f.f
    return f


def _c_type_name(t: DataType) -> str:
    if isinstance(t, ScalarType):
        return t.name
    if isinstance(t, VectorType):
        return t.name
    if isinstance(t, TupleType):
        return t.name
    raise CodeGenError(f"no C name for {t}")


class KernelGenerator:
    def __init__(self, options: CompilerOptions):
        self.opts = options
        self.alloc = MemoryAllocator()
        self.user_funs: dict[str, UserFun] = {}
        self.tuple_types: dict[str, TupleType] = {}
        self.removable: set[int] = set()
        self.pre_block = c.CBlock()  # kernel-top declarations
        self._lcl_depth = 0  # nesting level of mapLcl constructs
        #: Enclosing parallel map loops as (kind, index var, trip count):
        #: staging allocations inside them get one slot per work-item
        #: (see :meth:`_staging_wrap`).
        self._par_stack: list = []

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def compile(self, fun: Lambda) -> CompiledKernel:
        out_type = infer_types(fun.body)
        infer_address_spaces(fun)
        if self.opts.barrier_elimination:
            self.removable = find_removable_barriers(fun.body)

        params: list[KernelParamInfo] = []
        for p in fun.params:
            if p.type is None:
                raise CodeGenError(f"kernel parameter {p.name} has no type")
            if isinstance(p.type, ArrayType):
                mem = MemoryAllocator.for_param(p.name, p.type, AddressSpace.GLOBAL)
                params.append(
                    KernelParamInfo(p.name, "in_buffer", mem.scalar_type.name, mem.count)
                )
            else:
                mem = MemoryAllocator.for_param(p.name, p.type, AddressSpace.PRIVATE)
                params.append(KernelParamInfo(p.name, "scalar", _c_type_name(p.type)))
            p.mem = mem
            p.view = MemView(mem, p.type)

        if not isinstance(out_type, ArrayType):
            raise CodeGenError("kernel result must be an array")
        out_mem = MemoryAllocator.for_param("out", out_type, AddressSpace.GLOBAL)
        params.append(
            KernelParamInfo("out", "out_buffer", out_mem.scalar_type.name, out_mem.count)
        )

        body_block = c.CBlock()
        dest = WriteDest(out_mem, MemView(out_mem, out_type))
        result = self.gen(fun.body, body_block, dest)
        if not result.wrote:
            raise CodeGenError(
                "the program performs no writes; materialize the result "
                "with a map(id) as the paper's examples do"
            )

        for mem in self.alloc.global_temps:
            params.append(
                KernelParamInfo(mem.name, "temp_buffer", mem.scalar_type.name, mem.count)
            )

        size_vars = sorted(
            {v.name for p in fun.params for v in free_vars(self._type_len_vars(p.type))}
            | {v.name for v in free_vars(self._type_len_vars(out_type))}
        )
        for name in size_vars:
            params.append(KernelParamInfo(name, "size", "int"))

        self._collect_declarations()
        source = self._render(params, body_block)
        return CompiledKernel(
            name=self.opts.kernel_name,
            source=source,
            params=params,
            out_type=out_type,
            out_count=out_mem.count,
            size_var_names=size_vars,
            options=self.opts,
        )

    @staticmethod
    def _type_len_vars(t: DataType) -> ArithExpr:
        total = Cst(1)
        while isinstance(t, ArrayType):
            total = total * simplify(t.length)
            t = t.elem
        return total

    # ------------------------------------------------------------------
    # recursive generation
    # ------------------------------------------------------------------
    def gen(self, expr: Expr, block: c.CBlock, dest: Optional[WriteDest]) -> GenResult:
        if isinstance(expr, Param):
            if expr.view is None:
                raise CodeGenError(f"parameter {expr.name} has no bound view")
            return GenResult(expr.view, wrote=False)
        if isinstance(expr, Literal):
            raise CodeGenError("literals only appear as user-function arguments")
        if not isinstance(expr, FunCall):
            raise CodeGenError(f"cannot generate {expr!r}")

        f = _unwrap_wrappers(expr.f)

        if isinstance(f, Lambda):
            for p, a in zip(f.params, expr.args):
                p.view = self.gen(a, block, None).view
            return self.gen(f.body, block, dest)

        if isinstance(f, UserFun):
            return self._gen_user_fun(expr, f, block, dest)

        if isinstance(f, pat.AbstractMap) and _layout_only(f.f):
            # A map whose function performs no computation is itself a
            # data-layout pattern and compiles to a view (this is how the
            # paper's 2D stencil composition map(transpose) o slide o
            # map(slide) stays allocation-free).
            if dest is not None:
                raise CodeGenError(
                    "cannot write through a view-only map; route the "
                    "output through scatter or materialize with map(id)"
                )
            arg_r = self.gen(expr.args[0], block, None)
            lam = _unwrap_wrappers(f.f)
            assert isinstance(lam, Lambda)

            def elem_fn(elem_view, lam=lam):
                lam.params[0].view = elem_view
                return self.gen(lam.body, c.CBlock(), None).view

            from repro.compiler.views import MappedView

            return GenResult(MappedView(arg_r.view, elem_fn), wrote=False)

        if isinstance(f, pat.MapSeq):
            return self._gen_map(expr, f, block, dest, kind="seq")
        if isinstance(f, pat.MapLcl):
            return self._gen_map(expr, f, block, dest, kind="lcl")
        if isinstance(f, pat.MapWrg):
            return self._gen_map(expr, f, block, dest, kind="wrg")
        if isinstance(f, pat.MapGlb):
            return self._gen_map(expr, f, block, dest, kind="glb")
        if isinstance(f, (pat.Map, pat.Reduce)) and not isinstance(
            f, (pat.MapSeq, pat.ReduceSeq)
        ):
            raise CodeGenError(
                f"high-level pattern {type(f).__name__} must be lowered "
                "(see repro.rewrite) before code generation"
            )
        if isinstance(f, pat.ReduceSeq):
            return self._gen_reduce(expr, f, block, dest)
        if isinstance(f, pat.Iterate):
            return self._gen_iterate(expr, f, block, dest)

        # ---- data-layout patterns: views only -------------------------
        if isinstance(f, pat.Split):
            # On the write path the destination is viewed through the
            # inverse transformation: writers below a split see the
            # destination joined (Lift's output-view pass).
            inner_dest = dest
            if dest is not None:
                inner_dest = WriteDest(dest.memory, JoinView(dest.view, f.n))
            inner = self.gen(expr.args[0], block, inner_dest)
            return GenResult(SplitView(inner.view, f.n), inner.wrote)
        if isinstance(f, pat.Join):
            arg_t = expr.args[0].type
            assert isinstance(arg_t, ArrayType) and isinstance(arg_t.elem, ArrayType)
            inner_dest = dest
            if dest is not None:
                inner_dest = WriteDest(
                    dest.memory, SplitView(dest.view, arg_t.elem.length)
                )
            inner = self.gen(expr.args[0], block, inner_dest)
            return GenResult(JoinView(inner.view, arg_t.elem.length), inner.wrote)
        if isinstance(f, pat.Gather):
            # Read-side reorder only: a destination cannot pass through
            # (that would need the inverse permutation); writers below a
            # gather materialize into their own memory.
            arg_t = expr.args[0].type
            assert isinstance(arg_t, ArrayType)
            inner = self.gen(expr.args[0], block, None)
            return GenResult(
                GatherView(inner.view, f.idx_fun, arg_t.length), wrote=False
            )
        if isinstance(f, pat.Scatter):
            return self._gen_scatter(expr, f, block, dest)
        if isinstance(f, pat.Transpose):
            # Transpose is its own inverse: writers below it write the
            # destination with swapped indices.
            inner_dest = dest
            if dest is not None:
                inner_dest = WriteDest(dest.memory, TransposeView(dest.view))
            inner = self.gen(expr.args[0], block, inner_dest)
            return GenResult(TransposeView(inner.view), inner.wrote)
        if isinstance(f, pat.Slide):
            inner = self.gen(expr.args[0], block, None)
            return GenResult(SlideView(inner.view, f.size, f.step), wrote=False)
        if isinstance(f, pat.Head):
            inner_dest = dest
            if dest is not None:
                from repro.compiler.views import DropIndexView

                inner_dest = WriteDest(dest.memory, DropIndexView(dest.view))
            inner = self.gen(expr.args[0], block, inner_dest)
            return GenResult(
                ArrayAccessView(inner.view, Cst(0)), inner.wrote
            )
        if isinstance(f, pat.Filter):
            from repro.compiler.views import FilterView

            data = self.gen(expr.args[0], block, None)
            idx = self.gen(expr.args[1], block, None)
            return GenResult(FilterView(data.view, idx.view), wrote=False)
        if isinstance(f, pat.Zip):
            views = []
            for a in expr.args:
                r = self.gen(a, block, None)
                views.append(r.view)
            return GenResult(ZipView(tuple(views)), wrote=False)
        if isinstance(f, pat.Get):
            inner = self.gen(expr.args[0], block, None)
            return GenResult(TupleAccessView(inner.view, f.index), wrote=False)
        if isinstance(f, pat.AsVector):
            inner_dest = dest
            if dest is not None:
                inner_dest = WriteDest(dest.memory, AsScalarView(dest.view, f.width))
            inner = self.gen(expr.args[0], block, inner_dest)
            return GenResult(AsVectorView(inner.view, f.width), inner.wrote)
        if isinstance(f, pat.AsScalar):
            arg_t = expr.args[0].type
            assert isinstance(arg_t, ArrayType) and isinstance(arg_t.elem, VectorType)
            width = arg_t.elem.width
            inner_dest = dest
            if dest is not None:
                inner_dest = WriteDest(dest.memory, AsVectorView(dest.view, width))
            inner = self.gen(expr.args[0], block, inner_dest)
            return GenResult(AsScalarView(inner.view, width), inner.wrote)
        if isinstance(f, pat.Pad):
            raise CodeGenError(
                "pad is not supported by the OpenCL backend; pre-pad the "
                "input instead (the reference kernels do the same)"
            )
        if isinstance(f, pat.MakeTuple):
            raise CodeGenError(
                "tuple construction only appears as a reduction initializer"
            )
        raise CodeGenError(f"no code generation rule for {type(f).__name__}")

    # ------------------------------------------------------------------
    # user functions
    # ------------------------------------------------------------------
    def _gen_user_fun(
        self, call: FunCall, f: UserFun, block: c.CBlock, dest: Optional[WriteDest]
    ) -> GenResult:
        self._register_user_fun(f)
        args = [self._value_of(a, block) for a in call.args]
        value: c.CExpr = c.CCall(f.name, args)
        if dest is None:
            # A value materialized without a destination is a staging
            # slot.  In local/global memory one shared cell would be
            # written concurrently by every work-item of the enclosing
            # parallel maps (the nbody kernels' p1 staging) — give each
            # work-item its own slot, indexed by the parallel loop
            # variables.
            space = call.addr_space or AddressSpace.PRIVATE
            wrap = self._staging_wrap(space)
            logical: DataType = call.type
            for _, length in reversed(wrap):
                logical = ArrayType(logical, length)
            mem = self.alloc.alloc(logical, space)
            view: View = MemView(mem, logical)
            for idx, _ in wrap:
                view = ArrayAccessView(view, idx)
            self._emit_store(view, call.type, value, block)
            return GenResult(view, wrote=True)
        self._emit_store(dest.view, call.type, value, block)
        return GenResult(MemView(dest.memory, call.type), wrote=True)

    def _staging_wrap(self, space: AddressSpace) -> list:
        """The per-work-item slot indices a staging allocation needs.

        Private memory is per-thread already.  Local memory is shared by
        the work-items of one group, so slots are needed per enclosing
        ``mapLcl``/``mapGlb`` index; global memory additionally per
        ``mapWrg`` index.  A symbolic local trip count cannot size a
        local array — those keep the (pre-existing) shared cell.
        """
        if space == AddressSpace.PRIVATE:
            return []
        kinds = ("lcl", "glb") if space == AddressSpace.LOCAL else (
            "lcl", "glb", "wrg"
        )
        wrap = [
            (idx, n)
            for kind, idx, n in self._par_stack
            if kind in kinds
        ]
        if space == AddressSpace.LOCAL and any(
            simplify(n).try_int() is None for _, n in wrap
        ):
            return []
        return wrap

    def _register_user_fun(self, f: UserFun) -> None:
        existing = self.user_funs.get(f.name)
        if existing is not None and existing is not f and existing.body != f.body:
            raise CodeGenError(f"two different user functions named {f.name}")
        self.user_funs[f.name] = f
        for t in tuple(f.in_types) + (f.out_type,):
            if isinstance(t, TupleType):
                self.tuple_types[t.name] = t

    # ------------------------------------------------------------------
    # maps
    # ------------------------------------------------------------------
    def _gen_map(
        self,
        call: FunCall,
        f: pat.AbstractMap,
        block: c.CBlock,
        dest: Optional[WriteDest],
        kind: str,
    ) -> GenResult:
        arg = call.args[0]
        arg_result = self.gen(arg, block, None)
        assert isinstance(call.type, ArrayType)
        n = simplify(call.type.length)

        if dest is None:
            space = call.addr_space or AddressSpace.GLOBAL
            logical = self._alloc_logical_type(call.type, space, kind)
            mem = self.alloc.alloc(logical, space)
            dest = WriteDest(mem, MemView(mem, mem.logical_type))

        lam = _unwrap_wrappers(f.f)
        if not isinstance(lam, Lambda):
            raise CodeGenError("map function must be a lambda after canonicalization")

        if isinstance(f, pat.MapSeqUnroll):
            trip = simplify(n).try_int()
            if trip is None:
                raise CodeGenError("mapSeqUnroll requires a concrete length")
            for j in range(trip):
                lam.params[0].view = ArrayAccessView(arg_result.view, Cst(j))
                inner = self.gen(lam.body, block, self._wrap_dest(dest, Cst(j), kind))
                if not inner.wrote:
                    raise CodeGenError("map bodies must write memory")
            return GenResult(MemView(dest.memory, dest.memory.logical_type), wrote=True)

        body_block, idx = self._open_map_loop(block, n, kind, f)
        elem_view = ArrayAccessView(arg_result.view, idx)
        inner_dest = self._wrap_dest(dest, idx, kind)

        lam.params[0].view = elem_view
        parallel = kind in ("lcl", "wrg", "glb")
        if kind == "lcl":
            self._lcl_depth += 1
        if parallel:
            self._par_stack.append((kind, idx, n))
        try:
            inner = self.gen(lam.body, body_block, inner_dest)
        finally:
            if parallel:
                self._par_stack.pop()
            if kind == "lcl":
                self._lcl_depth -= 1
        if not inner.wrote:
            raise CodeGenError(
                "map bodies must write memory; insert id copies to "
                "materialize values (paper section 5.2)"
            )

        if kind == "lcl" and self._lcl_depth == 0:
            # Only the outermost mapLcl of a nest synchronizes: an inner
            # barrier would sit inside a (possibly non-uniform) loop,
            # which OpenCL forbids.
            self._emit_barrier_after_map_lcl(call, block)
        return GenResult(MemView(dest.memory, dest.memory.logical_type), wrote=True)

    def _alloc_logical_type(
        self, call_type: ArrayType, space: AddressSpace, kind: str
    ) -> DataType:
        """Per section 5.2's multiplier rules: private memory does not
        multiply across parallel dimensions (each thread owns a copy)."""
        if space == AddressSpace.PRIVATE and kind in ("lcl", "glb", "wrg"):
            return call_type.elem
        return call_type

    def _wrap_dest(self, dest: WriteDest, idx: ArithExpr, kind: str) -> WriteDest:
        space = dest.memory.space
        if space == AddressSpace.PRIVATE and kind in ("lcl", "glb", "wrg"):
            return dest
        if space == AddressSpace.LOCAL and kind in ("wrg", "glb"):
            return dest
        return WriteDest(dest.memory, ArrayAccessView(dest.view, idx))

    def _emit_barrier_after_map_lcl(self, call: FunCall, block: c.CBlock) -> None:
        if self.opts.barrier_elimination and id(call) in self.removable:
            return
        space = call.addr_space
        fence = (
            "CLK_GLOBAL_MEM_FENCE"
            if space == AddressSpace.GLOBAL
            else "CLK_LOCAL_MEM_FENCE"
        )
        block.add(c.CBarrier(fence))

    # ------------------------------------------------------------------
    # loop emission with control-flow simplification
    # ------------------------------------------------------------------
    def _open_map_loop(
        self, block: c.CBlock, n: ArithExpr, kind: str, f: pat.AbstractMap
    ) -> tuple:
        """Emit the loop (or simplified form) and return (body_block, idx)."""
        cf = self.opts.control_flow_simplification
        n_int = simplify(n).try_int()

        if kind == "seq":
            if cf and n_int == 1:
                return block, Cst(0)
            idx = Var.fresh("i", Range.of(0, n))
            body = c.CBlock()
            block.add(
                c.CFor(
                    c.CDecl("int", idx.name, init=c.CInt(0)),
                    c.CBinOp("<", c.CIdent(idx.name), self._arith(n)),
                    c.CAssign(c.CIdent(idx.name), c.CInt(1), op="+="),
                    body,
                )
            )
            return body, idx

        dim = f.dim if isinstance(f, pat.ParallelMap) else 0
        getter, size_getter, prefix = {
            "lcl": ("get_local_id", "get_local_size", "l_id"),
            "wrg": ("get_group_id", "get_num_groups", "wg_id"),
            "glb": ("get_global_id", "get_global_size", "g_id"),
        }[kind]

        thread_count = self._thread_count(kind, dim)
        idx = Var.fresh(prefix, Range.of(0, n))

        if cf and thread_count is not None and n_int is not None and n_int == thread_count:
            block.add(
                c.CDecl("int", idx.name, init=c.CCall(getter, [c.CInt(dim)]))
            )
            return block, idx

        if cf and thread_count is not None and prove_lt(n, Cst(thread_count)):
            block.add(
                c.CDecl("int", idx.name, init=c.CCall(getter, [c.CInt(dim)]))
            )
            body = c.CBlock()
            block.add(
                c.CIf(c.CBinOp("<", c.CIdent(idx.name), self._arith(n)), body)
            )
            return body, idx

        stride: c.CExpr
        if cf and thread_count is not None:
            stride = c.CInt(thread_count)
        else:
            stride = c.CCall(size_getter, [c.CInt(dim)])
        body = c.CBlock()
        block.add(
            c.CFor(
                c.CDecl("int", idx.name, init=c.CCall(getter, [c.CInt(dim)])),
                c.CBinOp("<", c.CIdent(idx.name), self._arith(n)),
                c.CAssign(c.CIdent(idx.name), stride, op="+="),
                body,
            )
        )
        return body, idx

    def _thread_count(self, kind: str, dim: int) -> Optional[int]:
        if kind == "lcl":
            return self.opts.local_size[dim]
        if kind == "glb":
            return self.opts.global_size[dim]
        if kind == "wrg":
            g = self.opts.global_size[dim]
            if g is None:
                return None
            return g // self.opts.local_size[dim]
        return None

    # ------------------------------------------------------------------
    # reduce
    # ------------------------------------------------------------------
    def _gen_reduce(
        self,
        call: FunCall,
        f: pat.ReduceSeq,
        block: c.CBlock,
        dest: Optional[WriteDest],
    ) -> GenResult:
        init_expr, arr_expr = call.args
        arr = self.gen(arr_expr, block, None)
        assert isinstance(arr_expr.type, ArrayType)
        n = simplify(arr_expr.type.length)
        acc_type = init_expr.type
        assert acc_type is not None

        space = call.addr_space or AddressSpace.PRIVATE
        if isinstance(acc_type, ArrayType):
            acc_mem = self.alloc.alloc(acc_type, space)
            acc_view: View = MemView(acc_mem, acc_type)
            init_result = self.gen(init_expr, block, WriteDest(acc_mem, acc_view))
            if not init_result.wrote:
                raise CodeGenError(
                    "array-accumulator reductions need a writing initializer "
                    "(copy it with map(id))"
                )
        else:
            acc_mem = self.alloc.alloc(acc_type, AddressSpace.PRIVATE)
            acc_view = MemView(acc_mem, acc_type)
            self._emit_init_value(init_expr, acc_view, acc_type, block)

        lam = _unwrap_wrappers(f.f)
        assert isinstance(lam, Lambda)

        if isinstance(f, pat.ReduceSeqUnroll):
            trip = simplify(n).try_int()
            if trip is None:
                raise CodeGenError("reduceSeqUnroll requires a concrete length")
            for j in range(trip):
                lam.params[0].view = acc_view
                lam.params[1].view = ArrayAccessView(arr.view, Cst(j))
                self.gen(lam.body, block, WriteDest(acc_mem, acc_view))
        else:
            body_block, idx = self._open_reduce_loop(block, n)
            elem_view = ArrayAccessView(arr.view, idx)
            lam.params[0].view = acc_view
            lam.params[1].view = elem_view
            self.gen(lam.body, body_block, WriteDest(acc_mem, acc_view))

        if dest is not None:
            # The reduction is the last producer in its chain: copy the
            # accumulator to the destination (usually the paper routes
            # this through an explicit toGlobal/toLocal map(id) instead).
            if isinstance(acc_type, ArrayType):
                raise CodeGenError(
                    "array-accumulator reductions must be copied out with "
                    "an explicit map(id)"
                )
            value = self._load(MemView(acc_mem, acc_type), acc_type)
            self._emit_store(
                ArrayAccessView(dest.view, Cst(0)), acc_type, value, block
            )
            return GenResult(MemView(dest.memory, ArrayType(acc_type, Cst(1))), wrote=True)

        result_type = ArrayType(acc_type, Cst(1))
        return GenResult(MemView(acc_mem, result_type), wrote=True)

    def _open_reduce_loop(self, block: c.CBlock, n: ArithExpr) -> tuple:
        if self.opts.control_flow_simplification and simplify(n).try_int() == 1:
            return block, Cst(0)
        idx = Var.fresh("i", Range.of(0, n))
        body = c.CBlock()
        block.add(
            c.CFor(
                c.CDecl("int", idx.name, init=c.CInt(0)),
                c.CBinOp("<", c.CIdent(idx.name), self._arith(n)),
                c.CAssign(c.CIdent(idx.name), c.CInt(1), op="+="),
                body,
            )
        )
        return body, idx

    def _emit_init_value(
        self, init: Expr, acc_view: View, acc_type: DataType, block: c.CBlock
    ) -> None:
        if isinstance(init, FunCall) and isinstance(init.f, pat.MakeTuple):
            assert isinstance(acc_type, TupleType)
            self.tuple_types[acc_type.name] = acc_type
            for i, (component, t) in enumerate(zip(init.args, acc_type.elems)):
                target = self._store_target(
                    TupleAccessView(acc_view, i), t
                )
                block.add(c.CAssign(target, self._value_of(component, block)))
            return
        value = self._value_of(init, block)
        self._emit_store(acc_view, acc_type, value, block)

    # ------------------------------------------------------------------
    # iterate
    # ------------------------------------------------------------------
    def _gen_iterate(
        self,
        call: FunCall,
        f: pat.Iterate,
        block: c.CBlock,
        dest: Optional[WriteDest],
    ) -> GenResult:
        arg = call.args[0]
        arg_result = self.gen(arg, block, None)
        assert isinstance(arg.type, ArrayType)
        n0 = simplify(arg.type.length)
        elem_type = arg.type.elem
        space = call.addr_space or AddressSpace.LOCAL

        in_base = self._flat_base_memory(arg_result.view)
        if in_base is None or in_base.space != space:
            raise CodeGenError(
                "iterate input must be a contiguous buffer in the iterate's "
                "address space"
            )

        buf = self.alloc.alloc(ArrayType(elem_type, n0), space)

        scalar = buf.scalar_type.name
        qual = str(space)
        in_ptr = Memory(
            f"{buf.name}_in", space, buf.scalar_type, buf.count, buf.logical_type
        )
        out_ptr = Memory(
            f"{buf.name}_out", space, buf.scalar_type, buf.count, buf.logical_type
        )
        block.add(
            c.CDecl(scalar, in_ptr.name, qualifier=qual, is_pointer=True,
                    init=c.CIdent(in_base.name))
        )
        block.add(
            c.CDecl(scalar, out_ptr.name, qualifier=qual, is_pointer=True,
                    init=c.CIdent(buf.name))
        )

        size_var = Var.fresh("size", Range.of(1, simplify(n0 + 1)))
        block.add(c.CDecl("int", size_var.name, init=self._arith(n0)))

        # Re-infer the body with the runtime size variable so that all the
        # types (and therefore all the views) inside speak in terms of it.
        lam = _unwrap_wrappers(f.f)
        assert isinstance(lam, Lambda)
        g_type = infer_fun_type(lam, [ArrayType(elem_type, size_var)])
        assert isinstance(g_type, ArrayType)

        iter_idx = Var.fresh("iter", Range.of(0, f.n))
        loop_body = c.CBlock()
        block.add(
            c.CFor(
                c.CDecl("int", iter_idx.name, init=c.CInt(0)),
                c.CBinOp("<", c.CIdent(iter_idx.name), self._arith(f.n)),
                c.CAssign(c.CIdent(iter_idx.name), c.CInt(1), op="+="),
                loop_body,
            )
        )

        lam.params[0].view = MemView(in_ptr, ArrayType(elem_type, size_var))
        inner_dest = WriteDest(out_ptr, MemView(out_ptr, g_type))
        inner = self.gen(lam.body, loop_body, inner_dest)
        if not inner.wrote:
            raise CodeGenError("iterate bodies must write memory")

        loop_body.add(
            c.CAssign(c.CIdent(size_var.name), self._arith(g_type.length))
        )
        # Swap the double buffers (Figure 7 lines 27-28, with a plain temp).
        swap = f"{buf.name}_swap"
        loop_body.add(
            c.CDecl(scalar, swap, qualifier=qual, is_pointer=True,
                    init=c.CIdent(in_ptr.name))
        )
        loop_body.add(c.CAssign(c.CIdent(in_ptr.name), c.CIdent(out_ptr.name)))
        loop_body.add(c.CAssign(c.CIdent(out_ptr.name), c.CIdent(swap)))
        if space == AddressSpace.LOCAL:
            loop_body.add(c.CBarrier("CLK_LOCAL_MEM_FENCE"))

        assert isinstance(call.type, ArrayType)
        final_view = MemView(in_ptr, call.type)
        return GenResult(final_view, wrote=True)

    def _flat_base_memory(self, view: View) -> Optional[Memory]:
        node = view
        while isinstance(node, (SplitView, JoinView)):
            node = node.parent
        if isinstance(node, MemView):
            return node.memory
        return None

    # ------------------------------------------------------------------
    # scatter (write-side reorder)
    # ------------------------------------------------------------------
    def _gen_scatter(
        self,
        call: FunCall,
        f: pat.Scatter,
        block: c.CBlock,
        dest: Optional[WriteDest],
    ) -> GenResult:
        assert isinstance(call.type, ArrayType)
        length = call.type.length
        if dest is None:
            space = call.addr_space or AddressSpace.GLOBAL
            mem = self.alloc.alloc(call.type, space)
            dest = WriteDest(mem, MemView(mem, call.type))
        wrapped = WriteDest(dest.memory, ScatterView(dest.view, f.idx_fun, length))
        inner = self.gen(call.args[0], block, wrapped)
        if not inner.wrote:
            raise CodeGenError("scatter requires a writing producer")
        return GenResult(MemView(dest.memory, call.type), wrote=True)

    # ------------------------------------------------------------------
    # values, loads and stores
    # ------------------------------------------------------------------
    def _value_of(self, expr: Expr, block: c.CBlock) -> c.CExpr:
        if isinstance(expr, Literal):
            return self._literal(expr)
        if isinstance(expr, FunCall) and isinstance(_unwrap_wrappers(expr.f), UserFun):
            uf = _unwrap_wrappers(expr.f)
            assert isinstance(uf, UserFun)
            self._register_user_fun(uf)
            return c.CCall(uf.name, [self._value_of(a, block) for a in expr.args])
        result = self.gen(expr, block, None)
        assert expr.type is not None
        if isinstance(expr.type, TupleType):
            return self._tuple_value(result.view, expr.type, block)
        return self._load(result.view, expr.type)

    def _tuple_value(self, view: View, t: TupleType, block: c.CBlock) -> c.CExpr:
        """A tuple value flowing whole into a user function.

        When the tuple already lives in a struct register, pass it
        directly; when it only exists as a zip view, materialize it
        member-wise into a fresh struct register (tuples are structs,
        paper section 5.1).
        """
        self.tuple_types[t.name] = t
        try:
            access = consume(view)
            if not access.tuple_path and self._is_register(access.memory):
                return c.CIdent(access.memory.name)
        except ViewConsumptionError:
            pass
        tmp = self.alloc.alloc(t, AddressSpace.PRIVATE)
        for i, elem_t in enumerate(t.elems):
            member = c.CMember(c.CIdent(tmp.name), f"_{i}")
            value = self._load(TupleAccessView(view, i), elem_t)
            block.add(c.CAssign(member, value))
        return c.CIdent(tmp.name)

    def _literal(self, lit: Literal) -> c.CExpr:
        t = lit.type
        if isinstance(t, VectorType):
            lanes = [c.CFloat(float(lit.value))] * t.width
            if t.elem == ScalarType("int", 4):
                lanes = [c.CInt(int(lit.value))] * t.width
            return c.CVectorLiteral(t.name, lanes)
        if t == ScalarType("int", 4):
            return c.CInt(int(lit.value))
        return c.CFloat(float(lit.value))

    def _load(self, view: View, value_type: DataType) -> c.CExpr:
        access = consume(view)
        return self._access_expr(access, value_type)

    def _store_target(self, view: View, value_type: DataType) -> c.CExpr:
        return self._access_expr(consume(view), value_type)

    def _emit_store(
        self, view: View, value_type: DataType, value: c.CExpr, block: c.CBlock
    ) -> None:
        access = consume(view)
        if isinstance(value_type, VectorType) and not self._is_register(access.memory):
            idx = self._arith(access.index)
            block.add(
                c.CExprStmt(
                    c.CCall(
                        f"vstore{value_type.width}",
                        [value, c.CInt(0),
                         c.CBinOp("+", c.CIdent(access.memory.name), idx)],
                    )
                )
            )
            return
        block.add(c.CAssign(self._access_expr(access, value_type), value))

    def _is_register(self, mem: Memory) -> bool:
        if mem.space != AddressSpace.PRIVATE:
            return False
        if mem.is_param:
            return True  # scalar kernel parameters are plain values
        t = mem.logical_type
        length: ArithExpr = Cst(1)
        while isinstance(t, ArrayType):
            length = simplify(length * t.length)
            t = t.elem
        return simplify(length) == Cst(1)

    def _access_expr(self, access: Access, value_type: DataType) -> c.CExpr:
        mem = access.memory
        base: c.CExpr = c.CIdent(mem.name)
        if access.tuple_path:
            for component in access.tuple_path:
                base = c.CMember(base, f"_{component}")
            return base
        if self._is_register(mem):
            return base
        if isinstance(value_type, VectorType):
            idx = self._arith(access.index)
            return c.CCall(
                f"vload{value_type.width}",
                [c.CInt(0), c.CBinOp("+", base, idx)],
            )
        return c.CIndex(base, self._arith(access.index))

    # ------------------------------------------------------------------
    # arithmetic emission
    # ------------------------------------------------------------------
    def _arith(self, e: ArithExpr) -> c.CExpr:
        if self.opts.array_access_simplification:
            e = simplify(e)
        return self._arith_raw(e)

    def _arith_raw(self, e: ArithExpr) -> c.CExpr:
        if isinstance(e, Cst):
            return c.CInt(e.value)
        if isinstance(e, Var):
            return c.CIdent(e.name)
        if isinstance(e, Sum):
            result = self._arith_raw(e.terms[0])
            for t in e.terms[1:]:
                result = c.CBinOp("+", result, self._arith_raw(t))
            return result
        if isinstance(e, Prod):
            result = self._arith_raw(e.factors[0])
            for t in e.factors[1:]:
                result = c.CBinOp("*", result, self._arith_raw(t))
            return result
        if isinstance(e, IntDiv):
            return c.CBinOp("/", self._arith_raw(e.numer), self._arith_raw(e.denom))
        if isinstance(e, Mod):
            return c.CBinOp("%", self._arith_raw(e.numer), self._arith_raw(e.denom))
        if isinstance(e, LoadIndexNode):
            return c.CCast(
                "int",
                c.CIndex(c.CIdent(e.memory_name), self._arith_raw(e.index)),
            )
        if isinstance(e, Pow):
            exp = e.exp.try_int()
            if exp is None or exp < 1 or exp > 8:
                raise CodeGenError(f"cannot emit power {e}")
            result = self._arith_raw(e.base)
            for _ in range(exp - 1):
                result = c.CBinOp("*", result, self._arith_raw(e.base))
            return result
        raise CodeGenError(f"cannot emit arithmetic node {e!r}")

    # ------------------------------------------------------------------
    # final assembly
    # ------------------------------------------------------------------
    def _collect_declarations(self) -> None:
        """Local and private buffers are declared at the kernel top
        (Figure 7 lines 4-6)."""
        decls: list = []
        for mem in self.alloc.locals:
            decls.append(
                c.CDecl(
                    mem.scalar_type.name,
                    mem.name,
                    qualifier="local",
                    array_size=mem.concrete_count(),
                )
            )
        for mem in self.alloc.privates:
            if self._is_register(mem):
                t = mem.logical_type
                while isinstance(t, ArrayType):
                    t = t.elem
                decls.append(c.CDecl(_c_type_name(t), mem.name))
            else:
                decls.append(
                    c.CDecl(
                        mem.scalar_type.name,
                        mem.name,
                        array_size=mem.concrete_count(),
                    )
                )
        self.pre_block.stmts = decls + list(self.pre_block.stmts)

    def _render(self, params: Sequence[KernelParamInfo], body: c.CBlock) -> str:
        pieces: list[str] = []
        for name, t in sorted(self.tuple_types.items()):
            members = "; ".join(
                f"{_c_type_name(e)} _{i}" for i, e in enumerate(t.elems)
            )
            pieces.append(f"typedef struct {{ {members}; }} {name};")

        for uf in self.user_funs.values():
            args = ", ".join(
                f"{_c_type_name(t)} {n}" for t, n in zip(uf.in_types, uf.param_names)
            )
            pieces.append(
                f"{_c_type_name(uf.out_type)} {uf.name}({args}) {{ {uf.body} }}"
            )

        c_params = []
        for p in params:
            if p.kind in ("in_buffer",):
                c_params.append(
                    c.CParam(p.scalar_type, p.name, ("const", "global"), True, True)
                )
            elif p.kind in ("out_buffer", "temp_buffer"):
                c_params.append(c.CParam(p.scalar_type, p.name, ("global",), True))
            else:
                c_params.append(c.CParam(p.scalar_type, p.name))

        full_body = c.CBlock(list(self.pre_block.stmts) + list(body.stmts))
        kernel = c.CFunctionDef("void", self.opts.kernel_name, c_params, full_body, True)
        pieces.append(c.print_function(kernel))
        return "\n\n".join(pieces) + "\n"


#: Whole-kernel compile memo.  The autotuner, the rewrite-space explorer
#: and repeated benchsuite runs compile structurally identical programs
#: over and over (every lowering recipe clones its input); keying the
#: finished :class:`CompiledKernel` on the canonical form of the program
#: (:mod:`repro.ir.structural`, so parameter renaming and cloning hit)
#: plus the (frozen, hashable) :class:`CompilerOptions` makes every
#: repeat compile a dictionary lookup.  Generated kernels are immutable
#: to their consumers, so sharing one instance is safe.
_COMPILE_MEMO: "OrderedDict[tuple, CompiledKernel]" = OrderedDict()
_COMPILE_MEMO_SIZE = 128
_COMPILE_MEMO_LOCK = threading.Lock()


def clear_compile_memo() -> None:
    with _COMPILE_MEMO_LOCK:
        _COMPILE_MEMO.clear()


def compile_kernel(
    fun: Lambda,
    options: Optional[CompilerOptions] = None,
    memo: bool = True,
) -> CompiledKernel:
    """Compile a Lift IL program (a lambda over arrays) to OpenCL.

    ``memo=False`` bypasses the structural-key compile memo (used by the
    compile-time benchmarks, which must measure a real compilation).

    The ``compile`` fault-injection site sits at this entry (before the
    memo, so chaos runs exercise it on every call); injected faults are
    absorbed by bounded in-place retries.
    """
    from repro import faultinject
    from repro.obs import span

    faultinject.survive("compile")
    options = options or CompilerOptions()
    if not memo:
        with span("compile", memo=False):
            return KernelGenerator(options).compile(fun)

    from repro.ir.structural import canonical

    # The span covers the memo lookup too: a hit shows up in the trace
    # as a near-zero "compile" with memo="hit" instead of vanishing.
    with span("compile") as compile_span:
        key = (canonical(fun), options)
        with _COMPILE_MEMO_LOCK:
            hit = _COMPILE_MEMO.get(key)
            if hit is not None:
                _COMPILE_MEMO.move_to_end(key)
                compile_span.attrs["memo"] = "hit"
                return hit
        compile_span.attrs["memo"] = "miss"
        kernel = KernelGenerator(options).compile(fun)
    with _COMPILE_MEMO_LOCK:
        _COMPILE_MEMO[key] = kernel
        while len(_COMPILE_MEMO) > _COMPILE_MEMO_SIZE:
            _COMPILE_MEMO.popitem(last=False)
    return kernel
