"""Barrier elimination (paper section 5.4).

A barrier is emitted after every ``mapLcl`` by default — safety first.
A barrier is removed only when we can infer from the context that no
inter-thread sharing can happen before the next synchronization point:
the Lift IL only allows sharing through the data-layout patterns
(split, join, gather, scatter, transpose, slide), so a ``mapLcl`` whose
result flows into the next ``mapLcl`` without any such pattern in between
is consumed element-wise by the same threads that produced it, and its
barrier can be dropped.

The pass returns the set of ``FunCall`` node ids whose barrier the code
generator must *not* emit.
"""

from __future__ import annotations

from repro.ir.nodes import Expr, FunCall, Lambda, Param
from repro.ir import patterns as pat

#: Patterns whose presence between two mapLcl calls forces a barrier.
_SHARING_PATTERNS = (
    pat.Split,
    pat.Join,
    pat.Gather,
    pat.Scatter,
    pat.Transpose,
    pat.Slide,
    pat.AsVector,
    pat.AsScalar,
)


def find_removable_barriers(root: Expr) -> set[int]:
    """Ids of mapLcl ``FunCall`` nodes whose trailing barrier is removable."""
    removable: set[int] = set()
    _scan(root, removable)
    return removable


def _scan(expr: Expr, removable: set[int]) -> None:
    """Walk the graph; at every consumer, look down its argument chain."""
    if not isinstance(expr, FunCall):
        return
    for arg in expr.args:
        _scan(arg, removable)
    for body in _nested_bodies(expr.f):
        _scan(body, removable)

    if isinstance(expr.f, (pat.MapLcl,)) or _is_wrapped_map_lcl(expr.f):
        # This consumer is a mapLcl: check what feeds it.
        producer = _producer_map_lcl(expr.args[0], layout_seen=False)
        if producer is not None:
            removable.add(id(producer))

    if isinstance(expr.f, pat.Zip):
        # Two mapLcl producers feeding the same zip execute independently;
        # one barrier between them suffices (section 5.4).
        producers = [
            _producer_map_lcl(a, layout_seen=False) for a in expr.args
        ]
        found = [p for p in producers if p is not None]
        for extra in found[:-1]:
            removable.add(id(extra))


def _nested_bodies(f) -> list[Expr]:
    if isinstance(f, Lambda):
        return [f.body]
    if isinstance(f, pat.AddressSpaceWrapper):
        return _nested_bodies(f.f)
    if isinstance(f, (pat.AbstractMap, pat.ReduceSeq, pat.Iterate)):
        return _nested_bodies(f.f)
    return []


def _is_wrapped_map_lcl(f) -> bool:
    if isinstance(f, pat.AddressSpaceWrapper):
        return _is_wrapped_map_lcl(f.f)
    return isinstance(f, pat.MapLcl)


def _producer_map_lcl(expr: Expr, layout_seen: bool) -> FunCall | None:
    """Follow the dataflow backwards from a mapLcl's input; return the
    producing mapLcl call when no sharing pattern lies on the path."""
    if not isinstance(expr, FunCall):
        return None
    f = expr.f
    if isinstance(f, pat.MapLcl) or _is_wrapped_map_lcl(f):
        return None if layout_seen else expr
    if isinstance(f, _SHARING_PATTERNS):
        return _producer_map_lcl(expr.args[0], layout_seen=True)
    if isinstance(f, (pat.Zip, pat.Get, pat.MakeTuple)):
        # zip combines independent branches element-wise; it does not
        # reorder, so it is transparent for this analysis (section 5.4
        # even removes one barrier between the two branches of a zip).
        for arg in expr.args:
            found = _producer_map_lcl(arg, layout_seen)
            if found is not None:
                return found
        return None
    if isinstance(f, Lambda):
        return _producer_map_lcl(f.body, layout_seen)
    if isinstance(f, pat.AddressSpaceWrapper):
        return None
    # Any other pattern (maps, reduces, iterate): stop — they synchronize
    # or sequentialize on their own.
    return None
