"""Views: implicit array accesses made explicit (paper section 5.3).

Functions that only change the data layout of an array (split, join,
gather, scatter, zip, slide, transpose, asVector, asScalar) produce a
*view* instead of allocating and writing memory.  A view records how
subsequent reads (or writes, for scatter) must index the underlying
buffer.

Consumption walks the view chain from the outermost wrapper to the
:class:`MemView` at the root while maintaining two stacks, exactly as the
paper's Figure 5:

* the *array stack* holds index expressions pushed by array accesses and
  transformed by layout views;
* the *tuple stack* holds tuple component selections, consumed by
  :class:`ZipView` to decide which input array is being accessed.

All index arithmetic here is built with **raw** constructors; the code
generator applies :func:`repro.arith.simplify` only when array-access
simplification is enabled, which is how the Figure 8 ablation produces
both the naive and the simplified kernels from the same views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arith import ArithExpr, Cst, simplify
from repro.arith.expr import IntDiv, Mod, Prod, Sum
from repro.types import ArrayType, DataType, TupleType, VectorType
from repro.compiler.memory import Memory
from repro.ir.patterns import IndexFun


class View:
    """Base class of view nodes."""

    __slots__ = ()


@dataclass
class MemView(View):
    """The root of a view chain: a buffer and the array type it holds
    *relative to the scope the view was created in* (a per-thread private
    accumulator has its per-thread type here, never the full iteration
    space — the address-space multiplier rules of section 5.2)."""

    memory: Memory
    array_type: DataType


@dataclass
class ArrayAccessView(View):
    """An access to one dimension of the parent view."""

    parent: View
    idx: ArithExpr


@dataclass
class SplitView(View):
    parent: View
    chunk: ArithExpr


@dataclass
class JoinView(View):
    parent: View
    inner_len: ArithExpr


@dataclass
class GatherView(View):
    parent: View
    idx_fun: IndexFun
    length: ArithExpr


@dataclass
class ScatterView(View):
    parent: View
    idx_fun: IndexFun
    length: ArithExpr


@dataclass
class TransposeView(View):
    parent: View


@dataclass
class FilterView(View):
    """Data-dependent gather: the new index is loaded from a buffer."""

    parent: View
    idx_view: View


@dataclass
class SlideView(View):
    parent: View
    size: ArithExpr
    step: ArithExpr


@dataclass
class ZipView(View):
    parents: tuple


@dataclass
class TupleAccessView(View):
    parent: View
    index: int


@dataclass
class AsVectorView(View):
    parent: View
    width: int


@dataclass
class AsScalarView(View):
    parent: View
    width: int


@dataclass
class DropIndexView(View):
    """Discard the most recent access index (the write path of ``head``:
    the producer writes a one-element array whose only index is zero)."""

    parent: View


@dataclass
class MappedView(View):
    """A map whose function only rearranges data (no computation).

    ``elem_fn`` receives the view of one element of the parent array and
    returns the view of the corresponding result element.  This is what
    makes compositions like the paper's 2D stencil
    (``map(transpose) o slide o map(slide)``) pure views: consuming an
    access pops the map index, builds the element view lazily and keeps
    walking through it.
    """

    parent: View
    elem_fn: object  # Callable[[View], View]


@dataclass
class Access:
    """The result of consuming a view: which buffer, at which scalar
    index.  ``index`` is an un-simplified arithmetic expression.

    ``tuple_path`` is non-empty when the access lands on a struct-typed
    register (tuple accumulators): the member components to select, in
    outer-to-inner order."""

    memory: Memory
    index: ArithExpr
    tuple_path: tuple = ()


class ViewConsumptionError(Exception):
    """The view chain cannot be turned into a memory access."""


def consume(view: View) -> Access:
    """Figure 5's top-to-bottom walk producing a flat scalar index."""
    array_stack: list[ArithExpr] = []
    tuple_stack: list[int] = []
    lane_offsets: list[ArithExpr] = []

    node = view
    while not isinstance(node, MemView):
        if isinstance(node, ArrayAccessView):
            array_stack.append(node.idx)
            node = node.parent
        elif isinstance(node, TupleAccessView):
            tuple_stack.append(node.index)
            node = node.parent
        elif isinstance(node, SplitView):
            outer = array_stack.pop()
            inner = array_stack.pop()
            array_stack.append(Sum([Prod([outer, node.chunk]), inner]))
            node = node.parent
        elif isinstance(node, JoinView):
            flat = array_stack.pop()
            array_stack.append(Mod(flat, node.inner_len))
            array_stack.append(IntDiv(flat, node.inner_len))
            node = node.parent
        elif isinstance(node, SlideView):
            window = array_stack.pop()
            elem = array_stack.pop()
            array_stack.append(Sum([Prod([window, node.step]), elem]))
            node = node.parent
        elif isinstance(node, (GatherView, ScatterView)):
            i = array_stack.pop()
            array_stack.append(node.idx_fun.apply(i, node.length))
            node = node.parent
        elif isinstance(node, FilterView):
            i = array_stack.pop()
            idx_access = consume(ArrayAccessView(node.idx_view, i))
            from repro.arith.expr import LoadIndex

            array_stack.append(
                LoadIndex(idx_access.memory.name, idx_access.index)
            )
            node = node.parent
        elif isinstance(node, TransposeView):
            outer = array_stack.pop()
            inner = array_stack.pop()
            array_stack.append(outer)
            array_stack.append(inner)
            node = node.parent
        elif isinstance(node, ZipView):
            if not tuple_stack:
                raise ViewConsumptionError(
                    "zip view reached without a tuple component selection"
                )
            component = tuple_stack.pop()
            node = node.parents[component]
        elif isinstance(node, AsVectorView):
            i = array_stack.pop()
            array_stack.append(Prod([i, Cst(node.width)]))
            node = node.parent
        elif isinstance(node, AsScalarView):
            i = array_stack.pop()
            array_stack.append(IntDiv(i, Cst(node.width)))
            lane_offsets.append(Mod(i, Cst(node.width)))
            node = node.parent
        elif isinstance(node, DropIndexView):
            array_stack.pop()
            node = node.parent
        elif isinstance(node, MappedView):
            i = array_stack.pop()
            node = node.elem_fn(ArrayAccessView(node.parent, i))
        else:
            raise ViewConsumptionError(f"cannot consume view node {node!r}")

    index = _linearize(node, array_stack)
    for lane in lane_offsets:
        index = Sum([index, lane])
    return Access(node.memory, index, tuple(reversed(tuple_stack)))


def _linearize(mem_view: MemView, array_stack: list[ArithExpr]) -> ArithExpr:
    """Flatten the per-dimension indices into a scalar offset.

    The most recently pushed index belongs to the outermost dimension
    (see the Figure 5 walk-through); strides are products of the inner
    dimension lengths times the scalar width of the element type.
    """
    dims: list[ArithExpr] = []
    t = mem_view.array_type
    while isinstance(t, ArrayType):
        dims.append(t.length)
        t = t.elem
    elem_width = _scalar_width(t)

    if len(array_stack) < len(dims):
        raise ViewConsumptionError(
            f"view consumed with {len(array_stack)} indices for "
            f"{len(dims)}-dimensional memory {mem_view.memory.name}"
        )

    index: ArithExpr = Cst(0)
    for dim_pos in range(len(dims)):
        idx = array_stack.pop()
        stride: ArithExpr = Cst(1)
        for inner in dims[dim_pos + 1 :]:
            stride = Prod([stride, inner]) if stride != Cst(1) else inner
        term = Prod([idx, stride]) if stride != Cst(1) else idx
        index = term if index == Cst(0) else Sum([index, term])
    if array_stack:
        from repro.ir.nodes import AddressSpace

        if mem_view.memory.space == AddressSpace.PRIVATE:
            # Private memory is per-thread: indices contributed by
            # enclosing parallel maps select the thread's own copy and
            # vanish (the allocation multiplier rules of section 5.2).
            array_stack.clear()
        else:
            raise ViewConsumptionError(
                f"{len(array_stack)} unconsumed indices for memory "
                f"{mem_view.memory.name}"
            )
    if elem_width != 1:
        index = Prod([index, Cst(elem_width)])
    return index


def _scalar_width(t: DataType) -> int:
    if isinstance(t, VectorType):
        return t.width
    if isinstance(t, TupleType):
        # Tuples only live in struct registers (memory allocation rejects
        # arrays of tuples); the index is unused for registers.
        return 1
    return 1


def access_width(t: DataType) -> int:
    """Scalar width of the value loaded/stored at an access point."""
    if isinstance(t, VectorType):
        return t.width
    return 1
