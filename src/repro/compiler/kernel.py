"""Convenience layer: compile a Lift program and run it on the simulator.

This is the equivalent of the host code a Lift user would write: allocate
buffers, set kernel arguments (including the inferred size variables) and
enqueue the kernel over an NDRange.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

import numpy as np

from repro.arith import simplify
from repro.ir.nodes import Lambda
from repro.compiler.codegen import CompiledKernel, compile_kernel
from repro.compiler.options import CompilerOptions
from repro.opencl import Buffer, Counters, OpenCLProgram, launch


@dataclass
class RunResult:
    output: np.ndarray
    counters: Counters


def execute_kernel(
    compiled: CompiledKernel,
    inputs: Mapping[str, Any],
    size_env: Mapping[str, int],
    global_size,
    local_size=None,
    counters: Optional[Counters] = None,
    engine: Optional[str] = None,
) -> RunResult:
    """Run a compiled kernel on the simulated device.

    ``engine`` selects the execution engine (``"auto"``/``"vector"``/
    ``"scalar"``, see :func:`repro.opencl.launch`).
    """
    program = OpenCLProgram(compiled.source)
    args: dict[str, Any] = {}
    out_buffer: Optional[Buffer] = None

    for p in compiled.params:
        if p.kind == "in_buffer":
            value = inputs[p.name]
            args[p.name] = Buffer.from_array(np.asarray(value))
        elif p.kind == "scalar":
            args[p.name] = inputs[p.name]
        elif p.kind == "size":
            args[p.name] = int(size_env[p.name])
        elif p.kind == "out_buffer":
            count = simplify(compiled.out_count).evaluate(dict(size_env))
            out_buffer = Buffer.zeros(int(count), p.scalar_type)
            args[p.name] = out_buffer
        elif p.kind == "temp_buffer":
            count = simplify(p.count).evaluate(dict(size_env))
            args[p.name] = Buffer.zeros(int(count), p.scalar_type)
        else:
            raise ValueError(f"unknown parameter kind {p.kind}")

    assert out_buffer is not None
    if local_size is None:
        local_size = compiled.options.local_size
    counters = launch(
        program, global_size, local_size, args,
        kernel_name=compiled.name, counters=counters, engine=engine,
    )
    return RunResult(out_buffer.data.copy(), counters)


def compile_and_run(
    fun: Lambda,
    inputs: Mapping[str, Any],
    size_env: Mapping[str, int],
    global_size,
    options: Optional[CompilerOptions] = None,
    local_size=None,
    engine: Optional[str] = None,
) -> RunResult:
    compiled = compile_kernel(fun, options)
    return execute_kernel(
        compiled, inputs, size_env, global_size, local_size, engine=engine
    )
