"""Address space inference — Algorithm 1 of the paper (section 5.2).

Walks the expression graph and annotates every expression with the OpenCL
address space its value lives in:

* scalar kernel parameters are private, array parameters global (OpenCL
  requires this);
* literals are private;
* ``toPrivate``/``toLocal``/``toGlobal`` change the ``writeTo`` argument
  before recursing into their nested function;
* ``reduce`` writes into the memory of its initializer expression;
* user functions take the ``writeTo`` space, or infer it from their
  arguments (same space -> that space, mixed -> global by default);
* data-layout patterns take the space of their argument.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.types import ArrayType, ScalarType
from repro.ir.nodes import (
    AddressSpace,
    Expr,
    FunCall,
    FunDecl,
    Lambda,
    Literal,
    Param,
    UserFun,
)
from repro.ir import patterns as pat


def infer_address_spaces(fun: Lambda) -> None:
    """Annotate ``addr_space`` on every expression of a kernel lambda."""
    for param in fun.params:
        if isinstance(param.type, ScalarType):
            param.addr_space = AddressSpace.PRIVATE
        else:
            param.addr_space = AddressSpace.GLOBAL
    _infer_expr(fun.body, None)


def _infer_expr(expr: Expr, write_to: Optional[AddressSpace]) -> None:
    if isinstance(expr, Literal):
        expr.addr_space = AddressSpace.PRIVATE
        return
    if isinstance(expr, Param):
        if expr.addr_space is None:
            raise ValueError(f"parameter {expr.name} visited before binding")
        return
    if not isinstance(expr, FunCall):
        raise TypeError(f"cannot infer address space of {expr!r}")

    for arg in expr.args:
        _infer_expr(arg, write_to)

    f = expr.f
    if isinstance(f, UserFun):
        if write_to is not None:
            expr.addr_space = write_to
        else:
            expr.addr_space = _from_args(expr.args)
    elif isinstance(f, Lambda):
        _infer_fun_as(f, [a.addr_space for a in expr.args], write_to)
        expr.addr_space = f.body.addr_space
    elif isinstance(f, pat.ToPrivate):
        _infer_wrapped(f, expr, AddressSpace.PRIVATE)
    elif isinstance(f, pat.ToLocal):
        _infer_wrapped(f, expr, AddressSpace.LOCAL)
    elif isinstance(f, pat.ToGlobal):
        _infer_wrapped(f, expr, AddressSpace.GLOBAL)
    elif isinstance(f, pat.ReduceSeq):
        init = expr.args[0]
        _infer_fun_as(f.f, [init.addr_space, expr.args[1].addr_space], init.addr_space)
        expr.addr_space = init.addr_space
    elif isinstance(f, (pat.AbstractMap, pat.Iterate)):
        inner_space = _infer_fun_as(
            f.f, [a.addr_space for a in expr.args], write_to
        )
        expr.addr_space = inner_space if inner_space is not None else write_to
        if expr.addr_space is None:
            expr.addr_space = _from_args(expr.args)
    else:
        # Data-layout patterns: the value stays where the argument lives.
        expr.addr_space = _from_args(expr.args)


def _infer_wrapped(wrapper: pat.AddressSpaceWrapper, call: FunCall, space: AddressSpace) -> None:
    _infer_fun_as(wrapper.f, [a.addr_space for a in call.args], space)
    call.addr_space = space


def _infer_fun_as(
    f: FunDecl,
    arg_spaces: Sequence[Optional[AddressSpace]],
    write_to: Optional[AddressSpace],
) -> Optional[AddressSpace]:
    """``inferASFunCall`` of Algorithm 1, returning the body's space."""
    if isinstance(f, Lambda):
        for p, space in zip(f.params, arg_spaces):
            p.addr_space = space if space is not None else AddressSpace.GLOBAL
        _infer_expr(f.body, write_to)
        return f.body.addr_space
    if isinstance(f, UserFun):
        # A bare user function nested in a map: behaves like a unary lambda.
        return write_to
    if isinstance(f, pat.AddressSpaceWrapper):
        return _infer_fun_as(f.f, arg_spaces, f.space)
    if isinstance(f, (pat.AbstractMap, pat.Iterate)):
        return _infer_fun_as(f.f, arg_spaces, write_to)
    if isinstance(f, pat.ReduceSeq):
        return write_to
    return write_to


def _from_args(args: Sequence[Expr]) -> AddressSpace:
    spaces = {a.addr_space for a in args if a.addr_space is not None}
    if len(spaces) == 1:
        return spaces.pop()
    # Mixed or unknown: global by default (Algorithm 1, line 14).
    return AddressSpace.GLOBAL
