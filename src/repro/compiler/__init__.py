"""The Lift-to-OpenCL compiler (paper section 5).

Pipeline stages, in order (Figure 4):

1. type analysis — :mod:`repro.ir.typecheck`;
2. address-space inference — :mod:`repro.compiler.address_space`
   (Algorithm 1);
3. memory allocation — :mod:`repro.compiler.memory`;
4. array accesses via views — :mod:`repro.compiler.views` (Figure 5);
5. barrier elimination — :mod:`repro.compiler.barriers`;
6. OpenCL code generation with control-flow simplification —
   :mod:`repro.compiler.codegen` (Figure 7).
"""

from repro.compiler.codegen import (
    CodeGenError,
    CompiledKernel,
    KernelGenerator,
    compile_kernel,
)
from repro.compiler.kernel import RunResult, compile_and_run, execute_kernel
from repro.compiler.options import OPTIMIZATION_LEVELS, CompilerOptions

__all__ = [
    "CodeGenError",
    "CompiledKernel",
    "CompilerOptions",
    "KernelGenerator",
    "OPTIMIZATION_LEVELS",
    "RunResult",
    "compile_and_run",
    "compile_kernel",
    "execute_kernel",
]
