"""Compiler options: the optimization knobs evaluated in Figure 8.

The paper's ablation compares three configurations:

* ``NONE``            — no barrier elimination, no control-flow
                        simplification, no array-access simplification;
* ``BARRIER_CF``      — barrier elimination + control-flow simplification;
* ``ALL``             — everything, including array-access simplification.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple


@dataclass(frozen=True)
class CompilerOptions:
    """Configuration of the Lift-to-OpenCL code generator.

    ``local_size`` must be concrete (the compiler exploits it for
    control-flow simplification exactly as section 5.5 describes);
    ``global_size`` entries may be ``None``, in which case the generated
    code loops with a ``get_global_size``/``get_num_groups`` stride the way
    Figure 7 line 7 does.
    """

    local_size: Tuple[int, int, int] = (64, 1, 1)
    global_size: Tuple[Optional[int], Optional[int], Optional[int]] = (None, None, None)
    barrier_elimination: bool = True
    control_flow_simplification: bool = True
    array_access_simplification: bool = True
    kernel_name: str = "KERNEL"

    @staticmethod
    def none(**kw) -> "CompilerOptions":
        return CompilerOptions(
            barrier_elimination=False,
            control_flow_simplification=False,
            array_access_simplification=False,
            **kw,
        )

    @staticmethod
    def barrier_cf(**kw) -> "CompilerOptions":
        return CompilerOptions(array_access_simplification=False, **kw)

    @staticmethod
    def all(**kw) -> "CompilerOptions":
        return CompilerOptions(**kw)

    def with_(self, **kw) -> "CompilerOptions":
        return replace(self, **kw)


#: The three optimization levels of Figure 8, in plotting order.
OPTIMIZATION_LEVELS = {
    "none": CompilerOptions.none,
    "barrier_cf": CompilerOptions.barrier_cf,
    "all": CompilerOptions.all,
}
