"""A small C AST for the OpenCL code the Lift compiler emits.

Only the constructs the code generator needs are modelled; the printer
produces the exact textual subset that :mod:`repro.opencl` parses and
executes, closing the loop for differential testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence


class CNode:
    __slots__ = ()


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

class CExpr(CNode):
    __slots__ = ()


@dataclass
class CIdent(CExpr):
    name: str


@dataclass
class CInt(CExpr):
    value: int


@dataclass
class CFloat(CExpr):
    value: float


@dataclass
class CBinOp(CExpr):
    op: str
    lhs: CExpr
    rhs: CExpr


@dataclass
class CUnOp(CExpr):
    op: str
    operand: CExpr


@dataclass
class CTernary(CExpr):
    cond: CExpr
    then: CExpr
    otherwise: CExpr


@dataclass
class CCall(CExpr):
    func: str
    args: Sequence[CExpr]


@dataclass
class CIndex(CExpr):
    base: CExpr
    index: CExpr


@dataclass
class CMember(CExpr):
    base: CExpr
    member: str


@dataclass
class CCast(CExpr):
    type_name: str
    operand: CExpr


@dataclass
class CVectorLiteral(CExpr):
    type_name: str
    items: Sequence[CExpr]


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

class CStmt(CNode):
    __slots__ = ()


@dataclass
class CDecl(CStmt):
    """``[qualifier] type name[array_size] = init;``"""

    type_name: str
    name: str
    qualifier: str = ""  # "local", "private" (dropped when printing), ...
    array_size: Optional[int] = None
    init: Optional[CExpr] = None
    is_pointer: bool = False


@dataclass
class CAssign(CStmt):
    target: CExpr
    value: CExpr
    op: str = "="


@dataclass
class CExprStmt(CStmt):
    expr: CExpr


@dataclass
class CFor(CStmt):
    init: Optional[CStmt]
    cond: Optional[CExpr]
    step: Optional[CStmt]
    body: "CBlock"


@dataclass
class CIf(CStmt):
    cond: CExpr
    then: "CBlock"
    otherwise: Optional["CBlock"] = None


@dataclass
class CBlock(CStmt):
    stmts: list = field(default_factory=list)

    def add(self, stmt: CStmt) -> None:
        self.stmts.append(stmt)


@dataclass
class CReturn(CStmt):
    value: Optional[CExpr] = None


@dataclass
class CBarrier(CStmt):
    """``barrier(CLK_LOCAL_MEM_FENCE)`` or the global variant."""

    fence: str = "CLK_LOCAL_MEM_FENCE"


@dataclass
class CComment(CStmt):
    text: str


# ---------------------------------------------------------------------------
# top level
# ---------------------------------------------------------------------------

@dataclass
class CParam:
    type_name: str
    name: str
    qualifiers: tuple = ()  # e.g. ("const", "global") for pointers
    is_pointer: bool = False
    is_restrict: bool = False


@dataclass
class CFunctionDef:
    return_type: str
    name: str
    params: list
    body: CBlock
    is_kernel: bool = False


@dataclass
class CProgram:
    functions: list = field(default_factory=list)


# ---------------------------------------------------------------------------
# printer
# ---------------------------------------------------------------------------

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    ">": 4,
    "<=": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


def print_expr(e: CExpr, parent_prec: int = 0) -> str:
    if isinstance(e, CIdent):
        return e.name
    if isinstance(e, CInt):
        return str(e.value)
    if isinstance(e, CFloat):
        text = repr(float(e.value))
        return f"{text}f"
    if isinstance(e, CBinOp):
        prec = _PRECEDENCE.get(e.op, 5)
        inner = f"{print_expr(e.lhs, prec)} {e.op} {print_expr(e.rhs, prec + 1)}"
        if prec < parent_prec:
            return f"({inner})"
        return inner
    if isinstance(e, CUnOp):
        return f"({e.op}{print_expr(e.operand, 7)})"
    if isinstance(e, CTernary):
        return (
            f"({print_expr(e.cond)} ? {print_expr(e.then)}"
            f" : {print_expr(e.otherwise)})"
        )
    if isinstance(e, CCall):
        args = ", ".join(print_expr(a) for a in e.args)
        return f"{e.func}({args})"
    if isinstance(e, CIndex):
        return f"{print_expr(e.base, 8)}[{print_expr(e.index)}]"
    if isinstance(e, CMember):
        return f"{print_expr(e.base, 8)}.{e.member}"
    if isinstance(e, CCast):
        return f"(({e.type_name}) {print_expr(e.operand, 7)})"
    if isinstance(e, CVectorLiteral):
        items = ", ".join(print_expr(i) for i in e.items)
        return f"(({e.type_name})({items}))"
    raise TypeError(f"cannot print {e!r}")


def print_stmt(s: CStmt, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(s, CDecl):
        qual = f"{s.qualifier} " if s.qualifier and s.qualifier != "private" else ""
        star = "*" if s.is_pointer else ""
        size = f"[{s.array_size}]" if s.array_size is not None else ""
        init = f" = {print_expr(s.init)}" if s.init is not None else ""
        return f"{pad}{qual}{s.type_name} {star}{s.name}{size}{init};"
    if isinstance(s, CAssign):
        return f"{pad}{print_expr(s.target)} {s.op} {print_expr(s.value)};"
    if isinstance(s, CExprStmt):
        return f"{pad}{print_expr(s.expr)};"
    if isinstance(s, CFor):
        init = print_stmt(s.init, 0).strip() if s.init else ";"
        cond = print_expr(s.cond) if s.cond else ""
        step = print_stmt(s.step, 0).strip().rstrip(";") if s.step else ""
        header = f"{pad}for ({init} {cond}; {step}) {{"
        body = print_block_body(s.body, indent + 1)
        return f"{header}\n{body}\n{pad}}}"
    if isinstance(s, CIf):
        header = f"{pad}if ({print_expr(s.cond)}) {{"
        body = print_block_body(s.then, indent + 1)
        text = f"{header}\n{body}\n{pad}}}"
        if s.otherwise is not None:
            text += f" else {{\n{print_block_body(s.otherwise, indent + 1)}\n{pad}}}"
        return text
    if isinstance(s, CBlock):
        return f"{pad}{{\n{print_block_body(s, indent + 1)}\n{pad}}}"
    if isinstance(s, CReturn):
        if s.value is None:
            return f"{pad}return;"
        return f"{pad}return {print_expr(s.value)};"
    if isinstance(s, CBarrier):
        return f"{pad}barrier({s.fence});"
    if isinstance(s, CComment):
        return f"{pad}/* {s.text} */"
    raise TypeError(f"cannot print {s!r}")


def print_block_body(block: CBlock, indent: int) -> str:
    return "\n".join(print_stmt(s, indent) for s in block.stmts)


def print_function(f: CFunctionDef) -> str:
    params = []
    for p in f.params:
        quals = " ".join(p.qualifiers)
        star = "*" if p.is_pointer else ""
        restrict = " restrict" if p.is_restrict else ""
        prefix = f"{quals} " if quals else ""
        params.append(f"{prefix}{p.type_name} {star}{restrict} {p.name}".replace("  ", " "))
    header = "kernel " if f.is_kernel else ""
    sig = f"{header}{f.return_type} {f.name}({', '.join(params)}) {{"
    return f"{sig}\n{print_block_body(f.body, 1)}\n}}"


def print_program(p: CProgram) -> str:
    return "\n\n".join(print_function(f) for f in p.functions) + "\n"
