"""Memory objects and allocation bookkeeping (paper section 5.2).

Memory is only allocated for functions that actually modify data (calls
whose function is a user function); data-layout patterns compile to views
instead.  Every buffer holds elements of a single scalar type — vector
values occupy ``width`` consecutive scalars, which matches how OpenCL
lays out ``float4`` in memory and keeps the view algebra uniform.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.arith import ArithExpr, Cst, simplify
from repro.arith.simplify import to_int
from repro.types import ArrayType, DataType, ScalarType, TupleType, VectorType
from repro.ir.nodes import AddressSpace


def scalar_layout(t: DataType) -> tuple[ScalarType, ArithExpr]:
    """The scalar element type and total scalar count of a data type."""
    if isinstance(t, ScalarType):
        return t, Cst(1)
    if isinstance(t, VectorType):
        return t.elem, Cst(t.width)
    if isinstance(t, ArrayType):
        elem, count = scalar_layout(t.elem)
        return elem, simplify(t.length * count)
    if isinstance(t, TupleType):
        # Tuples of identical scalars are stored interleaved.
        elem, count = scalar_layout(t.elems[0])
        for other in t.elems[1:]:
            other_elem, other_count = scalar_layout(other)
            if other_elem != elem:
                raise NotImplementedError(
                    f"mixed-scalar tuple {t} cannot be stored in one buffer"
                )
            count = count + other_count
        return elem, simplify(count)
    raise TypeError(f"cannot lay out {t!r}")


@dataclass
class Memory:
    """A buffer (or a register) holding the value of some expression.

    ``count`` is the number of scalar elements; ``logical_type`` is the
    value type the buffer represents from the perspective of the scope it
    was allocated in (for a private accumulator inside a ``mapLcl`` this is
    the per-thread type, mirroring that each thread owns its own copy —
    the multiplier rules of section 5.2).
    """

    name: str
    space: AddressSpace
    scalar_type: ScalarType
    count: ArithExpr
    logical_type: DataType
    is_param: bool = False

    @property
    def is_scalar_register(self) -> bool:
        """Private memories of one element compile to plain C variables."""
        return (
            self.space == AddressSpace.PRIVATE
            and simplify(self.count) == Cst(1)
        )

    def concrete_count(self) -> int:
        return to_int(simplify(self.count))

    def __repr__(self) -> str:
        return f"Memory({self.name}, {self.space}, {self.scalar_type}x{self.count})"


class MemoryAllocator:
    """Creates uniquely named buffers for a single kernel."""

    def __init__(self) -> None:
        self._counters = {
            AddressSpace.GLOBAL: itertools.count(1),
            AddressSpace.LOCAL: itertools.count(1),
            AddressSpace.PRIVATE: itertools.count(1),
        }
        self.locals: list[Memory] = []
        self.privates: list[Memory] = []
        self.global_temps: list[Memory] = []

    def alloc(self, logical_type: DataType, space: AddressSpace, prefix: str = "") -> Memory:
        if isinstance(logical_type, TupleType):
            # Tuple accumulators live in struct-typed private registers.
            if space != AddressSpace.PRIVATE:
                raise NotImplementedError(
                    "tuple values are only supported in private registers"
                )
            scalar, count = ScalarType("struct", 0), Cst(1)
        else:
            scalar, count = scalar_layout(logical_type)
        stem = {
            AddressSpace.GLOBAL: "g_tmp",
            AddressSpace.LOCAL: "tmp",
            AddressSpace.PRIVATE: "acc",
        }[space]
        if prefix:
            stem = prefix
        name = f"{stem}{next(self._counters[space])}"
        mem = Memory(name, space, scalar, simplify(count), logical_type)
        if space == AddressSpace.LOCAL:
            self.locals.append(mem)
        elif space == AddressSpace.PRIVATE:
            self.privates.append(mem)
        else:
            self.global_temps.append(mem)
        return mem

    @staticmethod
    def for_param(name: str, logical_type: DataType, space: AddressSpace) -> Memory:
        scalar, count = scalar_layout(logical_type)
        return Memory(name, space, scalar, simplify(count), logical_type, is_param=True)
