"""Legacy shim so `pip install -e .` works without build isolation
(this environment has no network access to fetch isolated build deps)."""

from setuptools import setup

setup()
