"""Tests for the performance-attribution layer (repro.obs.analysis).

Covers the calibration math (Spearman with tie handling, top-k regret,
scale-aligned residuals) on synthetic menus with known orderings, the
CalibrationLog (bounds, reset, empty-log edge case, snapshot shape),
the P² streaming quantile estimator behind the metrics histograms,
roofline classification against synthetic segment counters, the SLO
table, and the explorer integration (records land in the log with
join-key hashes).
"""

import math

import pytest

from repro.obs import analysis
from repro.obs import metrics as metrics_mod
from repro.obs.analysis import (
    CalibrationLog,
    CalibrationRecord,
    short_hash,
    slo_table,
    spearman,
    topk_regret,
)


# ---------------------------------------------------------------------------
# rank statistics
# ---------------------------------------------------------------------------

class TestSpearman:
    def test_perfect_agreement(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert spearman([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)

    def test_monotone_nonlinear_is_still_one(self):
        # Rank correlation ignores the shape, only the ordering counts.
        xs = [1.0, 2.0, 3.0, 4.0, 5.0]
        ys = [math.exp(x) for x in xs]
        assert spearman(xs, ys) == pytest.approx(1.0)

    def test_ties_average_rank(self):
        # xs ranks: [1, 2.5, 2.5, 4] — the tied pair shares rank 2.5.
        # Pearson on those ranks vs [1,2,3,4] is sqrt(4.5/5).
        r = spearman([1, 2, 2, 3], [1, 2, 3, 4])
        assert r == pytest.approx(math.sqrt(4.5 / 5))

    def test_all_tied_is_undefined(self):
        assert spearman([7, 7, 7], [1, 2, 3]) is None
        assert spearman([1, 2, 3], [7, 7, 7]) is None

    def test_too_few_pairs(self):
        assert spearman([], []) is None
        assert spearman([1], [1]) is None

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            spearman([1, 2], [1])


class TestTopkRegret:
    # predicted order: 0, 1, 2, 3;  measured best is index 1 (1.0).
    PRED = [10.0, 20.0, 30.0, 40.0]
    MEAS = [2.0, 1.0, 4.0, 3.0]

    def test_top1_misses_winner(self):
        # Model's #1 pick measures 2.0; true best is 1.0 → 100% regret.
        assert topk_regret(self.PRED, self.MEAS, 1) == pytest.approx(1.0)

    def test_top2_contains_winner(self):
        assert topk_regret(self.PRED, self.MEAS, 2) == pytest.approx(0.0)

    def test_k_larger_than_menu(self):
        assert topk_regret(self.PRED, self.MEAS, 99) == pytest.approx(0.0)

    def test_empty_menu(self):
        assert topk_regret([], [], 1) is None

    def test_nonpositive_best_is_undefined(self):
        assert topk_regret([1.0, 2.0], [0.0, 5.0], 1) is None

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            topk_regret([1.0], [], 1)


# ---------------------------------------------------------------------------
# calibration log
# ---------------------------------------------------------------------------

def make_record(workload="mm", label="c0", static=1.0, modeled=1.0):
    return CalibrationRecord(
        workload=workload,
        label=label,
        structural_hash=short_hash(label),
        trace=("rule-a", "rule-b"),
        static_cost=static,
        modeled_runtime=modeled,
        measured_cycles=modeled * 1e3,
        wall_seconds=0.01,
    )


class TestCalibrationLog:
    def test_empty_log_summary(self):
        log = CalibrationLog()
        s = log.summary("mm")
        assert s == {
            "candidates": 0,
            "spearman": None,
            "top1_regret": None,
            "top5_regret": None,
            "residual_rms": None,
        }
        assert log.as_dict() == {"workloads": {}, "records": []}

    def test_known_menu_statistics(self):
        log = CalibrationLog()
        # Static cost ranks candidates exactly as the modeled runtime
        # does, and modeled = 2 * static, so residuals vanish after
        # the geometric-mean scale alignment.
        for i, static in enumerate([3.0, 1.0, 2.0, 4.0]):
            log.record(make_record(label=f"c{i}", static=static,
                                   modeled=2.0 * static))
        s = log.summary("mm")
        assert s["candidates"] == 4
        assert s["spearman"] == pytest.approx(1.0)
        assert s["top1_regret"] == pytest.approx(0.0)
        assert s["top5_regret"] == pytest.approx(0.0)
        assert s["residual_rms"] == pytest.approx(0.0, abs=1e-12)

    def test_anticorrelated_menu(self):
        log = CalibrationLog()
        # Static cost ranks candidates exactly backwards.
        statics = [1.0, 2.0, 3.0, 4.0]
        modeled = [4.0, 3.0, 2.0, 1.0]
        for i, (p, m) in enumerate(zip(statics, modeled)):
            log.record(make_record(label=f"c{i}", static=p, modeled=m))
        s = log.summary("mm")
        assert s["spearman"] == pytest.approx(-1.0)
        # Model's top-1 pick (static 1.0) measures 4.0 vs true best 1.0.
        assert s["top1_regret"] == pytest.approx(3.0)

    def test_per_workload_isolation(self):
        log = CalibrationLog()
        log.record(make_record(workload="mm", label="a"))
        log.record(make_record(workload="nn", label="b"))
        assert log.workloads() == ["mm", "nn"]
        assert len(log.records("mm")) == 1
        assert len(log.records()) == 2

    def test_bounded_drop_oldest(self):
        log = CalibrationLog()
        for i in range(log.MAX_RECORDS + 10):
            log.record(make_record(label=f"c{i}", static=float(i + 1),
                                   modeled=float(i + 1)))
        recs = log.records("mm")
        assert len(recs) == log.MAX_RECORDS
        assert recs[0].label == "c10"  # the first ten were dropped

    def test_reset(self):
        log = CalibrationLog()
        log.record(make_record())
        log.reset()
        assert log.records() == []

    def test_as_dict_shape(self):
        log = CalibrationLog()
        log.record(make_record(label="c0"))
        doc = log.as_dict()
        (rec,) = doc["records"]
        assert set(rec) == {
            "workload", "label", "structural_hash", "trace",
            "static_cost", "modeled_runtime", "measured_cycles",
            "wall_seconds",
        }
        assert rec["structural_hash"] == short_hash("c0")
        assert doc["workloads"]["mm"]["candidates"] == 1
        # A one-candidate menu has no rank variance: spearman is None
        # and the formatter must render it, not crash.
        assert doc["workloads"]["mm"]["spearman"] is None
        assert "n/a" in analysis.format_calibration(doc)

    def test_short_hash_is_stable_join_key(self):
        assert short_hash("abc") == short_hash("abc")
        assert len(short_hash("abc")) == 12
        assert short_hash("abc") != short_hash("abd")


# ---------------------------------------------------------------------------
# P² streaming quantiles
# ---------------------------------------------------------------------------

class TestP2Quantile:
    def test_exact_below_five_samples(self):
        est = metrics_mod._P2Quantile(0.5)
        for x in (1.0, 5.0, 3.0):
            est.add(x)
        assert est.value() == pytest.approx(3.0)

    def test_exact_interpolation_p95(self):
        est = metrics_mod._P2Quantile(0.95)
        for x in (1.0, 5.0, 3.0):
            est.add(x)
        # sorted [1,3,5], q=0.95 → index 1.9 → 3 + 0.9*(5-3) = 4.8
        assert est.value() == pytest.approx(4.8)

    def test_empty(self):
        assert metrics_mod._P2Quantile(0.5).value() == 0.0

    def test_converges_on_uniform_stream(self):
        # Deterministic low-discrepancy stream over (0, 1000).
        est = metrics_mod._P2Quantile(0.5)
        x = 0.0
        for _ in range(5000):
            x = (x + 617.0) % 1000.0
            est.add(x)
        assert est.value() == pytest.approx(500.0, rel=0.05)

    def test_deterministic(self):
        a, b = metrics_mod._P2Quantile(0.99), metrics_mod._P2Quantile(0.99)
        x = 0.0
        for _ in range(1000):
            x = (x * 31.0 + 17.0) % 997.0
            a.add(x)
            b.add(x)
        assert a.value() == b.value()

    def test_histogram_snapshot_carries_quantiles(self):
        reg = metrics_mod.MetricsRegistry()
        for v in (1.0, 5.0, 3.0):
            reg.observe("lat", v)
        h = reg.snapshot()["histograms"]["lat"]
        assert h["count"] == 3
        assert h["min"] == 1.0 and h["max"] == 5.0
        assert h["mean"] == pytest.approx(3.0)
        assert h["p50"] == pytest.approx(3.0)
        assert h["p95"] == pytest.approx(4.8)
        assert h["p99"] == pytest.approx(4.96)


# ---------------------------------------------------------------------------
# roofline attribution
# ---------------------------------------------------------------------------

def make_profile_doc(segments):
    rows = []
    for i, (flops, loads, stores) in enumerate(segments):
        rows.append({
            "kernel": "KERNEL",
            "segment": i,
            "kind": "fused",
            "calls": 1,
            "seconds": 0.001 * (i + 1),
            "counters": {
                "flops": flops,
                "load_events": loads,
                "global_stores": stores,
            },
        })
    return {"segments": rows}


class TestRoofline:
    def test_classification_against_ridge(self):
        from repro.opencl.cost import DEVICES

        ridge = DEVICES["nvidia"].ridge_point()
        assert ridge == pytest.approx(5121.0 / 336.0)
        doc = make_profile_doc([
            (100, 100, 0),      # 100 flops / 400 bytes → memory-bound
            (100000, 1, 0),     # 100000 / 4 bytes → compute-bound
            (0, 0, 0),          # nothing counted → unknown
        ])
        rows = analysis.roofline_segments("nvidia", profile_doc=doc)
        by_seg = {r["segment"]: r for r in rows}
        assert by_seg[0]["bound"] == "memory"
        assert by_seg[0]["intensity"] == pytest.approx(0.25)
        assert by_seg[1]["bound"] == "compute"
        assert by_seg[2]["bound"] == "unknown"
        assert by_seg[2]["intensity"] is None

    def test_flops_without_traffic_is_compute_bound(self):
        doc = make_profile_doc([(500, 0, 0)])
        (row,) = analysis.roofline_segments("nvidia", profile_doc=doc)
        assert row["bound"] == "compute"
        assert row["intensity"] is None

    def test_bytes_price_all_address_spaces(self):
        doc = make_profile_doc([(10, 3, 2)])
        (row,) = analysis.roofline_segments("nvidia", profile_doc=doc)
        assert row["bytes"] == 5 * analysis.BYTES_PER_ELEMENT

    def test_sorted_by_time_descending(self):
        doc = make_profile_doc([(1, 1, 0), (1, 1, 0), (1, 1, 0)])
        rows = analysis.roofline_segments("nvidia", profile_doc=doc)
        assert [r["segment"] for r in rows] == [2, 1, 0]

    def test_format_smoke(self):
        doc = make_profile_doc([(100, 100, 0)])
        rows = analysis.roofline_segments("nvidia", profile_doc=doc)
        text = analysis.format_roofline(rows)
        assert "roofline attribution" in text
        assert "memory" in text
        assert "(no profiled segments" in analysis.format_roofline([])


# ---------------------------------------------------------------------------
# service SLO table
# ---------------------------------------------------------------------------

class TestSloTable:
    def test_reads_quantile_histograms(self):
        snapshot = {
            "histograms": {
                "service.latency.cold": {
                    "count": 3, "total": 0.6, "min": 0.1, "max": 0.3,
                    "mean": 0.2, "p50": 0.2, "p95": 0.29, "p99": 0.298,
                },
                "service.queue_wait.cold": {
                    "count": 3, "total": 0.15, "min": 0.01, "max": 0.09,
                    "mean": 0.05, "p50": 0.05, "p95": 0.08, "p99": 0.088,
                },
            }
        }
        (row,) = slo_table(snapshot)
        assert row["class"] == "cold"
        assert row["count"] == 3
        assert row["p50_ms"] == pytest.approx(200.0)
        assert row["p95_ms"] == pytest.approx(290.0)
        assert row["max_ms"] == pytest.approx(300.0)
        assert row["queue_wait_p95_ms"] == pytest.approx(80.0)

    def test_missing_queue_wait_is_none(self):
        snapshot = {
            "histograms": {
                "service.latency.warm_hit": {
                    "count": 1, "total": 0.01, "min": 0.01, "max": 0.01,
                    "mean": 0.01, "p50": 0.01, "p95": 0.01, "p99": 0.01,
                },
            }
        }
        (row,) = slo_table(snapshot)
        assert row["class"] == "warm_hit"
        assert row["queue_wait_p95_ms"] is None

    def test_empty_snapshot(self):
        assert slo_table({"histograms": {}}) == []
        assert "(no service requests" in analysis.format_slo([])

    def test_row_order_follows_request_classes(self):
        hist = {
            "count": 1, "total": 0.01, "min": 0.01, "max": 0.01,
            "mean": 0.01, "p50": 0.01, "p95": 0.01, "p99": 0.01,
        }
        snapshot = {
            "histograms": {
                f"service.latency.{cls}": dict(hist)
                for cls in ("cold", "warm_hit", "coalesced")
            }
        }
        rows = slo_table(snapshot)
        assert [r["class"] for r in rows] == list(analysis.REQUEST_CLASSES)


# ---------------------------------------------------------------------------
# explorer integration
# ---------------------------------------------------------------------------

class TestExplorerIntegration:
    def test_calibrate_populates_log(self):
        from repro.benchsuite.calibrate import format_calibrate, run_calibrate

        data = run_calibrate(["gemv"], depth=2, max_eval=3)
        s = data["workloads"]["gemv"]
        assert s["candidates"] >= 2
        assert s["spearman"] is not None
        # Records carry the 12-hex join key that the trace span args
        # and the tuning-cache structural keys also use.
        for rec in data["records"]:
            assert rec["workload"] == "gemv"
            assert len(rec["structural_hash"]) == 12
            int(rec["structural_hash"], 16)
            assert rec["static_cost"] > 0
            assert rec["modeled_runtime"] > 0
        text = format_calibrate(data)
        assert "gemv" in text and "spearman" in text

    def test_calibration_in_metrics_snapshot(self):
        from repro import obs

        analysis.LOG.reset()
        analysis.record_candidate(
            workload="synthetic", label="c0", canonical_text="prog",
            trace=("r1",), static_cost=1.0, modeled_runtime=2.0,
            measured_cycles=2000.0,
        )
        try:
            doc = obs.snapshot()
            assert "calibration" in doc
            assert "synthetic" in doc["calibration"]["workloads"]
        finally:
            analysis.LOG.reset()
