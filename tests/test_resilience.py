"""The resilience layer: deterministic fault injection, retry/deadline/
cancellation primitives, the degradation ledger and crash shield on
backend fallback chains, and the explorer's fault tolerance (recovery
to bit-identical results under a chaos plan, the failure taxonomy,
per-candidate deadlines and cooperative cancellation)."""

import numpy as np
import pytest

from repro import faultinject
from repro.arith import Var
from repro.backend import (
    Backend,
    CompileUnsupported,
    ledger,
    register_backend,
    register_engine,
)
from repro.backend import registry as registry_mod
from repro.cache import TuningCache
from repro.faultinject import FaultInjected, FaultPlan, FaultState
from repro.ir.dsl import map_
from repro.ir.nodes import Lambda, Param, UserFun
from repro.opencl import Buffer, OpenCLProgram, launch
from repro.resilience import (
    Cancelled,
    CancellationToken,
    DeadlineExceeded,
    FailureReport,
    RetryPolicy,
    TransientError,
    run_with_deadline,
)
from repro.rewrite.explore import ExploreConfig, explore_program
from repro.types import ArrayType, FLOAT

SAXPY = """
kernel void SAXPY(const global float * restrict x,
                  const global float * restrict y,
                  global float *out, float a, int n) {
  int i = get_global_id(0);
  if (i < n) { out[i] = a * x[i] + y[i]; }
}
"""


def _run_saxpy(engine=None, n=32, local=8):
    program = OpenCLProgram(SAXPY)
    args = {
        "x": Buffer.from_array(np.arange(n, dtype=float)),
        "y": Buffer.from_array(np.ones(n)),
        "out": Buffer.zeros(n),
        "a": 2.0,
        "n": n,
    }
    launch(program, n, local, args, engine=engine)
    return args["out"].data.copy()


def _toy_program():
    n = Var("N")
    x = Param(ArrayType(FLOAT, n), "x")
    double = UserFun("dbl", ["v"], "return v * 2.0f;", [FLOAT], FLOAT,
                     py=lambda v: v * 2.0)
    return Lambda([x], map_(double)(x))


def _explore(tmp_path=None, **config_kwargs):
    config = ExploreConfig(depth=2, max_eval=6, **config_kwargs)
    cache = TuningCache(tmp_path) if tmp_path is not None else None
    return explore_program(
        _toy_program(), {"x": np.arange(48, dtype=float)}, {"N": 48},
        config=config, cache=cache,
    )


@pytest.fixture(autouse=True)
def _clean_slate():
    """Every test starts with injection off and an empty ledger; any
    ambient plan (e.g. the chaos CI job's REPRO_FAULT_PLAN) is restored
    afterwards so this module cannot disarm the rest of the suite."""
    with faultinject.plan_installed(None):
        ledger.clear()
        yield
    ledger.clear()


class TestFaultPlanParsing:
    def test_simple_spec(self):
        plan = FaultPlan.parse("seed=11;rate=0.05")
        assert plan.seed == 11
        assert plan.default_rate == 0.05
        assert plan.rate("compile") == 0.05
        assert plan.any_faults()

    def test_per_site_rates_override_default(self):
        plan = FaultPlan.parse("seed=7;rate=0.1;cache-read=0.5")
        assert plan.rate("cache-read") == 0.5
        assert plan.rate("cache-write") == 0.1

    def test_attempts_field(self):
        assert FaultPlan.parse("rate=1;attempts=2").attempts == 2
        # attempts is clamped to at least one draw.
        assert FaultPlan.parse("rate=1;attempts=0").attempts == 1

    def test_comma_separator_accepted(self):
        plan = FaultPlan.parse("seed=3,rate=0.2")
        assert plan.seed == 3 and plan.default_rate == 0.2

    def test_off_and_empty_disable(self):
        assert FaultPlan.parse("off") is None
        assert FaultPlan.parse("") is None
        assert FaultPlan.parse("  ") is None
        # All-zero rates are equivalent to off.
        assert FaultPlan.parse("seed=5") is None

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.parse("seed=1;warp-speed=0.5")

    def test_malformed_field_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            FaultPlan.parse("seed")

    def test_describe_round_trips(self):
        plan = FaultPlan.parse("seed=9;rate=0.25;verify=1.0")
        again = FaultPlan.parse(plan.describe())
        assert again == plan


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultState(FaultPlan(seed=42, default_rate=0.3))
        b = FaultState(FaultPlan(seed=42, default_rate=0.3))
        draws_a = [a._draw("compile")[0] for _ in range(200)]
        draws_b = [b._draw("compile")[0] for _ in range(200)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_different_seed_different_decisions(self):
        a = FaultState(FaultPlan(seed=1, default_rate=0.3))
        b = FaultState(FaultPlan(seed=2, default_rate=0.3))
        draws_a = [a._draw("compile")[0] for _ in range(200)]
        draws_b = [b._draw("compile")[0] for _ in range(200)]
        assert draws_a != draws_b

    def test_sites_are_independent_streams(self):
        state = FaultState(FaultPlan(seed=5, default_rate=0.5))
        compile_draws = [state._draw("compile")[0] for _ in range(100)]
        verify_draws = [state._draw("verify")[0] for _ in range(100)]
        assert compile_draws != verify_draws

    def test_reset_counts_replays_the_sequence(self):
        state = FaultState(FaultPlan(seed=42, default_rate=0.3))
        first = [state._draw("simulate")[0] for _ in range(50)]
        state.reset_counts()
        again = [state._draw("simulate")[0] for _ in range(50)]
        assert first == again


class TestSurviveAndMaybeFail:
    def test_rate_zero_never_injects(self):
        state = FaultState(FaultPlan(seed=0, default_rate=0.0))
        for _ in range(100):
            state.maybe_fail("compile")
            assert state.survive("compile") == 0

    def test_rate_one_escapes_after_attempts(self):
        state = FaultState(FaultPlan(seed=0, default_rate=1.0, attempts=3))
        with pytest.raises(FaultInjected) as err:
            state.survive("compile")
        assert err.value.site == "compile"
        c = state.counts()["compile"]
        assert c.checks == 3
        assert c.injected == 3
        assert c.recovered == 2
        assert c.escaped == 1

    def test_partial_rate_usually_recovers_in_place(self):
        # With rate 0.5 and 4 attempts, escapes need 4 consecutive
        # injections (~6%); over many calls most recover.
        state = FaultState(FaultPlan(seed=7, default_rate=0.5, attempts=4))
        absorbed = escaped = 0
        for _ in range(100):
            try:
                absorbed += state.survive("cache-read")
            except FaultInjected:
                escaped += 1
        assert absorbed > 0
        c = state.counts()["cache-read"]
        # An escaping call burns all 4 attempts: 3 recovered draws the
        # caller never sees plus the escaping one.
        assert c.recovered == absorbed + 3 * escaped
        assert c.escaped == escaped
        assert c.injected == c.recovered + c.escaped

    def test_module_fast_path_with_no_plan(self):
        assert faultinject.active_plan() is None
        assert faultinject.survive("compile") == 0
        faultinject.maybe_fail("compile")  # no-op
        assert faultinject.counts() == {}
        assert faultinject.total_injected() == 0

    def test_set_plan_accepts_spec_strings(self):
        faultinject.set_plan("seed=11;rate=1.0;attempts=1")
        with pytest.raises(FaultInjected):
            faultinject.survive("verify")
        faultinject.set_plan(None)
        assert faultinject.active_plan() is None

    def test_plan_installed_restores_previous_state(self):
        faultinject.set_plan("seed=1;rate=1.0")
        outer = faultinject.active_plan()
        with faultinject.plan_installed("seed=2;rate=0.5"):
            assert faultinject.active_plan().seed == 2
        assert faultinject.active_plan() == outer


class TestRetryPolicy:
    def test_success_needs_no_retry(self):
        calls = []
        policy = RetryPolicy(attempts=3)
        assert policy.call(lambda: calls.append(1) or "ok",
                           sleep=lambda s: None) == "ok"
        assert len(calls) == 1

    def test_transient_errors_are_retried(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientError("blip")
            return "done"

        policy = RetryPolicy(attempts=3, base_delay=0.0)
        assert policy.call(flaky, sleep=lambda s: None) == "done"
        assert len(attempts) == 3

    def test_budget_exhaustion_reraises(self):
        policy = RetryPolicy(attempts=2, base_delay=0.0)
        with pytest.raises(TransientError):
            policy.call(lambda: (_ for _ in ()).throw(TransientError("x")),
                        sleep=lambda s: None)

    def test_non_transient_errors_pass_through(self):
        policy = RetryPolicy(attempts=5)
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("deterministic bug")

        with pytest.raises(ValueError):
            policy.call(broken, sleep=lambda s: None)
        assert len(calls) == 1

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, multiplier=2.0,
                             max_delay=0.3)
        assert list(policy.delays()) == [0.1, 0.2, 0.3, 0.3]

    def test_on_retry_observer_sees_each_failure(self):
        seen = []
        policy = RetryPolicy(attempts=3, base_delay=0.0)
        state = {"n": 0}

        def flaky():
            state["n"] += 1
            if state["n"] < 3:
                raise TransientError(f"blip {state['n']}")
            return state["n"]

        policy.call(flaky, on_retry=lambda i, e: seen.append((i, str(e))),
                    sleep=lambda s: None)
        assert seen == [(1, "blip 1"), (2, "blip 2")]


class TestCancellationToken:
    def test_cancel_is_sticky(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel()
        assert token.cancelled
        with pytest.raises(Cancelled):
            token.raise_if_cancelled()

    def test_child_sees_parent_cancellation(self):
        parent = CancellationToken()
        child = parent.child()
        assert not child.cancelled
        parent.cancel()
        assert child.cancelled

    def test_child_cancellation_does_not_leak_up(self):
        parent = CancellationToken()
        child = parent.child()
        child.cancel()
        assert child.cancelled
        assert not parent.cancelled


class TestRunWithDeadline:
    def test_returns_value_in_time(self):
        assert run_with_deadline(lambda: 7, timeout=5.0) == 7

    def test_reraises_callable_exception(self):
        def boom():
            raise KeyError("inner")

        with pytest.raises(KeyError):
            run_with_deadline(boom, timeout=5.0)

    def test_timeout_raises_and_cancels_token(self):
        import threading

        token = CancellationToken()
        release = threading.Event()
        try:
            with pytest.raises(DeadlineExceeded):
                run_with_deadline(release.wait, timeout=0.05, token=token)
            assert token.cancelled
        finally:
            release.set()


class TestFailureReport:
    def test_as_dict_and_describe(self):
        report = FailureReport(
            label="mapGlb(dbl)", trace=("rule-a", "rule-b"),
            kind="compile", message="bad lowering", attempts=2, elapsed=0.5,
        )
        d = report.as_dict()
        assert d["kind"] == "compile"
        assert d["trace"] == ["rule-a", "rule-b"]
        assert "compile after 2 attempt(s)" in report.describe()


class TestDegradationLedger:
    def test_record_and_counts(self):
        book = ledger.DegradationLedger()
        book.record("auto", "fused", "static", "no fused segments")
        book.record("auto", "fused", "static", "no fused segments")
        book.record("auto", "compiled", "dynamic", "bail-out")
        assert book.counts() == {
            ("auto", "fused", "static"): 2,
            ("auto", "compiled", "dynamic"): 1,
        }
        assert book.total() == len(book) == 3
        assert len(book.events()) == 3

    def test_summary_and_clear(self):
        book = ledger.DegradationLedger()
        assert "empty" in book.summary()
        book.record("auto", "fused", "crash", "ZeroDivisionError")
        assert "backend 'fused' declined 1x (crash)" in book.summary()
        book.clear()
        assert book.total() == 0

    def test_event_cap_keeps_counts_exact(self):
        book = ledger.DegradationLedger()
        for _ in range(ledger._MAX_EVENTS + 5):
            book.record("auto", "fused", "static", "r")
        assert len(book.events()) == ledger._MAX_EVENTS
        assert book.total() == ledger._MAX_EVENTS + 5
        assert "counts exact" in book.summary()

    def test_launch_records_declines_of_the_real_chain(self):
        # A barrier + early return is statically refused by every tier
        # but scalar: the graceful "fused" chain must record each
        # decline on its way down.
        src = """
        kernel void K(global float *x, int n) {
          if (get_global_id(0) >= n) { return; }
          barrier(CLK_LOCAL_MEM_FENCE);
          x[get_global_id(0)] = 1.0f;
        }
        """
        program = OpenCLProgram(src)
        out = Buffer.zeros(4)
        launch(program, 4, 4, {"x": out, "n": 4}, engine="fused")
        np.testing.assert_array_equal(out.data, np.ones(4))
        counts = ledger.counts()
        assert any(
            engine == "fused" and kind in ("static", "dynamic")
            for (engine, backend, kind) in counts
        )
        assert ("fused", "scalar", "static") not in counts


class _CrashingBackend(Backend):
    name = "test-crashy"
    dynamic_class = "test-crashy"

    def plan(self, parsed, kernel):
        raise ZeroDivisionError("planted bug in plan()")

    def run(self, plan, request):  # pragma: no cover - never reached
        return True


@pytest.fixture
def crashy_chain():
    """An engine whose first backend crashes in plan(), then scalar."""
    name = "test-crash-then-scalar"
    if _CrashingBackend.name not in registry_mod._BACKENDS:
        register_backend(_CrashingBackend())
    if name not in registry_mod._ENGINES:
        register_engine(name, (_CrashingBackend.name, "scalar"))
    yield name
    registry_mod._ENGINES.pop(name, None)
    registry_mod._BACKENDS.pop(_CrashingBackend.name, None)


class TestCrashShield:
    def test_plan_crash_falls_through_and_is_ledgered(self, crashy_chain):
        out = _run_saxpy(engine=crashy_chain)
        np.testing.assert_array_equal(
            out, 2.0 * np.arange(32, dtype=float) + 1.0
        )
        counts = ledger.counts()
        assert counts.get((crashy_chain, "test-crashy", "crash")) == 1

    def test_final_member_crash_is_not_shielded(self):
        name = "test-crash-only"
        if _CrashingBackend.name not in registry_mod._BACKENDS:
            register_backend(_CrashingBackend())
        register_engine(name, (_CrashingBackend.name,), strict=True)
        try:
            with pytest.raises(ZeroDivisionError):
                _run_saxpy(engine=name)
        finally:
            registry_mod._ENGINES.pop(name, None)
            registry_mod._BACKENDS.pop(_CrashingBackend.name, None)


class TestBackendRunFaultSite:
    def test_certain_faults_decline_every_non_final_backend(self):
        with faultinject.plan_installed("seed=1;backend-run=1.0"):
            out = _run_saxpy(engine="auto")
        np.testing.assert_array_equal(
            out, 2.0 * np.arange(32, dtype=float) + 1.0
        )
        # auto = compiled -> interp -> scalar: the two non-final members
        # were declined by injection, scalar (exempt) served the launch.
        counts = ledger.counts()
        assert counts.get(("auto", "compiled", "fault")) == 1
        assert counts.get(("auto", "interp", "fault")) == 1
        assert ("auto", "scalar", "fault") not in counts

    def test_chaos_run_is_bitwise_identical_to_clean_run(self):
        clean = _run_saxpy(engine="auto")
        with faultinject.plan_installed("seed=11;rate=0.5"):
            # A single launch makes only a handful of draws; repeat
            # until the plan has demonstrably injected something.
            for _ in range(10):
                chaos = _run_saxpy(engine="auto")
                np.testing.assert_array_equal(chaos, clean)
                if faultinject.total_injected():
                    break
            assert faultinject.total_injected() > 0


class _SlowBackend(Backend):
    """Delegates to scalar after a sleep much longer than the watchdog
    deadline used in the test below."""

    name = "test-slow"
    dynamic_class = "test-slow"

    def plan(self, parsed, kernel):
        import time as _time

        from repro.backend import get_backend

        _time.sleep(0.3)
        return get_backend("scalar").plan(parsed, kernel)

    def run(self, plan, request):
        from repro.backend import get_backend

        return get_backend("scalar").run(plan, request)


class TestExplorerFaultTolerance:
    def test_chaos_results_match_fault_free_results(self, tmp_path):
        baseline = _explore()
        assert baseline.candidates, "fixture must produce candidates"
        with faultinject.plan_installed("seed=11;rate=0.2"):
            chaos = _explore()
            assert faultinject.total_injected() > 0
        assert [c.label for c in chaos.candidates] == \
            [c.label for c in baseline.candidates]
        for a, b in zip(chaos.candidates, baseline.candidates):
            assert a.cycles == b.cycles
            assert a.kernel_source == b.kernel_source
        assert chaos.stats.infra_failures == 0
        assert not chaos.failures

    def test_retries_are_counted_under_chaos(self):
        # rate=0.5 with the explorer's own retry loop: survive() absorbs
        # most faults in place; the ones that escape a whole attempt are
        # retried by evaluate().  Either way some recovery must show up.
        with faultinject.plan_installed("seed=3;compile=0.5"):
            result = _explore(retry_backoff=0.0)
            recovered = faultinject.counts()["compile"].recovered
        assert result.candidates
        assert recovered + result.stats.retries > 0

    def test_unrecoverable_faults_become_infra_failures(self):
        with faultinject.plan_installed("seed=1;compile=1.0;attempts=1"):
            result = _explore(retries=1, retry_backoff=0.0)
        assert not result.candidates
        assert result.stats.infra_failures == len(result.failures) > 0
        for report in result.failures:
            assert report.kind == "infra"
            assert report.attempts == 2  # 1 try + 1 retry
        # The taxonomy is visible in the stats dict.
        assert result.stats.as_dict()["infra_failures"] > 0

    def test_candidate_deadline_produces_timeout_reports(self):
        # A backend that sleeps far past the deadline makes the timeout
        # deterministic (a bare tiny deadline is racy: a fast candidate
        # can finish before the watchdog's first check).
        name = "test-slow-engine"
        register_backend(_SlowBackend())
        register_engine(name, (_SlowBackend.name,))
        try:
            result = _explore(
                candidate_timeout=0.05, retries=0, engine=name, workers=2,
            )
        finally:
            registry_mod._ENGINES.pop(name, None)
            registry_mod._BACKENDS.pop(_SlowBackend.name, None)
        assert not result.candidates
        assert result.stats.timeouts == len(result.failures) > 0
        assert all(r.kind == "timeout" for r in result.failures)
        assert all("deadline" in r.message for r in result.failures)

    def test_precancelled_token_aborts_the_search(self):
        token = CancellationToken()
        token.cancel()
        result = _explore(cancellation=token)
        assert result.stats.aborted
        assert not result.candidates
        # Skipped evaluations are reported, not silently dropped.
        assert all(r.kind == "cancelled" for r in result.failures)

    def test_failures_listed_in_describe(self):
        with faultinject.plan_installed("seed=1;compile=1.0;attempts=1"):
            result = _explore(retries=0, retry_backoff=0.0)
        text = result.describe()
        assert "quarantined" in text

    def test_cache_faults_do_not_change_results(self, tmp_path):
        baseline = _explore(tmp_path / "clean")
        with faultinject.plan_installed("seed=11;cache-read=0.3;cache-write=0.3"):
            chaos = _explore(tmp_path / "chaos")
        assert [c.label for c in chaos.candidates] == \
            [c.label for c in baseline.candidates]
        for a, b in zip(chaos.candidates, baseline.candidates):
            assert a.cycles == b.cycles
            assert a.kernel_source == b.kernel_source
