"""The dimension-aware mapping layer: nest assignment machinery, mapping
strategies, the 2-D tiling macro rule, size specialization, and the
parallelism-aware cost model."""

import numpy as np
import pytest

from repro.arith import Var
from repro.types import ArrayType, FLOAT, array
from repro.ir.nodes import FunCall, Lambda, Param, UserFun
from repro.ir import patterns as pat
from repro.ir.dsl import lam, map_
from repro.ir.structural import structural_eq
from repro.ir.typecheck import infer_types
from repro.ir.visit import clone_decl, post_order
from repro.rewrite.mapping import (
    MappingStrategy,
    global_1d,
    global_nd,
    replace_map_nest,
    tile_2d,
    tiling_rules,
    untile_2d_indices,
    work_group_1d,
)
from repro.rewrite.lowering import lower_to_global, lower_to_work_groups
from repro.opencl.cost import (
    DEVICES,
    effective_parallelism,
    runtime_from_cycles,
    static_program_cost,
)


def _dbl():
    return UserFun("dbl", ["v"], "return v * 2.0f;", [FLOAT], FLOAT,
                   py=lambda v: v * 2.0)


def _flat_program():
    x = Param(ArrayType(FLOAT, Var("N")), "x")
    return Lambda([x], map_(_dbl())(x))


def _nested_program():
    x = Param(array(FLOAT, Var("N"), Var("M")), "x")
    body = map_(lam(lambda row: map_(_dbl())(row)))(x)
    return Lambda([x], body)


class TestReplaceMapNest:
    def test_assigns_builders_outermost_first(self):
        prog = _nested_program()
        mapped = replace_map_nest(
            prog.body,
            [lambda f: pat.MapGlb(f, 1), lambda f: pat.MapGlb(f, 0)],
        )
        assert mapped is not None
        dims = [
            e.f.dim for e in post_order(mapped)
            if isinstance(e, FunCall) and isinstance(e.f, pat.MapGlb)
        ]
        # post-order yields the inner map first
        assert dims == [0, 1]

    def test_returns_none_when_nest_is_too_shallow(self):
        prog = _flat_program()
        assert replace_map_nest(
            prog.body,
            [lambda f: pat.MapGlb(f, 1), lambda f: pat.MapGlb(f, 0)],
        ) is None

    def test_single_builder_matches_old_outermost_replacement(self):
        prog = _nested_program()
        mapped = replace_map_nest(prog.body, [lambda f: pat.MapGlb(f, 0)])
        outer = [
            e for e in post_order(mapped)
            if isinstance(e, FunCall) and isinstance(e.f, pat.MapGlb)
        ]
        assert len(outer) == 1  # only the outermost map was lowered


class TestStrategies:
    def test_global_1d_backs_lower_to_global(self):
        lowered = lower_to_global(_flat_program())
        glbs = [
            e for e in post_order(lowered.body)
            if isinstance(e, FunCall) and isinstance(e.f, pat.MapGlb)
        ]
        assert len(glbs) == 1 and glbs[0].f.dim == 0

    def test_global_nd_produces_cross_dim_nest(self):
        mapped = global_nd((1, 0)).apply(_nested_program().body)
        assert mapped is not None
        dims = sorted(
            e.f.dim for e in post_order(mapped)
            if isinstance(e, FunCall) and isinstance(e.f, pat.MapGlb)
        )
        assert dims == [0, 1]

    def test_global_nd_inapplicable_on_flat_program(self):
        assert global_nd((1, 0)).apply(_flat_program().body) is None

    def test_work_group_1d_backs_lower_to_work_groups(self):
        lowered = lower_to_work_groups(_flat_program(), chunk=16)
        kinds = {
            type(e.f) for e in post_order(lowered.body)
            if isinstance(e, FunCall) and isinstance(e.f, pat.ParallelMap)
        }
        assert kinds == {pat.MapWrg, pat.MapLcl}

    def test_lowering_raises_without_a_spine_map(self):
        x = Param(ArrayType(FLOAT, Var("N")), "x")
        with pytest.raises(ValueError):
            lower_to_global(Lambda([x], FunCall(pat.Join(),
                [FunCall(pat.Split(4), [x])])))


class TestUntile2d:
    @pytest.mark.parametrize("nty,ntx,th,tw", [(2, 2, 2, 3), (3, 2, 4, 2)])
    def test_untile_is_the_inverse_of_tiling(self, nty, ntx, th, tw):
        rows, cols = nty * th, ntx * tw
        matrix = np.arange(rows * cols).reshape(rows, cols)
        # flatten tile-by-tile, row-major inside each tile
        tiled = [
            matrix[ty * th + py, tx * tw + px]
            for ty in range(nty) for tx in range(ntx)
            for py in range(th) for px in range(tw)
        ]
        from repro.arith import Cst

        fn = untile_2d_indices(Cst(nty), Cst(ntx), Cst(th), Cst(tw), Cst(cols))
        out = np.empty(rows * cols, dtype=int)
        for i, v in enumerate(tiled):
            out[fn.eval(i, rows * cols)] = v
        assert np.array_equal(out, matrix.ravel())


class TestTile2d:
    def _mm(self):
        from repro.benchsuite.common import get_benchmark

        bench = get_benchmark("mm-nvidia")
        inputs, size_env = bench.inputs_for("small")
        return bench.high_level(size_env), inputs, size_env

    def test_matches_only_the_independent_two_deep_nest(self):
        hl, _, _ = self._mm()
        from repro.rewrite.strategies import find_matches

        assert len(find_matches(tile_2d(8, 8), hl.body)) == 1
        # gemv's inner map depends on the outer row; no match
        from repro.benchsuite.common import get_benchmark

        gemv = get_benchmark("gemv")
        _, size_env = gemv.inputs_for("small")
        assert not find_matches(tile_2d(8, 8), gemv.high_level(size_env).body)

    @pytest.mark.parametrize("stage", [False, True])
    def test_tiled_mm_is_bitwise_correct(self, stage):
        from repro.ir.interp import apply_fun
        from repro.compiler.codegen import compile_kernel
        from repro.compiler.kernel import execute_kernel
        from repro.compiler.options import CompilerOptions
        from repro.rewrite.autotune import interp_args
        from repro.rewrite.explore import (
            _collect_parallel,
            _finish_variants,
            _geometry,
            _nesting_ok,
            specialize_sizes,
        )
        from repro.rewrite.strategies import one_step_rewrites

        hl, inputs, size_env = self._mm()
        body = one_step_rewrites(tile_2d(8, 8, stage=stage), hl.body)[0]
        fin, _ = _finish_variants(body)[0]
        prog = clone_decl(Lambda(list(hl.params), fin))
        typed = clone_decl(prog)
        infer_types(typed.body)
        assert _nesting_ok(typed.body)
        parallel = _collect_parallel(typed.body)
        local, glob = _geometry(parallel, size_env)
        assert local == (8, 8, 1) and glob == (16, 16, 1)
        if stage:
            assert any(s for _, _, _, s in parallel), "staging maps flagged"

        kernel = compile_kernel(
            specialize_sizes(prog, size_env), CompilerOptions(local_size=local)
        )
        run = execute_kernel(
            kernel, {p.name: inputs[p.name] for p in prog.params},
            size_env, glob, local_size=local,
        )
        ref = np.asarray(
            apply_fun(hl, interp_args(hl, inputs, size_env), size_env),
            dtype=float,
        ).ravel()
        assert np.array_equal(np.asarray(run.output, dtype=float).ravel(), ref)
        if stage:
            assert run.counters.local_loads > 0  # tiles actually staged

    def test_tiling_rules_cover_staged_and_unstaged(self):
        names = [r.name for r in tiling_rules(((4, 4),))]
        assert names == ["tile-2d(4x4)", "tile-2d(4x4,toLocal)"]


class TestSpecializeSizes:
    def test_param_types_and_payloads_become_concrete(self):
        from repro.rewrite.explore import specialize_sizes
        from repro.arith import simplify

        n = Var("N")
        x = Param(ArrayType(FLOAT, n), "x")
        body = FunCall(pat.Join(), [FunCall(pat.Split(n // 4), [x])])
        spec = specialize_sizes(Lambda([x], body), {"N": 16})
        assert str(simplify(spec.params[0].type.length)) == "16"
        splits = [
            e.f for e in post_order(spec.body)
            if isinstance(e, FunCall) and isinstance(e.f, pat.Split)
        ]
        assert splits and splits[0].n.try_int() == 4


class TestParallelismAwareCost:
    def test_effective_parallelism_caps_and_pads(self):
        profile = DEVICES["nvidia"]
        # one thread can never be "less than one"
        assert effective_parallelism(profile, (1, 1, 1), (1, 1, 1)) == 1.0
        # a full 2-D launch counts every item while under the limit
        assert effective_parallelism(profile, (16, 16, 1), (8, 8, 1)) == 256.0
        # over the occupancy limit the width saturates
        huge = effective_parallelism(profile, (1 << 20, 1, 1), (64, 1, 1))
        assert huge == profile.occupancy_limit()
        # partially filled warps waste lanes
        sparse = effective_parallelism(profile, (1 << 20, 1, 1), (8, 1, 1))
        assert sparse == profile.occupancy_limit() * (8 / 32)

    def test_runtime_prefers_wider_schedule(self):
        profile = DEVICES["nvidia"]
        narrow = runtime_from_cycles(100_000.0, profile, (16, 1, 1), (16, 1, 1))
        wide = runtime_from_cycles(130_000.0, profile, (16, 16, 1), (8, 8, 1))
        assert wide < narrow  # more work, many more threads

    def test_static_cost_ranks_tiled_staged_mm_first(self):
        """Parallelism-aware static ordering on real schedules:
        staged 2-D tile < unstaged 2-D tile < flat 1-D lowering."""
        from repro.benchsuite.common import get_benchmark
        from repro.rewrite.explore import (
            _collect_parallel, _finish_variants, _geometry,
        )
        from repro.rewrite.strategies import one_step_rewrites

        bench = get_benchmark("mm-nvidia")
        _, size_env = bench.inputs_for("small")
        hl = bench.high_level(size_env)
        profile = DEVICES["nvidia"]

        def cost_of(body):
            fin, _ = _finish_variants(body)[0]
            prog = clone_decl(Lambda(list(hl.params), fin))
            typed = clone_decl(prog)
            infer_types(typed.body)
            local, glob = _geometry(_collect_parallel(typed.body), size_env)
            return static_program_cost(
                prog, size_env, profile, local_size=local, global_size=glob
            )

        staged = cost_of(one_step_rewrites(tile_2d(8, 8, True), hl.body)[0])
        unstaged = cost_of(one_step_rewrites(tile_2d(8, 8, False), hl.body)[0])
        flat = cost_of(hl.body)  # finishing lowers it to flat mapGlb
        assert staged < unstaged < flat

    def test_static_cost_still_penalizes_pure_bloat(self):
        """At identical geometry, redundant extra work must still rank
        behind the lean schedule (the original pruning property)."""
        from repro.rewrite.lowering import lower_to_global

        profile = DEVICES["nvidia"]
        lean = lower_to_global(_flat_program())
        # same schedule with a pointless double application
        x = Param(ArrayType(FLOAT, Var("N")), "x")
        bloated = Lambda(
            [x],
            FunCall(pat.MapGlb(lam(
                lambda v: FunCall(_dbl(), [FunCall(_dbl(), [v])])
            ), 0), [x]),
        )
        size_env = {"N": 256}
        geometry = ((64, 1, 1), (256, 1, 1))
        lean_cost = static_program_cost(
            lean, size_env, profile,
            local_size=geometry[0], global_size=geometry[1],
        )
        bloated_cost = static_program_cost(
            bloated, size_env, profile,
            local_size=geometry[0], global_size=geometry[1],
        )
        assert lean_cost < bloated_cost
